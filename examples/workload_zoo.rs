//! Workload zoo: characterize every slice of the synthetic population on
//! one generation — the tool for understanding what the suite contains
//! before running cross-generation sweeps.
//!
//! ```text
//! cargo run --release --example workload_zoo [M1..M6]
//! ```

use exynos::core::builder::SimBuilder;
use exynos::core::config::{CoreConfig, Generation};
use exynos::core::sim::Simulator;
use exynos::trace::{standard_suite, SlicePlan};

fn main() {
    let gen_name = std::env::args().nth(1).unwrap_or_else(|| "M3".into());
    let gen = Generation::ALL
        .into_iter()
        .find(|g| g.name().eq_ignore_ascii_case(&gen_name))
        .unwrap_or(Generation::M3);
    let cfg = CoreConfig::for_generation(gen);
    println!(
        "{:<26} {:>6} {:>7} {:>9} {:>8} {:>8}",
        format!("slice (on {gen})"),
        "IPC",
        "MPKI",
        "load lat",
        "L1 hit%",
        "DRAM/kI"
    );
    for slice in standard_suite(1) {
        let mut sim = SimBuilder::config(cfg.clone()).build().unwrap();
        let mut g = slice.build().unwrap();
        let r = sim.run_slice(&mut *g, SlicePlan::new(4_000, 25_000)).expect("clean example slice");
        let l1 = 100.0 * r.mem.l1_hits as f64 / r.mem.loads.max(1) as f64;
        let dram_ki = r.mem.dram_loads as f64 * 1000.0 / (r.instructions.max(1)) as f64;
        println!(
            "{:<26} {:>6.2} {:>7.2} {:>9.1} {:>8.1} {:>8.2}",
            slice.name, r.ipc, r.mpki, r.avg_load_latency, l1, dram_ki
        );
    }
    println!("\nColumns: IPC, branch MPKI, average load latency (cycles), L1D hit");
    println!("rate, demand DRAM accesses per kilo-instruction.");
}
