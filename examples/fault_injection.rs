//! Demonstrates the fault-injection harness and forward-progress watchdog:
//! seeded chaos runs across every generation, a forced retirement wedge
//! surfacing a typed `SimError` with an occupancy snapshot, and the
//! determinism of the injected fault stream.
//!
//! Run with: `cargo run --release --example fault_injection`

use exynos::core::builder::SimBuilder;
use exynos::core::config::CoreConfig;
use exynos::core::sim::Simulator;
use exynos::trace::gen::markov::{MarkovBranches, MarkovParams};
use exynos::trace::SlicePlan;
use exynos::{FaultPlan, SimError};

fn main() {
    println!("== chaos injection across generations (seed 0xC0FFEE) ==");
    for (i, cfg) in CoreConfig::all_generations().into_iter().enumerate() {
        let name = cfg.gen;
        let mut sim = SimBuilder::config(cfg).build().unwrap();
        sim.attach_fault_injector(FaultPlan::chaos(0xC0FFEE + i as u64));
        let mut gen = MarkovBranches::new(&MarkovParams::default(), 90, 7 + i as u64);
        match sim.run_slice(&mut gen, SlicePlan::new(2_000, 40_000)) {
            Ok(r) => {
                let s = sim.stats();
                let f = sim.fault_stats().unwrap_or_default();
                println!(
                    "{name}: Ok  ipc {:.2}  mpki {:.1}  faults {} (malformed {}, \
                     corruptions detected {}, watchdog events {})",
                    r.ipc,
                    r.mpki,
                    f.total(),
                    s.malformed_insts,
                    s.predictor_corruptions,
                    s.watchdog_events
                );
            }
            Err(e) => println!("{name}: typed error — {e}"),
        }
    }

    println!("\n== forced retirement wedge (watchdog demonstration) ==");
    let mut plan = FaultPlan::none();
    plan.stall_every = 50;
    plan.stall_cycles = 80_000;
    let mut sim = SimBuilder::config(CoreConfig::m5()).build().unwrap();
    sim.attach_fault_injector(plan);
    let mut gen = MarkovBranches::new(&MarkovParams::default(), 91, 11);
    match sim.run_slice(&mut gen, SlicePlan::new(0, 10_000)) {
        Ok(_) => println!("unexpected: wedge survived"),
        Err(SimError::ForwardProgressStall { cycle, stalled_cycles, recoveries, snapshot }) => {
            println!("watchdog tripped at cycle {cycle} after {stalled_cycles} stalled cycles");
            println!("degradation ladder spent: {recoveries} recoveries");
            println!("occupancy at stall: {snapshot}");
        }
        Err(e) => println!("unexpected error class: {e}"),
    }

    println!("\n== determinism: same seed, same outcome ==");
    let fingerprint = |seed: u64| {
        let mut sim = SimBuilder::config(CoreConfig::m4()).build().unwrap();
        sim.attach_fault_injector(FaultPlan::chaos(seed));
        let mut gen = MarkovBranches::new(&MarkovParams::default(), 92, 13);
        let r = sim.run_slice(&mut gen, SlicePlan::new(1_000, 20_000));
        let f = sim.fault_stats().unwrap_or_default();
        (r.map(|r| r.cycles).map_err(|e| e.to_string()), f.total())
    };
    let (a, b, c) = (fingerprint(42), fingerprint(42), fingerprint(43));
    println!("seed 42 run 1: {a:?}");
    println!("seed 42 run 2: {b:?}  (identical: {})", a == b);
    println!("seed 43      : {c:?}  (differs:   {})", a != c);
}
