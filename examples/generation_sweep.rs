//! Generation sweep: the paper's headline experiment in miniature — run a
//! cross-section of the workload suite on all six generations and print
//! the per-generation IPC / MPKI / load-latency trend (Figs. 9, 16, 17).
//!
//! ```text
//! cargo run --release --example generation_sweep
//! ```

use exynos::core::builder::SimBuilder;
use exynos::core::config::CoreConfig;
use exynos::core::sim::Simulator;
use exynos::trace::{standard_suite, SlicePlan};

fn main() {
    let suite = standard_suite(1);
    let slices: Vec<_> = suite.iter().take(16).collect();
    println!(
        "{} slices x 6 generations (warmup 4k, detail 25k each)\n",
        slices.len()
    );
    println!("{:<4} {:>8} {:>8} {:>10}", "gen", "IPC", "MPKI", "load lat");
    let mut first_ipc = None;
    for cfg in CoreConfig::all_generations() {
        let mut ipc = 0.0;
        let mut mpki = 0.0;
        let mut lat = 0.0;
        for slice in &slices {
            let mut sim = SimBuilder::config(cfg.clone()).build().unwrap();
            let mut gen = slice.build().unwrap();
            let r = sim.run_slice(&mut *gen, SlicePlan::new(4_000, 25_000)).expect("clean example slice");
            ipc += r.ipc;
            mpki += r.mpki;
            lat += r.avg_load_latency;
        }
        let n = slices.len() as f64;
        let (ipc, mpki, lat) = (ipc / n, mpki / n, lat / n);
        first_ipc.get_or_insert(ipc);
        println!(
            "{:<4} {:>8.2} {:>8.2} {:>10.1}   ({:+.0}% IPC vs M1)",
            cfg.gen,
            ipc,
            mpki,
            lat,
            100.0 * (ipc / first_ipc.unwrap() - 1.0)
        );
    }
    println!("\nPaper (Table IV / §XI): IPC 1.06 -> 2.71, load latency 14.9 -> 8.3.");
    println!("Absolute values differ (synthetic traces, simpler substrate); the");
    println!("monotone improvement across generations is the reproduced result.");
}
