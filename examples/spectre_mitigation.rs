//! Spectre-v2 mitigation demo (§V): cross-training and replay attacks
//! against a shared indirect predictor, with and without CONTEXT_HASH
//! target encryption.
//!
//! ```text
//! cargo run --release --example spectre_mitigation
//! ```

use exynos::secure::attack::{
    cross_training_rate, cross_training_trial, replay_trial, SharedIndirectTable,
};
use exynos::secure::context::EntropySources;

fn main() {
    println!("=== Cross-training attack (attacker trains, victim predicts) ===\n");
    let sources = EntropySources::from_seed(0xC0FFEE);
    for encrypt in [false, true] {
        let mut table = SharedIndirectTable::new(256, encrypt);
        let out = cross_training_trial(
            &mut table,
            &sources,
            /*attacker asid*/ 66,
            /*victim asid*/ 7,
            /*branch pc*/ 0x4000_1000,
            /*gadget*/ 0xBAD0_0040,
        );
        println!(
            "encryption {:>3}: victim speculatively fetches {:#x} -> {}",
            if encrypt { "ON" } else { "OFF" },
            out.speculative_target.unwrap_or(0),
            if out.hijacked {
                "HIJACKED (gadget reached)"
            } else {
                "harmless garbage address (mispredict recovery)"
            }
        );
    }

    println!("\n=== Hijack rate over 128 attacker/victim pairs ===\n");
    for encrypt in [false, true] {
        let (hijacks, trials) = cross_training_rate(encrypt, 128);
        println!(
            "encryption {:>3}: {hijacks}/{trials} hijacks",
            if encrypt { "ON" } else { "OFF" }
        );
    }

    println!("\n=== Replay attack across an OS re-keying (SCXTNUM rotation) ===\n");
    let old = EntropySources::from_seed(1);
    let new = EntropySources::from_seed(2);
    let mut table = SharedIndirectTable::new(256, true);
    let out = replay_trial(&mut table, &old, &new, 7, 7, 0x4000_2000, 0xBAD0_0080);
    println!(
        "replayed stale ciphertext decodes to {:#x}: {}",
        out.speculative_target.unwrap_or(0),
        if out.hijacked { "HIJACKED" } else { "defeated" }
    );
}
