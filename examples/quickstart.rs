//! Quickstart: simulate one workload on one generation and print the
//! headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use exynos::core::builder::SimBuilder;
use exynos::core::config::CoreConfig;
use exynos::core::sim::Simulator;
use exynos::trace::gen::loops::{LoopNest, LoopNestParams};
use exynos::trace::SlicePlan;

fn main() {
    // An M5 core (7nm generation: ZAT/ZOT front end, UOC, standalone
    // prefetcher, speculative DRAM reads).
    let mut sim = SimBuilder::config(CoreConfig::m5()).build().unwrap();

    // A small, predictable loop kernel — the kind of code the µBTB locks
    // onto and the UOC then supplies without the instruction cache.
    let mut workload = LoopNest::new(&LoopNestParams::default(), /*region=*/ 0, /*seed=*/ 1);

    let result = sim.run_slice(&mut workload, SlicePlan::new(10_000, 100_000)).expect("clean example slice");

    println!("=== Exynos M5, loop-nest kernel ===");
    println!("instructions     : {}", result.instructions);
    println!("cycles           : {}", result.cycles);
    println!("IPC              : {:.2}", result.ipc);
    println!("MPKI             : {:.2}", result.mpki);
    println!("avg load latency : {:.1} cycles", result.avg_load_latency);
    println!();
    println!("front end:");
    println!("  taken branches         : {}", result.frontend.taken_branches);
    println!("  µBTB zero-bubble       : {}", result.frontend.ubtb_zero_bubble);
    println!("  ZAT/ZOT zero-bubble    : {}", result.frontend.zat_zot_zero_bubble);
    println!("  SHP lookups (gated)    : {}", result.frontend.shp_lookups);
    println!("µop cache:");
    println!("  µops supplied by UOC   : {}", sim.stats().uoc_supplied);
    println!("memory:");
    println!("  L1 hit rate            : {:.1}%", 100.0 * result.mem.l1_hits as f64 / result.mem.loads.max(1) as f64);
    println!("  L1 prefetch fills      : {}", result.mem.l1_prefetch_fills);
}
