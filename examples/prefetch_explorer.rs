//! Prefetch explorer: watch the §VII/§VIII engines work on their home
//! workloads — the multi-stride engine locking the paper's `+2×2, +5×1`
//! pattern, the SMS engine learning region signatures, the two-pass
//! controller switching modes, and the standalone prefetcher's adaptive
//! confidence.
//!
//! ```text
//! cargo run --release --example prefetch_explorer
//! ```

use exynos::core::builder::SimBuilder;
use exynos::core::config::CoreConfig;
use exynos::core::sim::Simulator;
use exynos::trace::gen::pointer_chase::{PointerChase, PointerChaseParams};
use exynos::trace::gen::spatial::{SpatialParams, SpatialRegions};
use exynos::trace::gen::streaming::{MultiStride, MultiStrideParams, StrideComponent};
use exynos::trace::SlicePlan;

fn main() {
    println!("=== Multi-stride engine on the paper's +2x2,+5x1 stream (M3) ===\n");
    let mut sim = SimBuilder::config(CoreConfig::m3()).build().unwrap();
    let mut gen = MultiStride::new(&MultiStrideParams::default(), 0, 1);
    let r = sim.run_slice(&mut gen, SlicePlan::new(5_000, 50_000)).expect("clean example slice");
    let st = sim.memsys().l1_prefetcher().stride_stats();
    println!("pattern locks    : {}", st.locks);
    println!("prefetches issued: {}", st.issued);
    println!("confirmations    : {}", st.confirms);
    println!("skip-aheads      : {}", st.skip_aheads);
    println!("two-pass         : {:?}", sim.memsys().twopass().stats());
    println!("L1 hit rate      : {:.1}%  avg load latency {:.1}",
        100.0 * r.mem.l1_hits as f64 / r.mem.loads.max(1) as f64,
        r.avg_load_latency);

    println!("\n=== SMS engine on irregular region signatures (M3) ===\n");
    let mut sim = SimBuilder::config(CoreConfig::m3()).build().unwrap();
    let mut gen = SpatialRegions::new(&SpatialParams::default(), 1, 2);
    let r = sim.run_slice(&mut gen, SlicePlan::new(10_000, 50_000)).expect("clean example slice");
    let sms = sim.memsys().l1_prefetcher().sms_stats();
    println!("region generations: {}", sms.generations);
    println!("L1 prefetches     : {}", sms.l1_prefetches);
    println!("L2-only (low-conf): {}", sms.l2_prefetches);
    println!("stride-suppressed : {}", sms.suppressed);
    println!("L1 hit rate       : {:.1}%  avg load latency {:.1}",
        100.0 * r.mem.l1_hits as f64 / r.mem.loads.max(1) as f64,
        r.avg_load_latency);

    println!("\n=== M1 (stride only) vs M3 (+SMS) on the same spatial workload ===\n");
    for cfg in [CoreConfig::m1(), CoreConfig::m3()] {
        let name = cfg.gen;
        let mut sim = SimBuilder::config(cfg).build().unwrap();
        let mut gen = SpatialRegions::new(&SpatialParams::default(), 1, 2);
        let r = sim.run_slice(&mut gen, SlicePlan::new(10_000, 50_000)).expect("clean example slice");
        println!(
            "{name}: IPC {:.2}, avg load latency {:.1} cycles",
            r.ipc, r.avg_load_latency
        );
    }

    println!("\n=== Standalone L2/L3 prefetcher on a unit-stride stream (M5) ===\n");
    let mut sim = SimBuilder::config(CoreConfig::m5()).build().unwrap();
    let mut gen = MultiStride::new(
        &MultiStrideParams {
            components: vec![StrideComponent { stride: 1, repeat: 1 }],
            working_set: 256 << 20,
            ..Default::default()
        },
        2,
        3,
    );
    let _ = sim.run_slice(&mut gen, SlicePlan::new(5_000, 50_000));
    println!("standalone: {:?}", sim.memsys().standalone_stats());

    println!("\n=== Speculative DRAM reads on a cache-hostile pointer chase (M5) ===\n");
    let mut sim = SimBuilder::config(CoreConfig::m5()).build().unwrap();
    let mut gen = PointerChase::new(
        &PointerChaseParams {
            working_set: 64 << 20,
            chains: 4,
            ..Default::default()
        },
        3,
        4,
    );
    let r = sim.run_slice(&mut gen, SlicePlan::new(5_000, 50_000)).expect("clean example slice");
    println!("spec reads: {:?}", sim.memsys().spec_stats());
    println!("dram      : {:?}", sim.memsys().dram_stats());
    println!("avg load latency {:.1} cycles", r.avg_load_latency);
}
