//! # exynos — a reproduction of the Samsung Exynos M1–M6 microarchitecture
//!
//! This crate is the facade over a workspace that reproduces, as a
//! trace-driven simulator library, the systems described in *Evolution of
//! the Samsung Exynos CPU Microarchitecture* (ISCA 2020, Industry Track):
//!
//! * [`trace`] — the instruction/trace model and the synthetic workload
//!   population standing in for the paper's 4,026 proprietary slices;
//! * [`asm`] — the `exynos-asm` frontend: a two-pass assembler and
//!   functional executor turning small ARM-ish programs into trace
//!   streams behind the same [`trace::TraceSource`] API the synthetic
//!   generators use (`harness asm` inspects a program; the embedded
//!   corpus under `asm/` joins the catalog as `program/*` slices);
//! * [`branch`] — the SHP/µBTB/mBTB/vBTB/L2BTB/VPC/MRB prediction stack
//!   (§IV) with per-generation configurations;
//! * [`secure`] — CONTEXT_HASH target encryption and the Spectre-v2
//!   attack harness (§V);
//! * [`uoc`] — the M5 micro-operation cache (§VI);
//! * [`mem`] — caches (sectored L2 tags, reuse metadata), TLBs and miss
//!   buffers (§III, §VIII);
//! * [`prefetch`] — multi-stride, SMS, Buddy and standalone prefetch
//!   engines with dynamic degree and one/two-pass delivery (§VII–§VIII);
//! * [`dram`] — DRAM banks, domain crossings, the data fast path,
//!   speculative reads and early page activate (§IX);
//! * [`core`] — the composed out-of-order core model and slice runner;
//! * [`telemetry`] — the metrics registry, epoch time-series and pipeline
//!   event trace behind `Simulator::run_slice_with` and the harness's
//!   `metrics`/`trace` subcommands (compiles to no-ops without the
//!   `telemetry` feature);
//! * [`service`] — the resilient sweep-as-a-service job tier behind
//!   `harness serve`: deadlines, retry/backoff, backpressure, circuit
//!   breaking and write-ahead-journal crash recovery (see DESIGN.md,
//!   "Service tier & failure model").
//!
//! ## Quickstart
//!
//! ```
//! use exynos::core::builder::SimBuilder;
//! use exynos::core::config::Generation;
//! use exynos::trace::gen::loops::{LoopNest, LoopNestParams};
//! use exynos::trace::SlicePlan;
//!
//! let mut sim = SimBuilder::generation(Generation::M5).build().unwrap();
//! let mut workload = LoopNest::new(&LoopNestParams::default(), 0, 1);
//! let result = sim
//!     .run_slice(&mut workload, SlicePlan::new(2_000, 10_000))
//!     .expect("clean trace, no injected faults");
//! println!("IPC {:.2}, MPKI {:.2}", result.ipc, result.mpki);
//! # assert!(result.ipc > 0.5);
//! ```

#![warn(missing_docs)]

pub use exynos_asm as asm;
pub use exynos_branch as branch;
pub use exynos_core as core;
pub use exynos_dram as dram;
pub use exynos_mem as mem;
pub use exynos_prefetch as prefetch;
pub use exynos_secure as secure;
pub use exynos_service as service;
pub use exynos_telemetry as telemetry;
pub use exynos_trace as trace;
pub use exynos_uoc as uoc;

pub use exynos_core::{
    CoreConfig, FaultPlan, Generation, OccupancySnapshot, SimError, SliceResult, Simulator,
};
pub use exynos_trace::{standard_suite, SlicePlan};
