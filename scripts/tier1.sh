#!/usr/bin/env bash
# Tier-1 verification gate. Everything here must pass before a PR lands.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q

# Panic-site gate: library and binary code must propagate typed errors
# (SimError / PredictorError / UocError) instead of unwrapping. Tests,
# examples and benches are exempt (no --all-targets) — unwrap there is a
# legitimate assertion that the simulated trace is clean. The perf lint
# group guards the step-loop optimizations (needless clones/allocations
# creeping back into hot paths) at warn level.
cargo clippy --workspace -- -D clippy::unwrap_used -D clippy::expect_used -W clippy::perf

# Telemetry no-op guard: with the feature off, the whole stack must still
# build and the Telemetry handle must compile down to a ZST (asserted by
# the crate's noop tests).
cargo build --release -p exynos-bench --no-default-features
cargo test -q -p exynos-telemetry --no-default-features

# Telemetry smoke: the instrumented quick run must emit schema-valid
# JSONL covering the whole machine (>= 12 metrics from >= 5 crates).
cargo run --release -q -p exynos-bench --bin harness -- metrics --quick 2>/dev/null \
  | python3 scripts/check_telemetry_schema.py

# Bench smoke: the quick-mode reference sweep must run end to end and
# leave a well-formed BENCH_sweep.json at the repo root. The warm-start
# keys assert the checkpoint-forked sweep reproduced the cold results.
cargo run --release -q -p exynos-bench --bin harness -- bench --quick
test -s BENCH_sweep.json
if command -v jq >/dev/null 2>&1; then
  jq -e '.schema and .serial.steps_per_sec > 0 and .parallel.steps_per_sec > 0 and .bit_identical == true' BENCH_sweep.json >/dev/null
  jq -e '.warm.pool_build_s > 0 and .warm.parallel_steps_per_sec > 0 and .warm_equals_cold == true' BENCH_sweep.json >/dev/null
else
  python3 -m json.tool BENCH_sweep.json >/dev/null
fi

# Checkpoint round-trip smoke: a resume from an on-disk image must emit
# byte-identical telemetry to the run that wrote it.
CKPT_DIR="$(mktemp -d)"
trap 'rm -rf "$CKPT_DIR"' EXIT
cargo run --release -q -p exynos-bench --bin harness -- checkpoint "$CKPT_DIR/warm.ckpt" --quick 2>/dev/null > "$CKPT_DIR/a.jsonl"
cargo run --release -q -p exynos-bench --bin harness -- resume "$CKPT_DIR/warm.ckpt" --quick 2>/dev/null > "$CKPT_DIR/b.jsonl"
test -s "$CKPT_DIR/a.jsonl"
cmp "$CKPT_DIR/a.jsonl" "$CKPT_DIR/b.jsonl"

# Format-version gate: the snapshot wire version and the documented one
# must move together (bump both or neither).
CODE_VER="$(sed -n 's/^pub const FORMAT_VERSION: u16 = \([0-9]*\);$/\1/p' crates/snapshot/src/lib.rs)"
test -n "$CODE_VER"
grep -q "format version: $CODE_VER" DESIGN.md
