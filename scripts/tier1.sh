#!/usr/bin/env bash
# Tier-1 verification gate. Everything here must pass before a PR lands.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q

# Panic-site gate: library and binary code must propagate typed errors
# (SimError / PredictorError / UocError) instead of unwrapping. Tests,
# examples and benches are exempt (no --all-targets) — unwrap there is a
# legitimate assertion that the simulated trace is clean.
cargo clippy --workspace -- -D clippy::unwrap_used -D clippy::expect_used
