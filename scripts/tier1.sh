#!/usr/bin/env bash
# Tier-1 verification gate. Everything here must pass before a PR lands.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q

# Panic-site gate: library and binary code must propagate typed errors
# (SimError / PredictorError / UocError) instead of unwrapping. Tests,
# examples and benches are exempt (no --all-targets) — unwrap there is a
# legitimate assertion that the simulated trace is clean. The perf lint
# group guards the step-loop optimizations (needless clones/allocations
# creeping back into hot paths) at warn level.
cargo clippy --workspace -- -D clippy::unwrap_used -D clippy::expect_used -W clippy::perf

# Telemetry no-op guard: with the feature off, the whole stack must still
# build and the Telemetry handle must compile down to a ZST (asserted by
# the crate's noop tests).
cargo build --release -p exynos-bench --no-default-features
cargo test -q -p exynos-telemetry --no-default-features

# Telemetry smoke: the instrumented quick run must emit schema-valid
# JSONL covering the whole machine (>= 12 metrics from >= 5 crates).
cargo run --release -q -p exynos-bench --bin harness -- metrics --quick 2>/dev/null \
  | python3 scripts/check_telemetry_schema.py

# Bench smoke: the quick-mode reference sweep must run end to end and
# leave a well-formed BENCH_sweep.json at the repo root. The warm-start
# keys assert the checkpoint-forked sweep reproduced the cold results.
cargo run --release -q -p exynos-bench --bin harness -- bench --quick
test -s BENCH_sweep.json
if command -v jq >/dev/null 2>&1; then
  jq -e '.schema and .serial.steps_per_sec > 0 and .parallel.steps_per_sec > 0 and .bit_identical == true' BENCH_sweep.json >/dev/null
  jq -e '.warm.pool_build_s > 0 and .warm.parallel_steps_per_sec > 0 and .warm_equals_cold == true' BENCH_sweep.json >/dev/null
  # The warm rate must be computed over post-resume stepping only (the
  # prep split is recorded alongside it), and the batched lockstep
  # engine must beat the scalar serial baseline while staying
  # bit-identical (asserted by .bit_identical above, which covers it).
  jq -e '.warm.stepped_insts > 0 and .warm.parallel_stepping_s > 0' BENCH_sweep.json >/dev/null
  jq -e '.batched.steps_per_sec > 0 and .batched.width >= 2 and .batched_speedup >= 1.0' BENCH_sweep.json >/dev/null
  # The resident cached+pipelined warm sweep must not lose to the
  # legacy image-decode warm sweep at the same thread count (reps after
  # the first run from resident chunks, so min-of-N measures the warm
  # steady state), and the cache must actually have been exercised.
  jq -e '.pipelined_speedup >= 1.0' BENCH_sweep.json >/dev/null
  jq -e '.chunk_cache.hits > 0 and .chunk_cache.misses > 0 and (.chunk_cache | has("evictions") and has("bytes"))' BENCH_sweep.json >/dev/null
  # The comparison pass must record its mode honestly: a host without
  # real parallelism runs (and labels) a serial fallback.
  jq -e '(.mode == "parallel" and .threads > 1) or (.mode == "serial-fallback" and .threads == 1)' BENCH_sweep.json >/dev/null
else
  python3 -m json.tool BENCH_sweep.json >/dev/null
fi

# Checkpoint round-trip smoke: a resume from an on-disk image must emit
# byte-identical telemetry to the run that wrote it.
CKPT_DIR="$(mktemp -d)"
SVC_DIR="$(mktemp -d)"
SERVER_PID=0
# (kill -9 0 would signal the whole process group, so guard the pid.)
trap 'if [ "$SERVER_PID" != 0 ]; then kill -9 "$SERVER_PID" 2>/dev/null || true; fi; rm -rf "$CKPT_DIR" "$SVC_DIR"' EXIT
cargo run --release -q -p exynos-bench --bin harness -- checkpoint "$CKPT_DIR/warm.ckpt" --quick 2>/dev/null > "$CKPT_DIR/a.jsonl"
cargo run --release -q -p exynos-bench --bin harness -- resume "$CKPT_DIR/warm.ckpt" --quick 2>/dev/null > "$CKPT_DIR/b.jsonl"
test -s "$CKPT_DIR/a.jsonl"
cmp "$CKPT_DIR/a.jsonl" "$CKPT_DIR/b.jsonl"

# Service smoke: start the resilient job tier, run a job through the
# wire protocol, kill -9 the server mid-job, restart it on the same
# journal, and verify the recovered result is byte-identical to an
# uninterrupted run of the same spec. Then shut down gracefully.
HARNESS=target/release/harness
SOCK="$SVC_DIR/svc.sock"
WAL="$SVC_DIR/jobs.wal"

svc_call() { "$HARNESS" call "$1" --socket "$SOCK"; }
svc_field() { python3 -c "import json,sys; print(json.load(sys.stdin)[\"$1\"])"; }

svc_wait_up() {
  for _ in $(seq 1 100); do
    if svc_call '{"cmd":"ping"}' >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "tier1: service did not come up on $SOCK" >&2
  return 1
}

svc_wait_terminal() { # job id, timeout seconds
  local id="$1" tries=$(( $2 * 10 )) state=""
  for _ in $(seq 1 "$tries"); do
    state="$(svc_call "{\"cmd\":\"status\",\"id\":$id}" | svc_field state)"
    case "$state" in completed|failed) echo "$state"; return 0 ;; esac
    sleep 0.1
  done
  echo "tier1: job $id hung (last state: $state)" >&2
  return 1
}

"$HARNESS" serve --socket "$SOCK" --journal "$WAL" --workers 2 --queue 8 \
  2>"$SVC_DIR/server_a.log" &
SERVER_PID=$!
svc_wait_up

# A quick job end to end over the socket.
QUICK_ID="$(svc_call '{"cmd":"submit","job":{"kind":"checkpoint","gen":"m6","warmup":2000}}' | svc_field id)"
test "$(svc_wait_terminal "$QUICK_ID" 60)" = completed

# A longer sweep, then kill -9 mid-job. (If the job wins the race and
# completes first, the restart serves the journaled result — the
# byte-identity check below holds either way.)
SWEEP_JOB='{"cmd":"submit","job":{"kind":"sweep","scale":1,"warmup":20000,"detail":10000,"threads":1}}'
VICTIM_ID="$(svc_call "$SWEEP_JOB" | svc_field id)"
sleep 0.4
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true

# Restart on the same journal: the victim job must finish and match a
# fresh, uninterrupted run of the identical spec byte for byte.
"$HARNESS" serve --socket "$SOCK" --journal "$WAL" --workers 2 --queue 8 \
  2>"$SVC_DIR/server_b.log" &
SERVER_PID=$!
svc_wait_up
test "$(svc_wait_terminal "$VICTIM_ID" 120)" = completed
svc_call "{\"cmd\":\"result\",\"id\":$VICTIM_ID}" | svc_field payload > "$SVC_DIR/recovered.json"
FRESH_ID="$(svc_call "$SWEEP_JOB" | svc_field id)"
test "$(svc_wait_terminal "$FRESH_ID" 120)" = completed
svc_call "{\"cmd\":\"result\",\"id\":$FRESH_ID}" | svc_field payload > "$SVC_DIR/fresh.json"
test -s "$SVC_DIR/recovered.json"
cmp "$SVC_DIR/recovered.json" "$SVC_DIR/fresh.json"

# Observability smoke: the served sweep must expose a schema-valid span
# tree reaching from queue_wait to result_encode, the per-stage latency
# quantiles must carry a non-empty p99 for job_total, and the Prometheus
# rendering must cover the queue gauges and latency summaries.
"$HARNESS" spans "$FRESH_ID" --socket "$SOCK" > "$SVC_DIR/spans.jsonl"
test -s "$SVC_DIR/spans.jsonl"
python3 scripts/check_telemetry_schema.py --spans "$SVC_DIR/spans.jsonl"
for stage in queue_wait 'attempt\[1\]' warm_pool_fetch 'slice\[0\]' result_encode; do
  grep -q "\"name\":\"$stage\"" "$SVC_DIR/spans.jsonl"
done
svc_call '{"cmd":"quantiles"}' > "$SVC_DIR/quantiles.json"
python3 - "$SVC_DIR/quantiles.json" <<'PY'
import json, sys
q = json.load(open(sys.argv[1]))["quantiles"]
jt = q["service.latency.job_total"]
assert jt["count"] >= 1, f"job_total unobserved: {jt}"
assert jt["p99"] > 0, f"empty p99 for job_total: {jt}"
assert jt["p50"] <= jt["p90"] <= jt["p99"], f"quantiles out of order: {jt}"
for stage in ("queue_wait", "attempt", "slice", "result_encode"):
    assert q[f"service.latency.{stage}"]["count"] >= 1, f"{stage} unobserved"
PY
# Chunk-cache smoke: the same program job twice through the running
# server — the second run must be served from the shared chunk cache,
# and the cache counters must reach the Prometheus exposition.
PROG_JOB='{"cmd":"submit","job":{"kind":"program","program":"nested_loops","warmup":2000,"detail":6000}}'
P1_ID="$(svc_call "$PROG_JOB" | svc_field id)"
test "$(svc_wait_terminal "$P1_ID" 120)" = completed
P2_ID="$(svc_call "$PROG_JOB" | svc_field id)"
test "$(svc_wait_terminal "$P2_ID" 120)" = completed
svc_call "{\"cmd\":\"result\",\"id\":$P1_ID}" | svc_field payload > "$SVC_DIR/prog1.json"
svc_call "{\"cmd\":\"result\",\"id\":$P2_ID}" | svc_field payload > "$SVC_DIR/prog2.json"
cmp "$SVC_DIR/prog1.json" "$SVC_DIR/prog2.json"

"$HARNESS" call metrics --prom --socket "$SOCK" > "$SVC_DIR/metrics.prom"
grep -q '^service_queue_depth ' "$SVC_DIR/metrics.prom"
grep -q '^service_queue_shed_total ' "$SVC_DIR/metrics.prom"
grep -q 'service_latency_job_total{quantile="0.99"}' "$SVC_DIR/metrics.prom"
python3 scripts/check_telemetry_schema.py --prom "$SVC_DIR/metrics.prom"
# The repeated program job above must have produced cache hits.
HITS="$(awk '$1 == "chunk_cache_hit_total" { print $2 }' "$SVC_DIR/metrics.prom")"
test -n "$HITS" && test "$HITS" -gt 0
svc_call '{"cmd":"postmortem"}' >/dev/null

# Graceful shutdown drains and removes the socket.
svc_call '{"cmd":"shutdown"}' >/dev/null
wait "$SERVER_PID"
SERVER_PID=0
test ! -e "$SOCK"

# Assembler smoke: every embedded corpus program must assemble and
# disassemble cleanly, and one program slice must run end to end through
# the lockstep batch across all six generations.
ASM_DIR="$(mktemp -d)"
for prog in nested_loops fib_recursive computed_goto pointer_chase \
            stride_copy parity_history call_tree matrix; do
  "$HARNESS" asm "$prog" > "$ASM_DIR/$prog.dis"
  test -s "$ASM_DIR/$prog.dis"
done
"$HARNESS" run --program fib_recursive --quick > "$ASM_DIR/run.txt"
for gen in M1 M2 M3 M4 M5 M6; do
  grep -q "^$gen " "$ASM_DIR/run.txt"
done

# A malformed program must surface as a typed diagnostic with exit
# status 2 — a usage error, never a panic.
printf 'main:\n    ldr x1\n' > "$ASM_DIR/bad.s"
set +e
"$HARNESS" asm "$ASM_DIR/bad.s" > "$ASM_DIR/bad.out" 2> "$ASM_DIR/bad.err"
RC=$?
set -e
test "$RC" -eq 2
grep -q 'asm error' "$ASM_DIR/bad.err"
! grep -q 'panicked' "$ASM_DIR/bad.err"
rm -rf "$ASM_DIR"

# Format-version gate: the snapshot wire version and the documented one
# must move together (bump both or neither).
CODE_VER="$(sed -n 's/^pub const FORMAT_VERSION: u16 = \([0-9]*\);$/\1/p' crates/snapshot/src/lib.rs)"
test -n "$CODE_VER"
grep -q "format version: $CODE_VER" DESIGN.md
