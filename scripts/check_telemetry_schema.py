#!/usr/bin/env python3
"""Validate the JSON Lines stream emitted by `harness -- metrics`.

Reads JSONL from the file given as argv[1] (or stdin) and enforces the
telemetry schema plus the PR's acceptance floor:

* every line is a JSON object with "type" in {"epoch", "histogram"};
* epoch lines carry integer epoch/instructions/cycle (both monotone
  non-decreasing) and a flat metrics object of numbers or nulls;
* histogram lines carry count/sum/max/mean/p50/p99 and aligned
  buckets/bounds arrays;
* across the stream, >= 12 distinct metric names drawn from >= 5 distinct
  top-level components (crates).

Exits 0 on success, 1 with a diagnostic on the first violation.
"""

import json
import sys

MIN_METRICS = 12
MIN_CRATES = 5


def fail(lineno, msg):
    print(f"check_telemetry_schema: line {lineno}: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    stream = open(sys.argv[1]) if len(sys.argv) > 1 else sys.stdin
    metric_names = set()
    epochs = 0
    histograms = 0
    prev_epoch = -1
    prev_instructions = -1
    prev_cycle = -1
    for lineno, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            fail(lineno, f"invalid JSON: {e}")
        if not isinstance(rec, dict):
            fail(lineno, "record is not an object")
        kind = rec.get("type")
        if kind == "epoch":
            epochs += 1
            for key in ("epoch", "instructions", "cycle"):
                if not isinstance(rec.get(key), int):
                    fail(lineno, f"epoch record missing integer '{key}'")
            if rec["epoch"] <= prev_epoch:
                fail(lineno, f"epoch {rec['epoch']} not increasing")
            if rec["instructions"] < prev_instructions:
                fail(lineno, "instructions went backwards")
            if rec["cycle"] < prev_cycle:
                fail(lineno, "cycle went backwards")
            prev_epoch = rec["epoch"]
            prev_instructions = rec["instructions"]
            prev_cycle = rec["cycle"]
            metrics = rec.get("metrics")
            if not isinstance(metrics, dict) or not metrics:
                fail(lineno, "epoch record has no metrics object")
            for name, value in metrics.items():
                if "." not in name:
                    fail(lineno, f"metric '{name}' has no component path")
                if value is not None and not isinstance(value, (int, float)):
                    fail(lineno, f"metric '{name}' is not numeric or null")
                metric_names.add(name)
        elif kind == "histogram":
            histograms += 1
            if not isinstance(rec.get("metric"), str):
                fail(lineno, "histogram record missing 'metric'")
            for key in ("count", "sum", "max", "mean", "p50", "p99"):
                if not isinstance(rec.get(key), (int, float)):
                    fail(lineno, f"histogram missing numeric '{key}'")
            buckets = rec.get("buckets")
            bounds = rec.get("bounds")
            if not isinstance(buckets, list) or not isinstance(bounds, list):
                fail(lineno, "histogram missing buckets/bounds arrays")
            if len(buckets) != len(bounds) + 1:
                fail(lineno, "buckets must have one more entry than bounds (overflow)")
        else:
            fail(lineno, f"unknown record type {kind!r}")
    if epochs == 0:
        fail(0, "stream contained no epoch records")
    if len(metric_names) < MIN_METRICS:
        fail(0, f"only {len(metric_names)} distinct metrics (need >= {MIN_METRICS})")
    crates = {name.split(".", 1)[0] for name in metric_names}
    if len(crates) < MIN_CRATES:
        fail(0, f"metrics span only {sorted(crates)} (need >= {MIN_CRATES} crates)")
    print(
        f"check_telemetry_schema: OK — {epochs} epochs, {histograms} histograms, "
        f"{len(metric_names)} metrics across {len(crates)} crates {sorted(crates)}"
    )


if __name__ == "__main__":
    main()
