#!/usr/bin/env python3
"""Validate the JSON Lines streams emitted by the telemetry layer.

Default mode reads `harness -- metrics` output from the file given as
argv[1] (or stdin) and enforces the telemetry schema plus the PR's
acceptance floor:

* every line is a JSON object with "type" in {"epoch", "histogram"};
* epoch lines carry integer epoch/instructions/cycle (both monotone
  non-decreasing) and a flat metrics object of numbers or nulls;
* histogram lines carry count/sum/max/mean/p50/p99 and aligned
  buckets/bounds arrays;
* across the stream, >= 12 distinct metric names drawn from >= 5 distinct
  top-level components (crates).

`--spans` validates a span-tree JSONL stream (`harness -- spans ID` /
the `trace-job` protocol command):

* every line is `{"type":"span", ...}` with integer id/start_us, a
  parent id that is null or refers to an earlier span, end_us/dur_us
  both null (open) or both integers with dur_us == end_us - start_us,
  and an attrs object;
* span ids are unique and the stream contains exactly one root.

`--prom` validates a Prometheus text exposition (the `metrics --prom`
protocol command):

* every non-comment line is `name[{labels}] value` with a numeric value
  and a name declared by a preceding `# TYPE` comment;
* the chunk-cache instrumentation is present: `chunk_cache_hit_total`,
  `chunk_cache_miss_total` and `chunk_cache_eviction_total` counters,
  the `chunk_cache_bytes` gauge, and the `pipeline_stall` summary with
  its `_sum`/`_count` series.

`--postmortem` validates a flight-recorder dump (`harness -- serve
--postmortem-dir`, the `postmortem` protocol command):

* the first line is `{"type":"postmortem", ...}` carrying reason/seq/
  lines/dropped, with "lines" matching the body length;
* every body line is a JSON object with a "type" of "span" or "event";
* event lines carry an integer t_us and a string event name (workers
  stamp t_us before enqueueing, so cross-thread order is not checked).

Exits 0 on success, 1 with a diagnostic on the first violation.
"""

import json
import sys

MIN_METRICS = 12
MIN_CRATES = 5


def fail(lineno, msg):
    print(f"check_telemetry_schema: line {lineno}: {msg}", file=sys.stderr)
    sys.exit(1)


def parsed_lines(stream):
    for lineno, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            fail(lineno, f"invalid JSON: {e}")
        if not isinstance(rec, dict):
            fail(lineno, "record is not an object")
        yield lineno, rec


def check_span(lineno, rec, seen_ids, roots):
    for key in ("id", "start_us"):
        if not isinstance(rec.get(key), int):
            fail(lineno, f"span record missing integer '{key}'")
    if not isinstance(rec.get("name"), str) or not rec["name"]:
        fail(lineno, "span record missing non-empty 'name'")
    if not isinstance(rec.get("attrs"), dict):
        fail(lineno, "span record missing 'attrs' object")
    sid = rec["id"]
    if sid in seen_ids:
        fail(lineno, f"duplicate span id {sid}")
    parent = rec.get("parent")
    if parent is None:
        roots.append(sid)
    elif not isinstance(parent, int) or parent not in seen_ids:
        fail(lineno, f"span {sid} parent {parent!r} does not refer to an earlier span")
    seen_ids.add(sid)
    end, dur = rec.get("end_us"), rec.get("dur_us")
    if end is None or dur is None:
        if not (end is None and dur is None):
            fail(lineno, f"span {sid} has mismatched open end_us/dur_us")
    else:
        if not isinstance(end, int) or not isinstance(dur, int):
            fail(lineno, f"span {sid} end_us/dur_us are not integers")
        if dur != end - rec["start_us"]:
            fail(lineno, f"span {sid} dur_us {dur} != end_us - start_us")


def check_spans_stream(stream, require_nonempty=True):
    seen_ids, roots = set(), []
    n = 0
    for lineno, rec in parsed_lines(stream):
        if rec.get("type") != "span":
            fail(lineno, f"expected a span record, got type {rec.get('type')!r}")
        check_span(lineno, rec, seen_ids, roots)
        n += 1
    if require_nonempty and n == 0:
        fail(0, "stream contained no span records")
    if n > 0 and len(roots) != 1:
        fail(0, f"expected exactly one root span, found {len(roots)}")
    print(f"check_telemetry_schema: OK — {n} spans, root id {roots[0] if roots else '-'}")


def check_postmortem_stream(stream):
    lines = list(parsed_lines(stream))
    if not lines:
        fail(0, "empty post-mortem dump")
    lineno, header = lines[0]
    if header.get("type") != "postmortem":
        fail(lineno, f"first line must be the postmortem header, got {header.get('type')!r}")
    if not isinstance(header.get("reason"), str) or not header["reason"]:
        fail(lineno, "header missing non-empty 'reason'")
    for key in ("seq", "lines", "dropped"):
        if not isinstance(header.get(key), int):
            fail(lineno, f"header missing integer '{key}'")
    body = lines[1:]
    if header["lines"] != len(body):
        fail(lineno, f"header declares {header['lines']} lines, body has {len(body)}")
    span_ids, roots = set(), []
    spans = events = 0
    for lineno, rec in body:
        kind = rec.get("type")
        if kind == "span":
            # Post-mortem rings interleave spans from many jobs: parent
            # links may point outside the ring, so only check shape.
            for key in ("id", "start_us"):
                if not isinstance(rec.get(key), int):
                    fail(lineno, f"span record missing integer '{key}'")
            if not isinstance(rec.get("name"), str) or not rec["name"]:
                fail(lineno, "span record missing non-empty 'name'")
            spans += 1
            span_ids.add(rec["id"])
            if rec.get("parent") is None:
                roots.append(rec["id"])
        elif kind == "event":
            if not isinstance(rec.get("t_us"), int):
                fail(lineno, "event record missing integer 't_us'")
            if not isinstance(rec.get("event"), str) or not rec["event"]:
                fail(lineno, "event record missing non-empty 'event'")
            events += 1
        else:
            fail(lineno, f"unknown post-mortem record type {kind!r}")
    print(
        f"check_telemetry_schema: OK — postmortem '{header['reason']}' seq {header['seq']}: "
        f"{events} events, {spans} spans, {header['dropped']} dropped"
    )


PROM_REQUIRED = {
    "chunk_cache_hit_total": "counter",
    "chunk_cache_miss_total": "counter",
    "chunk_cache_eviction_total": "counter",
    "chunk_cache_bytes": "gauge",
    "pipeline_stall": "summary",
}


def check_prom_stream(stream):
    declared = {}
    samples = 0
    for lineno, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                declared[parts[2]] = parts[3]
            continue
        if "{" in line.split()[0]:
            name = line.split("{", 1)[0]
            value = line.rsplit("}", 1)[1].strip()
        else:
            parts = line.split()
            name = parts[0]
            value = parts[1] if len(parts) > 1 else ""
        try:
            float(value)
        except ValueError:
            fail(lineno, f"sample '{name}' has non-numeric value {value!r}")
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix) and base[: -len(suffix)] in declared:
                base = base[: -len(suffix)]
                break
        if base not in declared:
            fail(lineno, f"sample '{name}' has no preceding # TYPE declaration")
        samples += 1
    if samples == 0:
        fail(0, "exposition contained no samples")
    for name, kind in PROM_REQUIRED.items():
        if name not in declared:
            fail(0, f"required metric '{name}' missing from exposition")
        if declared[name] != kind:
            fail(0, f"metric '{name}' declared as {declared[name]!r}, expected {kind!r}")
    print(
        f"check_telemetry_schema: OK — prometheus exposition: {samples} samples, "
        f"{len(declared)} metrics, chunk-cache instrumentation present"
    )


def check_metrics_stream(stream):
    metric_names = set()
    epochs = 0
    histograms = 0
    prev_epoch = -1
    prev_instructions = -1
    prev_cycle = -1
    for lineno, rec in parsed_lines(stream):
        kind = rec.get("type")
        if kind == "epoch":
            epochs += 1
            for key in ("epoch", "instructions", "cycle"):
                if not isinstance(rec.get(key), int):
                    fail(lineno, f"epoch record missing integer '{key}'")
            if rec["epoch"] <= prev_epoch:
                fail(lineno, f"epoch {rec['epoch']} not increasing")
            if rec["instructions"] < prev_instructions:
                fail(lineno, "instructions went backwards")
            if rec["cycle"] < prev_cycle:
                fail(lineno, "cycle went backwards")
            prev_epoch = rec["epoch"]
            prev_instructions = rec["instructions"]
            prev_cycle = rec["cycle"]
            metrics = rec.get("metrics")
            if not isinstance(metrics, dict) or not metrics:
                fail(lineno, "epoch record has no metrics object")
            for name, value in metrics.items():
                if "." not in name:
                    fail(lineno, f"metric '{name}' has no component path")
                if value is not None and not isinstance(value, (int, float)):
                    fail(lineno, f"metric '{name}' is not numeric or null")
                metric_names.add(name)
        elif kind == "histogram":
            histograms += 1
            if not isinstance(rec.get("metric"), str):
                fail(lineno, "histogram record missing 'metric'")
            for key in ("count", "sum", "max", "mean", "p50", "p99"):
                if not isinstance(rec.get(key), (int, float)):
                    fail(lineno, f"histogram missing numeric '{key}'")
            buckets = rec.get("buckets")
            bounds = rec.get("bounds")
            if not isinstance(buckets, list) or not isinstance(bounds, list):
                fail(lineno, "histogram missing buckets/bounds arrays")
            if len(buckets) != len(bounds) + 1:
                fail(lineno, "buckets must have one more entry than bounds (overflow)")
        else:
            fail(lineno, f"unknown record type {kind!r}")
    if epochs == 0:
        fail(0, "stream contained no epoch records")
    if len(metric_names) < MIN_METRICS:
        fail(0, f"only {len(metric_names)} distinct metrics (need >= {MIN_METRICS})")
    crates = {name.split(".", 1)[0] for name in metric_names}
    if len(crates) < MIN_CRATES:
        fail(0, f"metrics span only {sorted(crates)} (need >= {MIN_CRATES} crates)")
    print(
        f"check_telemetry_schema: OK — {epochs} epochs, {histograms} histograms, "
        f"{len(metric_names)} metrics across {len(crates)} crates {sorted(crates)}"
    )


def main():
    args = sys.argv[1:]
    mode = "metrics"
    if args and args[0] in ("--spans", "--postmortem", "--prom"):
        mode = args.pop(0)[2:]
    stream = open(args[0]) if args else sys.stdin
    if mode == "spans":
        check_spans_stream(stream)
    elif mode == "postmortem":
        check_postmortem_stream(stream)
    elif mode == "prom":
        check_prom_stream(stream)
    else:
        check_metrics_stream(stream)


if __name__ == "__main__":
    main()
