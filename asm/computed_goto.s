; computed_goto — a bytecode-interpreter dispatch loop: fetch an opcode,
; index a jump table, `br` to the handler. One dispatch site cycling over
; four targets in a fixed period-16 pattern — the indirect/VPC predictor's
; home turf.

.data
table:  .word op_add, op_sub, op_xor, op_shift
prog:   .word 0, 1, 2, 3, 2, 1, 0, 0, 3, 2, 1, 3, 0, 2, 2, 1

.text
main:
    adr x20, table
    adr x21, prog
    mov x22, #0                 ; virtual pc
    mov x5, #1                  ; accumulator
    mov x9, x27                 ; seed-derived operand
dispatch:
    and x1, x22, #15
    lsl x1, x1, #3
    add x1, x1, x21
    ldr x2, [x1]                ; opcode
    lsl x2, x2, #3
    add x2, x2, x20
    ldr x3, [x2]                ; handler address
    add x22, x22, #1
    br x3
op_add:
    add x5, x5, x9
    b next
op_sub:
    sub x5, x5, #3
    b next
op_xor:
    eor x5, x5, x9
    b next
op_shift:
    lsr x5, x5, #1
    add x5, x5, #7
    b next
next:
    cmp x22, #4096
    b.lt dispatch
    halt
