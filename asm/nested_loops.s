; nested_loops — a three-deep loop nest with strided read-modify-write
; bodies. The inner trip counts are small and fixed, so the whole nest is
; µBTB/UOC-lockable: the predictable, high-IPC case (right edge of the
; paper's Fig. 17).

.data
buf:    .space 8192             ; 1024 words, inner working set

.text
main:
    adr x0, buf
    mov x1, #0                  ; i
outer:
    mov x2, #0                  ; j
mid:
    mov x3, #0                  ; k
inner:
    lsl x4, x3, #3
    add x4, x4, x0
    ldr x5, [x4]
    add x5, x5, x1
    str x5, [x4]
    add x3, x3, #1
    cmp x3, #8
    b.lt inner
    add x2, x2, #1
    cmp x2, #16
    b.lt mid
    add x1, x1, #1
    cmp x1, #32
    b.lt outer
    halt
