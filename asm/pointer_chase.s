; pointer_chase — build a scrambled linked ring of 4096 nodes (the
; next-index map i -> (97*i + 13) mod 4096 is a permutation), then chase
; it with fully dependent loads: the memory-latency-bound left tail of
; the population.

.data
nodes:  .space 32768            ; 4096 nodes x 8 B next pointer

.text
main:
    adr x0, nodes
    mov x1, #0                  ; i
build:
    mov x2, #97
    mul x3, x1, x2
    add x3, x3, #13
    and x3, x3, #4095
    lsl x4, x3, #3
    add x4, x4, x0              ; &nodes[next(i)]
    lsl x5, x1, #3
    add x5, x5, x0              ; &nodes[i]
    str x4, [x5]
    add x1, x1, #1
    cmp x1, #4096
    b.lt build
    mov x6, x0                  ; cursor
    mov x7, #0
chase:
    ldr x6, [x6]
    add x7, x7, #1
    cmp x7, #8192
    b.lt chase
    halt
