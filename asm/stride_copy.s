; stride_copy — fill a source buffer, then stream it into a destination
; with unit stride: two concurrent sequential streams, the L1 stride
; prefetcher's easiest meal.

.data
src:    .space 65536            ; 8192 words
dst:    .space 65536

.text
main:
    mov x1, #0
    adr x3, src
fill:
    lsl x2, x1, #3
    add x2, x2, x3
    eor x4, x1, x27
    str x4, [x2]
    add x1, x1, #1
    cmp x1, #8192
    b.lt fill
    mov x1, #0
    adr x5, src
    adr x6, dst
copy:
    ldr x7, [x5]
    str x7, [x6]
    add x5, x5, #8
    add x6, x6, #8
    add x1, x1, #1
    cmp x1, #8192
    b.lt copy
    halt
