; fib_recursive — naive recursive Fibonacci. Every call site pushes the
; link register onto a software stack (sp = x28), so the call tree walks
; the RAS up and down to depth ~n: a direct probe of return-address-stack
; capacity and repair.

.text
main:
    mov x0, #12
    bl fib
    halt

; fib(n): n in x0, result in x0. Frame: [sp] = saved lr, [sp+8] = scratch.
fib:
    cmp x0, #2
    b.lt fib_base
    sub sp, sp, #16
    str lr, [sp]
    str x0, [sp, #8]
    sub x0, x0, #1
    bl fib
    ldr x1, [sp, #8]            ; n
    str x0, [sp, #8]            ; fib(n-1)
    sub x0, x1, #2
    bl fib
    ldr x1, [sp, #8]
    add x0, x0, x1
    ldr lr, [sp]
    add sp, sp, #16
    ret
fib_base:
    ret
