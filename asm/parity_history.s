; parity_history — a branch whose direction is the parity of its own last
; eight outcomes (seeded from x27, and the update map is invertible, so
; the sequence never collapses). Unpredictable below 8 bits of history,
; fully predictable above: a history-length knee probe for the SHP.

.text
main:
    mov x11, x27                ; history word (odd, never all-zero)
    mov x12, #0                 ; iteration counter
    mov x13, #0                 ; accumulator
loop:
    ; x1 = parity(history & 0xff) by xor-folding
    and x1, x11, #255
    lsr x2, x1, #4
    eor x1, x1, x2
    lsr x2, x1, #2
    eor x1, x1, x2
    lsr x2, x1, #1
    eor x1, x1, x2
    and x1, x1, #1
    cbz x1, not_taken
    add x13, x13, #3
    lsl x11, x11, #1
    orr x11, x11, #1
    b cont
not_taken:
    sub x13, x13, #1
    lsl x11, x11, #1
cont:
    add x12, x12, #1
    cmp x12, #16384
    b.lt loop
    halt
