; matrix — initialize a 128x128 matrix, then sum it twice: row-major
; (unit stride, prefetch-friendly) and column-major (1 KiB stride,
; prefetch-hostile). The contrast between the two phases is the stride
; prefetcher's coverage story in one kernel.

.data
mat:    .space 131072           ; 128 x 128 x 8 B

.text
main:
    adr x0, mat
    mov x1, #0
init:
    lsl x2, x1, #3
    add x2, x2, x0
    eor x3, x1, x27
    str x3, [x2]
    add x1, x1, #1
    cmp x1, #16384
    b.lt init
    mov x4, #0                  ; accumulator
    mov x1, #0
rows:
    lsl x2, x1, #3
    add x2, x2, x0
    ldr x3, [x2]
    add x4, x4, x3
    add x1, x1, #1
    cmp x1, #16384
    b.lt rows
    mov x5, #0                  ; column
cols:
    mov x6, #0                  ; row
colrow:
    lsl x7, x6, #7              ; row * 128
    add x7, x7, x5
    lsl x7, x7, #3
    add x7, x7, x0
    ldr x3, [x7]
    add x4, x4, x3
    add x6, x6, #1
    cmp x6, #128
    b.lt colrow
    add x5, x5, #1
    cmp x5, #128
    b.lt cols
    halt
