; call_tree — indirect calls (`blr`) fanned out over an eight-entry
; function table, selected by an xorshift stream. One leaf calls a helper
; for an extra RAS level. Exercises the indirect-call predictor and
; call/return pairing under a hard-to-predict target sequence.

.data
ftab:   .word leaf0, leaf1, leaf2, leaf3, leaf4, leaf5, leaf6, leaf7

.text
main:
    adr x20, ftab
    mov x21, x27                ; xorshift state (nonzero)
    mov x22, #0
    mov x0, #0
loop:
    and x1, x21, #7
    lsl x1, x1, #3
    add x1, x1, x20
    ldr x2, [x1]
    blr x2
    lsl x3, x21, #13            ; xorshift64 step
    eor x21, x21, x3
    lsr x3, x21, #7
    eor x21, x21, x3
    lsl x3, x21, #17
    eor x21, x21, x3
    add x22, x22, #1
    cmp x22, #4096
    b.lt loop
    halt

leaf0:
    add x0, x0, #1
    ret
leaf1:
    add x0, x0, #2
    ret
leaf2:
    eor x0, x0, x21
    ret
leaf3:
    sub x0, x0, #1
    ret
leaf4:
    lsr x0, x0, #1
    ret
leaf5:
    orr x0, x0, #1
    ret
leaf6:
    add x0, x0, x21
    ret
leaf7:
    sub sp, sp, #8
    str lr, [sp]
    bl helper
    ldr lr, [sp]
    add sp, sp, #8
    ret
helper:
    eor x0, x0, x21
    ret
