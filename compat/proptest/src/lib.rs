//! Offline stand-in for the subset of the `proptest` 1.x API this workspace
//! uses.
//!
//! The build environment cannot reach a crates registry, so the workspace
//! vendors a deterministic mini property-testing harness with the same
//! surface the test suites consume:
//!
//! - the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! - `arg in strategy` bindings over integer/float ranges, 2- and 3-tuples,
//!   `any::<T>()` and `prop::collection::vec(strategy, len)`,
//! - [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Unlike real proptest there is no shrinking and no persistence: each case
//! is generated from a fixed per-case seed, so failures reproduce exactly
//! across runs, which is what the repo's deterministic-simulation tests rely
//! on.

pub mod strategy {
    //! Value-generation strategies.

    /// Deterministic per-case generator handed to strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream is a pure function of `seed`.
        pub fn from_seed(seed: u64) -> Self {
            let mut rng = TestRng { state: seed };
            let _ = rng.next_u64();
            rng
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A draw from `[0, 1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_strategy_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range strategy");
                    let span = hi.wrapping_sub(lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
                }
            }
        )*};
    }
    impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.next_f64()
        }
    }

    macro_rules! impl_strategy_tuple {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_strategy_tuple! {
        (A / 0)
        (A / 0, B / 1)
        (A / 0, B / 1, C / 2)
        (A / 0, B / 1, C / 2, D / 3)
    }

    /// Types with a canonical "anything goes" strategy ([`any`]).
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: Arbitrary> Arbitrary for Option<T> {
        fn arbitrary(rng: &mut TestRng) -> Self {
            if rng.next_u64() & 1 == 1 {
                Some(T::arbitrary(rng))
            } else {
                None
            }
        }
    }

    /// Strategy wrapper produced by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`: `any::<T>()`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    /// Strategy produced by [`crate::collection::vec`]: `len` draws from an
    /// element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::{Strategy, VecStrategy};

    /// A vector of exactly `len` values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    //! The per-`proptest!` execution engine.

    /// Runner configuration (`ProptestConfig::with_cases(n)`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs; the case is skipped.
        Reject,
        /// A `prop_assert*!` failed with this message.
        Fail(String),
    }

    impl TestCaseError {
        /// A failing case with a formatted message.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
    }

    /// Outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Drives one property over its configured number of cases.
    #[derive(Debug)]
    pub struct TestRunner {
        cases: u32,
        /// Base seed mixed with the case index; fixed so failures reproduce.
        base_seed: u64,
    }

    impl TestRunner {
        /// A runner for `config`, deterministic per property `name`.
        pub fn new(config: Config, name: &str) -> Self {
            // FNV-1a over the property name keeps distinct properties on
            // distinct streams without any global state.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRunner {
                cases: config.cases,
                base_seed: h,
            }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// The generator for case `idx`.
        pub fn rng_for(&self, idx: u32) -> crate::strategy::TestRng {
            crate::strategy::TestRng::from_seed(
                self.base_seed ^ (idx as u64).wrapping_mul(0xA076_1D64_78BD_642F),
            )
        }
    }
}

pub mod prelude {
    //! Everything a `use proptest::prelude::*;` consumer expects.

    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

pub mod prop {
    //! The `prop::` namespace (`prop::collection::vec`).

    pub use crate::collection;
}

/// Define property tests.
///
/// Accepts an optional `#![proptest_config(...)]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

/// Internal: expand each property fn in a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($args:tt)* ) $body:block
        $($rest:tt)*
    ) => {
        $crate::__proptest_norm! {
            cfg = ($cfg);
            meta = ($(#[$meta])*);
            name = $name;
            body = $body;
            out = ();
            args = ($($args)*);
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Internal: normalise a mixed argument list (`arg in strategy` and
/// `arg: Type` forms) into uniform `(arg, strategy)` bindings.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_norm {
    (
        cfg = $cfg:tt;
        meta = $meta:tt;
        name = $name:ident;
        body = $body:block;
        out = $out:tt;
        args = ( $(,)? );
    ) => {
        $crate::__proptest_emit! {
            cfg = $cfg;
            meta = $meta;
            name = $name;
            body = $body;
            bindings = $out;
        }
    };
    (
        cfg = $cfg:tt;
        meta = $meta:tt;
        name = $name:ident;
        body = $body:block;
        out = ( $($out:tt)* );
        args = ( $arg:ident in $strat:expr $(, $($tail:tt)*)? );
    ) => {
        $crate::__proptest_norm! {
            cfg = $cfg;
            meta = $meta;
            name = $name;
            body = $body;
            out = ( $($out)* ($arg, $strat) );
            args = ( $($($tail)*)? );
        }
    };
    (
        cfg = $cfg:tt;
        meta = $meta:tt;
        name = $name:ident;
        body = $body:block;
        out = ( $($out:tt)* );
        args = ( $arg:ident : $ty:ty $(, $($tail:tt)*)? );
    ) => {
        $crate::__proptest_norm! {
            cfg = $cfg;
            meta = $meta;
            name = $name;
            body = $body;
            out = ( $($out)* ($arg, $crate::strategy::any::<$ty>()) );
            args = ( $($($tail)*)? );
        }
    };
}

/// Internal: emit the final zero-argument test fn for one property.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_emit {
    (
        cfg = ($cfg:expr);
        meta = ($($meta:tt)*);
        name = $name:ident;
        body = $body:block;
        bindings = ( $(($arg:ident, $strat:expr))* );
    ) => {
        $($meta)*
        fn $name() {
            let runner =
                $crate::test_runner::TestRunner::new($cfg, stringify!($name));
            for case in 0..runner.cases() {
                let mut prop_rng = runner.rng_for(case);
                $(
                    let $arg = $crate::strategy::Strategy::generate(
                        &($strat),
                        &mut prop_rng,
                    );
                )*
                let outcome: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (move || {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {case} of {} failed: {msg}",
                            stringify!($name),
                        );
                    }
                }
            }
        }
    };
}

/// Assert inside a property body; failure fails the case with context
/// instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert two expressions are equal inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Assert two expressions differ inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Filter a case: when the condition is false the case is skipped, not
/// failed.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Reject,
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Range strategies respect their bounds, tuples compose, and vec
        /// strategies produce the requested length.
        #[test]
        fn strategies_respect_shapes(
            x in 5u64..50,
            pair in (0u32..4, -8i64..8),
            flags in prop::collection::vec(any::<bool>(), 13),
            opt in any::<Option<u16>>(),
        ) {
            prop_assert!((5..50).contains(&x));
            prop_assert!(pair.0 < 4);
            prop_assert!((-8..8).contains(&pair.1));
            prop_assert_eq!(flags.len(), 13);
            if let Some(v) = opt {
                let _ = v;
            }
        }

        /// `prop_assume!` rejects without failing.
        #[test]
        fn assume_rejects_quietly(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let runner = crate::test_runner::TestRunner::new(
            crate::test_runner::Config::with_cases(4),
            "cases_are_deterministic",
        );
        let a: Vec<u64> = (0..4).map(|i| runner.rng_for(i).next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|i| runner.rng_for(i).next_u64()).collect();
        assert_eq!(a, b);
    }
}
