//! Offline stand-in for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors a small, deterministic implementation of exactly the
//! surface the trace generators and tests consume: [`rngs::SmallRng`] seeded
//! via [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! (`gen`, `gen_range`, `gen_bool`) and [`seq::SliceRandom::shuffle`].
//!
//! The generator is SplitMix64 — not the same stream as upstream `SmallRng`
//! (xoshiro), but every consumer in this repo only requires determinism for a
//! fixed seed, not a specific stream. Sampling uses plain modulo reduction;
//! the negligible bias is irrelevant for workload synthesis.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from the generator's native output
/// (the `rng.gen::<T>()` family).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Map 64 random bits onto `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Element types a range sample can produce. The blanket [`SampleRange`]
/// impls below tie a range's element type directly to the sampled type,
/// which is what lets integer-literal ranges (`0..3`) infer from context.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from the half-open range `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Uniform draw from the closed range `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range: empty range");
                let span = high.wrapping_sub(low) as u64;
                low.wrapping_add((rng.next_u64() % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "gen_range: empty inclusive range");
                let span = high.wrapping_sub(low) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
        assert!(low < high, "gen_range: empty range");
        low + (high - low) * unit_f64(rng.next_u64())
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
        // The closed/half-open distinction is below f64 sampling granularity.
        Self::sample_half_open(rng, low, high)
    }
}

/// Ranges that can be sampled to produce a `T` (argument of
/// [`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Draw one value inside the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing extension trait: sampling helpers on any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random `T` (integers over their full width, floats in
    /// `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform draw from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Small, fast, deterministic generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut rng = SmallRng { state };
            // Discard the first word so near-identical seeds decorrelate.
            let _ = rng.next_u64();
            rng
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::RngCore;

    /// Random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u = rng.gen_range(10u64..20);
            assert!((10..20).contains(&u));
            let i = rng.gen_range(-8i64..8);
            assert!((-8..8).contains(&i));
            let v = rng.gen_range(1u32..=4);
            assert!((1..=4).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 32-element shuffle should move something");
    }
}
