//! Offline stand-in for the subset of the `criterion` 0.5 API this workspace
//! uses.
//!
//! The build environment cannot reach a crates registry, so the workspace
//! vendors a minimal benchmark harness with the same surface as the three
//! bench targets: [`Criterion::benchmark_group`]/[`Criterion::bench_function`],
//! [`BenchmarkGroup::sample_size`]/[`BenchmarkGroup::throughput`]/
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId::from_parameter`], [`Throughput::Elements`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is a single timed batch per benchmark (no statistics, no
//! reports) — enough to exercise every benchmarked code path and print a
//! rough per-iteration time, which is all a CI smoke run of `cargo bench`
//! needs.

use std::time::Instant;

/// How work per iteration is expressed for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark named after one parameter value.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// A benchmark named `function_name/parameter`.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Time `routine` over a fixed batch of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 16,
            throughput: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<S, F>(&mut self, name: S, f: F) -> &mut Self
    where
        S: std::fmt::Display,
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), 16, None, f);
        self
    }

    /// Parse CLI arguments (accepted and ignored: the stub has no options).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Mark the end of all benchmarks (no-op: the stub keeps no report
    /// state).
    pub fn final_summary(&mut self) {}
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the iteration batch size for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<S, F>(&mut self, id: S, f: F) -> &mut Self
    where
        S: std::fmt::Display,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        run_one(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{id}", self.name);
        run_one(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Mark the end of the group (no-op: the stub keeps no report state).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        iters: sample_size as u64,
        elapsed_ns: 0,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed_ns / bencher.iters.max(1) as u128;
    match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0 => {
            let rate = n as f64 * 1e9 / per_iter as f64;
            println!("bench {name}: {per_iter} ns/iter ({rate:.0} elem/s)");
        }
        _ => println!("bench {name}: {per_iter} ns/iter"),
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_each_benchmark_once_per_sample() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(7);
            g.throughput(Throughput::Elements(3));
            g.bench_function("counting", |b| b.iter(|| count += 1));
            g.finish();
        }
        assert_eq!(count, 7);
    }

    #[test]
    fn bench_with_input_passes_the_input() {
        let mut c = Criterion::default();
        let mut seen = 0u64;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(1);
            g.bench_with_input(BenchmarkId::from_parameter("x"), &41u64, |b, &v| {
                b.iter(|| seen = v + 1)
            });
            g.finish();
        }
        assert_eq!(seen, 42);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter("m3").to_string(), "m3");
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
    }
}
