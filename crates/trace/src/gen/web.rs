//! Web / JavaScript-like workloads.
//!
//! §IV.F of the paper attributes the M6 indirect-predictor redesign to
//! "JavaScript's increased use \[putting\] more pressure on indirect targets,
//! allocating in some cases hundreds of unique indirect targets for a given
//! indirect branch", and §IV.D credits L2BTB capacity for "real-use-case
//! code" like BBench. This generator reproduces those pressures:
//!
//! * a large static code footprint (hundreds of functions, thousands of
//!   branch sites) that overflows the L1 BTBs into the L2BTB;
//! * dispatcher indirect call sites with up to hundreds of targets whose
//!   sequence is Markov-correlated (so target-history hashing, M6's fix,
//!   has something to learn);
//! * call/return nesting for the RAS;
//! * dense branch lines (tiny basic blocks) that spill to the vBTB;
//! * a mix of conditional-branch behaviours from always-taken to noisy.

use super::{rng_from_seed, CodeLayout, DataLayout, RegRotor, TraceGen};
use crate::inst::{BranchInfo, BranchKind, Inst, Reg};
use rand::rngs::SmallRng;
use rand::Rng;

/// Parameters for a [`WebWorkload`].
#[derive(Debug, Clone)]
pub struct WebParams {
    /// Number of functions (code-footprint knob; each is ~10–40 branches).
    pub functions: usize,
    /// Distinct targets of the main dispatcher's indirect call.
    pub dispatch_targets: usize,
    /// Probability the dispatcher follows its Markov successor (vs. random).
    pub markov_follow: f64,
    /// Basic blocks per function.
    pub blocks_per_fn: usize,
    /// Instructions per basic block (small values create dense branch lines).
    pub block_len: usize,
    /// Fraction of conditional branches that are noisy (hard to predict).
    pub noisy_frac: f64,
    /// Data working set in bytes.
    pub working_set: u64,
}

impl Default for WebParams {
    fn default() -> Self {
        WebParams {
            functions: 200,
            dispatch_targets: 64,
            markov_follow: 0.8,
            blocks_per_fn: 8,
            block_len: 4,
            noisy_frac: 0.15,
            working_set: 16 * 1024 * 1024,
        }
    }
}

/// How a synthetic conditional branch decides its outcome.
#[derive(Debug, Clone)]
enum CondBehavior {
    /// Taken with fixed probability.
    Biased(f64),
    /// Repeating T/NT pattern of the given period (learnable with history).
    Periodic(u32),
    /// XOR of its own last `taps` outcomes — needs local/global history.
    HistoryXor(u32),
}

/// Basic-block terminator in the static program.
#[derive(Debug, Clone)]
enum Term {
    /// Conditional branch to `target` block (in the same function).
    Cond { target: usize, behavior: usize },
    /// Unconditional jump to `target` block.
    Jump { target: usize },
    /// Direct call to `callee` function; execution resumes at the next block.
    Call { callee: usize },
    /// Return to caller.
    Ret,
}

#[derive(Debug, Clone)]
struct Block {
    pc: u64,
    len: usize,
    loads: usize,
    term: Term,
    term_pc: u64,
}

#[derive(Debug, Clone)]
struct Function {
    blocks: Vec<Block>,
}

#[derive(Debug, Clone)]
struct CondState {
    behavior: CondBehavior,
    count: u32,
    history: u32,
}

/// A web-like workload generator. See [module docs](self) for behaviour.
#[derive(Debug, Clone)]
pub struct WebWorkload {
    funcs: Vec<Function>,
    conds: Vec<CondState>,
    /// Dispatcher indirect-call state.
    dispatch_pc: u64,
    dispatch_loop_pc: u64,
    /// True when a callee has returned and the dispatcher's loop-back jump
    /// (at `dispatch_loop_pc`) must be emitted before the next indirect call.
    need_loop_back: bool,
    dispatch_targets: Vec<usize>,
    markov_next: Vec<usize>,
    markov_follow: f64,
    cur_target: usize,
    /// Interpreter state.
    stack: Vec<(usize, usize, u64)>, // (func, resume block, return pc)
    cur: Option<(usize, usize)>,     // (func, block)
    slot: usize,
    pending_term: bool,
    data_base: u64,
    working_set: u64,
    rotor: RegRotor,
    rng: SmallRng,
}

impl WebWorkload {
    /// Build a web workload in `region` from `seed`.
    ///
    /// # Panics
    /// Panics if `functions < 2` or `dispatch_targets` is 0 or exceeds
    /// `functions - 1`.
    pub fn new(params: &WebParams, region: u64, seed: u64) -> WebWorkload {
        assert!(params.functions >= 2, "need a dispatcher plus callees");
        assert!(
            params.dispatch_targets >= 1 && params.dispatch_targets < params.functions,
            "dispatch_targets must be in 1..functions"
        );
        let mut rng = rng_from_seed(seed);
        let mut layout = CodeLayout::region(region);
        let mut conds: Vec<CondState> = Vec::new();
        let mut funcs = Vec::with_capacity(params.functions);
        // Function 0 is the dispatcher; the rest are leaves/inner functions.
        // Calls only go from lower to higher indices, bounding recursion.
        for f in 0..params.functions {
            let nblocks = if f == 0 { 1 } else { params.blocks_per_fn.max(2) };
            let len = params.block_len.max(1);
            // Blocks within a function are laid out back-to-back so that a
            // not-taken conditional falls through exactly onto the next
            // block's first instruction.
            let fbase = layout.alloc_block((nblocks * (len + 1)) as u64);
            let mut blocks = Vec::with_capacity(nblocks);
            for b in 0..nblocks {
                let pc = fbase + (b * (len + 1) * 4) as u64;
                let term_pc = pc + 4 * len as u64;
                let term = if f == 0 {
                    Term::Ret // placeholder; dispatcher handled specially
                } else if b == nblocks - 1 {
                    Term::Ret
                } else {
                    let roll: f64 = rng.gen();
                    if roll < 0.55 {
                        // Conditional branch; skips 1–3 blocks ahead.
                        let target = (b + 1 + rng.gen_range(0..3)).min(nblocks - 1);
                        let behavior = if rng.gen_bool(params.noisy_frac) {
                            CondBehavior::Biased(rng.gen_range(0.35..0.65))
                        } else {
                            // Real browser/JS code is mostly strongly
                            // biased; a minority shows short local
                            // patterns.
                            match rng.gen_range(0..10) {
                                0..=3 => CondBehavior::Biased(if rng.gen_bool(0.5) { 0.97 } else { 0.03 }),
                                4..=6 => CondBehavior::Biased(1.0),
                                7 => CondBehavior::Periodic(rng.gen_range(2..5)),
                                8 => CondBehavior::HistoryXor(rng.gen_range(2..4)),
                                _ => CondBehavior::Biased(0.9),
                            }
                        };
                        conds.push(CondState {
                            behavior,
                            count: 0,
                            history: 0,
                        });
                        Term::Cond {
                            target,
                            behavior: conds.len() - 1,
                        }
                    } else if roll < 0.70 && f + 1 < params.functions && b + 1 < nblocks {
                        let callee = rng.gen_range(f + 1..params.functions);
                        Term::Call { callee }
                    } else if roll < 0.80 {
                        Term::Jump {
                            target: (b + 1).min(nblocks - 1),
                        }
                    } else {
                        Term::Jump { target: b + 1 }
                    }
                };
                blocks.push(Block {
                    pc,
                    len,
                    loads: if rng.gen_bool(0.6) { 1 } else { 0 },
                    term,
                    term_pc,
                });
            }
            funcs.push(Function { blocks });
        }
        // Dispatcher indirect-call plumbing.
        let dpc = layout.alloc_block(4);
        let dispatch_targets: Vec<usize> = {
            // Zipf-ish: early functions more likely, but all distinct.
            let mut v: Vec<usize> = (1..=params.dispatch_targets).collect();
            use rand::seq::SliceRandom;
            v.shuffle(&mut rng);
            v
        };
        let markov_next: Vec<usize> = {
            use rand::seq::SliceRandom;
            let mut p: Vec<usize> = (0..dispatch_targets.len()).collect();
            p.shuffle(&mut rng);
            p
        };
        WebWorkload {
            funcs,
            conds,
            dispatch_pc: dpc,
            dispatch_loop_pc: dpc + 4,
            need_loop_back: false,
            dispatch_targets,
            markov_next,
            markov_follow: params.markov_follow,
            cur_target: 0,
            stack: Vec::new(),
            cur: None,
            slot: 0,
            pending_term: false,
            data_base: DataLayout::region(region).base(),
            working_set: params.working_set.max(4096),
            rotor: RegRotor::int_range(4, 16),
            rng,
        }
    }

    fn eval_cond(&mut self, id: usize) -> bool {
        let st = &mut self.conds[id];
        st.count = st.count.wrapping_add(1);
        let taken = match st.behavior {
            CondBehavior::Biased(p) => self.rng.gen_bool(p.clamp(0.0, 1.0)),
            CondBehavior::Periodic(k) => st.count % k != 0,
            CondBehavior::HistoryXor(taps) => {
                let mut x = false;
                for t in 0..taps {
                    x ^= (st.history >> t) & 1 == 1;
                }
                !x
            }
        };
        st.history = (st.history << 1) | taken as u32;
        taken
    }

    fn rand_data_addr(&mut self) -> u64 {
        // Hot/cold mix: 80% of accesses in the hot 1/8 of the working set.
        let ws = self.working_set;
        let off = if self.rng.gen_bool(0.8) {
            self.rng.gen_range(0..ws / 8)
        } else {
            self.rng.gen_range(0..ws)
        };
        self.data_base + (off & !7)
    }

    /// Emit the dispatcher's indirect call and set up the callee.
    fn dispatch(&mut self) -> Inst {
        // Markov target selection.
        self.cur_target = if self.rng.gen_bool(self.markov_follow) {
            self.markov_next[self.cur_target]
        } else {
            self.rng.gen_range(0..self.dispatch_targets.len())
        };
        let callee = self.dispatch_targets[self.cur_target];
        let target_pc = self.funcs[callee].blocks[0].pc;
        self.stack.push((usize::MAX, 0, self.dispatch_loop_pc));
        self.cur = Some((callee, 0));
        self.slot = 0;
        self.pending_term = false;
        Inst::branch(
            self.dispatch_pc,
            BranchInfo {
                kind: BranchKind::IndirectCall,
                taken: true,
                target: target_pc,
            },
            [Some(Reg::int(17)), None],
        )
    }
}

impl TraceGen for WebWorkload {
    fn next_inst(&mut self) -> Inst {
        let (f, b) = match self.cur {
            Some(x) => x,
            None => {
                if self.need_loop_back {
                    self.need_loop_back = false;
                    return Inst::branch(
                        self.dispatch_loop_pc,
                        BranchInfo {
                            kind: BranchKind::UncondDirect,
                            taken: true,
                            target: self.dispatch_pc,
                        },
                        [None, None],
                    );
                }
                return self.dispatch();
            }
        };
        let block = &self.funcs[f].blocks[b];
        let (pc, len, loads, term_pc) = (block.pc, block.len, block.loads, block.term_pc);
        if self.slot < len {
            let i = self.slot;
            self.slot += 1;
            let ipc = pc + 4 * i as u64;
            if i < loads {
                let a = self.rand_data_addr();
                let dst = self.rotor.alloc();
                return Inst::load(ipc, dst, Some(Reg::int(19)), a);
            }
            let dst = self.rotor.alloc();
            let s = self.rotor.pick(&mut self.rng);
            return Inst::alu(ipc, dst, [Some(s), None]);
        }
        // Terminator.
        let term = self.funcs[f].blocks[b].term.clone();
        self.slot = 0;
        match term {
            Term::Cond { target, behavior } => {
                let taken = self.eval_cond(behavior);
                let nblocks = self.funcs[f].blocks.len();
                let next = if taken { target } else { (b + 1).min(nblocks - 1) };
                let tgt_pc = self.funcs[f].blocks[target].pc;
                self.cur = Some((f, next));
                Inst::branch(
                    term_pc,
                    BranchInfo {
                        kind: BranchKind::CondDirect,
                        taken,
                        target: tgt_pc,
                    },
                    [Some(self.rotor.recent(0)), None],
                )
            }
            Term::Jump { target } => {
                let nblocks = self.funcs[f].blocks.len();
                let t = target.min(nblocks - 1);
                self.cur = Some((f, t));
                Inst::branch(
                    term_pc,
                    BranchInfo {
                        kind: BranchKind::UncondDirect,
                        taken: true,
                        target: self.funcs[f].blocks[t].pc,
                    },
                    [None, None],
                )
            }
            Term::Call { callee } => {
                let ret_pc = term_pc + 4;
                self.stack.push((f, b + 1, ret_pc));
                self.cur = Some((callee, 0));
                Inst::branch(
                    term_pc,
                    BranchInfo {
                        kind: BranchKind::DirectCall,
                        taken: true,
                        target: self.funcs[callee].blocks[0].pc,
                    },
                    [None, None],
                )
            }
            Term::Ret => {
                let (rf, rb, rpc) = self.stack.pop().unwrap_or((usize::MAX, 0, self.dispatch_loop_pc));
                if rf == usize::MAX {
                    self.cur = None; // back to dispatcher
                    self.need_loop_back = true;
                } else {
                    self.cur = Some((rf, rb.min(self.funcs[rf].blocks.len() - 1)));
                }
                Inst::branch(
                    term_pc,
                    BranchInfo {
                        kind: BranchKind::Return,
                        taken: true,
                        target: rpc,
                    },
                    [Some(Reg::int(30)), None],
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenIter;
    use std::collections::{HashMap, HashSet};

    fn sample(params: &WebParams, n: usize, seed: u64) -> Vec<Inst> {
        GenIter(WebWorkload::new(params, 4, seed)).take(n).collect()
    }

    #[test]
    fn calls_and_returns_balance() {
        let insts = sample(&WebParams::default(), 50_000, 11);
        let mut depth: i64 = 0;
        let mut max_depth = 0;
        for i in &insts {
            if let Some(b) = i.branch {
                if b.kind.is_call() {
                    depth += 1;
                } else if b.kind.is_return() {
                    depth -= 1;
                }
                max_depth = max_depth.max(depth);
            }
            assert!(depth >= -1, "returns never underflow past the dispatcher");
        }
        assert!(max_depth >= 2, "must exercise nested calls");
    }

    #[test]
    fn return_targets_match_call_sites() {
        let insts = sample(&WebParams::default(), 20_000, 3);
        let mut stack = Vec::new();
        for i in &insts {
            if let Some(b) = i.branch {
                if b.kind.is_call() {
                    stack.push(i.pc + 4);
                } else if b.kind.is_return() {
                    if let Some(expect) = stack.pop() {
                        assert_eq!(b.target, expect, "return must go to call site + 4");
                    }
                }
            }
        }
    }

    #[test]
    fn dispatcher_has_many_targets() {
        let p = WebParams {
            dispatch_targets: 48,
            ..Default::default()
        };
        let insts = sample(&p, 200_000, 5);
        let mut targets: HashMap<u64, HashSet<u64>> = HashMap::new();
        for i in &insts {
            if let Some(b) = i.branch {
                if b.kind == BranchKind::IndirectCall {
                    targets.entry(i.pc).or_default().insert(b.target);
                }
            }
        }
        let max = targets.values().map(|s| s.len()).max().unwrap_or(0);
        assert!(max >= 24, "dispatcher must exercise many indirect targets, got {max}");
    }

    #[test]
    fn code_footprint_is_large() {
        let insts = sample(&WebParams::default(), 100_000, 7);
        let mut branch_pcs: HashSet<u64> = HashSet::new();
        for i in &insts {
            if i.branch.is_some() {
                branch_pcs.insert(i.pc);
            }
        }
        assert!(
            branch_pcs.len() > 300,
            "web workload must have a large branch footprint, got {}",
            branch_pcs.len()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = sample(&WebParams::default(), 5_000, 9);
        let b = sample(&WebParams::default(), 5_000, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn next_pc_chain_is_consistent() {
        let insts = sample(&WebParams::default(), 20_000, 13);
        for w in insts.windows(2) {
            assert_eq!(
                w[0].next_pc(),
                w[1].pc,
                "control flow must be sequentially consistent"
            );
        }
    }
}
