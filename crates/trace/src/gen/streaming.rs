//! Regular streaming / multi-stride workloads.
//!
//! These exercise the L1 multi-stride prefetch engine of §VII.A directly:
//! the paper's worked example is the access pattern
//! `A; A+2; A+4; A+9; A+11; A+13; A+18; ...` — a repeating component pattern
//! of `+2×2, +5×1`. [`MultiStride`] generates exactly such component streams
//! (in cache-line units or bytes), and [`CopyKernel`] generates a
//! memcpy-style paired load/store stream.

use super::{rng_from_seed, CodeLayout, DataLayout, RegRotor, TraceGen};
use crate::inst::{BranchInfo, BranchKind, Inst, Reg};
use rand::Rng;

/// One component of a multi-stride pattern: `stride` repeated `repeat` times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrideComponent {
    /// Stride in the pattern's address unit.
    pub stride: i64,
    /// How many consecutive accesses use this stride.
    pub repeat: u32,
}

/// Parameters for a [`MultiStride`] stream.
#[derive(Debug, Clone)]
pub struct MultiStrideParams {
    /// The repeating stride components, e.g. `+2×2, +5×1` from the paper.
    pub components: Vec<StrideComponent>,
    /// Address unit in bytes each stride is multiplied by (64 = cache lines).
    pub unit: u64,
    /// Working-set bytes before the stream wraps to its start.
    pub working_set: u64,
    /// Filler (non-memory) instructions between loads.
    pub work_between: usize,
    /// How many independent streams run round-robin, each in its own window.
    pub streams: usize,
    /// Instructions between short stream restarts; 0 = never restart. Models
    /// the "short-lived patterns" of §VII.B that dynamic degree must not
    /// over-prefetch.
    pub restart_every: u64,
}

impl Default for MultiStrideParams {
    fn default() -> Self {
        MultiStrideParams {
            components: vec![
                StrideComponent { stride: 2, repeat: 2 },
                StrideComponent { stride: 5, repeat: 1 },
            ],
            unit: 64,
            working_set: 32 * 1024 * 1024,
            work_between: 3,
            streams: 1,
            restart_every: 0,
        }
    }
}

/// Per-stream walker state.
#[derive(Debug, Clone)]
struct StreamState {
    base: u64,
    offset: i64,
    comp: usize,
    rep_left: u32,
}

/// Multi-component strided load stream generator.
#[derive(Debug, Clone)]
pub struct MultiStride {
    params: MultiStrideParams,
    streams: Vec<StreamState>,
    cur: usize,
    slot: usize,
    slots: usize,
    emitted: u64,
    body_base: u64,
    rotor: RegRotor,
    rng: rand::rngs::SmallRng,
}

impl MultiStride {
    /// Build a multi-stride stream workload.
    ///
    /// # Panics
    /// Panics if `components` is empty or `streams == 0`.
    pub fn new(params: &MultiStrideParams, region: u64, seed: u64) -> MultiStride {
        assert!(!params.components.is_empty(), "need at least one component");
        assert!(params.streams >= 1, "need at least one stream");
        for c in &params.components {
            assert!(c.repeat >= 1, "component repeat must be >= 1");
        }
        let rng = rng_from_seed(seed);
        let data = DataLayout::region(region).base();
        let streams = (0..params.streams)
            .map(|s| StreamState {
                base: data + s as u64 * params.working_set.max(64),
                offset: 0,
                comp: 0,
                rep_left: params.components[0].repeat,
            })
            .collect();
        let slots = 1 + params.work_between + 1;
        let mut layout = CodeLayout::region(region);
        let body_base = layout.alloc_block(slots as u64);
        MultiStride {
            params: params.clone(),
            streams,
            cur: 0,
            slot: 0,
            slots,
            emitted: 0,
            body_base,
            rotor: RegRotor::int_range(8, 16),
            rng,
        }
    }

    fn advance(&mut self, s: usize) -> u64 {
        let ws = self.params.working_set.max(64) as i64;
        let st = &mut self.streams[s];
        let addr = st.base + st.offset.rem_euclid(ws) as u64;
        let comp = self.params.components[st.comp];
        st.offset += comp.stride * self.params.unit as i64;
        st.rep_left -= 1;
        if st.rep_left == 0 {
            st.comp = (st.comp + 1) % self.params.components.len();
            st.rep_left = self.params.components[st.comp].repeat;
        }
        addr
    }
}

impl TraceGen for MultiStride {
    fn next_inst(&mut self) -> Inst {
        self.emitted += 1;
        if self.params.restart_every > 0 && self.emitted % self.params.restart_every == 0 {
            // Jump the stream to a fresh random position: kills the old
            // pattern, forcing re-lock (short-lived pattern behaviour).
            let ws = self.params.working_set.max(64);
            for st in &mut self.streams {
                st.offset = (self.rng.gen::<u64>() % ws) as i64 & !63;
                st.comp = 0;
                st.rep_left = self.params.components[0].repeat;
            }
        }
        let pc = self.body_base + 4 * self.slot as u64;
        if self.slot == 0 {
            let s = self.cur;
            self.cur = (self.cur + 1) % self.streams.len();
            let addr = self.advance(s);
            self.slot = 1;
            let dst = self.rotor.alloc();
            return Inst::load(pc, dst, Some(Reg::int(20)), addr);
        }
        if self.slot == self.slots - 1 {
            self.slot = 0;
            return Inst::branch(
                pc,
                BranchInfo {
                    kind: BranchKind::CondDirect,
                    taken: true,
                    target: self.body_base,
                },
                [Some(self.rotor.recent(0)), None],
            );
        }
        self.slot += 1;
        let dst = self.rotor.alloc();
        let s = self.rotor.pick(&mut self.rng);
        Inst::alu(pc, dst, [Some(s), None])
    }
}

/// Parameters for a [`CopyKernel`] (paired load/store streams).
#[derive(Debug, Clone)]
pub struct CopyKernelParams {
    /// Bytes copied before the kernel wraps.
    pub length: u64,
    /// Filler instructions between each load/store pair.
    pub work_between: usize,
}

impl Default for CopyKernelParams {
    fn default() -> Self {
        CopyKernelParams {
            length: 8 * 1024 * 1024,
            work_between: 1,
        }
    }
}

/// memcpy-style generator: a unit-stride load stream plus a unit-stride
/// store stream to a disjoint destination window.
#[derive(Debug, Clone)]
pub struct CopyKernel {
    src: u64,
    dst: u64,
    length: u64,
    pos: u64,
    slot: usize,
    slots: usize,
    body_base: u64,
    rotor: RegRotor,
    last_load_reg: Reg,
}

impl CopyKernel {
    /// Build a copy kernel in `region`. `_seed` is accepted for catalog
    /// uniformity; the kernel is fully deterministic.
    pub fn new(params: &CopyKernelParams, region: u64, _seed: u64) -> CopyKernel {
        let data = DataLayout::region(region).base();
        let slots = 2 + params.work_between + 1;
        let mut layout = CodeLayout::region(region);
        let body_base = layout.alloc_block(slots as u64);
        CopyKernel {
            src: data,
            dst: data + params.length.max(64) + (1 << 20),
            length: params.length.max(64),
            pos: 0,
            slot: 0,
            slots,
            body_base,
            rotor: RegRotor::int_range(8, 14),
            last_load_reg: Reg::int(8),
        }
    }
}

impl TraceGen for CopyKernel {
    fn next_inst(&mut self) -> Inst {
        let pc = self.body_base + 4 * self.slot as u64;
        match self.slot {
            0 => {
                // Load from source stream.
                let addr = self.src + self.pos;
                self.slot = 1;
                let dst = self.rotor.alloc();
                self.last_load_reg = dst;
                Inst::load(pc, dst, Some(Reg::int(20)), addr)
            }
            1 => {
                // Store to destination stream.
                let addr = self.dst + self.pos;
                self.pos = (self.pos + 8) % self.length;
                self.slot = 2;
                Inst::store(pc, Some(self.last_load_reg), Some(Reg::int(21)), addr)
            }
            s if s == self.slots - 1 => {
                self.slot = 0;
                Inst::branch(
                    pc,
                    BranchInfo {
                        kind: BranchKind::CondDirect,
                        taken: true,
                        target: self.body_base,
                    },
                    [Some(self.rotor.recent(0)), None],
                )
            }
            _ => {
                self.slot += 1;
                let dst = self.rotor.alloc();
                Inst::alu(pc, dst, [Some(self.rotor.recent(1)), None])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenIter;
    use crate::inst::InstKind;

    #[test]
    fn paper_example_pattern() {
        // +2×2, +5×1 in 64 B lines: deltas of the load stream must repeat
        // 128,128,320 — exactly the paper's A,A+2,A+4,A+9,... example.
        let p = MultiStrideParams {
            work_between: 0,
            working_set: 1 << 30,
            ..Default::default()
        };
        let insts: Vec<Inst> = GenIter(MultiStride::new(&p, 2, 3)).take(60).collect();
        let addrs: Vec<u64> = insts
            .iter()
            .filter(|i| i.kind == InstKind::Load)
            .map(|i| i.mem.unwrap().vaddr)
            .collect();
        let deltas: Vec<i64> = addrs.windows(2).map(|w| w[1] as i64 - w[0] as i64).collect();
        assert!(deltas.len() >= 9);
        for ch in deltas.chunks_exact(3) {
            assert_eq!(ch, &[128, 128, 320]);
        }
    }

    #[test]
    fn streams_use_disjoint_windows() {
        let p = MultiStrideParams {
            streams: 2,
            working_set: 1 << 20,
            work_between: 0,
            ..Default::default()
        };
        let insts: Vec<Inst> = GenIter(MultiStride::new(&p, 2, 3)).take(80).collect();
        let addrs: Vec<u64> = insts
            .iter()
            .filter(|i| i.kind == InstKind::Load)
            .map(|i| i.mem.unwrap().vaddr)
            .collect();
        let w0: Vec<u64> = addrs.iter().step_by(2).copied().collect();
        let w1: Vec<u64> = addrs.iter().skip(1).step_by(2).copied().collect();
        assert!(w0.iter().max() < w1.iter().min());
    }

    #[test]
    fn restart_breaks_the_pattern() {
        let p = MultiStrideParams {
            restart_every: 50,
            work_between: 0,
            ..Default::default()
        };
        let insts: Vec<Inst> = GenIter(MultiStride::new(&p, 2, 3)).take(400).collect();
        let addrs: Vec<u64> = insts
            .iter()
            .filter(|i| i.kind == InstKind::Load)
            .map(|i| i.mem.unwrap().vaddr)
            .collect();
        let deltas: Vec<i64> = addrs.windows(2).map(|w| w[1] as i64 - w[0] as i64).collect();
        let irregular = deltas.iter().filter(|&&d| d != 128 && d != 320).count();
        assert!(irregular >= 2, "restarts must inject pattern breaks");
    }

    #[test]
    fn copy_kernel_pairs_load_store() {
        let insts: Vec<Inst> =
            GenIter(CopyKernel::new(&CopyKernelParams::default(), 3, 5)).take(100).collect();
        let loads = insts.iter().filter(|i| i.kind == InstKind::Load).count();
        let stores = insts.iter().filter(|i| i.kind == InstKind::Store).count();
        assert!(loads > 0 && (loads as i64 - stores as i64).abs() <= 1);
        // Store address mirrors load address at a constant offset.
        let l0 = insts.iter().find(|i| i.kind == InstKind::Load).unwrap();
        let s0 = insts.iter().find(|i| i.kind == InstKind::Store).unwrap();
        assert!(s0.mem.unwrap().vaddr > l0.mem.unwrap().vaddr);
    }

    #[test]
    #[should_panic]
    fn empty_components_rejected() {
        let p = MultiStrideParams {
            components: vec![],
            ..Default::default()
        };
        let _ = MultiStride::new(&p, 0, 0);
    }
}
