//! Dependent-load pointer chasing.
//!
//! Linked-data-structure traversal is the behaviour class the paper's §VII.C
//! motivates the SMS prefetcher with ("programs which traverse a linked-list
//! ... are not covered at all" by the stride engine), and it populates the
//! low-IPC, high-load-latency end of Figs. 16 and 17: every load's address
//! depends on the previous load's data, so MLP comes only from running
//! multiple independent chains.

use super::{rng_from_seed, CodeLayout, DataLayout, RegRotor, TraceGen};
use crate::inst::{BranchInfo, BranchKind, Inst, Reg};
use rand::seq::SliceRandom;

/// Parameters for a [`PointerChase`] workload.
#[derive(Debug, Clone)]
pub struct PointerChaseParams {
    /// Working-set size in bytes (rounded down to whole cache lines).
    pub working_set: u64,
    /// Number of independent chains walked round-robin (memory-level
    /// parallelism available to the core).
    pub chains: usize,
    /// Non-load filler instructions between consecutive loads.
    pub work_between: usize,
    /// If true, node visits within a line-sized region hit nearby offsets
    /// too (gives an SMS prefetcher something to learn).
    pub spatial_payload: bool,
}

impl Default for PointerChaseParams {
    fn default() -> Self {
        PointerChaseParams {
            working_set: 8 * 1024 * 1024,
            chains: 1,
            work_between: 2,
            spatial_payload: false,
        }
    }
}

/// A pointer-chasing generator: each chain is a random cyclic permutation of
/// the cache lines in its share of the working set.
#[derive(Debug, Clone)]
pub struct PointerChase {
    /// `succ[c][i]` = index of the line visited after line `i` on chain `c`.
    succ: Vec<Vec<u32>>,
    pos: Vec<u32>,
    chain_base: Vec<u64>,
    cur_chain: usize,
    /// Index of the next slot to emit within the loop body (0 = chase load).
    slot: usize,
    /// Total slots per iteration: load, optional payload, fillers, branch.
    slots: usize,
    spatial_payload: bool,
    body_base: u64,
    rotor: RegRotor,
    rng: rand::rngs::SmallRng,
    /// Register that holds the most recent load result per chain (the
    /// pointer), creating the serial dependence.
    ptr_reg: Vec<Reg>,
    /// Line being visited while the payload load is pending.
    cur_line: u32,
}

impl PointerChase {
    /// Build a pointer-chase workload in `region` with the given `seed`.
    ///
    /// # Panics
    /// Panics if `chains` is 0 or greater than 8.
    pub fn new(params: &PointerChaseParams, region: u64, seed: u64) -> PointerChase {
        assert!(params.chains >= 1 && params.chains <= 8, "1..=8 chains supported");
        let mut rng = rng_from_seed(seed);
        let lines_total = (params.working_set / 64).max(4) as u32;
        let per_chain = (lines_total / params.chains as u32).max(2);
        let mut succ = Vec::with_capacity(params.chains);
        let mut chain_base = Vec::with_capacity(params.chains);
        let data = DataLayout::region(region).base();
        for c in 0..params.chains {
            // Random cyclic permutation via shuffled visit order.
            let mut order: Vec<u32> = (0..per_chain).collect();
            order.shuffle(&mut rng);
            let mut s = vec![0u32; per_chain as usize];
            for i in 0..per_chain as usize {
                let from = order[i];
                let to = order[(i + 1) % per_chain as usize];
                s[from as usize] = to;
            }
            succ.push(s);
            chain_base.push(data + c as u64 * per_chain as u64 * 64);
        }
        let slots = 1 + params.spatial_payload as usize + params.work_between + 1;
        let mut layout = CodeLayout::region(region);
        let body_base = layout.alloc_block(slots as u64);
        PointerChase {
            succ,
            pos: vec![0; params.chains],
            chain_base,
            cur_chain: 0,
            slot: 0,
            slots,
            spatial_payload: params.spatial_payload,
            body_base,
            rotor: RegRotor::int_range(12, 20),
            rng,
            ptr_reg: (0..params.chains).map(|c| Reg::int(1 + c as u8)).collect(),
            cur_line: 0,
        }
    }

    fn line_addr(&self, chain: usize, line: u32) -> u64 {
        self.chain_base[chain] + line as u64 * 64
    }
}

impl TraceGen for PointerChase {
    fn next_inst(&mut self) -> Inst {
        // Body layout, PC-sequential:
        //   slot 0: chase load; slot 1 (opt): payload load;
        //   middle: ALU fillers; last slot: always-taken loop branch.
        let pc = self.body_base + 4 * self.slot as u64;
        if self.slot == 0 {
            // The chase load: address depends on the chain's pointer reg,
            // and the loaded value becomes the new pointer.
            let c = self.cur_chain;
            let line = self.pos[c];
            self.cur_line = line;
            let addr = self.line_addr(c, line);
            self.pos[c] = self.succ[c][line as usize];
            self.slot = 1;
            let pr = self.ptr_reg[c];
            return Inst::load(pc, pr, Some(pr), addr);
        }
        if self.slot == 1 && self.spatial_payload {
            let c = self.cur_chain;
            let line = self.cur_line;
            let off = 8 + 8 * (line as u64 % 6);
            self.slot = 2;
            let dst = self.rotor.alloc();
            return Inst::load(pc, dst, Some(self.ptr_reg[c]), self.line_addr(c, line) + off);
        }
        if self.slot == self.slots - 1 {
            // Close the traversal loop and rotate to the next chain.
            self.slot = 0;
            self.cur_chain = (self.cur_chain + 1) % self.succ.len();
            return Inst::branch(
                pc,
                BranchInfo {
                    kind: BranchKind::CondDirect,
                    taken: true,
                    target: self.body_base,
                },
                [Some(self.rotor.recent(0)), None],
            );
        }
        self.slot += 1;
        let dst = self.rotor.alloc();
        let s = self.rotor.pick(&mut self.rng);
        Inst::alu(pc, dst, [Some(s), None])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenIter;
    use crate::inst::InstKind;
    use std::collections::HashSet;

    #[test]
    fn chase_visits_every_line_before_repeating() {
        let p = PointerChaseParams {
            working_set: 64 * 32,
            chains: 1,
            work_between: 0,
            spatial_payload: false,
        };
        let insts: Vec<Inst> = GenIter(PointerChase::new(&p, 1, 7)).take(32 * 2 * 2).collect();
        let addrs: Vec<u64> = insts
            .iter()
            .filter(|i| i.kind == InstKind::Load)
            .map(|i| i.mem.unwrap().vaddr)
            .collect();
        let first: HashSet<u64> = addrs.iter().take(32).copied().collect();
        assert_eq!(first.len(), 32, "permutation must be a single cycle");
        // The second pass revisits the same 32 lines.
        let second: HashSet<u64> = addrs.iter().skip(32).take(32).copied().collect();
        assert_eq!(first, second);
    }

    #[test]
    fn chase_load_is_self_dependent() {
        let p = PointerChaseParams {
            chains: 1,
            work_between: 0,
            ..Default::default()
        };
        let insts: Vec<Inst> = GenIter(PointerChase::new(&p, 1, 7)).take(50).collect();
        let loads: Vec<&Inst> = insts.iter().filter(|i| i.kind == InstKind::Load).collect();
        for ld in loads {
            assert_eq!(ld.srcs[0], ld.dst, "pointer register feeds itself");
        }
    }

    #[test]
    fn multiple_chains_round_robin() {
        let p = PointerChaseParams {
            working_set: 64 * 64,
            chains: 4,
            work_between: 0,
            spatial_payload: false,
        };
        let insts: Vec<Inst> = GenIter(PointerChase::new(&p, 1, 7)).take(64).collect();
        let regs: Vec<Reg> = insts
            .iter()
            .filter(|i| i.kind == InstKind::Load)
            .map(|i| i.dst.unwrap())
            .collect();
        assert_eq!(regs[0], Reg::int(1));
        assert_eq!(regs[1], Reg::int(2));
        assert_eq!(regs[2], Reg::int(3));
        assert_eq!(regs[3], Reg::int(4));
        assert_eq!(regs[4], Reg::int(1));
    }

    #[test]
    fn spatial_payload_emits_second_load_in_same_line() {
        let p = PointerChaseParams {
            working_set: 64 * 16,
            chains: 1,
            work_between: 1,
            spatial_payload: true,
        };
        let insts: Vec<Inst> = GenIter(PointerChase::new(&p, 1, 9)).take(40).collect();
        let loads: Vec<&Inst> = insts.iter().filter(|i| i.kind == InstKind::Load).collect();
        let a = loads[0].mem.unwrap().vaddr;
        let b = loads[1].mem.unwrap().vaddr;
        assert_eq!(a / 64, b / 64, "payload load stays in the node's line");
        assert_ne!(a, b);
    }
}
