//! History-dependent conditional-branch workloads.
//!
//! These stand in for the CBP5 traces of Fig. 1 and the "interesting middle"
//! of Fig. 9: each synthetic branch's outcome is a boolean function of the
//! global outcome history at a bounded depth, plus controllable noise. A
//! hashed-perceptron predictor whose GHIST window covers the generating
//! depth can learn the branch; one whose window is shorter cannot — which is
//! exactly the axis Fig. 1 sweeps.

use super::{rng_from_seed, CodeLayout, DataLayout, RegRotor, TraceGen};
use crate::inst::{BranchInfo, BranchKind, Inst, Reg};
use rand::rngs::SmallRng;
use rand::Rng;

/// How a site's hidden outcome function works.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkovMode {
    /// Outcome follows a fixed repeating per-site pattern of length up to
    /// `history_depth`. The global outcome stream is then low-entropy and
    /// recurring — the regime real programs live in, where a hashed
    /// perceptron whose GHIST window can disambiguate the pattern phase
    /// learns the branch (the Fig. 1 sweep axis).
    Pattern,
    /// Outcome = parity (XOR) of history-tap bits — linearly inseparable
    /// *and* high-entropy: the adversarial right tail of Fig. 9 that stays
    /// hard on every generation.
    Parity,
}

/// Parameters for a [`MarkovBranches`] workload.
#[derive(Debug, Clone)]
pub struct MarkovParams {
    /// Number of distinct static branch sites.
    pub sites: usize,
    /// Each branch reads taps drawn uniformly from `1..=history_depth`
    /// positions back in global history.
    pub history_depth: u32,
    /// Taps per branch (how many history bits the hidden function reads).
    pub taps: u32,
    /// How the taps combine into an outcome.
    pub mode: MarkovMode,
    /// Probability a branch outcome is replaced by a coin flip.
    pub noise: f64,
    /// Non-branch instructions between branches.
    pub work_between: usize,
    /// Fraction of loads among the filler instructions.
    pub load_frac: f64,
    /// Data working-set size for those loads.
    pub working_set: u64,
}

impl Default for MarkovParams {
    fn default() -> Self {
        MarkovParams {
            sites: 64,
            history_depth: 32,
            taps: 3,
            mode: MarkovMode::Pattern,
            noise: 0.02,
            work_between: 4,
            load_frac: 0.25,
            working_set: 64 * 1024,
        }
    }
}

/// One static branch site's hidden outcome function.
#[derive(Debug, Clone)]
struct Site {
    pc: u64,
    target: u64,
    /// Parity mode: history positions (1-based, most recent = 1) XOR-ed.
    taps: Vec<u32>,
    /// Pattern mode: the repeating outcome pattern and current phase.
    pattern: Vec<bool>,
    pos: usize,
    /// Invert the function output.
    invert: bool,
}

/// Generator whose conditional branches are deterministic functions of
/// bounded global history.
#[derive(Debug, Clone)]
pub struct MarkovBranches {
    sites: Vec<Site>,
    /// Global outcome history, bit 0 = most recent.
    ghist: u64,
    cur_site: usize,
    slot: usize,
    slots: usize,
    params: MarkovParams,
    data_base: u64,
    rotor: RegRotor,
    rng: SmallRng,
    body_base: u64,
}

impl MarkovBranches {
    /// Build a Markov-branch workload in `region` from `seed`.
    ///
    /// # Panics
    /// Panics if `sites == 0`, `history_depth == 0` or `history_depth > 64`.
    pub fn new(params: &MarkovParams, region: u64, seed: u64) -> MarkovBranches {
        assert!(params.sites >= 1, "need at least one branch site");
        assert!(
            params.history_depth >= 1 && params.history_depth <= 64,
            "history_depth must be in 1..=64"
        );
        let mut rng = rng_from_seed(seed);
        let mut layout = CodeLayout::region(region);
        // Per-site layout, laid out contiguously (real if-then shape):
        //   [work_between body fillers][cond branch][PAD_LEN pad fillers]
        // Taken skips the pad to the next site's body; not-taken executes
        // the pad and falls through into the next site. The execution
        // order of sites is therefore FIXED — outcomes only gate pads —
        // giving the low-entropy, recurring global history real loops
        // have. A final unconditional branch wraps the chain to site 0.
        let slots = params.work_between + 1 + Self::PAD_LEN;
        let total = params.sites * slots + 1;
        let base = layout.alloc_block(total as u64);
        let site_pc = |i: usize| base + (i * slots * 4) as u64;
        let n = params.sites;
        let sites: Vec<Site> = (0..n)
            .map(|i| {
                let taps = (0..params.taps)
                    .map(|_| rng.gen_range(1..=params.history_depth))
                    .collect();
                // All sites share one power-of-two pattern length so the
                // *global* outcome stream has a small period (the lcm):
                // phase disambiguation of the joint pattern needs roughly
                // `sites * log2(plen)` bits of GHIST, which is the Fig. 1
                // sweep knob.
                let plen = (params.history_depth as usize).next_power_of_two().max(2);
                let pattern = (0..plen).map(|_| rng.gen_bool(0.5)).collect();
                Site {
                    pc: site_pc(i) + 4 * params.work_between as u64,
                    target: if i == n - 1 { base } else { site_pc(i + 1) },
                    taps,
                    pattern,
                    pos: rng.gen_range(0..plen),
                    invert: rng.gen_bool(0.5),
                }
            })
            .collect();
        MarkovBranches {
            sites,
            ghist: 0,
            cur_site: 0,
            slot: 0,
            slots,
            params: params.clone(),
            data_base: DataLayout::region(region).base(),
            rotor: RegRotor::int_range(2, 12),
            rng,
            body_base: base,
        }
    }

    fn outcome(&mut self, site: usize) -> bool {
        if self.rng.gen_bool(self.params.noise) {
            // Keep Pattern phase coherent across noisy executions.
            if self.params.mode == MarkovMode::Pattern {
                let s = &mut self.sites[site];
                s.pos = (s.pos + 1) % s.pattern.len();
            }
            return self.rng.gen_bool(0.5);
        }
        match self.params.mode {
            MarkovMode::Parity => {
                let s = &self.sites[site];
                let mut x = s.invert;
                for &t in &s.taps {
                    x ^= (self.ghist >> (t - 1)) & 1 == 1;
                }
                x
            }
            MarkovMode::Pattern => {
                let s = &mut self.sites[site];
                let bit = s.pattern[s.pos];
                s.pos = (s.pos + 1) % s.pattern.len();
                bit != s.invert
            }
        }
    }
}

impl MarkovBranches {
    /// Pad instructions gated by each site's branch.
    const PAD_LEN: usize = 2;
}

impl TraceGen for MarkovBranches {
    fn next_inst(&mut self) -> Inst {
        let n = self.sites.len();
        let wb = self.params.work_between;
        // The wrap slot after the last site's pad.
        if self.cur_site == n {
            let pc = self.body_base + (n * self.slots * 4) as u64;
            self.cur_site = 0;
            self.slot = 0;
            return Inst::branch(
                pc,
                BranchInfo {
                    kind: BranchKind::UncondDirect,
                    taken: true,
                    target: self.body_base,
                },
                [None, None],
            );
        }
        let site_base = self.body_base + (self.cur_site * self.slots * 4) as u64;
        let pc = site_base + 4 * self.slot as u64;
        if self.slot != wb {
            // Body or pad filler.
            let in_pad = self.slot > wb;
            self.slot += 1;
            if self.slot == self.slots {
                // Pad complete: fall through into the next site, or onto
                // the wrap slot after the last site (cur_site == n).
                self.cur_site += 1;
                self.slot = 0;
            }
            if !in_pad && self.rng.gen_bool(self.params.load_frac) {
                let off = self.rng.gen_range(0..self.params.working_set.max(64)) & !7;
                let dst = self.rotor.alloc();
                return Inst::load(pc, dst, Some(Reg::int(19)), self.data_base + off);
            }
            let dst = self.rotor.alloc();
            let s = self.rotor.pick(&mut self.rng);
            return Inst::alu(pc, dst, [Some(s), None]);
        }
        // The site's conditional branch: taken skips this site's pad.
        let taken = self.outcome(self.cur_site);
        self.ghist = (self.ghist << 1) | taken as u64;
        let site = &self.sites[self.cur_site];
        let (bpc, target) = (site.pc, site.target);
        debug_assert_eq!(bpc, pc);
        if taken {
            // Skip the pad. The last site's taken target is site 0
            // directly (it bypasses the wrap slot).
            self.cur_site = if self.cur_site + 1 == n { 0 } else { self.cur_site + 1 };
            self.slot = 0;
        } else {
            self.slot = wb + 1; // execute the pad
        }
        Inst::branch(
            bpc,
            BranchInfo {
                kind: BranchKind::CondDirect,
                taken,
                target,
            },
            [Some(self.rotor.recent(0)), None],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenIter;

    fn outcomes(params: &MarkovParams, n: usize, seed: u64) -> Vec<(u64, bool)> {
        GenIter(MarkovBranches::new(params, 5, seed))
            .take(n)
            .filter(|i| i.branch.is_some())
            .map(|i| (i.pc, i.branch.unwrap().taken))
            .collect()
    }

    #[test]
    fn zero_noise_outcomes_are_history_determined() {
        // With no noise, replaying the generator gives identical outcomes.
        let p = MarkovParams {
            noise: 0.0,
            load_frac: 0.0,
            ..Default::default()
        };
        let a = outcomes(&p, 20_000, 3);
        let b = outcomes(&p, 20_000, 3);
        assert_eq!(a, b);
        // And both directions appear.
        let takens = a.iter().filter(|(_, t)| *t).count();
        assert!(takens > a.len() / 10 && takens < a.len() * 9 / 10);
    }

    #[test]
    fn sites_have_distinct_pcs() {
        let p = MarkovParams {
            sites: 16,
            ..Default::default()
        };
        let o = outcomes(&p, 10_000, 1);
        let mut pcs: Vec<u64> = o.iter().map(|(pc, _)| *pc).collect();
        pcs.sort_unstable();
        pcs.dedup();
        // 16 conditional sites plus the wrap-around unconditional branch.
        assert_eq!(pcs.len(), 17);
    }

    #[test]
    fn pc_chain_is_consistent() {
        let p = MarkovParams::default();
        let insts: Vec<Inst> = GenIter(MarkovBranches::new(&p, 5, 7)).take(5_000).collect();
        for w in insts.windows(2) {
            assert_eq!(w[0].next_pc(), w[1].pc);
        }
    }

    #[test]
    fn zero_noise_system_is_eventually_periodic() {
        // With no noise the whole generator is a finite deterministic
        // automaton over (site, bounded history), so the outcome stream
        // must become periodic — i.e. fully learnable with enough history.
        let p = MarkovParams {
            sites: 3,
            history_depth: 2,
            taps: 1,
            noise: 0.0,
            work_between: 1,
            load_frac: 0.0,
            ..Default::default()
        };
        let o = outcomes(&p, 400, 9);
        let dirs: Vec<bool> = o.iter().map(|(_, t)| *t).collect();
        let tail = &dirs[100..];
        let periodic = (1..=48).any(|per| (0..tail.len() - per).all(|k| tail[k] == tail[k + per]));
        assert!(periodic, "zero-noise stream must settle into a cycle");
    }
}
