//! Tight nested-loop kernels.
//!
//! These are the workloads the paper's µBTB "lock" mode (§IV.B) and the
//! micro-op cache (§VI) are built for: a small, fully predictable CFG that
//! fits in the µBTB graph, with strided data access that the multi-stride L1
//! prefetcher (§VII.A) covers.

use super::{rng_from_seed, CodeLayout, DataLayout, RegRotor, TraceGen};
use crate::inst::{BranchInfo, BranchKind, Inst, InstKind, Reg};
use rand::rngs::SmallRng;
use rand::Rng;

/// Parameters for a [`LoopNest`] kernel.
#[derive(Debug, Clone)]
pub struct LoopNestParams {
    /// Loop nesting depth (1..=4).
    pub depth: usize,
    /// Trip count per level, innermost first. Length must equal `depth`.
    pub trip_counts: Vec<u32>,
    /// Instructions in the innermost loop body (excluding the back branch).
    pub body_len: usize,
    /// Loads per innermost body.
    pub loads_per_body: usize,
    /// Stores per innermost body.
    pub stores_per_body: usize,
    /// Byte stride between successive iterations' accesses.
    pub stride: i64,
    /// Working-set size in bytes; addresses wrap at this bound.
    pub working_set: u64,
    /// Fraction (0..=1) of ALU slots that are FP MAC ops.
    pub fp_frac: f64,
}

impl Default for LoopNestParams {
    fn default() -> Self {
        LoopNestParams {
            depth: 2,
            trip_counts: vec![64, 1024],
            body_len: 8,
            loads_per_body: 2,
            stores_per_body: 1,
            stride: 64,
            working_set: 16 * 1024,
            fp_frac: 0.25,
        }
    }
}

/// One slot of the static loop program.
#[derive(Debug, Clone, Copy)]
enum Slot {
    /// Non-branch instruction; payload chosen at emit time.
    Body { is_load: bool, is_store: bool, is_fp: bool },
    /// Backward conditional branch closing loop `level`; `head` is the slot
    /// index of that loop's first instruction.
    Back { level: usize, head: usize },
    /// Unconditional jump back to the top of the whole nest.
    Restart,
}

/// A deterministic nested-loop kernel generator.
///
/// The emitted CFG is: per level a body of straight-line instructions
/// terminated by a backward conditional branch that is taken
/// `trip_count - 1` times out of every `trip_count` executions.
#[derive(Debug, Clone)]
pub struct LoopNest {
    program: Vec<Slot>,
    pcs: Vec<u64>,
    counters: Vec<u32>,
    trip_counts: Vec<u32>,
    cursor: usize,
    rotor: RegRotor,
    rng: SmallRng,
    data_base: u64,
    working_set: u64,
    stride: i64,
    iter: u64,
    mem_slot: u64,
}

impl LoopNest {
    /// Build a loop nest from `params`, laying code into `region` and using
    /// `seed` for the (static) body composition.
    ///
    /// # Panics
    /// Panics if `params.depth` is 0 or does not match `trip_counts`.
    pub fn new(params: &LoopNestParams, region: u64, seed: u64) -> LoopNest {
        assert!(params.depth >= 1 && params.depth <= 8, "depth out of range");
        assert_eq!(
            params.trip_counts.len(),
            params.depth,
            "trip_counts must match depth"
        );
        let mut rng = rng_from_seed(seed);
        let mut program = Vec::new();
        // Head slot index per level, outermost first during layout.
        let mut heads = vec![0usize; params.depth];
        // Outer levels get a tiny prologue body; the innermost gets the real
        // body. Levels are numbered 0 = innermost.
        for lv in (1..params.depth).rev() {
            heads[lv] = program.len();
            for _ in 0..2 {
                program.push(Slot::Body {
                    is_load: false,
                    is_store: false,
                    is_fp: false,
                });
            }
        }
        heads[0] = program.len();
        // Compose the innermost body: place loads/stores at spread positions.
        let body = params.body_len.max(params.loads_per_body + params.stores_per_body + 1);
        for i in 0..body {
            let is_load = i < params.loads_per_body;
            let is_store = !is_load && i < params.loads_per_body + params.stores_per_body;
            let is_fp = !is_load && !is_store && rng.gen_bool(params.fp_frac);
            program.push(Slot::Body {
                is_load,
                is_store,
                is_fp,
            });
        }
        program.push(Slot::Back {
            level: 0,
            head: heads[0],
        });
        for lv in 1..params.depth {
            // Small epilogue body then the level's back branch.
            program.push(Slot::Body {
                is_load: false,
                is_store: false,
                is_fp: false,
            });
            program.push(Slot::Back {
                level: lv,
                head: heads[lv],
            });
        }
        program.push(Slot::Restart);
        let mut layout = CodeLayout::region(region);
        let base = layout.alloc_block(program.len() as u64);
        let pcs: Vec<u64> = (0..program.len()).map(|i| base + 4 * i as u64).collect();
        LoopNest {
            program,
            pcs,
            counters: vec![0; params.depth],
            trip_counts: params.trip_counts.clone(),
            cursor: 0,
            rotor: RegRotor::int_range(1, 12),
            rng,
            data_base: DataLayout::region(region).base(),
            working_set: params.working_set.max(64),
            stride: params.stride,
            iter: 0,
            mem_slot: 0,
        }
    }

    fn mem_addr(&mut self) -> u64 {
        let lin = (self.iter as i64)
            .wrapping_mul(self.stride)
            .wrapping_add(self.mem_slot as i64 * 8);
        self.mem_slot += 1;
        let off = (lin.rem_euclid(self.working_set as i64)) as u64;
        self.data_base + off
    }
}

impl TraceGen for LoopNest {
    fn next_inst(&mut self) -> Inst {
        let idx = self.cursor;
        let pc = self.pcs[idx];
        match self.program[idx] {
            Slot::Body {
                is_load,
                is_store,
                is_fp,
            } => {
                self.cursor += 1;
                if is_load {
                    let a = self.mem_addr();
                    let dst = self.rotor.alloc();
                    Inst::load(pc, dst, Some(Reg::int(20)), a)
                } else if is_store {
                    let a = self.mem_addr();
                    let src = self.rotor.recent(0);
                    Inst::store(pc, Some(src), Some(Reg::int(20)), a)
                } else if is_fp {
                    Inst {
                        pc,
                        kind: InstKind::FpMac,
                        srcs: [Some(Reg::fp(1)), Some(Reg::fp(2))],
                        dst: Some(Reg::fp(3)),
                        mem: None,
                        branch: None,
                    }
                } else {
                    let s0 = self.rotor.recent(1);
                    let s1 = self.rotor.pick(&mut self.rng);
                    let dst = self.rotor.alloc();
                    Inst::alu(pc, dst, [Some(s0), Some(s1)])
                }
            }
            Slot::Back { level, head } => {
                self.counters[level] += 1;
                let taken = self.counters[level] < self.trip_counts[level];
                if taken {
                    self.cursor = head;
                } else {
                    self.counters[level] = 0;
                    self.cursor += 1;
                }
                if level == 0 {
                    self.iter += 1;
                    self.mem_slot = 0;
                }
                Inst::branch(
                    pc,
                    BranchInfo {
                        kind: BranchKind::CondDirect,
                        taken,
                        target: self.pcs[head],
                    },
                    [Some(self.rotor.recent(0)), None],
                )
            }
            Slot::Restart => {
                self.cursor = 0;
                Inst::branch(
                    pc,
                    BranchInfo {
                        kind: BranchKind::UncondDirect,
                        taken: true,
                        target: self.pcs[0],
                    },
                    [None, None],
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenIter;

    fn run(params: &LoopNestParams, n: usize) -> Vec<Inst> {
        GenIter(LoopNest::new(params, 0, 1)).take(n).collect()
    }

    #[test]
    fn inner_branch_taken_trip_minus_one_times() {
        let p = LoopNestParams {
            depth: 1,
            trip_counts: vec![4],
            body_len: 2,
            loads_per_body: 0,
            stores_per_body: 0,
            ..Default::default()
        };
        let insts = run(&p, 100);
        // Only the conditional back-branch; the nest-restart jump is
        // unconditional.
        let branches: Vec<_> = insts
            .iter()
            .filter(|i| matches!(i.branch, Some(b) if b.kind == crate::inst::BranchKind::CondDirect))
            .collect();
        // Pattern per nest execution: T,T,T,NT repeating.
        let dirs: Vec<bool> = branches.iter().map(|b| b.branch.unwrap().taken).collect();
        assert_eq!(&dirs[..8], &[true, true, true, false, true, true, true, false]);
    }

    #[test]
    fn nested_loops_interleave_levels() {
        let p = LoopNestParams {
            depth: 2,
            trip_counts: vec![2, 3],
            body_len: 1,
            loads_per_body: 0,
            stores_per_body: 0,
            ..Default::default()
        };
        let insts = run(&p, 400);
        // Two distinct branch PCs must appear.
        let mut pcs: Vec<u64> = insts
            .iter()
            .filter(|i| matches!(i.branch, Some(b) if b.kind == crate::inst::BranchKind::CondDirect))
            .map(|i| i.pc)
            .collect();
        pcs.sort_unstable();
        pcs.dedup();
        assert_eq!(pcs.len(), 2);
    }

    #[test]
    fn loads_are_strided() {
        let p = LoopNestParams {
            depth: 1,
            trip_counts: vec![1000],
            body_len: 4,
            loads_per_body: 1,
            stores_per_body: 0,
            stride: 64,
            working_set: 1 << 20,
            ..Default::default()
        };
        let insts = run(&p, 200);
        let addrs: Vec<u64> = insts.iter().filter_map(|i| i.mem.map(|m| m.vaddr)).collect();
        assert!(addrs.len() >= 10);
        for w in addrs.windows(2) {
            assert_eq!(w[1] - w[0], 64);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = LoopNestParams::default();
        let a = run(&p, 500);
        let b = run(&p, 500);
        assert_eq!(a, b);
    }

    #[test]
    fn code_fits_small_footprint() {
        let p = LoopNestParams::default();
        let insts = run(&p, 2000);
        let mut pcs: Vec<u64> = insts.iter().map(|i| i.pc).collect();
        pcs.sort_unstable();
        pcs.dedup();
        assert!(pcs.len() < 64, "loop kernel must have a tiny code footprint");
    }
}
