//! Synthetic workload generators.
//!
//! The paper evaluates on 4,026 proprietary trace slices (SPEC, web suites,
//! mobile suites, games). Those traces are not available, so this module
//! provides seeded, deterministic generators for each *behaviour class* the
//! paper's evaluation leans on:
//!
//! * [`loops`] — tight predictable kernels (the µBTB/UOC "lockable" case,
//!   high-IPC right side of Fig. 17);
//! * [`pointer_chase`] — dependent-load, memory-latency-bound work (the
//!   low-IPC left side of Fig. 16/17);
//! * [`streaming`] — multi-stride regular access (the L1 prefetcher's home
//!   turf, §VII);
//! * [`web`] — indirect-branch-heavy, large-code-footprint work standing in
//!   for JavaScript/browser suites (§IV.F, §IV.D);
//! * [`spatial`] — region-correlated irregular accesses that only an
//!   SMS-style prefetcher covers (§VII.C);
//! * [`markov`] — conditional branches whose outcome depends on bounded
//!   history, for the GHIST sweep of Fig. 1 and the hard middle of Fig. 9;
//! * [`mixed`] — phase-interleaved combinations.
//!
//! All generators are infinite; slicing (warmup + detail window) is applied
//! by [`crate::sample`].

use crate::inst::{Inst, Reg};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub mod loops;
pub mod markov;
pub mod mixed;
pub mod pointer_chase;
pub mod spatial;
pub mod streaming;
pub mod web;

/// An infinite, deterministic instruction stream.
///
/// Implementors must be fully determined by their construction parameters
/// and seed: two generators built identically produce identical streams.
pub trait TraceGen {
    /// Produce the next instruction. Never exhausts.
    fn next_inst(&mut self) -> Inst;

    /// Adapt into an ordinary iterator (infinite).
    fn into_iter_gen(self) -> GenIter<Self>
    where
        Self: Sized,
    {
        GenIter(self)
    }
}

/// Iterator adapter returned by [`TraceGen::into_iter_gen`].
#[derive(Debug, Clone)]
pub struct GenIter<G>(pub G);

impl<G: TraceGen> Iterator for GenIter<G> {
    type Item = Inst;
    fn next(&mut self) -> Option<Inst> {
        Some(self.0.next_inst())
    }
}

/// A boxed trace generator, the common currency of the suite catalog.
pub type BoxedGen = Box<dyn TraceGen + Send>;

impl TraceGen for BoxedGen {
    fn next_inst(&mut self) -> Inst {
        (**self).next_inst()
    }
}

/// Deterministic RNG used by all generators.
pub(crate) fn rng_from_seed(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
}

/// Rotating register allocator.
///
/// Hands out destination registers round-robin over a window so that
/// dependency chains have realistic, bounded length, and picks sources from
/// recently written registers to create genuine dataflow.
#[derive(Debug, Clone)]
pub(crate) struct RegRotor {
    next: u8,
    lo: u8,
    hi: u8,
    recent: [Reg; 4],
}

impl RegRotor {
    /// A rotor over integer registers `r{lo}..r{hi}` (exclusive).
    pub fn int_range(lo: u8, hi: u8) -> RegRotor {
        assert!(lo < hi && hi <= Reg::NUM_INT);
        RegRotor {
            next: lo,
            lo,
            hi,
            recent: [Reg::int(lo); 4],
        }
    }

    /// Allocate the next destination register.
    pub fn alloc(&mut self) -> Reg {
        let r = Reg(self.next);
        self.next += 1;
        if self.next >= self.hi {
            self.next = self.lo;
        }
        self.recent.rotate_right(1);
        self.recent[0] = r;
        r
    }

    /// A recently written register (age 0 = most recent).
    pub fn recent(&self, age: usize) -> Reg {
        self.recent[age.min(self.recent.len() - 1)]
    }

    /// A random recently written register.
    pub fn pick(&self, rng: &mut SmallRng) -> Reg {
        self.recent[rng.gen_range(0..self.recent.len())]
    }
}

/// Lay out code regions in a synthetic virtual address space.
///
/// Each generator claims a distinct 256 MiB code window so PCs never collide
/// when generators are mixed.
#[derive(Debug, Clone, Copy)]
pub struct CodeLayout {
    next: u64,
}

impl CodeLayout {
    /// Code window `region` (0-based) of the synthetic address space.
    pub fn region(region: u64) -> CodeLayout {
        let base = 0x0000_4000_0000 + region * 0x1000_0000;
        CodeLayout { next: base }
    }

    /// Allocate a code block of `insts` instructions, aligned to 64 B.
    pub fn alloc_block(&mut self, insts: u64) -> u64 {
        let pc = self.next;
        self.next += (insts * 4 + 63) & !63;
        pc
    }

}

/// Data-region allocator: 1 GiB windows above the code space.
#[derive(Debug, Clone, Copy)]
pub struct DataLayout {
    base: u64,
}

impl DataLayout {
    /// Data window `region` (0-based).
    pub fn region(region: u64) -> DataLayout {
        DataLayout {
            base: 0x0010_0000_0000 + region * 0x4000_0000,
        }
    }

    /// Base address of this layout's window.
    pub fn base(&self) -> u64 {
        self.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotor_cycles_and_tracks_recency() {
        let mut r = RegRotor::int_range(1, 4);
        let a = r.alloc();
        let b = r.alloc();
        let c = r.alloc();
        let a2 = r.alloc();
        assert_eq!(a, a2);
        assert_eq!([a, b, c], [Reg::int(1), Reg::int(2), Reg::int(3)]);
        assert_eq!(r.recent(0), a2);
        assert_eq!(r.recent(1), c);
    }

    #[test]
    fn code_layout_regions_disjoint() {
        let mut a = CodeLayout::region(0);
        let mut b = CodeLayout::region(1);
        let pa = a.alloc_block(1000);
        let pb = b.alloc_block(1000);
        assert!(pb - pa >= 0x1000_0000);
        let pa2 = a.alloc_block(10);
        assert!(pa2 >= pa + 4000);
        assert_eq!(pa2 % 64, 0);
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = rng_from_seed(42);
        let mut b = rng_from_seed(42);
        let xa: u64 = a.gen();
        let xb: u64 = b.gen();
        assert_eq!(xa, xb);
    }
}
