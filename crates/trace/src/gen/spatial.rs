//! Spatially-correlated irregular workloads (SMS territory).
//!
//! §VII.C: "programs which traverse a linked-list or other certain types of
//! data structures are not covered at all [by the stride engine]. To attack
//! these cases, in M3 an additional L1 prefetch engine is added — a spatial
//! memory stream (SMS) prefetcher. This engine tracks a primary load (the
//! first miss to a region), and attaches associated accesses to it."
//!
//! This generator visits 4 KiB regions in an irregular (stride-hostile)
//! order, but within each region issues a *recurring offset signature*
//! tied to the primary load's PC — exactly the structure SMS learns. A
//! fraction of transient offsets is included, which SMS's per-offset
//! confidence must filter out.

use super::{rng_from_seed, CodeLayout, DataLayout, RegRotor, TraceGen};
use crate::inst::{BranchInfo, BranchKind, Inst, Reg};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Parameters for a [`SpatialRegions`] workload.
#[derive(Debug, Clone)]
pub struct SpatialParams {
    /// Number of 4 KiB regions in the working set.
    pub regions: usize,
    /// Stable offsets accessed in every region visit (the signature).
    pub signature_len: usize,
    /// Transient offsets added per visit (noise SMS should filter).
    pub transient_per_visit: usize,
    /// Number of distinct site signatures (primary-load PCs).
    pub sites: usize,
    /// Filler instructions between loads.
    pub work_between: usize,
}

impl Default for SpatialParams {
    fn default() -> Self {
        SpatialParams {
            regions: 2048,
            signature_len: 6,
            transient_per_visit: 1,
            sites: 4,
            work_between: 2,
        }
    }
}

/// Spatial-region access generator. See [module docs](self).
#[derive(Debug, Clone)]
pub struct SpatialRegions {
    params: SpatialParams,
    /// Per-site stable offset signature (byte offsets within the region).
    signatures: Vec<Vec<u64>>,
    /// Shuffled region visit order.
    region_order: Vec<u32>,
    order_pos: usize,
    data_base: u64,
    /// Per-site primary/associated load PCs: site code blocks.
    site_pcs: Vec<u64>,
    cur_site: usize,
    /// Remaining loads this visit: (pc_slot, offset).
    visit_queue: Vec<(usize, u64)>,
    visit_pos: usize,
    cur_region: u32,
    slot: usize,
    slots_per_load: usize,
    rotor: RegRotor,
    rng: SmallRng,
}

impl SpatialRegions {
    /// Build a spatial-region workload in `region_id` from `seed`.
    ///
    /// # Panics
    /// Panics if any size parameter is zero.
    pub fn new(params: &SpatialParams, region_id: u64, seed: u64) -> SpatialRegions {
        assert!(params.regions >= 2 && params.sites >= 1 && params.signature_len >= 1);
        let mut rng = rng_from_seed(seed);
        let signatures: Vec<Vec<u64>> = (0..params.sites)
            .map(|_| {
                let mut offs: Vec<u64> = (1..64).map(|i| i * 64).collect();
                offs.shuffle(&mut rng);
                offs.truncate(params.signature_len);
                offs
            })
            .collect();
        let mut region_order: Vec<u32> = (0..params.regions as u32).collect();
        region_order.shuffle(&mut rng);
        let mut layout = CodeLayout::region(region_id);
        // Each site gets a contiguous code block: one load slot per
        // signature entry + transient + fillers + a closing branch.
        let loads_per_visit = 1 + params.signature_len + params.transient_per_visit;
        let slots_per_load = 1 + params.work_between;
        let block = loads_per_visit * slots_per_load + 1;
        let site_pcs: Vec<u64> = (0..params.sites)
            .map(|_| layout.alloc_block(block as u64))
            .collect();
        SpatialRegions {
            params: params.clone(),
            signatures,
            region_order,
            order_pos: 0,
            data_base: DataLayout::region(region_id).base(),
            site_pcs,
            cur_site: 0,
            visit_queue: Vec::new(),
            visit_pos: 0,
            cur_region: 0,
            slot: 0,
            slots_per_load,
            rotor: RegRotor::int_range(4, 14),
            rng,
        }
    }

    fn begin_visit(&mut self) {
        self.cur_region = self.region_order[self.order_pos];
        self.order_pos = (self.order_pos + 1) % self.region_order.len();
        self.cur_site = self.rng.gen_range(0..self.params.sites);
        self.visit_queue.clear();
        // Primary load at offset 0 (slot 0), then the signature, then
        // transients at random offsets.
        self.visit_queue.push((0, 0));
        let sig = self.signatures[self.cur_site].clone();
        for (k, off) in sig.iter().enumerate() {
            self.visit_queue.push((k + 1, *off));
        }
        for t in 0..self.params.transient_per_visit {
            let off = self.rng.gen_range(1..64u64) * 64;
            self.visit_queue
                .push((1 + self.params.signature_len + t, off));
        }
        self.visit_pos = 0;
        self.slot = 0;
    }

    fn region_base(&self, region: u32) -> u64 {
        self.data_base + region as u64 * 4096
    }
}

impl TraceGen for SpatialRegions {
    fn next_inst(&mut self) -> Inst {
        if self.visit_pos >= self.visit_queue.len() {
            // Closing branch of the visit; then start the next one.
            if self.visit_pos == self.visit_queue.len() && !self.visit_queue.is_empty() {
                let site_base = self.site_pcs[self.cur_site];
                let pc = site_base
                    + (self.visit_queue.len() * self.slots_per_load) as u64 * 4;
                self.begin_visit();
                let target = self.site_pcs[self.cur_site];
                return Inst::branch(
                    pc,
                    BranchInfo {
                        kind: BranchKind::IndirectJump,
                        taken: true,
                        target,
                    },
                    [Some(Reg::int(17)), None],
                );
            }
            self.begin_visit();
        }
        let site_base = self.site_pcs[self.cur_site];
        let (load_idx, off) = self.visit_queue[self.visit_pos];
        let pc = site_base + ((load_idx * self.slots_per_load + self.slot) as u64) * 4;
        if self.slot == 0 {
            // The load itself.
            self.slot = if self.slots_per_load > 1 { 1 } else { 0 };
            if self.slots_per_load == 1 {
                self.visit_pos += 1;
            }
            let addr = self.region_base(self.cur_region) + off;
            let dst = self.rotor.alloc();
            return Inst::load(pc, dst, Some(Reg::int(18)), addr);
        }
        // Filler slots.
        let done = self.slot == self.slots_per_load - 1;
        if done {
            self.slot = 0;
            self.visit_pos += 1;
        } else {
            self.slot += 1;
        }
        let dst = self.rotor.alloc();
        let s = self.rotor.pick(&mut self.rng);
        Inst::alu(pc, dst, [Some(s), None])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenIter;
    use crate::inst::InstKind;
    use std::collections::HashMap;

    #[test]
    fn signature_offsets_recur_per_site() {
        let p = SpatialParams {
            regions: 64,
            signature_len: 4,
            transient_per_visit: 0,
            sites: 1,
            work_between: 0,
        };
        let insts: Vec<Inst> = GenIter(SpatialRegions::new(&p, 6, 3)).take(2_000).collect();
        // Group loads by region; every region visit must show the same
        // offset set.
        let mut by_region: HashMap<u64, Vec<u64>> = HashMap::new();
        for i in &insts {
            if i.kind == InstKind::Load {
                let a = i.mem.unwrap().vaddr;
                by_region.entry(a / 4096).or_default().push(a % 4096);
            }
        }
        // Each complete visit contributes 5 loads (primary + 4 signature);
        // every complete visit of every region must show the same offsets.
        let mut sigs: Vec<Vec<u64>> = Vec::new();
        for v in by_region.values() {
            for chunk in v.chunks_exact(5) {
                let mut s = chunk.to_vec();
                s.sort_unstable();
                sigs.push(s);
            }
        }
        assert!(!sigs.is_empty());
        sigs.sort();
        sigs.dedup();
        assert_eq!(sigs.len(), 1, "all visits must share one offset signature");
    }

    #[test]
    fn region_visit_order_is_irregular() {
        let p = SpatialParams::default();
        let insts: Vec<Inst> = GenIter(SpatialRegions::new(&p, 6, 3)).take(5_000).collect();
        let primaries: Vec<u64> = insts
            .iter()
            .filter(|i| i.kind == InstKind::Load && i.mem.unwrap().vaddr % 4096 == 0)
            .map(|i| i.mem.unwrap().vaddr / 4096)
            .collect();
        let deltas: Vec<i64> = primaries.windows(2).map(|w| w[1] as i64 - w[0] as i64).collect();
        let mut counts: HashMap<i64, usize> = HashMap::new();
        for d in &deltas {
            *counts.entry(*d).or_default() += 1;
        }
        let most = counts.values().max().copied().unwrap_or(0);
        assert!(
            most < deltas.len() / 2,
            "no single region stride may dominate (stride-hostile)"
        );
    }

    #[test]
    fn pc_chain_is_consistent() {
        let p = SpatialParams::default();
        let insts: Vec<Inst> = GenIter(SpatialRegions::new(&p, 6, 9)).take(3_000).collect();
        for w in insts.windows(2) {
            assert_eq!(w[0].next_pc(), w[1].pc, "at {:x}", w[0].pc);
        }
    }

    #[test]
    fn transients_vary_across_visits() {
        let p = SpatialParams {
            regions: 16,
            signature_len: 2,
            transient_per_visit: 2,
            sites: 1,
            work_between: 0,
        };
        let insts: Vec<Inst> = GenIter(SpatialRegions::new(&p, 6, 3)).take(4_000).collect();
        let mut by_region: HashMap<u64, Vec<u64>> = HashMap::new();
        for i in &insts {
            if i.kind == InstKind::Load {
                let a = i.mem.unwrap().vaddr;
                by_region.entry(a / 4096).or_default().push(a % 4096);
            }
        }
        // Across two visits of the same region, at least one offset differs.
        let varied = by_region.values().any(|v| {
            v.len() >= 10 && {
                let first: Vec<u64> = v[..5].to_vec();
                let second: Vec<u64> = v[5..10].to_vec();
                first != second
            }
        });
        assert!(varied, "transient offsets must differ between visits");
    }
}
