//! Phase-interleaved workload composition.
//!
//! Real applications alternate between behaviours (§VIII.D motivates the
//! adaptive prefetcher with "transitions between application phases that
//! are prefetcher friendly and phases that are difficult"). [`PhaseMix`]
//! interleaves several generators in fixed-length phases.
//!
//! At a phase boundary the PC stream is discontinuous (as it would be
//! across a syscall or context switch in a real trace); downstream models
//! treat such gaps as pipeline-refill events.

use super::{BoxedGen, TraceGen};
use crate::inst::Inst;

/// Interleaves child generators in round-robin phases of `phase_len`
/// instructions each.
pub struct PhaseMix {
    children: Vec<BoxedGen>,
    phase_len: u64,
    cur: usize,
    left: u64,
}

impl std::fmt::Debug for PhaseMix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhaseMix")
            .field("children", &self.children.len())
            .field("phase_len", &self.phase_len)
            .field("cur", &self.cur)
            .finish()
    }
}

impl PhaseMix {
    /// Compose `children` into phases of `phase_len` instructions.
    ///
    /// # Panics
    /// Panics if `children` is empty or `phase_len` is zero.
    pub fn new(children: Vec<BoxedGen>, phase_len: u64) -> PhaseMix {
        assert!(!children.is_empty(), "need at least one child generator");
        assert!(phase_len > 0, "phase length must be positive");
        PhaseMix {
            children,
            phase_len,
            cur: 0,
            left: phase_len,
        }
    }
}

impl TraceGen for PhaseMix {
    fn next_inst(&mut self) -> Inst {
        if self.left == 0 {
            self.cur = (self.cur + 1) % self.children.len();
            self.left = self.phase_len;
        }
        self.left -= 1;
        self.children[self.cur].next_inst()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::loops::{LoopNest, LoopNestParams};
    use crate::gen::streaming::{MultiStride, MultiStrideParams};
    use crate::gen::GenIter;

    fn mk() -> PhaseMix {
        let a = LoopNest::new(&LoopNestParams::default(), 10, 1);
        let b = MultiStride::new(&MultiStrideParams::default(), 11, 2);
        PhaseMix::new(vec![Box::new(a), Box::new(b)], 100)
    }

    #[test]
    fn phases_alternate() {
        let insts: Vec<Inst> = GenIter(mk()).take(400).collect();
        // Loop kernel lives in code region 10, streams in region 11.
        let region = |pc: u64| (pc - 0x0000_4000_0000) / 0x1000_0000;
        assert_eq!(region(insts[0].pc), 10);
        assert_eq!(region(insts[150].pc), 11);
        assert_eq!(region(insts[250].pc), 10);
        assert_eq!(region(insts[350].pc), 11);
    }

    #[test]
    fn children_resume_where_they_left_off() {
        let mixed: Vec<Inst> = GenIter(mk()).take(400).collect();
        let solo: Vec<Inst> = GenIter(LoopNest::new(&LoopNestParams::default(), 10, 1))
            .take(200)
            .collect();
        // Phase 0 (0..100) and phase 2 (200..300) concatenated must equal
        // the solo generator's first 200 instructions.
        let reassembled: Vec<Inst> = mixed[..100]
            .iter()
            .chain(&mixed[200..300])
            .copied()
            .collect();
        assert_eq!(reassembled, solo);
    }

    #[test]
    #[should_panic]
    fn empty_children_rejected() {
        let _ = PhaseMix::new(vec![], 10);
    }
}
