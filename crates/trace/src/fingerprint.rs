//! Canonical workload fingerprints.
//!
//! The chunk cache ([`exynos_core::batch`]'s `ChunkCache` in the core
//! crate) keys decoded trace chunks by *what stream they came from*, not
//! by which catalog entry asked for them. That identity is the
//! **fingerprint**: a stable 128-bit digest over every parameter that can
//! change the emitted instruction stream — and *only* those parameters.
//! Two `SliceSpec`s with different names but identical generator params,
//! region and seed hash equal, so their chunks are shared; flipping any
//! stream-affecting field (a trip count, a noise fraction, the seed, the
//! region) changes the digest.
//!
//! The hash is FNV-1a/128 — dependency-free, stable across platforms and
//! runs (unlike `std::hash`'s `RandomState`), and cheap enough to compute
//! at catalog-build time. Floats are hashed via [`f64::to_bits`] so the
//! digest distinguishes every representable value, including `-0.0` vs
//! `0.0` (which a float compare would merge but the generators' RNG
//! seeding may not).

/// A stable 128-bit content digest of a workload or stream identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// The low 64 bits, for contexts that want a compact key.
    pub fn short(self) -> u64 {
        self.0 as u64
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

const FNV_OFFSET_128: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME_128: u128 = 0x0000000001000000000000000000013B;

/// An incremental FNV-1a/128 hasher.
///
/// Every `write_*` method also folds in a one-byte *type tag* ahead of the
/// value bytes so that, e.g., the empty string followed by `0u64` cannot
/// collide with `0u64` followed by the empty string — field order and
/// field kinds are both part of the digest.
#[derive(Debug, Clone)]
pub struct FingerprintHasher {
    state: u128,
}

impl Default for FingerprintHasher {
    fn default() -> Self {
        FingerprintHasher::new()
    }
}

impl FingerprintHasher {
    /// Start a fresh hash at the FNV offset basis.
    pub fn new() -> FingerprintHasher {
        FingerprintHasher { state: FNV_OFFSET_128 }
    }

    fn byte(&mut self, b: u8) {
        self.state ^= b as u128;
        self.state = self.state.wrapping_mul(FNV_PRIME_128);
    }

    /// Fold raw bytes (length-prefixed so concatenations can't collide).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.byte(0xB1);
        self.write_u64_raw(bytes.len() as u64);
        for &b in bytes {
            self.byte(b);
        }
    }

    fn write_u64_raw(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    /// Fold one unsigned 64-bit value.
    pub fn write_u64(&mut self, v: u64) {
        self.byte(0xA4);
        self.write_u64_raw(v);
    }

    /// Fold one signed 64-bit value.
    pub fn write_i64(&mut self, v: i64) {
        self.byte(0xA5);
        self.write_u64_raw(v as u64);
    }

    /// Fold one float by its exact bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.byte(0xA6);
        self.write_u64_raw(v.to_bits());
    }

    /// Fold one boolean.
    pub fn write_bool(&mut self, v: bool) {
        self.byte(0xA7);
        self.byte(v as u8);
    }

    /// Fold a string (length-prefixed UTF-8 bytes).
    pub fn write_str(&mut self, s: &str) {
        self.byte(0xA8);
        self.write_u64_raw(s.len() as u64);
        for &b in s.as_bytes() {
            self.byte(b);
        }
    }

    /// Finish and return the digest.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_hash_is_offset_basis() {
        assert_eq!(FingerprintHasher::new().finish().0, FNV_OFFSET_128);
    }

    #[test]
    fn same_input_same_digest() {
        let mut a = FingerprintHasher::new();
        let mut b = FingerprintHasher::new();
        for h in [&mut a, &mut b] {
            h.write_str("loopnest");
            h.write_u64(42);
            h.write_f64(0.25);
        }
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn field_order_matters() {
        let mut a = FingerprintHasher::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = FingerprintHasher::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn type_tags_prevent_cross_kind_collisions() {
        let mut a = FingerprintHasher::new();
        a.write_u64(0);
        let mut b = FingerprintHasher::new();
        b.write_i64(0);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn length_prefix_prevents_concat_collisions() {
        let mut a = FingerprintHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = FingerprintHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn float_bits_distinguish_signed_zero() {
        let mut a = FingerprintHasher::new();
        a.write_f64(0.0);
        let mut b = FingerprintHasher::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn display_is_32_hex_digits() {
        let fp = FingerprintHasher::new().finish();
        let s = fp.to_string();
        assert_eq!(s.len(), 32);
        assert!(s.bytes().all(|b| b.is_ascii_hexdigit()));
    }
}
