//! SimPoint-style slice sampling.
//!
//! §II: "SimPoint and related techniques are used to reduce the simulation
//! run time for most workloads, with a warmup of 10M instructions and a
//! detailed simulation of the subsequent 100M instructions."
//!
//! The synthetic generators here are stationary by construction, so a
//! proportionally smaller window gives the same steady-state statistics;
//! [`SlicePlan::default`] keeps the paper's 1:10 warmup:detail ratio.

/// Warmup/detail window of one simulated slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlicePlan {
    /// Instructions run to warm microarchitectural state (no stats).
    pub warmup: u64,
    /// Instructions measured after warmup.
    pub detail: u64,
}

impl SlicePlan {
    /// A plan with explicit windows.
    ///
    /// # Panics
    /// Panics if `detail` is zero.
    pub fn new(warmup: u64, detail: u64) -> SlicePlan {
        assert!(detail > 0, "detail window must be non-empty");
        SlicePlan { warmup, detail }
    }

    /// Total instructions the slice consumes.
    pub fn total(&self) -> u64 {
        self.warmup + self.detail
    }

    /// Scale both windows by `num/den`, keeping at least one detail
    /// instruction. Used to shrink suites for quick test runs.
    pub fn scaled(&self, num: u64, den: u64) -> SlicePlan {
        assert!(den > 0, "zero denominator");
        SlicePlan {
            warmup: self.warmup * num / den,
            detail: (self.detail * num / den).max(1),
        }
    }
}

impl Default for SlicePlan {
    /// The paper's 10M/100M windows scaled by 1/500: 20k warmup, 200k
    /// detail — small enough for laptop-scale sweeps over hundreds of
    /// slices, large enough to train every predictor in the design.
    fn default() -> SlicePlan {
        SlicePlan {
            warmup: 20_000,
            detail: 200_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_keeps_paper_ratio() {
        let p = SlicePlan::default();
        assert_eq!(p.detail / p.warmup, 10);
    }

    #[test]
    fn scaled_never_empties_detail() {
        let p = SlicePlan::new(100, 10);
        let s = p.scaled(1, 1000);
        assert_eq!(s.detail, 1);
        assert_eq!(s.warmup, 0);
        assert_eq!(p.total(), 110);
    }

    #[test]
    #[should_panic]
    fn zero_detail_rejected() {
        let _ = SlicePlan::new(10, 0);
    }
}
