//! # exynos-trace — trace model and synthetic workload population
//!
//! The reproduction of *Evolution of the Samsung Exynos CPU
//! Microarchitecture* (ISCA 2020) is trace-driven, exactly like the paper's
//! own methodology (§II). This crate provides:
//!
//! * the [`Inst`] record model ([`inst`]) — PC, registers, resolved branch
//!   outcome/target, memory address;
//! * deterministic synthetic workload generators ([`gen`]) standing in for
//!   the paper's 4,026 proprietary trace slices;
//! * the suite catalog ([`suite`]) that assembles those generators into a
//!   population with the paper's qualitative shape;
//! * SimPoint-style slice windows ([`sample`]).
//!
//! ## Example
//!
//! ```
//! use exynos_trace::gen::loops::{LoopNest, LoopNestParams};
//! use exynos_trace::gen::TraceGen;
//!
//! let mut kernel = LoopNest::new(&LoopNestParams::default(), /*region=*/ 0, /*seed=*/ 1);
//! let first = kernel.next_inst();
//! let second = kernel.next_inst();
//! assert_eq!(first.fallthrough(), second.pc);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod fingerprint;
pub mod gen;
pub mod inst;
pub mod sample;
pub mod source;
pub mod suite;

pub use error::TraceError;
pub use fingerprint::{Fingerprint, FingerprintHasher};
pub use gen::{BoxedGen, TraceGen};
pub use inst::{BranchInfo, BranchKind, Inst, InstKind, MemRef, Reg};
pub use sample::SlicePlan;
pub use source::TraceSource;
pub use suite::{dedupe_shared_sources, standard_suite, SliceSpec, SuiteKind, WorkloadSpec};
