//! Typed errors for trace-source construction.
//!
//! Workload construction is fallible: a program source may fail to
//! assemble, a spec parameter may be out of range, and an executor may be
//! asked for something it cannot provide. All of those surface as a
//! [`TraceError`] from [`crate::suite::WorkloadSpec::build`] — never as a
//! panic (the tier-1 clippy gate rejects `unwrap`/`expect` in library
//! code).

/// Why a workload could not be built into a trace generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The assembler rejected a program source.
    Asm {
        /// Program name (file stem or corpus key).
        name: String,
        /// 1-based source line the error was detected on.
        line: u32,
        /// What was wrong.
        detail: String,
    },
    /// A structurally valid program cannot be executed as a trace source
    /// (e.g. an empty text section, or an entry point outside `.text`).
    Program {
        /// Program name.
        name: String,
        /// What was wrong.
        detail: String,
    },
    /// A workload spec parameter is out of its valid range.
    Spec {
        /// The offending parameter.
        param: &'static str,
        /// What was wrong.
        detail: String,
    },
}

impl TraceError {
    /// Short stable tag for reports and wire payloads.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceError::Asm { .. } => "asm",
            TraceError::Program { .. } => "program",
            TraceError::Spec { .. } => "spec",
        }
    }

    /// Convenience constructor for assembler diagnostics.
    pub fn asm(name: &str, line: u32, detail: impl Into<String>) -> TraceError {
        TraceError::Asm {
            name: name.to_string(),
            line,
            detail: detail.into(),
        }
    }

    /// Convenience constructor for program-level diagnostics.
    pub fn program(name: &str, detail: impl Into<String>) -> TraceError {
        TraceError::Program {
            name: name.to_string(),
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Asm { name, line, detail } => {
                write!(f, "asm error: {name}:{line}: {detail}")
            }
            TraceError::Program { name, detail } => {
                write!(f, "program error: {name}: {detail}")
            }
            TraceError::Spec { param, detail } => {
                write!(f, "spec error: {param}: {detail}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_location() {
        let e = TraceError::asm("fib", 12, "unknown mnemonic `addd`");
        assert_eq!(e.kind(), "asm");
        let s = e.to_string();
        assert!(s.contains("fib:12"), "{s}");
        assert!(s.contains("addd"), "{s}");
    }

    #[test]
    fn kinds_are_stable() {
        assert_eq!(TraceError::program("p", "d").kind(), "program");
        let s = TraceError::Spec {
            param: "scale",
            detail: "must be >= 1".into(),
        };
        assert_eq!(s.kind(), "spec");
        assert!(s.to_string().contains("scale"));
    }
}
