//! The trace record model.
//!
//! The simulator is *timing-first, functional-from-trace*: every instruction
//! in a trace carries its program counter, architectural register usage, the
//! resolved branch outcome/target (for control transfers) and the virtual
//! address touched (for memory operations). The timing model decides *when*
//! things happen; it never recomputes *what* they do.

/// An architectural register name.
///
/// The trace generators hand out integer registers `r0..r31` and
/// floating-point/SIMD registers `v0..v31`. Register 31 of the integer file
/// is treated as the always-zero register and never creates dependencies
/// (mirroring AArch64 `xzr`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// Number of architectural integer registers.
    pub const NUM_INT: u8 = 32;
    /// Number of architectural FP/SIMD registers.
    pub const NUM_FP: u8 = 32;
    /// Total architectural register namespace size (integer + FP).
    pub const NUM_TOTAL: u8 = Self::NUM_INT + Self::NUM_FP;

    /// The integer zero register (`xzr`); reads never create a dependency.
    pub const ZERO: Reg = Reg(31);

    /// Integer register `rN`.
    ///
    /// # Panics
    /// Panics if `n >= 32`.
    pub fn int(n: u8) -> Reg {
        assert!(n < Self::NUM_INT, "integer register out of range: {n}");
        Reg(n)
    }

    /// FP/SIMD register `vN`.
    ///
    /// # Panics
    /// Panics if `n >= 32`.
    pub fn fp(n: u8) -> Reg {
        assert!(n < Self::NUM_FP, "fp register out of range: {n}");
        Reg(Self::NUM_INT + n)
    }

    /// Whether this is an integer-file register.
    pub fn is_int(self) -> bool {
        self.0 < Self::NUM_INT
    }

    /// Whether this is an FP-file register.
    pub fn is_fp(self) -> bool {
        !self.is_int()
    }

    /// Whether reads of this register create no dependency (the zero reg).
    pub fn is_zero(self) -> bool {
        self == Self::ZERO
    }

    /// Flat index into a unified architectural register namespace.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_int() {
            write!(f, "r{}", self.0)
        } else {
            write!(f, "v{}", self.0 - Self::NUM_INT)
        }
    }
}

/// Functional class of an instruction, mapped onto the execution-port
/// taxonomy of Table I in the paper ("S", "C", "CD", "BR", load/store/generic
/// and FP pipes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstKind {
    /// Simple integer ALU op (add/shift/logical) — executes on an "S" pipe.
    IntAlu,
    /// Integer multiply — executes on a "C"-capable pipe.
    IntMul,
    /// Integer divide — executes on a "CD"-capable pipe.
    IntDiv,
    /// Load from memory.
    Load,
    /// Store to memory.
    Store,
    /// FP/SIMD add.
    FpAdd,
    /// FP/SIMD multiply.
    FpMul,
    /// FP/SIMD fused multiply-accumulate.
    FpMac,
    /// Control transfer; the branch payload in [`Inst::branch`] must be set.
    Branch,
    /// No-op / fence placeholder; occupies a slot but no execution port.
    Nop,
}

impl InstKind {
    /// Whether the instruction reads or writes memory.
    pub fn is_mem(self) -> bool {
        matches!(self, InstKind::Load | InstKind::Store)
    }

    /// Whether the instruction executes in the FP cluster.
    pub fn is_fp(self) -> bool {
        matches!(self, InstKind::FpAdd | InstKind::FpMul | InstKind::FpMac)
    }
}

/// The control-flow class of a branch, following the paper's predictor
/// taxonomy (conditional vs. unconditional, direct vs. indirect, call/return).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Conditional direct branch (B.cond).
    CondDirect,
    /// Unconditional direct branch (B).
    UncondDirect,
    /// Direct call (BL); pushes a return address.
    DirectCall,
    /// Indirect jump through a register (BR).
    IndirectJump,
    /// Indirect call (BLR); pushes a return address.
    IndirectCall,
    /// Function return (RET); predicted by the RAS.
    Return,
}

impl BranchKind {
    /// Conditional branches can be not-taken; everything else always
    /// redirects.
    pub fn is_conditional(self) -> bool {
        matches!(self, BranchKind::CondDirect)
    }

    /// Whether the target comes from a register (BTB cannot compute it from
    /// the instruction bytes).
    pub fn is_indirect(self) -> bool {
        matches!(
            self,
            BranchKind::IndirectJump | BranchKind::IndirectCall | BranchKind::Return
        )
    }

    /// Whether a return address is pushed on the RAS.
    pub fn is_call(self) -> bool {
        matches!(self, BranchKind::DirectCall | BranchKind::IndirectCall)
    }

    /// Whether the RAS is popped.
    pub fn is_return(self) -> bool {
        matches!(self, BranchKind::Return)
    }
}

/// Resolved outcome of a branch as recorded in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchInfo {
    /// Control-flow class.
    pub kind: BranchKind,
    /// Architectural direction. Always `true` for non-conditional kinds.
    pub taken: bool,
    /// Architectural target when taken. For a not-taken conditional this is
    /// still the would-be target (what the BTB would learn).
    pub target: u64,
}

/// A memory reference made by a load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Virtual address of the access.
    pub vaddr: u64,
    /// Access size in bytes (1–64).
    pub size: u8,
}

/// One traced instruction.
///
/// This is the unit every subsystem consumes: the branch predictors look at
/// `pc`/`branch`, the memory hierarchy at `mem`, and the out-of-order core at
/// the register fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inst {
    /// Virtual program counter of the instruction.
    pub pc: u64,
    /// Functional class.
    pub kind: InstKind,
    /// Up to two source registers.
    pub srcs: [Option<Reg>; 2],
    /// Destination register, if any.
    pub dst: Option<Reg>,
    /// Memory reference for loads/stores.
    pub mem: Option<MemRef>,
    /// Branch payload; present iff `kind == InstKind::Branch`.
    pub branch: Option<BranchInfo>,
}

impl Inst {
    /// A simple integer ALU op `dst = f(srcs)`.
    pub fn alu(pc: u64, dst: Reg, srcs: [Option<Reg>; 2]) -> Inst {
        Inst {
            pc,
            kind: InstKind::IntAlu,
            srcs,
            dst: Some(dst),
            mem: None,
            branch: None,
        }
    }

    /// A load `dst = [vaddr]` with an address-forming source register.
    pub fn load(pc: u64, dst: Reg, addr_src: Option<Reg>, vaddr: u64) -> Inst {
        Inst {
            pc,
            kind: InstKind::Load,
            srcs: [addr_src, None],
            dst: Some(dst),
            mem: Some(MemRef { vaddr, size: 8 }),
            branch: None,
        }
    }

    /// A store `[vaddr] = data_src`.
    pub fn store(pc: u64, data_src: Option<Reg>, addr_src: Option<Reg>, vaddr: u64) -> Inst {
        Inst {
            pc,
            kind: InstKind::Store,
            srcs: [data_src, addr_src],
            dst: None,
            mem: Some(MemRef { vaddr, size: 8 }),
            branch: None,
        }
    }

    /// A branch instruction with a resolved outcome.
    pub fn branch(pc: u64, info: BranchInfo, srcs: [Option<Reg>; 2]) -> Inst {
        Inst {
            pc,
            kind: InstKind::Branch,
            srcs,
            dst: None,
            mem: None,
            branch: Some(info),
        }
    }

    /// The next sequential PC (all instructions are 4 bytes, as in AArch64).
    pub fn fallthrough(&self) -> u64 {
        self.pc + 4
    }

    /// The PC of the instruction that architecturally follows this one.
    pub fn next_pc(&self) -> u64 {
        match self.branch {
            Some(b) if b.taken => b.target,
            _ => self.fallthrough(),
        }
    }

    /// Whether this is a taken branch.
    pub fn is_taken_branch(&self) -> bool {
        matches!(self.branch, Some(b) if b.taken)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_namespaces_are_disjoint() {
        assert!(Reg::int(5).is_int());
        assert!(Reg::fp(5).is_fp());
        assert_ne!(Reg::int(5), Reg::fp(5));
        assert_eq!(Reg::fp(0).index(), 32);
    }

    #[test]
    #[should_panic]
    fn reg_int_out_of_range_panics() {
        let _ = Reg::int(32);
    }

    #[test]
    fn zero_reg_is_int31() {
        assert!(Reg::ZERO.is_zero());
        assert!(Reg::int(31).is_zero());
        assert!(!Reg::int(30).is_zero());
    }

    #[test]
    fn reg_display() {
        assert_eq!(Reg::int(3).to_string(), "r3");
        assert_eq!(Reg::fp(7).to_string(), "v7");
    }

    #[test]
    fn branch_kind_taxonomy() {
        assert!(BranchKind::CondDirect.is_conditional());
        assert!(!BranchKind::UncondDirect.is_conditional());
        assert!(BranchKind::Return.is_indirect());
        assert!(BranchKind::IndirectCall.is_call());
        assert!(BranchKind::IndirectCall.is_indirect());
        assert!(!BranchKind::DirectCall.is_return());
        assert!(BranchKind::Return.is_return());
    }

    #[test]
    fn next_pc_follows_taken_branches() {
        let b = Inst::branch(
            0x1000,
            BranchInfo {
                kind: BranchKind::CondDirect,
                taken: true,
                target: 0x2000,
            },
            [None, None],
        );
        assert_eq!(b.next_pc(), 0x2000);
        let nt = Inst::branch(
            0x1000,
            BranchInfo {
                kind: BranchKind::CondDirect,
                taken: false,
                target: 0x2000,
            },
            [None, None],
        );
        assert_eq!(nt.next_pc(), 0x1004);
        assert!(!nt.is_taken_branch());
    }

    #[test]
    fn mem_helpers_fill_fields() {
        let ld = Inst::load(0x40, Reg::int(1), Some(Reg::int(2)), 0xdead0);
        assert_eq!(ld.kind, InstKind::Load);
        assert!(ld.kind.is_mem());
        assert_eq!(ld.mem.unwrap().vaddr, 0xdead0);
        let st = Inst::store(0x44, Some(Reg::int(1)), Some(Reg::int(2)), 0xbeef0);
        assert_eq!(st.kind, InstKind::Store);
        assert!(st.dst.is_none());
    }

    #[test]
    fn fp_kinds_classified() {
        assert!(InstKind::FpMac.is_fp());
        assert!(!InstKind::IntMul.is_fp());
        assert!(!InstKind::Branch.is_mem());
    }
}
