//! The workload-suite catalog.
//!
//! The paper's evaluation runs 4,026 trace slices drawn from SPEC CPU2000/
//! 2006, web suites (Speedometer, Octane, BBench, SunSpider), mobile suites
//! (AnTuTu, Geekbench) and games. This module builds the synthetic stand-in
//! population: a parameter grid over the generator families of
//! [`crate::gen`], weighted so the population has the paper's qualitative
//! shape — a large predictable/high-IPC left tail, an "interesting middle"
//! (SPECint/Geekbench-like), and a hard-to-predict, memory-bound right tail.

use crate::gen::loops::{LoopNest, LoopNestParams};
use crate::gen::markov::{MarkovBranches, MarkovMode, MarkovParams};

fn markov_parity() -> MarkovMode {
    MarkovMode::Parity
}

fn markov_pattern() -> MarkovMode {
    MarkovMode::Pattern
}
use crate::gen::mixed::PhaseMix;
use crate::gen::pointer_chase::{PointerChase, PointerChaseParams};
use crate::gen::spatial::{SpatialRegions, SpatialParams};
use crate::gen::streaming::{CopyKernel, CopyKernelParams, MultiStride, MultiStrideParams, StrideComponent};
use crate::gen::web::{WebParams, WebWorkload};
use crate::gen::BoxedGen;
use crate::error::TraceError;
use crate::fingerprint::{Fingerprint, FingerprintHasher};
use crate::sample::SlicePlan;
use crate::source::TraceSource;
use std::sync::Arc;

/// Which named suite a slice belongs to (the paper's workload grouping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuiteKind {
    /// SPECint-like: branchy, mixed-predictability integer code.
    SpecIntLike,
    /// SPECfp-like: loop nests with FP and streaming access.
    SpecFpLike,
    /// Web/JS-like: indirect-heavy, huge code footprint.
    WebLike,
    /// Mobile/Geekbench-like: phase mixes.
    MobileLike,
    /// Game-like: spatial/irregular data with moderate branch pressure.
    GameLike,
    /// Pure streaming/memory kernels.
    StreamLike,
    /// Assembled programs (the `exynos-asm` corpus and user-supplied
    /// sources); not part of the synthetic population.
    ProgramLike,
}

impl SuiteKind {
    /// All suite kinds, in catalog order. The first
    /// [`SuiteKind::NUM_SYNTHETIC`] entries are the synthetic generator
    /// families that make up [`standard_suite`]; `ProgramLike` slices come
    /// from program corpora instead.
    pub const ALL: [SuiteKind; 7] = [
        SuiteKind::SpecIntLike,
        SuiteKind::SpecFpLike,
        SuiteKind::WebLike,
        SuiteKind::MobileLike,
        SuiteKind::GameLike,
        SuiteKind::StreamLike,
        SuiteKind::ProgramLike,
    ];

    /// How many of [`SuiteKind::ALL`] are synthetic generator families.
    pub const NUM_SYNTHETIC: usize = 6;

    /// Short label used in slice names, reports and BENCH_sweep.json keys.
    pub fn label(self) -> &'static str {
        match self {
            SuiteKind::SpecIntLike => "specint",
            SuiteKind::SpecFpLike => "specfp",
            SuiteKind::WebLike => "web",
            SuiteKind::MobileLike => "mobile",
            SuiteKind::GameLike => "game",
            SuiteKind::StreamLike => "stream",
            SuiteKind::ProgramLike => "program",
        }
    }
}

impl std::fmt::Display for SuiteKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A buildable workload description (the catalog's unit of composition).
#[derive(Debug, Clone)]
pub enum WorkloadSpec {
    /// Nested loop kernel.
    LoopNest(LoopNestParams),
    /// Pointer chase.
    PointerChase(PointerChaseParams),
    /// Multi-stride stream.
    MultiStride(MultiStrideParams),
    /// memcpy-style copy kernel.
    Copy(CopyKernelParams),
    /// Web/JS-like workload.
    Web(WebParams),
    /// Spatial-region (SMS-friendly) workload.
    Spatial(SpatialParams),
    /// History-dependent conditional branches.
    Markov(MarkovParams),
    /// Phase mix of child specs.
    Mix {
        /// Child workloads, interleaved round-robin.
        children: Vec<WorkloadSpec>,
        /// Instructions per phase.
        phase_len: u64,
    },
    /// An external trace source (e.g. an assembled program from the
    /// `exynos-asm` crate) implementing [`TraceSource`].
    Program(Arc<dyn TraceSource>),
}

impl WorkloadSpec {
    /// Build the generator in address `region` with `seed`.
    ///
    /// This is the single construction path for every workload family —
    /// synthetic and program-driven alike. Errors are typed
    /// ([`TraceError`]); nothing in the catalog panics on a bad source.
    pub fn build(&self, region: u64, seed: u64) -> Result<BoxedGen, TraceError> {
        Ok(match self {
            WorkloadSpec::LoopNest(p) => Box::new(LoopNest::new(p, region, seed)),
            WorkloadSpec::PointerChase(p) => Box::new(PointerChase::new(p, region, seed)),
            WorkloadSpec::MultiStride(p) => Box::new(MultiStride::new(p, region, seed)),
            WorkloadSpec::Copy(p) => Box::new(CopyKernel::new(p, region, seed)),
            WorkloadSpec::Web(p) => Box::new(WebWorkload::new(p, region, seed)),
            WorkloadSpec::Spatial(p) => Box::new(SpatialRegions::new(p, region, seed)),
            WorkloadSpec::Markov(p) => Box::new(MarkovBranches::new(p, region, seed)),
            WorkloadSpec::Mix { children, phase_len } => {
                let gens: Vec<BoxedGen> = children
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        // Children live far above the plain-slice region
                        // space so code/data windows never alias.
                        c.build(1_000_000 + region * 8 + i as u64, seed ^ ((i as u64) << 32))
                    })
                    .collect::<Result<_, _>>()?;
                Box::new(PhaseMix::new(gens, *phase_len))
            }
            WorkloadSpec::Program(src) => return src.build(region, seed),
        })
    }

    /// Fold every stream-affecting parameter of this spec into `h`.
    ///
    /// This is the canonical content identity behind [`Fingerprint`]-keyed
    /// chunk sharing: every field that [`WorkloadSpec::build`] consults is
    /// hashed (with a per-family tag), and nothing else is. Two specs that
    /// hash equal produce byte-identical streams for equal `(region,
    /// seed)`; changing any field changes the digest.
    pub fn fingerprint_into(&self, h: &mut FingerprintHasher) {
        match self {
            WorkloadSpec::LoopNest(p) => {
                h.write_str("loopnest");
                h.write_u64(p.depth as u64);
                h.write_u64(p.trip_counts.len() as u64);
                for &t in &p.trip_counts {
                    h.write_u64(t as u64);
                }
                h.write_u64(p.body_len as u64);
                h.write_u64(p.loads_per_body as u64);
                h.write_u64(p.stores_per_body as u64);
                h.write_i64(p.stride);
                h.write_u64(p.working_set);
                h.write_f64(p.fp_frac);
            }
            WorkloadSpec::PointerChase(p) => {
                h.write_str("chase");
                h.write_u64(p.working_set);
                h.write_u64(p.chains as u64);
                h.write_u64(p.work_between as u64);
                h.write_bool(p.spatial_payload);
            }
            WorkloadSpec::MultiStride(p) => {
                h.write_str("multistride");
                h.write_u64(p.components.len() as u64);
                for c in &p.components {
                    h.write_i64(c.stride);
                    h.write_u64(c.repeat as u64);
                }
                h.write_u64(p.unit);
                h.write_u64(p.working_set);
                h.write_u64(p.work_between as u64);
                h.write_u64(p.streams as u64);
                h.write_u64(p.restart_every);
            }
            WorkloadSpec::Copy(p) => {
                h.write_str("copy");
                h.write_u64(p.length);
                h.write_u64(p.work_between as u64);
            }
            WorkloadSpec::Web(p) => {
                h.write_str("web");
                h.write_u64(p.functions as u64);
                h.write_u64(p.dispatch_targets as u64);
                h.write_f64(p.markov_follow);
                h.write_u64(p.blocks_per_fn as u64);
                h.write_u64(p.block_len as u64);
                h.write_f64(p.noisy_frac);
                h.write_u64(p.working_set);
            }
            WorkloadSpec::Spatial(p) => {
                h.write_str("spatial");
                h.write_u64(p.regions as u64);
                h.write_u64(p.signature_len as u64);
                h.write_u64(p.transient_per_visit as u64);
                h.write_u64(p.sites as u64);
                h.write_u64(p.work_between as u64);
            }
            WorkloadSpec::Markov(p) => {
                h.write_str("markov");
                h.write_u64(p.sites as u64);
                h.write_u64(p.history_depth as u64);
                h.write_u64(p.taps as u64);
                h.write_u64(match p.mode {
                    MarkovMode::Pattern => 0,
                    MarkovMode::Parity => 1,
                });
                h.write_f64(p.noise);
                h.write_u64(p.work_between as u64);
                h.write_f64(p.load_frac);
                h.write_u64(p.working_set);
            }
            WorkloadSpec::Mix { children, phase_len } => {
                h.write_str("mix");
                h.write_u64(*phase_len);
                h.write_u64(children.len() as u64);
                for c in children {
                    c.fingerprint_into(h);
                }
            }
            WorkloadSpec::Program(src) => {
                h.write_str("program");
                src.fingerprint_into(h);
            }
        }
    }

    /// The spec's content digest (region/seed-independent).
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = FingerprintHasher::new();
        self.fingerprint_into(&mut h);
        h.finish()
    }

    /// Short family label (generator family or program name).
    pub fn family(&self) -> &str {
        match self {
            WorkloadSpec::LoopNest(_) => "loopnest",
            WorkloadSpec::PointerChase(_) => "chase",
            WorkloadSpec::MultiStride(_) => "multistride",
            WorkloadSpec::Copy(_) => "copy",
            WorkloadSpec::Web(_) => "web",
            WorkloadSpec::Spatial(_) => "spatial",
            WorkloadSpec::Markov(_) => "markov",
            WorkloadSpec::Mix { .. } => "mix",
            WorkloadSpec::Program(src) => src.label(),
        }
    }

    /// Instantiate the generator in address `region` with `seed`.
    ///
    /// # Panics
    /// Panics if the workload fails to build; use [`WorkloadSpec::build`].
    #[deprecated(since = "0.1.0", note = "use the fallible `WorkloadSpec::build` instead")]
    pub fn instantiate(&self, region: u64, seed: u64) -> BoxedGen {
        match self.build(region, seed) {
            Ok(g) => g,
            Err(e) => panic!("workload build failed: {e}"),
        }
    }
}

impl TraceSource for WorkloadSpec {
    fn label(&self) -> &str {
        self.family()
    }

    fn build(&self, region: u64, seed: u64) -> Result<BoxedGen, TraceError> {
        WorkloadSpec::build(self, region, seed)
    }

    fn fingerprint_into(&self, h: &mut FingerprintHasher) {
        WorkloadSpec::fingerprint_into(self, h);
    }
}

/// One catalog entry: a named, seeded slice of a workload.
#[derive(Debug, Clone)]
pub struct SliceSpec {
    /// Human-readable identity, e.g. `web/bbench#2`.
    pub name: String,
    /// The suite family this slice stands in for.
    pub suite: SuiteKind,
    /// Generator description.
    pub spec: WorkloadSpec,
    /// RNG seed for instantiation.
    pub seed: u64,
    /// Address region (must be unique across concurrently mixed slices).
    pub region: u64,
    /// Warmup/detail windows.
    pub plan: SlicePlan,
}

impl SliceSpec {
    /// Build this slice's generator (the fallible construction path).
    pub fn build(&self) -> Result<BoxedGen, TraceError> {
        self.spec.build(self.region, self.seed)
    }

    /// Digest of the *instruction stream* this slice materializes.
    ///
    /// Folds the spec's content identity with the two instantiation inputs
    /// ([`SliceSpec::region`], [`SliceSpec::seed`]) that `build` consults.
    /// `name`, `suite` and `plan` deliberately do not participate: they
    /// change what a slice is called and how much of the stream a run
    /// consumes, never the bytes of the stream itself — so two catalog
    /// entries that replay the same stream share one cache identity.
    pub fn stream_fingerprint(&self) -> Fingerprint {
        let mut h = FingerprintHasher::new();
        self.spec.fingerprint_into(&mut h);
        h.write_u64(self.region);
        h.write_u64(self.seed);
        h.finish()
    }

    /// Instantiate this slice's generator.
    ///
    /// # Panics
    /// Panics if the workload fails to build; use [`SliceSpec::build`].
    #[deprecated(since = "0.1.0", note = "use the fallible `SliceSpec::build` instead")]
    pub fn instantiate(&self) -> BoxedGen {
        match self.build() {
            Ok(g) => g,
            Err(e) => panic!("slice `{}` failed to build: {e}", self.name),
        }
    }
}

/// Collapse program slices with identical content digests onto one
/// shared source.
///
/// Catalogs built from several corpora (or repeated catalog builds glued
/// together) can carry multiple [`WorkloadSpec::Program`] entries whose
/// fingerprints collide — identical assembled programs instantiated
/// separately. Pointing every duplicate at the *first* occurrence's
/// `Arc` drops the redundant assemblies and lets downstream per-source
/// state (chunk-cache streams, warm generators) be shared. Synthetic
/// specs are plain parameter records with no instantiation to share and
/// are left untouched. Returns the number of slices re-pointed.
pub fn dedupe_shared_sources(slices: &mut [SliceSpec]) -> usize {
    let mut seen: std::collections::HashMap<u128, Arc<dyn TraceSource>> =
        std::collections::HashMap::new();
    let mut collapsed = 0;
    for s in slices {
        if let WorkloadSpec::Program(src) = &mut s.spec {
            let digest = {
                let mut h = FingerprintHasher::new();
                src.fingerprint_into(&mut h);
                h.finish().0
            };
            match seen.entry(digest) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    if !Arc::ptr_eq(src, e.get()) {
                        *src = Arc::clone(e.get());
                        collapsed += 1;
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(Arc::clone(src));
                }
            }
        }
    }
    collapsed
}

/// Build the standard cross-generation evaluation population.
///
/// `scale` multiplies the per-family slice counts: `scale = 1` gives a
/// ~60-slice smoke population; `scale = 4` a ~240-slice population for the
/// paper's Fig. 9/16/17 sweeps. Slices are deterministic in `scale`.
pub fn standard_suite(scale: usize) -> Vec<SliceSpec> {
    let scale = scale.max(1);
    let mut slices = Vec::new();
    let plan = SlicePlan::default();
    let mut region = 0u64;
    let mut push = |name: String, suite: SuiteKind, spec: WorkloadSpec, seed: u64, region: &mut u64| {
        slices.push(SliceSpec {
            name,
            suite,
            spec,
            seed,
            region: *region,
            plan,
        });
        *region += 16;
    };

    // --- SPECfp-like: loop nests with FP, varied working sets. -----------
    for v in 0..4 * scale {
        let ws = [16, 64, 512, 4096, 32768][v % 5] * 1024;
        let p = LoopNestParams {
            depth: 1 + v % 3,
            trip_counts: match v % 3 {
                0 => vec![128],
                1 => vec![32, 512],
                _ => vec![16, 64, 128],
            },
            // Bodies span simple loops to unrolled/vectorized kernels
            // (the high-ILP right edge of Fig. 17 needs fetch regions
            // longer than one fetch group).
            body_len: 6 + (v % 4) * 8,
            loads_per_body: 2,
            stores_per_body: 1,
            stride: [8, 64, 128, 24][v % 4],
            working_set: ws,
            fp_frac: 0.4,
        };
        push(
            format!("specfp/nest{}_ws{}k", v, ws / 1024),
            SuiteKind::SpecFpLike,
            WorkloadSpec::LoopNest(p),
            0x5F00 + v as u64,
            &mut region,
        );
    }

    // --- Stream-like: multi-stride & copy kernels. ------------------------
    for v in 0..3 * scale {
        let comps = match v % 4 {
            0 => vec![StrideComponent { stride: 1, repeat: 1 }],
            1 => vec![
                StrideComponent { stride: 2, repeat: 2 },
                StrideComponent { stride: 5, repeat: 1 },
            ],
            2 => vec![
                StrideComponent { stride: 3, repeat: 4 },
                StrideComponent { stride: -2, repeat: 1 },
                StrideComponent { stride: 7, repeat: 2 },
            ],
            _ => vec![StrideComponent { stride: 17, repeat: 1 }],
        };
        let p = MultiStrideParams {
            components: comps,
            unit: 64,
            working_set: [4, 32, 256][v % 3] * 1024 * 1024,
            work_between: 2 + v % 3,
            streams: 1 + v % 4,
            restart_every: if v % 5 == 4 { 4_000 } else { 0 },
        };
        push(
            format!("stream/ms{}", v),
            SuiteKind::StreamLike,
            WorkloadSpec::MultiStride(p),
            0x3700 + v as u64,
            &mut region,
        );
    }
    for v in 0..scale {
        push(
            format!("stream/copy{}", v),
            SuiteKind::StreamLike,
            WorkloadSpec::Copy(CopyKernelParams {
                length: [2, 16][v % 2] * 1024 * 1024,
                work_between: 1 + v % 2,
            }),
            0x3800 + v as u64,
            &mut region,
        );
    }

    // --- SPECint-like: Markov branch mixes, some with loads. --------------
    for v in 0..5 * scale {
        // Required GHIST for a pattern slice is roughly
        // sites * log2(pattern length): this grid spans ~48..256 bits so
        // generational GHIST growth (165 -> 206) and SHP capacity both
        // show, with the deepest combinations forming the hard tail.
        let p = MarkovParams {
            sites: [24, 40, 64, 96][v % 4],
            history_depth: [4, 8, 8, 16, 4, 16][v % 6],
            taps: [1, 3, 5][v % 3],
            mode: if v % 7 == 6 { markov_parity() } else { markov_pattern() },
            noise: [0.0, 0.01, 0.02, 0.05, 0.10][v % 5],
            work_between: 3 + v % 4,
            load_frac: 0.2,
            working_set: [32, 256, 2048][v % 3] * 1024,
        };
        push(
            format!("specint/mk{}_h{}_n{}", v, p.history_depth, (p.noise * 100.0) as u32),
            SuiteKind::SpecIntLike,
            WorkloadSpec::Markov(p),
            0x51E0 + v as u64,
            &mut region,
        );
    }

    // --- Web-like: big footprints, many indirect targets. -----------------
    for v in 0..4 * scale {
        let p = WebParams {
            functions: [300, 700, 1400, 2600][v % 4],
            dispatch_targets: [16, 48, 100, 240][v % 4],
            markov_follow: [0.9, 0.75, 0.6][v % 3],
            blocks_per_fn: 6 + v % 5,
            block_len: [2, 4, 6][v % 3],
            noisy_frac: [0.08, 0.15, 0.25][v % 3],
            working_set: [8, 32, 64][v % 3] * 1024 * 1024,
        };
        let name = ["speedometer", "octane", "bbench", "sunspider"][v % 4];
        push(
            format!("web/{}{}", name, v / 4),
            SuiteKind::WebLike,
            WorkloadSpec::Web(p),
            0x3EB0 + v as u64,
            &mut region,
        );
    }

    // --- Game-like: spatial regions + pointer chase. ----------------------
    for v in 0..3 * scale {
        let p = SpatialParams {
            regions: [256, 1024, 4096][v % 3],
            signature_len: 3 + v % 5,
            transient_per_visit: v % 3,
            sites: 2 + v % 4,
            work_between: 2,
        };
        push(
            format!("game/sms{}", v),
            SuiteKind::GameLike,
            WorkloadSpec::Spatial(p),
            0x6A00 + v as u64,
            &mut region,
        );
    }
    for v in 0..3 * scale {
        let p = PointerChaseParams {
            working_set: [256 * 1024, 2 * 1024 * 1024, 16 * 1024 * 1024, 64 * 1024 * 1024][v % 4],
            chains: [1, 2, 4, 8][v % 4],
            work_between: 2 + v % 3,
            spatial_payload: v % 2 == 1,
        };
        push(
            format!("game/chase{}_ws{}m", v, p.working_set >> 20),
            SuiteKind::GameLike,
            WorkloadSpec::PointerChase(p),
            0x9C00 + v as u64,
            &mut region,
        );
    }

    // --- Mobile-like: phase mixes of the above. ----------------------------
    for v in 0..3 * scale {
        let children = vec![
            WorkloadSpec::LoopNest(LoopNestParams::default()),
            WorkloadSpec::Markov(MarkovParams {
                history_depth: 16 + (v as u32 % 3) * 16,
                noise: 0.05,
                ..Default::default()
            }),
            WorkloadSpec::MultiStride(MultiStrideParams::default()),
        ];
        push(
            format!("mobile/geek{}", v),
            SuiteKind::MobileLike,
            WorkloadSpec::Mix {
                children,
                phase_len: 5_000 + (v as u64 % 3) * 5_000,
            },
            0xA0B0 + v as u64,
            &mut region,
        );
    }

    slices
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceGen;
    use std::collections::HashSet;

    #[test]
    fn suite_has_expected_population() {
        let s = standard_suite(1);
        assert!(s.len() >= 20, "got {}", s.len());
        let kinds: HashSet<SuiteKind> = s.iter().map(|x| x.suite).collect();
        assert_eq!(
            kinds.len(),
            SuiteKind::NUM_SYNTHETIC,
            "all synthetic suites represented"
        );
        assert!(
            !kinds.contains(&SuiteKind::ProgramLike),
            "the synthetic population must not change shape under the program catalog"
        );
    }

    #[test]
    fn names_are_unique() {
        let s = standard_suite(2);
        let names: HashSet<&str> = s.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names.len(), s.len());
    }

    #[test]
    fn regions_are_unique() {
        let s = standard_suite(2);
        let regions: HashSet<u64> = s.iter().map(|x| x.region).collect();
        assert_eq!(regions.len(), s.len());
    }

    #[test]
    fn every_slice_builds_and_streams() {
        for slice in standard_suite(1) {
            let mut g = slice.build().unwrap();
            for _ in 0..500 {
                let _ = g.next_inst();
            }
        }
    }

    #[test]
    fn deprecated_instantiate_still_works() {
        #[allow(deprecated)]
        let mut g = standard_suite(1)[0].instantiate();
        let _ = g.next_inst();
    }

    #[test]
    fn scale_is_monotone() {
        assert!(standard_suite(2).len() > standard_suite(1).len());
    }

    #[test]
    fn suite_labels_roundtrip_display() {
        for k in SuiteKind::ALL {
            assert_eq!(k.to_string(), k.label());
        }
    }

    #[test]
    fn equal_specs_hash_equal() {
        let a = standard_suite(1);
        let b = standard_suite(1);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.stream_fingerprint(), y.stream_fingerprint(), "{}", x.name);
        }
    }

    #[test]
    fn distinct_catalog_streams_hash_distinct() {
        let s = standard_suite(2);
        let fps: HashSet<u128> = s.iter().map(|x| x.stream_fingerprint().0).collect();
        assert_eq!(fps.len(), s.len(), "catalog streams must not collide");
    }

    #[test]
    fn any_field_change_changes_the_digest() {
        use crate::gen::loops::LoopNestParams;
        let base = LoopNestParams::default();
        let fp = |p: LoopNestParams| WorkloadSpec::LoopNest(p).fingerprint();
        let reference = fp(base.clone());
        let variants = [
            LoopNestParams { depth: base.depth + 1, ..base.clone() },
            LoopNestParams { trip_counts: vec![99], ..base.clone() },
            LoopNestParams { body_len: base.body_len + 1, ..base.clone() },
            LoopNestParams { loads_per_body: base.loads_per_body + 1, ..base.clone() },
            LoopNestParams { stores_per_body: base.stores_per_body + 1, ..base.clone() },
            LoopNestParams { stride: base.stride + 8, ..base.clone() },
            LoopNestParams { working_set: base.working_set * 2, ..base.clone() },
            LoopNestParams { fp_frac: base.fp_frac + 0.125, ..base.clone() },
        ];
        let mut seen = HashSet::new();
        seen.insert(reference.0);
        for (i, v) in variants.into_iter().enumerate() {
            assert!(seen.insert(fp(v).0), "variant {i} collided");
        }
    }

    #[test]
    fn markov_mode_and_mix_shape_participate() {
        use crate::gen::markov::MarkovParams;
        let pat = WorkloadSpec::Markov(MarkovParams { mode: markov_pattern(), ..Default::default() });
        let par = WorkloadSpec::Markov(MarkovParams { mode: markov_parity(), ..Default::default() });
        assert_ne!(pat.fingerprint(), par.fingerprint());

        let mix = |phase_len| WorkloadSpec::Mix {
            children: vec![pat.clone(), par.clone()],
            phase_len,
        };
        assert_eq!(mix(500).fingerprint(), mix(500).fingerprint());
        assert_ne!(mix(500).fingerprint(), mix(501).fingerprint());
        let swapped = WorkloadSpec::Mix { children: vec![par.clone(), pat.clone()], phase_len: 500 };
        assert_ne!(mix(500).fingerprint(), swapped.fingerprint());
    }

    #[test]
    fn dedupe_collapses_identical_program_sources() {
        use crate::gen::loops::LoopNestParams;
        let src = |p: LoopNestParams| -> Arc<dyn TraceSource> {
            Arc::new(WorkloadSpec::LoopNest(p))
        };
        let slice = |name: &str, s: Arc<dyn TraceSource>, region: u64| SliceSpec {
            name: name.to_string(),
            suite: SuiteKind::ProgramLike,
            spec: WorkloadSpec::Program(s),
            seed: 1,
            region,
            plan: SlicePlan::default(),
        };
        let mut other = LoopNestParams::default();
        other.body_len += 1;
        // Two separately instantiated identical sources plus one distinct.
        let mut slices = vec![
            slice("p/a", src(LoopNestParams::default()), 0),
            slice("p/b", src(LoopNestParams::default()), 16),
            slice("p/c", src(other), 32),
        ];
        assert_eq!(dedupe_shared_sources(&mut slices), 1);
        let arc = |s: &SliceSpec| match &s.spec {
            WorkloadSpec::Program(a) => Arc::clone(a),
            _ => unreachable!(),
        };
        assert!(Arc::ptr_eq(&arc(&slices[0]), &arc(&slices[1])), "duplicates share one source");
        assert!(!Arc::ptr_eq(&arc(&slices[0]), &arc(&slices[2])), "distinct content stays apart");
        // Idempotent.
        assert_eq!(dedupe_shared_sources(&mut slices), 0);
    }

    #[test]
    fn region_and_seed_participate_but_name_and_plan_do_not() {
        let mut a = standard_suite(1).remove(0);
        let fp = a.stream_fingerprint();
        a.name = "renamed/slice".to_string();
        a.plan = SlicePlan::new(1, 2);
        assert_eq!(fp, a.stream_fingerprint(), "name/plan must not affect the stream digest");
        let mut b = a.clone();
        b.seed ^= 1;
        assert_ne!(fp, b.stream_fingerprint());
        let mut c = a.clone();
        c.region += 1;
        assert_ne!(fp, c.stream_fingerprint());
    }
}
