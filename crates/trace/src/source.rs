//! The unified trace-source abstraction.
//!
//! Historically every workload family had its own infallible constructor
//! and the catalog matched over them. [`TraceSource`] replaces that with a
//! single contract that both the synthetic generator families and
//! assembled programs (the `exynos-asm` crate) implement, so the suite
//! catalog, the warm-pool builder, and the service runner all consume one
//! API.
//!
//! ## Contract
//!
//! * **Determinism.** `build(region, seed)` must be a pure function of the
//!   source's own construction parameters plus `region` and `seed`: two
//!   calls with equal inputs yield generators that emit byte-identical
//!   instruction streams. This is what makes sweep results, snapshots and
//!   the batched lockstep engine reproducible.
//! * **Fallibility.** Construction returns `Result`; invalid sources
//!   (assembly errors, out-of-range parameters) surface as a typed
//!   [`TraceError`], never a panic.
//! * **Infinite streams, restart semantics.** The returned generator never
//!   exhausts. Finite programs restart: when execution halts (explicitly
//!   or by running off the end of `.text`), the source emits a branch back
//!   to the entry point and resets its architectural state, so the stream
//!   is periodic and slices of any [`crate::sample::SlicePlan`] length are
//!   well defined.
//! * **Region isolation.** All PCs and data addresses the generator emits
//!   must stay inside the code/data windows derived from `region`, so
//!   concurrently mixed slices never alias.

use crate::error::TraceError;
use crate::fingerprint::FingerprintHasher;
use crate::gen::BoxedGen;

/// A buildable origin of deterministic instruction streams.
///
/// See the [module docs](self) for the determinism / fallibility /
/// restart contract implementors must uphold.
pub trait TraceSource: Send + Sync + std::fmt::Debug {
    /// Short human-readable identity (used in slice names and reports).
    fn label(&self) -> &str;

    /// Build a generator in address `region` with `seed`.
    fn build(&self, region: u64, seed: u64) -> Result<BoxedGen, TraceError>;

    /// Fold this source's *content identity* into `h`.
    ///
    /// Per the determinism contract, `build(region, seed)` is a pure
    /// function of the source's construction parameters — so two sources
    /// that hash equal here (plus equal region and seed) produce
    /// byte-identical streams, which is what lets the chunk cache share
    /// decoded chunks between them. The default folds the label, which is
    /// only safe when the label uniquely determines the stream; sources
    /// whose label can collide across distinct contents (e.g. user-loaded
    /// programs that reuse a file name) must override this and hash the
    /// actual content.
    fn fingerprint_into(&self, h: &mut FingerprintHasher) {
        h.write_str("source");
        h.write_str(self.label());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceGen;
    use crate::suite::WorkloadSpec;
    use crate::gen::loops::LoopNestParams;

    #[test]
    fn workload_spec_is_a_trace_source() {
        let spec = WorkloadSpec::LoopNest(LoopNestParams::default());
        let src: &dyn TraceSource = &spec;
        assert_eq!(src.label(), "loopnest");
        let mut a = src.build(3, 7).unwrap();
        let mut b = src.build(3, 7).unwrap();
        for _ in 0..200 {
            assert_eq!(a.next_inst(), b.next_inst());
        }
    }
}
