//! Property tests over the workload generators: every generator must emit
//! a PC-consistent, deterministic, well-formed instruction stream.

use exynos_trace::gen::loops::{LoopNest, LoopNestParams};
use exynos_trace::gen::markov::{MarkovBranches, MarkovMode, MarkovParams};
use exynos_trace::gen::pointer_chase::{PointerChase, PointerChaseParams};
use exynos_trace::gen::spatial::{SpatialParams, SpatialRegions};
use exynos_trace::gen::streaming::{MultiStride, MultiStrideParams, StrideComponent};
use exynos_trace::gen::web::{WebParams, WebWorkload};
use exynos_trace::{BoxedGen, Inst, InstKind, TraceGen};
use proptest::prelude::*;

fn check_stream(mut gen: BoxedGen, n: usize) -> Result<(), TestCaseError> {
    let mut prev: Option<Inst> = None;
    for _ in 0..n {
        let inst = gen.next_inst();
        // Well-formedness.
        prop_assert_eq!(inst.pc % 4, 0, "instructions are 4-byte aligned");
        prop_assert_eq!(inst.branch.is_some(), inst.kind == InstKind::Branch);
        prop_assert_eq!(inst.mem.is_some(), inst.kind.is_mem());
        if let Some(b) = inst.branch {
            prop_assert!(b.taken || b.kind.is_conditional(), "only conditionals fall through");
        }
        // PC-chain continuity.
        if let Some(p) = prev {
            prop_assert_eq!(p.next_pc(), inst.pc, "pc chain broke after {:#x}", p.pc);
        }
        prev = Some(inst);
    }
    Ok(())
}

fn collect(mut gen: BoxedGen, n: usize) -> Vec<Inst> {
    (0..n).map(|_| gen.next_inst()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn loop_nest_streams_are_consistent(
        depth in 1usize..4,
        trips in prop::collection::vec(2u32..40, 4),
        body in 1usize..12,
        loads in 0usize..3,
        seed in 0u64..1000,
    ) {
        let p = LoopNestParams {
            depth,
            trip_counts: trips[..depth].to_vec(),
            body_len: body,
            loads_per_body: loads,
            stores_per_body: loads.min(1),
            ..Default::default()
        };
        check_stream(Box::new(LoopNest::new(&p, 5, seed)), 3_000)?;
    }

    #[test]
    fn pointer_chase_streams_are_consistent(
        ws_kb in 1u64..512,
        chains in 1usize..8,
        wb in 0usize..5,
        payload: bool,
        seed in 0u64..1000,
    ) {
        let p = PointerChaseParams {
            working_set: ws_kb * 1024,
            chains,
            work_between: wb,
            spatial_payload: payload,
        };
        check_stream(Box::new(PointerChase::new(&p, 6, seed)), 3_000)?;
    }

    #[test]
    fn multistride_streams_are_consistent(
        s1 in -8i64..8,
        r1 in 1u32..4,
        s2 in -8i64..8,
        r2 in 1u32..4,
        streams in 1usize..4,
        seed in 0u64..1000,
    ) {
        prop_assume!(s1 != 0 || s2 != 0);
        let p = MultiStrideParams {
            components: vec![
                StrideComponent { stride: s1, repeat: r1 },
                StrideComponent { stride: s2, repeat: r2 },
            ],
            streams,
            working_set: 1 << 22,
            ..Default::default()
        };
        check_stream(Box::new(MultiStride::new(&p, 7, seed)), 3_000)?;
    }

    #[test]
    fn web_streams_are_consistent(
        functions in 3usize..120,
        blocks in 2usize..8,
        block_len in 1usize..6,
        seed in 0u64..1000,
    ) {
        let p = WebParams {
            functions,
            dispatch_targets: (functions - 1).min(16),
            blocks_per_fn: blocks,
            block_len,
            ..Default::default()
        };
        check_stream(Box::new(WebWorkload::new(&p, 8, seed)), 4_000)?;
    }

    #[test]
    fn spatial_streams_are_consistent(
        regions in 2usize..256,
        sig in 1usize..8,
        transient in 0usize..3,
        sites in 1usize..5,
        seed in 0u64..1000,
    ) {
        let p = SpatialParams {
            regions,
            signature_len: sig,
            transient_per_visit: transient,
            sites,
            work_between: 1,
        };
        check_stream(Box::new(SpatialRegions::new(&p, 9, seed)), 3_000)?;
    }

    #[test]
    fn markov_streams_are_consistent(
        sites in 1usize..64,
        depth in 1u32..64,
        parity: bool,
        noise in 0.0f64..0.4,
        seed in 0u64..1000,
    ) {
        let p = MarkovParams {
            sites,
            history_depth: depth,
            mode: if parity { MarkovMode::Parity } else { MarkovMode::Pattern },
            noise,
            ..Default::default()
        };
        check_stream(Box::new(MarkovBranches::new(&p, 10, seed)), 3_000)?;
    }

    #[test]
    fn generators_are_deterministic(seed in 0u64..1000) {
        let a = collect(Box::new(WebWorkload::new(&WebParams::default(), 11, seed)), 1_000);
        let b = collect(Box::new(WebWorkload::new(&WebParams::default(), 11, seed)), 1_000);
        prop_assert_eq!(a, b);
        let a = collect(Box::new(PointerChase::new(&PointerChaseParams::default(), 12, seed)), 1_000);
        let b = collect(Box::new(PointerChase::new(&PointerChaseParams::default(), 12, seed)), 1_000);
        prop_assert_eq!(a, b);
    }
}
