//! CONTEXT_HASH computation (§V, Fig. 10).
//!
//! The paper's mitigation derives a per-context key register from "a mixture
//! of software- and hardware-controlled entropy sources":
//!
//! * a software entropy source selected by privilege level
//!   (`SCXTNUM_ELx`, the ARMv8.5 CSV2 registers);
//! * a hardware entropy source selected by privilege level;
//! * another hardware entropy source selected by security state;
//! * an entropy source combining ASID, VMID, security state and privilege
//!   level;
//!
//! followed by "rounds of entropy diffusion — specifically a deterministic,
//! reversible non-linear transformation to average per-bit randomness". The
//! register is recomputed only at context switches ("takes only a few
//! cycles") and is never software-visible.

/// Exception/privilege level of the executing context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrivilegeLevel {
    /// User (EL0).
    El0,
    /// Kernel (EL1).
    El1,
    /// Hypervisor (EL2).
    El2,
    /// Firmware / secure monitor (EL3).
    El3,
}

impl PrivilegeLevel {
    /// Index used to select per-level entropy sources.
    pub fn index(self) -> usize {
        match self {
            PrivilegeLevel::El0 => 0,
            PrivilegeLevel::El1 => 1,
            PrivilegeLevel::El2 => 2,
            PrivilegeLevel::El3 => 3,
        }
    }
}

/// Security state (TrustZone world).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SecurityState {
    /// Non-secure world.
    NonSecure,
    /// Secure world.
    Secure,
}

impl SecurityState {
    /// Index used to select per-state entropy sources.
    pub fn index(self) -> usize {
        match self {
            SecurityState::NonSecure => 0,
            SecurityState::Secure => 1,
        }
    }
}

/// Architected identity of a context, as visible at a context switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContextId {
    /// Address-space (process) identifier.
    pub asid: u16,
    /// Virtual-machine identifier.
    pub vmid: u16,
    /// Privilege level.
    pub level: PrivilegeLevel,
    /// Security state.
    pub state: SecurityState,
}

impl ContextId {
    /// A user-mode, non-secure process context.
    pub fn user(asid: u16, vmid: u16) -> ContextId {
        ContextId {
            asid,
            vmid,
            level: PrivilegeLevel::El0,
            state: SecurityState::NonSecure,
        }
    }
}

/// The machine's entropy-source state backing CONTEXT_HASH computation.
///
/// `sw_entropy` models `SCXTNUM_ELx` (software-writable per level, e.g. by
/// the OS per process); the hardware sources are set at reset and are not
/// software-readable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntropySources {
    /// Software entropy per privilege level (`SCXTNUM_EL0..3`).
    pub sw_entropy: [u64; 4],
    /// Hardware entropy per privilege level.
    pub hw_entropy_level: [u64; 4],
    /// Hardware entropy per security state.
    pub hw_entropy_state: [u64; 2],
}

impl EntropySources {
    /// Reset-time sources seeded from a hardware RNG value.
    pub fn from_seed(seed: u64) -> EntropySources {
        let mut x = seed;
        let mut next = || {
            x = diffuse(x.wrapping_add(0x9E37_79B9_7F4A_7C15), 3);
            x
        };
        EntropySources {
            sw_entropy: [next(), next(), next(), next()],
            hw_entropy_level: [next(), next(), next(), next()],
            hw_entropy_state: [next(), next()],
        }
    }
}

/// The (software-invisible) per-context key register.
///
/// Holding a `ContextHash` models *being* the hardware; software in the
/// threat model can never observe the inner value, which is why the
/// newtype exposes no accessor beyond the cipher operations in
/// [`crate::cipher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContextHash(pub(crate) u64);

impl ContextHash {
    /// Derive a fresh key from this one and a salt — the CEASER-style
    /// re-keying of §V ("the operating system can intentionally
    /// periodically alter the CONTEXT_HASH"), also used by the watchdog's
    /// degradation ladder to invalidate every sealed predictor target in
    /// one step. The same diffusion network as the context-switch path
    /// keeps the result software-unpredictable.
    pub fn rotate(self, salt: u64) -> ContextHash {
        ContextHash(diffuse(
            self.0 ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            3,
        ))
    }
}

/// One round of the deterministic, reversible non-linear diffusion
/// transformation (a xorshift-multiply permutation of the 64-bit space).
fn diffuse_round(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Apply `rounds` rounds of entropy diffusion.
pub(crate) fn diffuse(mut x: u64, rounds: u32) -> u64 {
    for _ in 0..rounds {
        x = diffuse_round(x);
    }
    x
}

/// Compute the CONTEXT_HASH register for `ctx` from the machine's entropy
/// sources (Fig. 10). Performed in hardware at each context switch.
pub fn compute_context_hash(sources: &EntropySources, ctx: ContextId) -> ContextHash {
    let sw = sources.sw_entropy[ctx.level.index()];
    let hw_lvl = sources.hw_entropy_level[ctx.level.index()];
    let hw_state = sources.hw_entropy_state[ctx.state.index()];
    let identity = (ctx.asid as u64)
        | ((ctx.vmid as u64) << 16)
        | ((ctx.level.index() as u64) << 32)
        | ((ctx.state.index() as u64) << 34);
    // First-level hash: combine the four selected sources.
    let mixed = sw
        .rotate_left(17)
        .wrapping_add(hw_lvl)
        .wrapping_mul(0x2545_F491_4F6C_DD1D)
        ^ hw_state.rotate_left(41)
        ^ diffuse_round(identity);
    // "Multiple levels of hashing and iterative entropy spreading."
    ContextHash(diffuse(mixed, 4))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sources() -> EntropySources {
        EntropySources::from_seed(0xDEAD_BEEF)
    }

    #[test]
    fn same_context_same_hash() {
        let s = sources();
        let a = compute_context_hash(&s, ContextId::user(7, 1));
        let b = compute_context_hash(&s, ContextId::user(7, 1));
        assert_eq!(a, b, "recomputation at a context switch is stable");
    }

    #[test]
    fn different_asid_different_hash() {
        let s = sources();
        let a = compute_context_hash(&s, ContextId::user(7, 1));
        let b = compute_context_hash(&s, ContextId::user(8, 1));
        assert_ne!(a, b);
    }

    #[test]
    fn different_level_different_hash() {
        let s = sources();
        let mut k = ContextId::user(7, 1);
        let a = compute_context_hash(&s, k);
        k.level = PrivilegeLevel::El1;
        let b = compute_context_hash(&s, k);
        assert_ne!(a, b);
    }

    #[test]
    fn different_security_state_different_hash() {
        let s = sources();
        let mut k = ContextId::user(7, 1);
        let a = compute_context_hash(&s, k);
        k.state = SecurityState::Secure;
        let b = compute_context_hash(&s, k);
        assert_ne!(a, b);
    }

    #[test]
    fn sw_entropy_change_rekeys_context() {
        // §V: "the operating system can intentionally periodically alter
        // the CONTEXT_HASH for a process (by changing one of the
        // SW_ENTROPY_*_LVL inputs)" — CEASER-style re-keying.
        let mut s = sources();
        let a = compute_context_hash(&s, ContextId::user(7, 1));
        s.sw_entropy[0] ^= 1;
        let b = compute_context_hash(&s, ContextId::user(7, 1));
        assert_ne!(a, b);
    }

    #[test]
    fn diffusion_rounds_change_single_bit_flips_many() {
        // Avalanche sanity: one input bit flip flips ~half the output bits.
        let x = 0x0123_4567_89AB_CDEFu64;
        let a = diffuse(x, 4);
        let b = diffuse(x ^ 1, 4);
        let flipped = (a ^ b).count_ones();
        assert!(flipped >= 16, "diffusion must avalanche, flipped {flipped}");
    }

    #[test]
    fn kernel_entropy_not_used_for_user_hash() {
        // Changing EL1's software entropy must not affect an EL0 hash: the
        // sources are selected by level.
        let mut s = sources();
        let a = compute_context_hash(&s, ContextId::user(7, 1));
        s.sw_entropy[1] ^= 0xFFFF;
        let b = compute_context_hash(&s, ContextId::user(7, 1));
        assert_eq!(a, b);
    }
}

mod snapshot_impl {
    use super::*;
    use exynos_snapshot::{tags, Decoder, Encoder, Snapshot, SnapshotError};

    impl Snapshot for ContextHash {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::CONTEXT_HASH);
            enc.u64(self.0);
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::CONTEXT_HASH)?;
            self.0 = dec.u64()?;
            dec.end_section()
        }
    }

    impl Snapshot for EntropySources {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::ENTROPY);
            for v in self.sw_entropy {
                enc.u64(v);
            }
            for v in self.hw_entropy_level {
                enc.u64(v);
            }
            for v in self.hw_entropy_state {
                enc.u64(v);
            }
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::ENTROPY)?;
            for v in &mut self.sw_entropy {
                *v = dec.u64()?;
            }
            for v in &mut self.hw_entropy_level {
                *v = dec.u64()?;
            }
            for v in &mut self.hw_entropy_state {
                *v = dec.u64()?;
            }
            dec.end_section()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn context_state_roundtrips_bit_identically() {
            let mut src = EntropySources::from_seed(0xABCD_EF01);
            src.sw_entropy[2] = 0x1234;
            let key = compute_context_hash(&src, ContextId::user(3, 7));
            let mut enc = Encoder::new();
            src.save(&mut enc);
            key.save(&mut enc);
            let bytes = enc.finish();

            let mut src2 = EntropySources::from_seed(0);
            let mut key2 = compute_context_hash(&src2, ContextId::user(0, 0));
            let mut dec = Decoder::new(&bytes);
            src2.restore(&mut dec).unwrap();
            key2.restore(&mut dec).unwrap();
            dec.finish().unwrap();
            assert_eq!(src2, src);
            // The restored key must reproduce the same cipher stream.
            assert_eq!(key2, key);
        }
    }
}
