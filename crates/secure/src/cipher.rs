//! Indirect/RAS target encryption (§V, Fig. 11).
//!
//! "Within a particular processor context, CONTEXT_HASH is used as a very
//! fast stream cipher to XOR with the indirect branch or return targets
//! being stored to the BTB or RAS. ... To protect against a basic plaintext
//! attack, a simple substitution cipher or bit reversal can further
//! obfuscate the actual stored address."
//!
//! The cipher must be cheap enough for a BTB/RAS lookup timing path, so it
//! is an XOR with the key plus a fixed bit permutation — both exactly
//! invertible with the same key.

use crate::context::ContextHash;

/// A target address as stored (encrypted) in a BTB entry or RAS slot.
///
/// The newtype prevents an encrypted value from being used as a fetch
/// address without going through [`decrypt_target`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EncryptedTarget(u64);

impl EncryptedTarget {
    /// Raw stored bits (what a structure dump / side channel would see).
    pub fn raw_bits(self) -> u64 {
        self.0
    }

    /// Reinterpret raw stored bits as an encrypted target (used when a
    /// structure stores the ciphertext in a plain integer field).
    pub fn from_raw(bits: u64) -> EncryptedTarget {
        EncryptedTarget(bits)
    }
}

/// The fixed "substitution" layer: a cheap, timing-friendly bit diffusion
/// (swap halves and mix) that breaks the plaintext XOR relationship.
fn permute(x: u64) -> u64 {
    let r = x.rotate_left(23);
    r ^ (r << 7)
}

/// Inverse of [`permute`]. `x << 7` is not a permutation on its own, but
/// `y = r ^ (r << 7)` with `r = x.rotate_left(23)` is: invert by iterated
/// shift-xor cancellation, then rotate back.
fn unpermute(y: u64) -> u64 {
    // Invert r ^= r << 7 (binary lower-triangular, invertible).
    let mut r = y;
    let mut shift = 7;
    while shift < 64 {
        r ^= r << shift;
        shift *= 2;
    }
    // After the loop r = y ^ (y<<7) ^ (y<<14) ^ ... which telescopes to the
    // inverse of the map r -> r ^ (r << 7).
    r.rotate_right(23)
}

/// Encrypt a predicted-taken target before storing it in the BTB or RAS.
pub fn encrypt_target(key: ContextHash, target: u64) -> EncryptedTarget {
    EncryptedTarget(permute(target ^ key.0))
}

/// Decrypt a stored target at prediction time. Only the exact key that
/// stored the entry recovers the architectural target; any other key yields
/// an unrelated address (and a later mispredict recovery).
pub fn decrypt_target(key: ContextHash, stored: EncryptedTarget) -> u64 {
    unpermute(stored.0) ^ key.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{compute_context_hash, ContextId, EntropySources};

    fn key(asid: u16) -> ContextHash {
        let s = EntropySources::from_seed(42);
        compute_context_hash(&s, ContextId::user(asid, 0))
    }

    #[test]
    fn roundtrip_recovers_target() {
        let k = key(3);
        for t in [0u64, 4, 0x4000_0000, 0xFFFF_FFFF_FFFF_FFFC, 0x1234_5678] {
            assert_eq!(decrypt_target(k, encrypt_target(k, t)), t);
        }
    }

    #[test]
    fn wrong_key_scrambles_target() {
        let ka = key(3);
        let kb = key(4);
        let t = 0x4000_1000u64;
        let leaked = decrypt_target(kb, encrypt_target(ka, t));
        assert_ne!(leaked, t);
        // And the damage is broad: many bits differ, not just low bits.
        assert!((leaked ^ t).count_ones() >= 8);
    }

    #[test]
    fn stored_bits_hide_plaintext() {
        // A pure-XOR cipher leaks XOR differences between two plaintexts;
        // the permutation layer must break that: enc(a)^enc(b) != a^b.
        let k = key(9);
        let a = 0x4000_0000u64;
        let b = 0x4000_0040u64;
        let ea = encrypt_target(k, a).raw_bits();
        let eb = encrypt_target(k, b).raw_bits();
        assert_ne!(ea ^ eb, a ^ b, "permutation must break XOR malleability");
    }

    #[test]
    fn unpermute_inverts_permute_exhaustively_on_patterns() {
        for i in 0..64 {
            let x = 1u64 << i;
            assert_eq!(unpermute(permute(x)), x);
            let y = !(1u64 << i);
            assert_eq!(unpermute(permute(y)), y);
        }
    }
}
