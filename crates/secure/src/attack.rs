//! Spectre-v2-style attack scenarios against a shared indirect predictor
//! (§V), demonstrating what the CONTEXT_HASH target encryption does and
//! does not change.
//!
//! The threat model is the paper's: a fully trustworthy OS/hypervisor,
//! untrusted userland able to run arbitrary code. The two modeled attacks:
//!
//! * **Cross-training**: the attacker executes an indirect branch that
//!   aliases into the victim's predictor entry, training it to a gadget
//!   address; success = the victim speculatively fetches from the gadget.
//! * **Replay**: an attacker that has somehow inferred the *stored* bits
//!   for a (plaintext → ciphertext) pair replays those bits in a later
//!   execution of the victim; success = the stale mapping still decodes to
//!   the gadget.

use crate::cipher::{decrypt_target, encrypt_target, EncryptedTarget};
use crate::context::{compute_context_hash, ContextHash, ContextId, EntropySources};

/// A minimal shared indirect-target table (the structure both the attacker
/// and the victim's predictions read), with optional target encryption.
#[derive(Debug, Clone)]
pub struct SharedIndirectTable {
    entries: Vec<Option<EncryptedTarget>>,
    encrypt: bool,
    /// Identity key used when encryption is disabled.
    null_key: ContextHash,
}

impl SharedIndirectTable {
    /// A table with `entries` slots; `encrypt` selects the §V mitigation.
    pub fn new(entries: usize, encrypt: bool) -> SharedIndirectTable {
        assert!(entries.is_power_of_two(), "table size must be a power of two");
        SharedIndirectTable {
            entries: vec![None; entries],
            encrypt,
            null_key: ContextHash(0),
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.entries.len() - 1)
    }

    fn key_for(&self, key: ContextHash) -> ContextHash {
        if self.encrypt {
            key
        } else {
            self.null_key
        }
    }

    /// Train the entry for `pc` with architectural `target` under `key`.
    pub fn train(&mut self, key: ContextHash, pc: u64, target: u64) {
        let idx = self.index(pc);
        self.entries[idx] = Some(encrypt_target(self.key_for(key), target));
    }

    /// Predict the target for `pc` under `key` (None = no entry).
    pub fn predict(&self, key: ContextHash, pc: u64) -> Option<u64> {
        self.entries[self.index(pc)].map(|e| decrypt_target(self.key_for(key), e))
    }

    /// Overwrite the raw stored bits of `pc`'s entry (a replay attack's
    /// capability, not an architectural operation).
    pub fn replay_raw(&mut self, pc: u64, stored: EncryptedTarget) {
        let idx = self.index(pc);
        self.entries[idx] = Some(stored);
    }

    /// Read the raw stored bits (side-channel capability).
    pub fn leak_raw(&self, pc: u64) -> Option<EncryptedTarget> {
        self.entries[self.index(pc)]
    }
}

/// Outcome of one attack trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackOutcome {
    /// The address the victim would speculatively fetch from.
    pub speculative_target: Option<u64>,
    /// Whether that address equals the attacker's gadget.
    pub hijacked: bool,
}

/// Aggregate statistics over a batch of attack trials.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AttackStats {
    /// Trials run.
    pub trials: u64,
    /// Trials where the victim speculatively fetched the gadget.
    pub hijacked: u64,
}

impl AttackStats {
    /// Fold one trial outcome into the totals.
    pub fn record(&mut self, outcome: &AttackOutcome) {
        self.trials += 1;
        if outcome.hijacked {
            self.hijacked += 1;
        }
    }

    /// Fraction of trials that hijacked the victim (0.0 with no trials).
    pub fn hijack_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.hijacked as f64 / self.trials as f64
        }
    }
}

impl exynos_telemetry::Observable for AttackStats {
    fn component(&self) -> &'static str {
        "secure.attack"
    }

    fn visit(&self, f: &mut dyn FnMut(&'static str, exynos_telemetry::Value)) {
        f("trials", exynos_telemetry::Value::U64(self.trials));
        f("hijacked", exynos_telemetry::Value::U64(self.hijacked));
        f(
            "hijack_rate",
            exynos_telemetry::Value::F64(self.hijack_rate()),
        );
    }
}

/// Run one cross-training trial: attacker (ASID `attacker_asid`) trains the
/// aliased entry to `gadget`; the victim (ASID `victim_asid`) then predicts
/// the same PC.
pub fn cross_training_trial(
    table: &mut SharedIndirectTable,
    sources: &EntropySources,
    attacker_asid: u16,
    victim_asid: u16,
    branch_pc: u64,
    gadget: u64,
) -> AttackOutcome {
    let attacker_key = compute_context_hash(sources, ContextId::user(attacker_asid, 0));
    let victim_key = compute_context_hash(sources, ContextId::user(victim_asid, 0));
    table.train(attacker_key, branch_pc, gadget);
    let speculative_target = table.predict(victim_key, branch_pc);
    AttackOutcome {
        speculative_target,
        hijacked: speculative_target == Some(gadget),
    }
}

/// Run one replay trial: the attacker leaked the stored bits that mapped
/// `gadget` during an earlier victim lifetime (`old_asid`), then replays
/// them into the table during a new lifetime (`new_asid`, e.g. after the
/// process was restarted or the OS rotated `SCXTNUM`).
pub fn replay_trial(
    table: &mut SharedIndirectTable,
    old_sources: &EntropySources,
    new_sources: &EntropySources,
    old_asid: u16,
    new_asid: u16,
    branch_pc: u64,
    gadget: u64,
) -> AttackOutcome {
    let old_key = compute_context_hash(old_sources, ContextId::user(old_asid, 0));
    // Lifetime 1: victim architecturally trains the gadget mapping (e.g.
    // attacker observed the victim call through this pointer).
    table.train(old_key, branch_pc, gadget);
    let Some(leaked) = table.leak_raw(branch_pc) else {
        // The entry was just trained, so a miss means the table geometry
        // is degenerate; report a failed hijack rather than abort.
        return AttackOutcome {
            speculative_target: None,
            hijacked: false,
        };
    };
    // Lifetime 2: attacker replays the leaked bits; victim now runs with a
    // fresh context.
    table.replay_raw(branch_pc, leaked);
    let new_key = compute_context_hash(new_sources, ContextId::user(new_asid, 0));
    let speculative_target = table.predict(new_key, branch_pc);
    AttackOutcome {
        speculative_target,
        hijacked: speculative_target == Some(gadget),
    }
}

/// Measure cross-training hijack rate over `trials` attacker/victim ASID
/// pairs. Returns (hijacks, trials).
pub fn cross_training_rate(encrypt: bool, trials: u32) -> (u32, u32) {
    let sources = EntropySources::from_seed(0x5EC0_11D5);
    let mut hijacks = 0;
    for t in 0..trials {
        let mut table = SharedIndirectTable::new(256, encrypt);
        let out = cross_training_trial(
            &mut table,
            &sources,
            100 + (t % 50) as u16,
            200 + (t % 50) as u16,
            0x4000_0000 + (t as u64) * 4,
            0xBAD0_0000 + (t as u64) * 64,
        );
        hijacks += out.hijacked as u32;
    }
    (hijacks, trials)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sources() -> EntropySources {
        EntropySources::from_seed(7)
    }

    #[test]
    fn unprotected_table_is_hijackable() {
        let s = sources();
        let mut t = SharedIndirectTable::new(64, false);
        let out = cross_training_trial(&mut t, &s, 1, 2, 0x4000_1000, 0xBAD0_0040);
        assert!(out.hijacked, "without encryption cross-training must succeed");
    }

    #[test]
    fn encryption_defeats_cross_training() {
        let s = sources();
        let mut t = SharedIndirectTable::new(64, true);
        let out = cross_training_trial(&mut t, &s, 1, 2, 0x4000_1000, 0xBAD0_0040);
        assert!(!out.hijacked);
        // The victim still gets *a* prediction (taken to an unpredictable
        // address → later mispredict recovery), it just isn't the gadget.
        assert!(out.speculative_target.is_some());
        assert_ne!(out.speculative_target, Some(0xBAD0_0040));
    }

    #[test]
    fn same_context_still_predicts_correctly_with_encryption() {
        // The mitigation must not break the common case: a context reading
        // its own trained entries sees perfect targets.
        let s = sources();
        let key = compute_context_hash(&s, ContextId::user(5, 0));
        let mut t = SharedIndirectTable::new(64, true);
        t.train(key, 0x4000_2000, 0x4100_0000);
        assert_eq!(t.predict(key, 0x4000_2000), Some(0x4100_0000));
    }

    #[test]
    fn replay_defeated_when_context_differs() {
        let old = sources();
        let new = EntropySources::from_seed(8); // OS rotated entropy
        let mut t = SharedIndirectTable::new(64, true);
        let out = replay_trial(&mut t, &old, &new, 5, 5, 0x4000_3000, 0xBAD0_0080);
        assert!(!out.hijacked, "replay across re-keying must fail");
    }

    #[test]
    fn replay_succeeds_against_identical_context_without_rekeying() {
        // Shows why the paper notes the OS "can intentionally periodically
        // alter the CONTEXT_HASH": with an identical context and no
        // rotation, a replayed mapping still decodes.
        let s = sources();
        let mut t = SharedIndirectTable::new(64, true);
        let out = replay_trial(&mut t, &s, &s, 5, 5, 0x4000_3000, 0xBAD0_0080);
        assert!(out.hijacked);
    }

    #[test]
    fn hijack_rate_summary() {
        let (h_plain, n) = cross_training_rate(false, 64);
        let (h_enc, _) = cross_training_rate(true, 64);
        assert_eq!(h_plain, n);
        assert_eq!(h_enc, 0);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_table_rejected() {
        let _ = SharedIndirectTable::new(100, true);
    }
}
