//! # exynos-secure — branch-predictor security hardening (§V)
//!
//! Implements the paper's Spectre-v2 mitigation: a hardware-computed,
//! software-invisible per-context key ([`context::ContextHash`], Fig. 10)
//! used as a fast stream cipher over indirect-branch and return targets
//! stored in shared predictor structures ([`cipher`], Fig. 11), plus an
//! attack harness ([`attack`]) that demonstrates cross-training and replay
//! protection.
//!
//! ## Example
//!
//! ```
//! use exynos_secure::context::{compute_context_hash, ContextId, EntropySources};
//! use exynos_secure::cipher::{decrypt_target, encrypt_target};
//!
//! let sources = EntropySources::from_seed(1);
//! let key = compute_context_hash(&sources, ContextId::user(42, 0));
//! let stored = encrypt_target(key, 0x4000_1000);
//! assert_eq!(decrypt_target(key, stored), 0x4000_1000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attack;
pub mod cipher;
pub mod context;

pub use cipher::{decrypt_target, encrypt_target, EncryptedTarget};
pub use context::{compute_context_hash, ContextHash, ContextId, EntropySources, PrivilegeLevel, SecurityState};
