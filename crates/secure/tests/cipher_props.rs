//! Property tests on the target cipher and CONTEXT_HASH computation.

use exynos_secure::cipher::{decrypt_target, encrypt_target};
use exynos_secure::context::{compute_context_hash, ContextId, EntropySources};
use proptest::prelude::*;

fn key(seed: u64, asid: u16) -> exynos_secure::ContextHash {
    compute_context_hash(&EntropySources::from_seed(seed), ContextId::user(asid, 0))
}

proptest! {
    #[test]
    fn roundtrip_any_target(seed: u64, asid: u16, target: u64) {
        let k = key(seed, asid);
        prop_assert_eq!(decrypt_target(k, encrypt_target(k, target)), target);
    }

    #[test]
    fn cross_key_rarely_decodes(seed: u64, a: u16, b: u16, target: u64) {
        prop_assume!(a != b);
        let ka = key(seed, a);
        let kb = key(seed, b);
        let leaked = decrypt_target(kb, encrypt_target(ka, target));
        // With distinct 64-bit keys a collision decoding to the exact
        // plaintext would require key equality.
        prop_assert_ne!(leaked, target);
    }

    #[test]
    fn ciphertext_not_plaintext(seed: u64, asid: u16, target: u64) {
        let k = key(seed, asid);
        let e = encrypt_target(k, target).raw_bits();
        // The stored bits differ from the target except with negligible
        // probability; allow equality only if the key is degenerate.
        if e == target {
            prop_assert_eq!(decrypt_target(k, encrypt_target(k, target)), target);
        } else {
            prop_assert_ne!(e, target);
        }
    }
}
