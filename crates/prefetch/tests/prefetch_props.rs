//! Property tests over the prefetch engines.

use exynos_prefetch::degree::DegreeController;
use exynos_prefetch::reorder::AddressReorderBuffer;
use exynos_prefetch::sms::{SmsConfig, SmsEngine};
use exynos_prefetch::standalone::{StandaloneConfig, StandalonePrefetcher};
use exynos_prefetch::stride::{MultiStrideEngine, StrideConfig};
use exynos_prefetch::twopass::TwoPassController;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The degree always stays within [min, max] under arbitrary
    /// confirm/issue interleavings.
    #[test]
    fn degree_stays_in_bounds(ops in prop::collection::vec(any::<bool>(), 400)) {
        let mut d = DegreeController::new(4, 2, 32);
        for confirm in ops {
            if confirm {
                d.on_confirm();
            } else {
                d.on_issue();
            }
            prop_assert!((2..=32).contains(&d.degree()), "degree {}", d.degree());
        }
    }

    /// The re-order buffer releases exactly the non-duplicate inserted
    /// lines, in sequence order, under any arrival permutation.
    #[test]
    fn reorder_releases_in_order(perm in prop::collection::vec(0usize..64, 64)) {
        // Build a permutation of 0..64 out of the raw vec.
        let mut order: Vec<usize> = (0..64).collect();
        for (i, &swap) in perm.iter().enumerate() {
            order.swap(i % 64, swap);
        }
        let mut buf = AddressReorderBuffer::new(64, 0); // no dup filter
        let mut released = Vec::new();
        for &seq in &order {
            // Distinct line per sequence number.
            released.extend(buf.insert(seq as u64, 1000 + seq as u64));
        }
        prop_assert_eq!(released.len(), 64, "all lines release once all arrive");
        for w in released.windows(2) {
            prop_assert!(w[0] < w[1], "program order preserved: {released:?}");
        }
    }

    /// Stride prefetches always land on the arithmetic lattice of the
    /// generating pattern once locked (no wild addresses).
    #[test]
    fn stride_prefetches_on_lattice(s1 in 1i64..6, r1 in 1u32..3, s2 in 1i64..6, r2 in 1u32..3) {
        let mut e = MultiStrideEngine::new(StrideConfig::m3());
        let pattern: Vec<i64> = std::iter::repeat(s1).take(r1 as usize)
            .chain(std::iter::repeat(s2).take(r2 as usize))
            .collect();
        let period: i64 = pattern.iter().sum();
        // Reachable offsets mod period.
        let mut offsets = vec![0i64];
        for d in &pattern[..pattern.len() - 1] {
            offsets.push(offsets.last().unwrap() + d);
        }
        let base = 1_000_000i64;
        let mut line = base;
        let mut idx = 0usize;
        let mut all = Vec::new();
        for _ in 0..200 {
            all.extend(e.on_demand_line(line as u64));
            line += pattern[idx % pattern.len()];
            idx += 1;
        }
        for p in all {
            let off = (p as i64 - base).rem_euclid(period);
            prop_assert!(offsets.contains(&off), "prefetch {p} off-lattice (off {off})");
        }
    }

    /// The SMS engine only ever prefetches within the 4 KiB region of the
    /// triggering primary load.
    #[test]
    fn sms_prefetches_stay_in_region(
        visits in prop::collection::vec((0u64..512, 0u64..64), 200),
    ) {
        let mut e = SmsEngine::new(SmsConfig::default());
        for (region, off) in visits {
            let vaddr = region * 4096 + off * 64;
            for pf in e.on_demand_miss(0x4000, vaddr, false) {
                prop_assert_eq!(pf.line / 64, region, "prefetch left its region");
            }
        }
    }

    /// The two-pass pending queue never exceeds its depth.
    #[test]
    fn twopass_queue_bounded(ops in prop::collection::vec((0u64..4096, any::<bool>(), 0u64..100), 300)) {
        let mut c = TwoPassController::new(16, 8);
        let mut now = 0u64;
        for (line, drain, dur) in ops {
            now += 1;
            if drain {
                let _ = c.drain_ready(now, 4);
            } else {
                let _ = c.enqueue(line, false, now + dur);
            }
            prop_assert!(c.pending_len() <= 16);
        }
    }

    /// The standalone prefetcher in low-confidence mode never issues.
    #[test]
    fn standalone_low_mode_is_silent(lines in prop::collection::vec(0u64..100_000, 100)) {
        let mut p = StandalonePrefetcher::new(StandaloneConfig {
            promote_score: i32::MAX, // stay in low confidence forever
            ..Default::default()
        });
        for l in lines {
            let out = p.on_l2_access(l, true);
            prop_assert!(out.is_empty(), "low-confidence mode must not issue");
        }
    }
}
