//! The standalone lower-level-cache prefetcher, added in M5 (§VIII.C–D).
//!
//! "Starting in M5, a standalone prefetcher is added to prefetch into the
//! lower level caches beyond the L1s. This prefetcher observes a global
//! view of both the instruction and data accesses at the lower cache
//! level ... Both demand accesses and core-initiated prefetches are used
//! for its training." It operates on *physical* addresses, "which limits
//! its span to a single page", with "techniques to reuse learnings across
//! 4KB physical page crossings", and uses "a two-level adaptive scheme":
//!
//! * **low confidence** — "phantom prefetches are generated for confidence
//!   tracking purposes into a prefetch filter, but not issued to the
//!   memory system"; demands matching the filter raise confidence;
//! * **high confidence** — prefetches issue aggressively, with accuracy
//!   monitored through cache metadata (prefetched / demand-hit bits);
//!   dropping accuracy falls back to low confidence.

use std::collections::VecDeque;

/// Confidence mode (Fig. 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfMode {
    /// Phantom prefetches only.
    Low,
    /// Aggressive issue.
    High,
}

/// Tuning of the standalone prefetcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StandaloneConfig {
    /// Concurrent page-streams tracked.
    pub streams: usize,
    /// Confirmations needed in a stream before it prefetches.
    pub train_count: u32,
    /// Prefetch distance (lines ahead) in high-confidence mode.
    pub distance: u32,
    /// Phantom-filter depth.
    pub filter_depth: usize,
    /// Score at which low → high confidence.
    pub promote_score: i32,
    /// Score at which high → low confidence.
    pub demote_score: i32,
}

impl Default for StandaloneConfig {
    fn default() -> StandaloneConfig {
        StandaloneConfig {
            streams: 16,
            train_count: 2,
            distance: 8,
            filter_depth: 64,
            promote_score: 8,
            demote_score: -4,
        }
    }
}

/// One page-bounded stream.
#[derive(Debug, Clone, Copy)]
struct PageStream {
    /// 4 KiB physical page number.
    page: u64,
    /// Last 64 B line index within the page (0..64).
    last_line: i64,
    stride: i64,
    confirmations: u32,
    lru: u64,
}

/// Statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StandaloneStats {
    /// Accesses trained on.
    pub trained: u64,
    /// Phantom prefetches generated (low-confidence mode).
    pub phantoms: u64,
    /// Demands that matched a phantom (confidence credit).
    pub phantom_hits: u64,
    /// Real prefetches issued (high-confidence mode).
    pub issued: u64,
    /// Low→high promotions.
    pub promotions: u64,
    /// High→low demotions.
    pub demotions: u64,
    /// Streams continued across a page crossing.
    pub page_crossings: u64,
}

/// The standalone L2/L3 stream prefetcher.
#[derive(Debug, Clone)]
pub struct StandalonePrefetcher {
    cfg: StandaloneConfig,
    streams: Vec<PageStream>,
    mode: ConfMode,
    score: i32,
    /// Phantom prefetch filter (lines).
    filter: VecDeque<u64>,
    /// Recent stride observed, reused across page crossings.
    recent_stride: i64,
    stamp: u64,
    stats: StandaloneStats,
}

impl StandalonePrefetcher {
    /// Build a prefetcher from `cfg`.
    ///
    /// # Panics
    /// Panics on degenerate geometry.
    pub fn new(cfg: StandaloneConfig) -> StandalonePrefetcher {
        assert!(cfg.streams > 0 && cfg.distance > 0 && cfg.filter_depth > 0);
        StandalonePrefetcher {
            cfg,
            streams: Vec::new(),
            mode: ConfMode::Low,
            score: 0,
            filter: VecDeque::new(),
            recent_stride: 0,
            stamp: 0,
            stats: StandaloneStats::default(),
        }
    }

    /// Current confidence mode.
    pub fn mode(&self) -> ConfMode {
        self.mode
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> StandaloneStats {
        self.stats
    }

    /// Observe an L2-level access (demand or core prefetch) at physical
    /// 64 B `line`. Returns lines to prefetch (empty in low-confidence
    /// mode).
    pub fn on_l2_access(&mut self, line: u64, is_demand: bool) -> Vec<u64> {
        let mut out = Vec::new();
        self.on_l2_access_into(line, is_demand, &mut out);
        out
    }

    /// As [`StandalonePrefetcher::on_l2_access`], but writing the prefetch
    /// lines into `out` (cleared first) so callers can reuse one buffer
    /// across accesses instead of allocating per call.
    pub fn on_l2_access_into(&mut self, line: u64, is_demand: bool, out: &mut Vec<u64>) {
        out.clear();
        self.stamp += 1;
        self.stats.trained += 1;
        // Demands matching the phantom filter raise confidence (Fig. 15).
        if is_demand {
            if let Some(pos) = self.filter.iter().position(|&f| f == line) {
                self.filter.remove(pos);
                self.stats.phantom_hits += 1;
                self.score += 1;
                if self.mode == ConfMode::Low && self.score >= self.cfg.promote_score {
                    self.mode = ConfMode::High;
                    self.stats.promotions += 1;
                }
            }
        }
        let page = line / 64;
        let in_page = (line % 64) as i64;
        let si = match self.streams.iter().position(|s| s.page == page) {
            Some(i) => i,
            None => self.alloc_stream(page, in_page),
        };
        let s = &mut self.streams[si];
        s.lru = self.stamp;
        let delta = in_page - s.last_line;
        if delta == 0 {
            return;
        }
        if s.stride == delta {
            s.confirmations += 1;
        } else {
            s.stride = delta;
            s.confirmations = 0;
        }
        s.last_line = in_page;
        if s.confirmations < self.cfg.train_count || s.stride == 0 {
            return;
        }
        self.recent_stride = s.stride;
        // Generate up to `distance` lines ahead, clamped to the page (the
        // physical-address span limit).
        let stride = s.stride;
        let mut next = in_page;
        for _ in 0..self.cfg.distance {
            next += stride;
            if !(0..64).contains(&next) {
                break;
            }
            out.push(page * 64 + next as u64);
        }
        match self.mode {
            ConfMode::Low => {
                for &l in out.iter() {
                    if self.filter.len() == self.cfg.filter_depth {
                        self.filter.pop_front();
                    }
                    self.filter.push_back(l);
                    self.stats.phantoms += 1;
                }
                out.clear();
            }
            ConfMode::High => {
                self.stats.issued += out.len() as u64;
            }
        }
    }

    fn alloc_stream(&mut self, page: u64, in_page: i64) -> usize {
        // Cross-page learning reuse: a fresh page whose first access lands
        // where the recent stride predicts continues training pre-warmed.
        let warm = self.recent_stride != 0
            && (in_page % self.recent_stride.abs().max(1) == 0 || in_page < 2 || in_page > 61);
        if warm {
            self.stats.page_crossings += 1;
        }
        let s = PageStream {
            page,
            last_line: in_page - if warm { self.recent_stride } else { 0 },
            stride: if warm { self.recent_stride } else { 0 },
            confirmations: if warm { self.cfg.train_count } else { 0 },
            lru: self.stamp,
        };
        if self.streams.len() < self.cfg.streams {
            self.streams.push(s);
            return self.streams.len() - 1;
        }
        let victim = self
            .streams
            .iter()
            .enumerate()
            .min_by_key(|(_, st)| st.lru)
            .map(|(i, _)| i)
            .unwrap_or(0);
        self.streams[victim] = s;
        victim
    }

    /// Fault-injection hook: confirmation messages from the cache metadata
    /// back to the trainer are lost. Every stream's training count is
    /// zeroed (they must re-confirm their stride before issuing again),
    /// the phantom filter is emptied, and the accuracy score resets.
    pub fn drop_confirmations(&mut self) {
        for s in &mut self.streams {
            s.confirmations = 0;
        }
        self.filter.clear();
        self.score = 0;
    }

    /// Feedback from cache metadata: a prefetched line was demanded
    /// (`used = true`) or evicted untouched (`used = false`). Governs the
    /// high-confidence mode's accuracy monitor.
    pub fn on_prefetch_outcome(&mut self, used: bool) {
        if used {
            self.score = (self.score + 1).min(2 * self.cfg.promote_score);
        } else {
            self.score -= 1;
            if self.mode == ConfMode::High && self.score <= self.cfg.demote_score {
                self.mode = ConfMode::Low;
                self.score = 0;
                self.stats.demotions += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walk(p: &mut StandalonePrefetcher, start_line: u64, stride: i64, n: usize) -> Vec<u64> {
        let mut out = Vec::new();
        let mut l = start_line as i64;
        for _ in 0..n {
            out.extend(p.on_l2_access(l as u64, true));
            l += stride;
        }
        out
    }

    #[test]
    fn starts_low_and_issues_nothing() {
        // Before confidence builds (promote_score phantom hits), nothing
        // is issued to the memory system.
        let mut p = StandalonePrefetcher::new(StandaloneConfig::default());
        let out = walk(&mut p, 64 * 100, 1, 8);
        assert!(out.is_empty());
        assert_eq!(p.mode(), ConfMode::Low);
        assert!(p.stats().phantoms > 0);
    }

    #[test]
    fn phantom_hits_promote_then_issue() {
        let mut p = StandalonePrefetcher::new(StandaloneConfig::default());
        // A long unit-stride walk: phantoms predict the walk itself, so
        // subsequent demands hit the filter and confidence climbs.
        let out = walk(&mut p, 64 * 200, 1, 60);
        assert_eq!(p.mode(), ConfMode::High, "stats: {:?}", p.stats());
        assert!(p.stats().promotions == 1);
        assert!(!out.is_empty(), "high mode must issue");
    }

    #[test]
    fn prefetches_stay_within_page() {
        let mut p = StandalonePrefetcher::new(StandaloneConfig::default());
        let out = walk(&mut p, 64 * 300, 1, 200);
        for l in out {
            // Every prefetch's page must equal some demanded page range.
            assert!(l / 64 >= 300 && l / 64 <= 300 + 4);
        }
    }

    #[test]
    fn inaccuracy_demotes() {
        let mut p = StandalonePrefetcher::new(StandaloneConfig::default());
        walk(&mut p, 64 * 400, 1, 60);
        assert_eq!(p.mode(), ConfMode::High);
        for _ in 0..40 {
            p.on_prefetch_outcome(false);
        }
        assert_eq!(p.mode(), ConfMode::Low);
        assert_eq!(p.stats().demotions, 1);
    }

    #[test]
    fn page_crossing_reuses_stride() {
        let mut p = StandalonePrefetcher::new(StandaloneConfig::default());
        // Promote first.
        walk(&mut p, 64 * 500, 1, 70);
        let crossings_before = p.stats().page_crossings;
        // Continue the walk into the next pages.
        walk(&mut p, 64 * 501, 1, 70);
        assert!(
            p.stats().page_crossings > crossings_before,
            "stride must carry across page boundaries"
        );
    }

    #[test]
    fn accuracy_feedback_keeps_good_streams_high() {
        let mut p = StandalonePrefetcher::new(StandaloneConfig::default());
        walk(&mut p, 64 * 600, 2, 60);
        assert_eq!(p.mode(), ConfMode::High);
        for _ in 0..100 {
            p.on_prefetch_outcome(true);
            p.on_prefetch_outcome(false);
        }
        assert_eq!(p.mode(), ConfMode::High, "balanced accuracy must not demote");
    }
}

impl StandalonePrefetcher {
    /// Drop trained page streams and the duplicate filter, keeping
    /// cumulative statistics.
    pub fn clear(&mut self) {
        self.streams.clear();
        self.filter.clear();
        self.mode = ConfMode::Low;
        self.score = 0;
        self.recent_stride = 0;
        self.stamp = 0;
    }
}

mod snapshot_impl {
    use super::*;
    use exynos_snapshot::{tags, Decoder, Encoder, Snapshot, SnapshotError};

    fn mode_to_u8(m: ConfMode) -> u8 {
        match m {
            ConfMode::Low => 0,
            ConfMode::High => 1,
        }
    }

    fn mode_from_u8(v: u8) -> Result<ConfMode, SnapshotError> {
        match v {
            0 => Ok(ConfMode::Low),
            1 => Ok(ConfMode::High),
            _ => Err(SnapshotError::Corrupt { what: "standalone confidence mode" }),
        }
    }

    impl Snapshot for StandalonePrefetcher {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::STANDALONE);
            enc.seq(self.streams.len());
            for s in &self.streams {
                enc.u64(s.page);
                enc.i64(s.last_line);
                enc.i64(s.stride);
                enc.u32(s.confirmations);
                enc.u64(s.lru);
            }
            enc.u8(mode_to_u8(self.mode));
            enc.i32(self.score);
            enc.seq(self.filter.len());
            for l in &self.filter {
                enc.u64(*l);
            }
            enc.i64(self.recent_stride);
            enc.u64(self.stamp);
            enc.u64(self.stats.trained);
            enc.u64(self.stats.phantoms);
            enc.u64(self.stats.phantom_hits);
            enc.u64(self.stats.issued);
            enc.u64(self.stats.promotions);
            enc.u64(self.stats.demotions);
            enc.u64(self.stats.page_crossings);
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::STANDALONE)?;
            let n = dec.seq(36)?;
            if n > self.cfg.streams {
                return Err(SnapshotError::Geometry {
                    what: "standalone page streams",
                    expected: self.cfg.streams as u64,
                    found: n as u64,
                });
            }
            self.streams.clear();
            for _ in 0..n {
                self.streams.push(PageStream {
                    page: dec.u64()?,
                    last_line: dec.i64()?,
                    stride: dec.i64()?,
                    confirmations: dec.u32()?,
                    lru: dec.u64()?,
                });
            }
            self.mode = mode_from_u8(dec.u8()?)?;
            self.score = dec.i32()?;
            let nf = dec.seq(8)?;
            if nf > self.cfg.filter_depth {
                return Err(SnapshotError::Geometry {
                    what: "standalone duplicate filter",
                    expected: self.cfg.filter_depth as u64,
                    found: nf as u64,
                });
            }
            self.filter.clear();
            for _ in 0..nf {
                self.filter.push_back(dec.u64()?);
            }
            self.recent_stride = dec.i64()?;
            self.stamp = dec.u64()?;
            self.stats.trained = dec.u64()?;
            self.stats.phantoms = dec.u64()?;
            self.stats.phantom_hits = dec.u64()?;
            self.stats.issued = dec.u64()?;
            self.stats.promotions = dec.u64()?;
            self.stats.demotions = dec.u64()?;
            self.stats.page_crossings = dec.u64()?;
            dec.end_section()
        }
    }
}
