//! The multi-stride L1 prefetch engine (§VII.A) with confirmation
//! (§VII.A/D) and adaptive degree (§VII.B).
//!
//! The engine detects strided patterns with multiple components — the
//! paper's example stream `A; A+2; A+4; A+9; A+11; A+13; A+18` has deltas
//! `+2,+2,+5` repeating, which the engine locks as `+2×2, +5×1` and then
//! extrapolates (`A+20, A+22, A+27, ...`). It operates on *virtual*
//! cache-line addresses, crosses page boundaries, and (with large degree)
//! doubles as a TLB prefetcher.
//!
//! Confirmation evolved across generations:
//! * **queue** (M1/M2): generated prefetch addresses enter a bounded
//!   confirmation queue; demand accesses matching the queue confirm;
//! * **integrated** (M3+, patent \[34\]): the engine keeps the last
//!   confirmed address and *regenerates* the next few expected addresses
//!   with the locked pattern, independent of what prefetches were actually
//!   issued — smaller storage and confirmations even before prefetches
//!   get ahead of the demand stream.

use crate::degree::DegreeController;
use std::collections::VecDeque;

/// Which confirmation scheme the engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfirmScheme {
    /// M1/M2 bounded queue of issued prefetch addresses.
    Queue {
        /// Queue capacity (addresses).
        depth: usize,
    },
    /// M3+ integrated confirmation: regenerate the next `lookahead`
    /// expected addresses from the locked pattern.
    Integrated {
        /// Expected-address lookahead (N « degree).
        lookahead: usize,
    },
}

/// Engine tuning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrideConfig {
    /// Concurrent training streams.
    pub streams: usize,
    /// Recent deltas retained per stream.
    pub delta_window: usize,
    /// Maximum pattern period (in deltas) detected.
    pub max_period: usize,
    /// New demand within this many lines of a stream's last address joins
    /// that stream.
    pub match_radius: i64,
    /// Confirmation scheme.
    pub confirm: ConfirmScheme,
}

impl StrideConfig {
    /// M1/M2: queue confirmation.
    pub fn m1() -> StrideConfig {
        StrideConfig {
            streams: 8,
            delta_window: 20,
            max_period: 8,
            match_radius: 64,
            confirm: ConfirmScheme::Queue { depth: 16 },
        }
    }

    /// M3+: integrated confirmation.
    pub fn m3() -> StrideConfig {
        StrideConfig {
            confirm: ConfirmScheme::Integrated { lookahead: 4 },
            ..StrideConfig::m1()
        }
    }
}

/// One training stream.
#[derive(Debug, Clone)]
struct Stream {
    last_line: i64,
    deltas: VecDeque<i64>,
    /// Locked repeating delta pattern and the phase of the *next* delta.
    pattern: Option<(Vec<i64>, usize)>,
    /// Prefetch frontier: the next line to prefetch and its phase.
    frontier: i64,
    frontier_phase: usize,
    /// Pattern-steps the frontier is ahead of the demand stream.
    ahead: u32,
    degree: DegreeController,
    /// Confirmation state.
    queue: VecDeque<i64>,
    expected: VecDeque<i64>,
    lru: u64,
}

impl Stream {
    fn new(line: i64, stamp: u64) -> Stream {
        Stream {
            last_line: line,
            deltas: VecDeque::new(),
            pattern: None,
            frontier: line,
            frontier_phase: 0,
            ahead: 0,
            degree: DegreeController::standard(),
            queue: VecDeque::new(),
            expected: VecDeque::new(),
            lru: stamp,
        }
    }
}

/// Engine statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StrideStats {
    /// Demand lines trained on.
    pub trained: u64,
    /// Prefetch lines generated.
    pub issued: u64,
    /// Demand confirmations.
    pub confirms: u64,
    /// Pattern locks acquired.
    pub locks: u64,
    /// Pattern locks broken by a mismatching delta.
    pub unlocks: u64,
    /// Frontier skip-aheads (demand overtook the prefetch stream).
    pub skip_aheads: u64,
}

/// The multi-stride prefetch engine. Addresses are 64 B cache lines.
#[derive(Debug, Clone)]
pub struct MultiStrideEngine {
    cfg: StrideConfig,
    streams: Vec<Stream>,
    stamp: u64,
    stats: StrideStats,
}

impl MultiStrideEngine {
    /// Build an engine from `cfg`.
    ///
    /// # Panics
    /// Panics on degenerate geometry.
    pub fn new(cfg: StrideConfig) -> MultiStrideEngine {
        assert!(cfg.streams > 0 && cfg.max_period >= 1 && cfg.delta_window >= 2 * cfg.max_period);
        MultiStrideEngine {
            cfg,
            streams: Vec::new(),
            stamp: 0,
            stats: StrideStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> StrideStats {
        self.stats
    }

    /// Whether any stream currently holds a locked pattern (used for SMS
    /// arbitration: "confirmations from the multi-stride engine suppress
    /// training in the SMS engine", §VII.C).
    pub fn any_locked(&self) -> bool {
        self.streams.iter().any(|s| s.pattern.is_some())
    }

    /// Train on a demand-miss cache line (program order, post-filter) and
    /// return the lines to prefetch.
    pub fn on_demand_line(&mut self, line: u64) -> Vec<u64> {
        self.stamp += 1;
        self.stats.trained += 1;
        let line = line as i64;
        // Confirmation check first (the demand may match a predicted
        // address of any stream).
        self.confirm(line);
        let si = self.find_or_alloc(line);
        let s = &mut self.streams[si];
        let delta = line - s.last_line;
        if delta == 0 {
            return Vec::new();
        }
        s.last_line = line;
        s.deltas.push_back(delta);
        if s.deltas.len() > self.cfg.delta_window {
            s.deltas.pop_front();
        }
        // Maintain / detect the locked pattern.
        match &mut s.pattern {
            Some((pat, phase)) => {
                let expect = pat[*phase];
                if delta == expect {
                    *phase = (*phase + 1) % pat.len();
                    if s.ahead > 0 {
                        s.ahead -= 1;
                    }
                } else {
                    // The demand stream may have jumped several pattern
                    // steps at once (late/dropped prefetches, filtered
                    // duplicates): absorb multi-step jumps instead of
                    // unlocking, and skip the frontier ahead (§VII.B).
                    let mut acc = 0i64;
                    let mut ph = *phase;
                    let mut matched = None;
                    for k in 1..=32u32 {
                        acc += pat[ph];
                        ph = (ph + 1) % pat.len();
                        if acc == delta && k > 1 {
                            matched = Some((k, ph));
                            break;
                        }
                    }
                    match matched {
                        Some((k, ph)) => {
                            *phase = ph;
                            s.ahead = s.ahead.saturating_sub(k);
                            self.stats.skip_aheads += 1;
                        }
                        None => {
                            s.pattern = None;
                            s.expected.clear();
                            s.queue.clear();
                            self.stats.unlocks += 1;
                        }
                    }
                }
            }
            None => {}
        }
        if s.pattern.is_none() {
            if let Some(pat) = detect_pattern(s.deltas.make_contiguous(), self.cfg.max_period) {
                // Phase: the next expected delta is pattern[0] rotated so
                // the window's tail aligns with the pattern end.
                s.pattern = Some((pat, 0));
                s.frontier = line;
                s.frontier_phase = 0;
                s.ahead = 0;
                self.stats.locks += 1;
            } else {
                return Vec::new();
            }
        }
        // Skip-ahead: if the demand stream overtook the frontier, jump the
        // frontier to the demand point ("the prefetch issue logic will
        // skip ahead of the demand stream, avoiding redundant late
        // prefetches").
        let Some((pat, phase)) = s.pattern.clone() else {
            return Vec::new();
        };
        let dir: i64 = pat.iter().sum();
        let overtaken = if dir >= 0 { line >= s.frontier } else { line <= s.frontier };
        if overtaken {
            if s.ahead > 0 {
                self.stats.skip_aheads += 1;
            }
            s.frontier = line;
            s.frontier_phase = phase;
            s.ahead = 0;
        }
        // Issue prefetches up to `degree` pattern-steps ahead.
        let mut out = Vec::new();
        while s.ahead < s.degree.degree() {
            let d = pat[s.frontier_phase];
            s.frontier += d;
            s.frontier_phase = (s.frontier_phase + 1) % pat.len();
            s.ahead += 1;
            if s.frontier >= 0 {
                out.push(s.frontier as u64);
                s.degree.on_issue();
                self.stats.issued += 1;
                if let ConfirmScheme::Queue { depth } = self.cfg.confirm {
                    if s.queue.len() == depth {
                        s.queue.pop_front();
                    }
                    s.queue.push_back(s.frontier);
                }
            }
        }
        // Integrated confirmation: regenerate the next few *expected*
        // demand addresses from the last confirmed point.
        if let ConfirmScheme::Integrated { lookahead } = self.cfg.confirm {
            s.expected.clear();
            let mut a = line;
            let mut ph = phase;
            for _ in 0..lookahead {
                a += pat[ph];
                ph = (ph + 1) % pat.len();
                s.expected.push_back(a);
            }
        }
        out
    }

    fn confirm(&mut self, line: i64) {
        for s in &mut self.streams {
            match self.cfg.confirm {
                ConfirmScheme::Queue { .. } => {
                    if let Some(pos) = s.queue.iter().position(|&q| q == line) {
                        s.queue.remove(pos);
                        s.degree.on_confirm();
                        self.stats.confirms += 1;
                        return;
                    }
                }
                ConfirmScheme::Integrated { .. } => {
                    if let Some(pos) = s.expected.iter().position(|&q| q == line) {
                        // The match and everything older is consumed.
                        for _ in 0..=pos {
                            s.expected.pop_front();
                        }
                        s.degree.on_confirm();
                        self.stats.confirms += 1;
                        return;
                    }
                }
            }
        }
    }

    fn find_or_alloc(&mut self, line: i64) -> usize {
        let radius = self.cfg.match_radius;
        if let Some((i, _)) = self
            .streams
            .iter()
            .enumerate()
            .filter(|(_, s)| (line - s.last_line).abs() <= radius)
            .min_by_key(|(_, s)| (line - s.last_line).abs())
        {
            self.streams[i].lru = self.stamp;
            return i;
        }
        if self.streams.len() < self.cfg.streams {
            self.streams.push(Stream::new(line, self.stamp));
            return self.streams.len() - 1;
        }
        let victim = self
            .streams
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.lru)
            .map(|(i, _)| i)
            .unwrap_or(0);
        self.streams[victim] = Stream::new(line, self.stamp);
        victim
    }
}

/// Find the shortest repeating delta pattern (period ≤ `max_period`)
/// covering at least two full repetitions at the tail of `deltas`.
fn detect_pattern(deltas: &[i64], max_period: usize) -> Option<Vec<i64>> {
    for period in 1..=max_period {
        if deltas.len() < 2 * period + 1 {
            break;
        }
        let tail = &deltas[deltas.len() - (2 * period + 1)..];
        let ok = (period..tail.len()).all(|i| tail[i] == tail[i - period]);
        if ok {
            // The pattern, phased so index 0 is the *next* expected delta.
            let start = deltas.len() - period;
            let mut pat: Vec<i64> = deltas[start..].to_vec();
            pat.rotate_left(0); // tail already ends at the current point
            if pat.iter().all(|&d| d == 0) {
                continue;
            }
            return Some(pat);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(engine: &mut MultiStrideEngine, lines: &[u64]) -> Vec<u64> {
        let mut out = Vec::new();
        for &l in lines {
            out.extend(engine.on_demand_line(l));
        }
        out
    }

    #[test]
    fn paper_example_locks_and_extrapolates() {
        // A; A+2; A+4; A+9; A+11; A+13; A+18 (line units) → +2×2, +5×1.
        let mut e = MultiStrideEngine::new(StrideConfig::m3());
        let a = 1000u64;
        let seq: Vec<u64> = vec![0, 2, 4, 9, 11, 13, 18, 20, 22, 27].iter().map(|d| a + d).collect();
        let prefetches = drive(&mut e, &seq);
        assert!(e.stats().locks >= 1, "pattern must lock");
        // The extrapolation continues the pattern: each prefetch line,
        // offset from A, must land on the pattern lattice {0,2,4} mod 9.
        assert!(!prefetches.is_empty());
        for p in &prefetches {
            let off = (p - a) % 9;
            assert!(
                off == 0 || off == 2 || off == 4,
                "prefetch {p} off-pattern (off {off})"
            );
        }
        // And they run ahead of the demand stream.
        assert!(prefetches.iter().max().unwrap() > &(a + 27));
    }

    #[test]
    fn simple_unit_stride() {
        let mut e = MultiStrideEngine::new(StrideConfig::m3());
        let seq: Vec<u64> = (0..20).map(|i| 500 + i).collect();
        let prefetches = drive(&mut e, &seq);
        assert!(prefetches.contains(&520));
        assert!(e.stats().confirms > 0, "integrated confirmation fires");
    }

    #[test]
    fn degree_ramps_on_confirmed_stream() {
        let mut e = MultiStrideEngine::new(StrideConfig::m3());
        let seq: Vec<u64> = (0..200).map(|i| 10_000 + 2 * i).collect();
        let prefetches = drive(&mut e, &seq);
        // With degree ramping, late prefetches run far ahead.
        let last_demand = 10_000 + 2 * 199;
        let max_pf = *prefetches.iter().max().unwrap();
        assert!(
            max_pf > last_demand + 40,
            "degree must ramp: frontier only {} ahead",
            max_pf as i64 - last_demand as i64
        );
    }

    #[test]
    fn pattern_break_unlocks() {
        let mut e = MultiStrideEngine::new(StrideConfig::m3());
        let mut seq: Vec<u64> = (0..12).map(|i| 3_000 + 4 * i).collect();
        seq.push(9_999_000); // far away: new stream, old pattern stays
        seq.push(3_000 + 4 * 12 + 1); // back on the old stream, off-pattern
        drive(&mut e, &seq);
        assert!(e.stats().unlocks >= 1);
    }

    #[test]
    fn negative_strides_supported() {
        let mut e = MultiStrideEngine::new(StrideConfig::m3());
        let seq: Vec<u64> = (0..16).map(|i| 8_000 - 3 * i).collect();
        let prefetches = drive(&mut e, &seq);
        assert!(!prefetches.is_empty());
        assert!(prefetches.iter().min().unwrap() < &(8_000 - 3 * 15));
    }

    #[test]
    fn multiple_streams_tracked_simultaneously() {
        let mut e = MultiStrideEngine::new(StrideConfig::m3());
        let mut seq = Vec::new();
        for i in 0..30u64 {
            seq.push(100_000 + i); // stream A: +1
            seq.push(900_000 + 7 * i); // stream B: +7
        }
        let prefetches = drive(&mut e, &seq);
        let a_pf = prefetches.iter().filter(|&&p| p < 500_000).count();
        let b_pf = prefetches.iter().filter(|&&p| p >= 500_000).count();
        assert!(a_pf > 0 && b_pf > 0, "both streams must prefetch");
    }

    #[test]
    fn queue_scheme_confirms_only_issued_addresses() {
        let mut e = MultiStrideEngine::new(StrideConfig::m1());
        let seq: Vec<u64> = (0..30).map(|i| 42_000 + i).collect();
        drive(&mut e, &seq);
        assert!(e.stats().confirms > 0);
    }

    #[test]
    fn integrated_confirms_even_when_prefetches_lag() {
        // Integrated confirmation works off the pattern, not the issue
        // stream — M1's queue starts colder. Both must confirm, but the
        // integrated scheme at least as much.
        let seq: Vec<u64> = (0..40).map(|i| 77_000 + 3 * i).collect();
        let mut m1 = MultiStrideEngine::new(StrideConfig::m1());
        drive(&mut m1, &seq);
        let mut m3 = MultiStrideEngine::new(StrideConfig::m3());
        drive(&mut m3, &seq);
        assert!(m3.stats().confirms >= m1.stats().confirms);
    }

    #[test]
    fn skip_ahead_when_demand_overtakes() {
        let mut e = MultiStrideEngine::new(StrideConfig::m3());
        // Lock a +1 stream.
        let seq: Vec<u64> = (0..10).map(|i| 55_000 + i).collect();
        drive(&mut e, &seq);
        // Demand jumps far ahead along the same pattern (prefetches were
        // too slow / dropped).
        let _ = e.on_demand_line(55_300);
        // This lands within the match radius? No (300 > 64) — use a
        // nearer jump instead.
        let _ = e.on_demand_line(55_040);
        assert!(e.stats().skip_aheads >= 1);
    }
}

impl MultiStrideEngine {
    /// Drop every trained stream, keeping cumulative statistics.
    pub fn clear(&mut self) {
        self.streams.clear();
        self.stamp = 0;
    }
}

mod snapshot_impl {
    use super::*;
    use exynos_snapshot::{tags, Decoder, Encoder, Snapshot, SnapshotError};

    fn save_stream(enc: &mut Encoder, s: &Stream) {
        enc.i64(s.last_line);
        enc.seq(s.deltas.len());
        for d in &s.deltas {
            enc.i64(*d);
        }
        match &s.pattern {
            Some((period, phase)) => {
                enc.u8(1);
                enc.seq(period.len());
                for d in period {
                    enc.i64(*d);
                }
                enc.usize(*phase);
            }
            None => enc.u8(0),
        }
        enc.i64(s.frontier);
        enc.usize(s.frontier_phase);
        enc.u32(s.ahead);
        s.degree.save(enc);
        enc.seq(s.queue.len());
        for l in &s.queue {
            enc.i64(*l);
        }
        enc.seq(s.expected.len());
        for l in &s.expected {
            enc.i64(*l);
        }
        enc.u64(s.lru);
    }

    fn load_stream(dec: &mut Decoder<'_>) -> Result<Stream, SnapshotError> {
        let mut s = Stream::new(0, 0);
        s.last_line = dec.i64()?;
        let nd = dec.seq(8)?;
        s.deltas.clear();
        for _ in 0..nd {
            s.deltas.push_back(dec.i64()?);
        }
        s.pattern = match dec.u8()? {
            0 => None,
            1 => {
                let np = dec.seq(8)?;
                let mut period = Vec::with_capacity(np);
                for _ in 0..np {
                    period.push(dec.i64()?);
                }
                Some((period, dec.usize()?))
            }
            _ => return Err(SnapshotError::Corrupt { what: "stride pattern flag" }),
        };
        s.frontier = dec.i64()?;
        s.frontier_phase = dec.usize()?;
        s.ahead = dec.u32()?;
        s.degree.restore(dec)?;
        let nq = dec.seq(8)?;
        s.queue.clear();
        for _ in 0..nq {
            s.queue.push_back(dec.i64()?);
        }
        let ne = dec.seq(8)?;
        s.expected.clear();
        for _ in 0..ne {
            s.expected.push_back(dec.i64()?);
        }
        s.lru = dec.u64()?;
        Ok(s)
    }

    impl Snapshot for MultiStrideEngine {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::STRIDE);
            enc.seq(self.streams.len());
            for s in &self.streams {
                save_stream(enc, s);
            }
            enc.u64(self.stamp);
            enc.u64(self.stats.trained);
            enc.u64(self.stats.issued);
            enc.u64(self.stats.confirms);
            enc.u64(self.stats.locks);
            enc.u64(self.stats.unlocks);
            enc.u64(self.stats.skip_aheads);
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::STRIDE)?;
            let n = dec.seq(32)?;
            if n > self.cfg.streams {
                return Err(SnapshotError::Geometry {
                    what: "stride streams",
                    expected: self.cfg.streams as u64,
                    found: n as u64,
                });
            }
            self.streams.clear();
            for _ in 0..n {
                self.streams.push(load_stream(dec)?);
            }
            self.stamp = dec.u64()?;
            self.stats.trained = dec.u64()?;
            self.stats.issued = dec.u64()?;
            self.stats.confirms = dec.u64()?;
            self.stats.locks = dec.u64()?;
            self.stats.unlocks = dec.u64()?;
            self.stats.skip_aheads = dec.u64()?;
            dec.end_section()
        }
    }
}
