//! The composed L1 data prefetcher (§VII): address re-order buffer +
//! duplicate filter feeding the multi-stride engine, with the SMS engine
//! alongside from M3, and stride-over-SMS arbitration.

use crate::reorder::AddressReorderBuffer;
use crate::sms::{SmsConfig, SmsEngine, SmsTarget};
use crate::stride::{MultiStrideEngine, StrideConfig};

/// One prefetch produced by the L1 engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1PrefetchRequest {
    /// 64 B line address (virtual; the engine works on virtual addresses
    /// and may cross pages, §VII.A).
    pub line: u64,
    /// Whether the line should be brought all the way into the L1 (false
    /// = first-pass / L2-only, used by low-confidence SMS offsets).
    pub into_l1: bool,
}

/// Configuration of the composed engine.
#[derive(Debug, Clone, PartialEq)]
pub struct L1PrefetcherConfig {
    /// Multi-stride engine tuning.
    pub stride: StrideConfig,
    /// SMS engine (M3+); `None` on M1/M2.
    pub sms: Option<SmsConfig>,
    /// Address re-order buffer capacity.
    pub reorder_capacity: usize,
    /// Duplicate-filter depth.
    pub filter_depth: usize,
}

impl L1PrefetcherConfig {
    /// M1/M2: multi-stride with queue confirmation, no SMS.
    pub fn m1() -> L1PrefetcherConfig {
        L1PrefetcherConfig {
            stride: StrideConfig::m1(),
            sms: None,
            reorder_capacity: 16,
            filter_depth: 8,
        }
    }

    /// M3+: integrated confirmation and the SMS engine.
    pub fn m3() -> L1PrefetcherConfig {
        L1PrefetcherConfig {
            stride: StrideConfig::m3(),
            sms: Some(SmsConfig::default()),
            reorder_capacity: 24,
            filter_depth: 8,
        }
    }
}

/// The composed L1 prefetcher.
#[derive(Debug, Clone)]
pub struct L1Prefetcher {
    reorder: AddressReorderBuffer,
    stride: MultiStrideEngine,
    sms: Option<SmsEngine>,
    seq: u64,
}

impl L1Prefetcher {
    /// Build the composed engine.
    pub fn new(cfg: &L1PrefetcherConfig) -> L1Prefetcher {
        L1Prefetcher {
            reorder: AddressReorderBuffer::new(cfg.reorder_capacity, cfg.filter_depth),
            stride: MultiStrideEngine::new(cfg.stride.clone()),
            sms: cfg.sms.clone().map(SmsEngine::new),
            seq: 0,
        }
    }

    /// Stride-engine statistics.
    pub fn stride_stats(&self) -> crate::stride::StrideStats {
        self.stride.stats()
    }

    /// SMS statistics (zeroes if absent).
    pub fn sms_stats(&self) -> crate::sms::SmsStats {
        self.sms.as_ref().map(|s| s.stats()).unwrap_or_default()
    }

    /// Address re-order buffer statistics.
    pub fn reorder_stats(&self) -> crate::reorder::ReorderStats {
        self.reorder.stats()
    }

    /// Observe a demand L1 miss by the load at `pc` to `vaddr`; returns
    /// the prefetch requests to issue.
    pub fn on_demand_miss(&mut self, pc: u64, vaddr: u64) -> Vec<L1PrefetchRequest> {
        let mut out = Vec::new();
        self.on_demand_miss_into(pc, vaddr, &mut out);
        out
    }

    /// As [`L1Prefetcher::on_demand_miss`], but writing the requests into
    /// `out` (cleared first) so callers can reuse one buffer across misses
    /// instead of allocating per call.
    pub fn on_demand_miss_into(&mut self, pc: u64, vaddr: u64, out: &mut Vec<L1PrefetchRequest>) {
        out.clear();
        let line = vaddr / 64;
        let seq = self.seq;
        self.seq += 1;
        // Stride path: through the re-order buffer + duplicate filter.
        for released in self.reorder.insert(seq, line) {
            for pf in self.stride.on_demand_line(released) {
                out.push(L1PrefetchRequest {
                    line: pf,
                    into_l1: true,
                });
            }
        }
        // SMS path, suppressed while the stride engine is confirming.
        if let Some(sms) = &mut self.sms {
            let suppress = self.stride.any_locked();
            for pf in sms.on_demand_miss(pc, vaddr, suppress) {
                out.push(L1PrefetchRequest {
                    line: pf.line,
                    into_l1: pf.target == SmsTarget::L1,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_workload_prefetches_via_stride_engine() {
        let mut p = L1Prefetcher::new(&L1PrefetcherConfig::m3());
        let mut got = Vec::new();
        for i in 0..64u64 {
            got.extend(p.on_demand_miss(0x4000, 0x10_0000 + i * 128));
        }
        assert!(!got.is_empty());
        assert!(p.stride_stats().locks >= 1);
        // SMS stayed quiet: stride arbitration suppressed it.
        assert!(p.sms_stats().l1_prefetches == 0);
    }

    #[test]
    fn spatial_workload_prefetches_via_sms() {
        let mut p = L1Prefetcher::new(&L1PrefetcherConfig::m3());
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let mut got = Vec::new();
        // Irregular region order, recurring offsets {0, 5, 9}.
        for _ in 0..80 {
            let region: u64 = rng.gen_range(0..4096);
            let base = region * 4096;
            got.extend(p.on_demand_miss(0x4000, base));
            got.extend(p.on_demand_miss(0x4010, base + 5 * 64));
            got.extend(p.on_demand_miss(0x4020, base + 9 * 64));
        }
        assert!(
            p.sms_stats().l1_prefetches > 0,
            "sms: {:?} stride: {:?}",
            p.sms_stats(),
            p.stride_stats()
        );
        assert!(!got.is_empty());
    }

    #[test]
    fn m1_has_no_sms() {
        let mut p = L1Prefetcher::new(&L1PrefetcherConfig::m1());
        for r in 0..50u64 {
            let base = r * 7919 * 4096; // irregular regions
            let _ = p.on_demand_miss(0x4000, base % (1 << 30));
            let _ = p.on_demand_miss(0x4010, (base + 5 * 64) % (1 << 30));
        }
        assert_eq!(p.sms_stats().generations, 0);
    }
}

/// Aggregate statistics across the composed engine's three components,
/// giving the `stats()` half of the uniform `stats() / clear() /
/// snapshot` surface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L1PrefetcherStats {
    /// Multi-stride engine counters.
    pub stride: crate::stride::StrideStats,
    /// SMS counters (zeroes when the engine is absent, i.e. M1/M2).
    pub sms: crate::sms::SmsStats,
    /// Address re-order buffer counters.
    pub reorder: crate::reorder::ReorderStats,
}

impl L1Prefetcher {
    /// Accumulated statistics across all three components.
    pub fn stats(&self) -> L1PrefetcherStats {
        L1PrefetcherStats {
            stride: self.stride_stats(),
            sms: self.sms_stats(),
            reorder: self.reorder_stats(),
        }
    }

    /// Drop all trained prefetcher state (streams, signatures, in-flight
    /// addresses), keeping cumulative statistics.
    pub fn clear(&mut self) {
        self.reorder.clear();
        self.stride.clear();
        if let Some(sms) = &mut self.sms {
            sms.clear();
        }
        self.seq = 0;
    }
}

mod snapshot_impl {
    use super::*;
    use exynos_snapshot::{tags, Decoder, Encoder, Snapshot, SnapshotError};

    impl Snapshot for L1Prefetcher {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::L1_PREFETCHER);
            self.reorder.save(enc);
            self.stride.save(enc);
            match &self.sms {
                Some(sms) => {
                    enc.u8(1);
                    sms.save(enc);
                }
                None => enc.u8(0),
            }
            enc.u64(self.seq);
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::L1_PREFETCHER)?;
            self.reorder.restore(dec)?;
            self.stride.restore(dec)?;
            let has_sms = match dec.u8()? {
                0 => false,
                1 => true,
                _ => return Err(SnapshotError::Corrupt { what: "sms presence flag" }),
            };
            match (&mut self.sms, has_sms) {
                (Some(sms), true) => sms.restore(dec)?,
                (None, false) => {}
                (mine, _) => {
                    return Err(SnapshotError::Geometry {
                        what: "sms presence",
                        expected: u64::from(mine.is_some()),
                        found: u64::from(has_sms),
                    })
                }
            }
            self.seq = dec.u64()?;
            dec.end_section()
        }
    }
}
