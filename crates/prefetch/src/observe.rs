//! [`Observable`] wiring for every prefetch-engine statistics producer.

use crate::buddy::BuddyStats;
use crate::reorder::ReorderStats;
use crate::sms::SmsStats;
use crate::standalone::StandaloneStats;
use crate::stride::StrideStats;
use crate::twopass::TwoPassStats;
use exynos_telemetry::{Observable, Value};

impl Observable for StrideStats {
    fn component(&self) -> &'static str {
        "prefetch.stride"
    }

    fn visit(&self, f: &mut dyn FnMut(&'static str, Value)) {
        f("trained", Value::U64(self.trained));
        f("issued", Value::U64(self.issued));
        f("confirms", Value::U64(self.confirms));
        f("locks", Value::U64(self.locks));
        f("unlocks", Value::U64(self.unlocks));
        f("skip_aheads", Value::U64(self.skip_aheads));
    }
}

impl Observable for SmsStats {
    fn component(&self) -> &'static str {
        "prefetch.sms"
    }

    fn visit(&self, f: &mut dyn FnMut(&'static str, Value)) {
        f("generations", Value::U64(self.generations));
        f("trainings", Value::U64(self.trainings));
        f("l1_prefetches", Value::U64(self.l1_prefetches));
        f("l2_prefetches", Value::U64(self.l2_prefetches));
        f("suppressed", Value::U64(self.suppressed));
    }
}

impl Observable for TwoPassStats {
    fn component(&self) -> &'static str {
        "prefetch.twopass"
    }

    fn visit(&self, f: &mut dyn FnMut(&'static str, Value)) {
        f("first_passes", Value::U64(self.first_passes));
        f("first_pass_l2_hits", Value::U64(self.first_pass_l2_hits));
        f("second_passes", Value::U64(self.second_passes));
        f("one_passes", Value::U64(self.one_passes));
        f("to_one_pass", Value::U64(self.to_one_pass));
        f("to_two_pass", Value::U64(self.to_two_pass));
        f("dropped", Value::U64(self.dropped));
    }
}

impl Observable for BuddyStats {
    fn component(&self) -> &'static str {
        "prefetch.buddy"
    }

    fn visit(&self, f: &mut dyn FnMut(&'static str, Value)) {
        f("issued", Value::U64(self.issued));
        f("suppressed", Value::U64(self.suppressed));
        f("useful", Value::U64(self.useful));
        f("wasted", Value::U64(self.wasted));
    }
}

impl Observable for StandaloneStats {
    fn component(&self) -> &'static str {
        "prefetch.standalone"
    }

    fn visit(&self, f: &mut dyn FnMut(&'static str, Value)) {
        f("trained", Value::U64(self.trained));
        f("phantoms", Value::U64(self.phantoms));
        f("phantom_hits", Value::U64(self.phantom_hits));
        f("issued", Value::U64(self.issued));
        f("promotions", Value::U64(self.promotions));
        f("demotions", Value::U64(self.demotions));
        f("page_crossings", Value::U64(self.page_crossings));
    }
}

impl Observable for ReorderStats {
    fn component(&self) -> &'static str {
        "prefetch.reorder"
    }

    fn visit(&self, f: &mut dyn FnMut(&'static str, Value)) {
        f("filtered", Value::U64(self.filtered));
        f("overflows", Value::U64(self.overflows));
    }
}
