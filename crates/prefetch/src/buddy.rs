//! The Buddy L2 prefetcher, added in M4 (§VIII.B).
//!
//! "The L2 cache tags are sectored at a 128B granule for a default data
//! line size of 64B. ... a simple 'Buddy' prefetcher is added that, for
//! every demand miss, generates a prefetch for its 64B neighbor (buddy)
//! sector. Due to the tag sectoring, this prefetching does not cause any
//! cache pollution, since the buddy sector will stay invalid in absence of
//! buddy prefetching. There can be an impact on DRAM bandwidth though ...
//! a filter is added to track the patterns of demand accesses. In the case
//! where access patterns are observed to almost always skip the
//! neighboring sector, the buddy prefetching is disabled."

/// Buddy prefetcher statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuddyStats {
    /// Buddy prefetches issued.
    pub issued: u64,
    /// Buddy prefetches suppressed by the skip filter.
    pub suppressed: u64,
    /// Buddy lines later used by a demand access (useful).
    pub useful: u64,
    /// Buddy lines evicted (with their tag) unused.
    pub wasted: u64,
}

/// The Buddy prefetcher with its skip filter.
#[derive(Debug, Clone)]
pub struct BuddyPrefetcher {
    /// Saturating usefulness score: demand-used buddies push up, wasted
    /// buddies push down. Below zero the prefetcher disables.
    score: i32,
    min: i32,
    max: i32,
    stats: BuddyStats,
}

impl BuddyPrefetcher {
    /// A prefetcher with the default filter strength.
    pub fn new() -> BuddyPrefetcher {
        BuddyPrefetcher {
            score: 8,
            min: -32,
            max: 32,
            stats: BuddyStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BuddyStats {
        self.stats
    }

    /// Whether buddy prefetching is currently enabled.
    pub fn enabled(&self) -> bool {
        self.score >= 0
    }

    /// An L2 demand miss at `line` (64 B address): returns the buddy line
    /// to prefetch, unless the skip filter has disabled prefetching or the
    /// buddy is already valid (`buddy_valid`).
    pub fn on_l2_demand_miss(&mut self, line: u64, buddy_valid: bool) -> Option<u64> {
        if buddy_valid {
            return None;
        }
        if !self.enabled() {
            self.stats.suppressed += 1;
            return None;
        }
        self.stats.issued += 1;
        Some(line ^ 64)
    }

    /// A demand access hit a buddy-prefetched sector: the prefetch was
    /// useful.
    pub fn on_buddy_used(&mut self) {
        self.stats.useful += 1;
        self.score = (self.score + 1).min(self.max);
    }

    /// A buddy-prefetched sector was evicted without any demand hit.
    pub fn on_buddy_wasted(&mut self) {
        self.stats.wasted += 1;
        self.score = (self.score - 2).max(self.min);
    }
}

impl Default for BuddyPrefetcher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issues_buddy_of_either_sector() {
        let mut b = BuddyPrefetcher::new();
        assert_eq!(b.on_l2_demand_miss(0x1000, false), Some(0x1040));
        assert_eq!(b.on_l2_demand_miss(0x1040, false), Some(0x1000));
    }

    #[test]
    fn skips_when_buddy_already_valid() {
        let mut b = BuddyPrefetcher::new();
        assert_eq!(b.on_l2_demand_miss(0x1000, true), None);
        assert_eq!(b.stats().issued, 0);
    }

    #[test]
    fn filter_disables_on_wasted_buddies() {
        let mut b = BuddyPrefetcher::new();
        for _ in 0..30 {
            b.on_buddy_wasted();
        }
        assert!(!b.enabled());
        assert_eq!(b.on_l2_demand_miss(0x2000, false), None);
        assert!(b.stats().suppressed > 0);
    }

    #[test]
    fn usefulness_reenables() {
        let mut b = BuddyPrefetcher::new();
        for _ in 0..30 {
            b.on_buddy_wasted();
        }
        assert!(!b.enabled());
        for _ in 0..40 {
            b.on_buddy_used();
        }
        assert!(b.enabled());
        assert!(b.on_l2_demand_miss(0x2000, false).is_some());
    }
}

impl BuddyPrefetcher {
    /// Reset the usefulness score to its starting value, keeping cumulative
    /// statistics.
    pub fn clear(&mut self) {
        self.score = 8;
    }
}

mod snapshot_impl {
    use super::*;
    use exynos_snapshot::{tags, Decoder, Encoder, Snapshot, SnapshotError};

    impl Snapshot for BuddyPrefetcher {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::BUDDY);
            enc.i32(self.score);
            enc.i32(self.min);
            enc.i32(self.max);
            enc.u64(self.stats.issued);
            enc.u64(self.stats.suppressed);
            enc.u64(self.stats.useful);
            enc.u64(self.stats.wasted);
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::BUDDY)?;
            let score = dec.i32()?;
            let min = dec.i32()?;
            let max = dec.i32()?;
            if min > max || score < min || score > max {
                return Err(SnapshotError::Corrupt { what: "buddy score bounds" });
            }
            self.score = score;
            self.min = min;
            self.max = max;
            self.stats.issued = dec.u64()?;
            self.stats.suppressed = dec.u64()?;
            self.stats.useful = dec.u64()?;
            self.stats.wasted = dec.u64()?;
            dec.end_section()
        }
    }
}
