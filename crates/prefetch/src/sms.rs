//! The Spatial Memory Streaming (SMS) L1 prefetch engine, added in M3
//! (§VII.C, after Somogyi et al. \[32\] and patent \[33\]).
//!
//! "This engine tracks a primary load (the first miss to a region), and
//! attaches associated accesses to it (any misses with a different PC).
//! When the primary load PC appears again, prefetches for the associated
//! loads will be generated based off the remembered offsets. ... Only
//! associated loads with high confidence are prefetched, to filter out the
//! ones that appear transiently along with the primary load. In addition,
//! when confidence drops to a lower level, the mechanism will only issue
//! the first pass (L2) prefetch."

/// Region size tracked (4 KiB — a page).
pub const REGION_BYTES: u64 = 4096;
/// 64 B lines per region.
pub const LINES_PER_REGION: usize = (REGION_BYTES / 64) as usize;

/// Where an SMS prefetch should go (confidence-dependent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmsTarget {
    /// High confidence: prefetch all the way into the L1.
    L1,
    /// Lower confidence: first-pass (L2) prefetch only.
    L2Only,
}

/// A generated SMS prefetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmsPrefetch {
    /// 64 B line address to prefetch.
    pub line: u64,
    /// Destination level.
    pub target: SmsTarget,
}

/// Geometry/tuning of the SMS engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmsConfig {
    /// Pattern-signature-table entries (per-primary-PC signatures).
    pub signatures: usize,
    /// Active-generation-table entries (regions currently being observed).
    pub active_regions: usize,
    /// Confidence at or above which offsets prefetch into the L1.
    pub high_confidence: u8,
    /// Confidence at or above which offsets prefetch first-pass into L2.
    pub low_confidence: u8,
    /// Confidence ceiling.
    pub max_confidence: u8,
}

impl Default for SmsConfig {
    fn default() -> SmsConfig {
        SmsConfig {
            signatures: 256,
            active_regions: 32,
            high_confidence: 3,
            low_confidence: 1,
            max_confidence: 7,
        }
    }
}

/// Per-offset confidence signature for one primary PC.
#[derive(Debug, Clone)]
struct Signature {
    pc: u64,
    conf: [u8; LINES_PER_REGION],
    lru: u64,
}

/// A region whose accesses are currently being recorded.
#[derive(Debug, Clone)]
struct ActiveRegion {
    region: u64,
    primary_pc: u64,
    /// Lines touched this generation.
    touched: u64,
    lru: u64,
}

/// SMS statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmsStats {
    /// Region generations opened.
    pub generations: u64,
    /// Generations closed back into signatures.
    pub trainings: u64,
    /// Prefetches issued to L1.
    pub l1_prefetches: u64,
    /// First-pass (L2-only) prefetches issued.
    pub l2_prefetches: u64,
    /// Training events suppressed by stride-engine arbitration.
    pub suppressed: u64,
}

/// The SMS prefetch engine.
#[derive(Debug, Clone)]
pub struct SmsEngine {
    cfg: SmsConfig,
    signatures: Vec<Signature>,
    active: Vec<ActiveRegion>,
    stamp: u64,
    stats: SmsStats,
}

impl SmsEngine {
    /// Build an engine from `cfg`.
    ///
    /// # Panics
    /// Panics if table sizes are zero or thresholds are inconsistent.
    pub fn new(cfg: SmsConfig) -> SmsEngine {
        assert!(cfg.signatures > 0 && cfg.active_regions > 0);
        assert!(cfg.low_confidence <= cfg.high_confidence);
        assert!(cfg.high_confidence <= cfg.max_confidence);
        SmsEngine {
            cfg,
            signatures: Vec::new(),
            active: Vec::new(),
            stamp: 0,
            stats: SmsStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> SmsStats {
        self.stats
    }

    /// Observe a demand miss at `vaddr` by the load at `pc`.
    /// `stride_confirming` suppresses training while the multi-stride
    /// engine is locked onto the stream (§VII.C arbitration). Returns the
    /// prefetches to issue (non-empty only on a primary-load re-visit).
    pub fn on_demand_miss(&mut self, pc: u64, vaddr: u64, stride_confirming: bool) -> Vec<SmsPrefetch> {
        self.stamp += 1;
        let region = vaddr / REGION_BYTES;
        let line_in_region = ((vaddr % REGION_BYTES) / 64) as usize;
        // Already recording this region? Attach the access.
        if let Some(ar) = self.active.iter_mut().find(|a| a.region == region) {
            ar.touched |= 1 << line_in_region;
            ar.lru = self.stamp;
            return Vec::new();
        }
        if stride_confirming {
            self.stats.suppressed += 1;
            return Vec::new();
        }
        // First miss to the region: this is a primary load. Open a
        // generation and predict from the PC's remembered signature.
        self.open_generation(region, pc, line_in_region);
        let base_line = region * (REGION_BYTES / 64);
        let mut out = Vec::new();
        if let Some(sig) = self.signatures.iter_mut().find(|s| s.pc == pc) {
            sig.lru = self.stamp;
            for (off, &conf) in sig.conf.iter().enumerate() {
                if off == line_in_region || conf == 0 {
                    continue;
                }
                if conf >= self.cfg.high_confidence {
                    out.push(SmsPrefetch {
                        line: base_line + off as u64,
                        target: SmsTarget::L1,
                    });
                    self.stats.l1_prefetches += 1;
                } else if conf >= self.cfg.low_confidence {
                    out.push(SmsPrefetch {
                        line: base_line + off as u64,
                        target: SmsTarget::L2Only,
                    });
                    self.stats.l2_prefetches += 1;
                }
            }
        }
        out
    }

    fn open_generation(&mut self, region: u64, pc: u64, first_line: usize) {
        self.stats.generations += 1;
        if self.active.len() >= self.cfg.active_regions {
            let victim = self
                .active
                .iter()
                .enumerate()
                .min_by_key(|(_, a)| a.lru)
                .map(|(i, _)| i)
                .unwrap_or(0);
            let closed = self.active.swap_remove(victim);
            self.close_generation(closed);
        }
        self.active.push(ActiveRegion {
            region,
            primary_pc: pc,
            touched: 1 << first_line,
            lru: self.stamp,
        });
    }

    /// A region generation ends (eviction here, or the region's lines
    /// leaving the cache in a fuller model): fold the observed footprint
    /// into the primary PC's signature with per-offset confidence.
    fn close_generation(&mut self, gen: ActiveRegion) {
        self.stats.trainings += 1;
        let stamp = self.stamp;
        let (max_conf, nsig) = (self.cfg.max_confidence, self.cfg.signatures);
        let sig = match self.signatures.iter_mut().position(|s| s.pc == gen.primary_pc) {
            Some(i) => &mut self.signatures[i],
            None => {
                if self.signatures.len() >= nsig {
                    let victim = self
                        .signatures
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, s)| s.lru)
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    self.signatures.swap_remove(victim);
                }
                self.signatures.push(Signature {
                    pc: gen.primary_pc,
                    conf: [0; LINES_PER_REGION],
                    lru: stamp,
                });
                let last = self.signatures.len() - 1;
                &mut self.signatures[last]
            }
        };
        sig.lru = stamp;
        for off in 0..LINES_PER_REGION {
            if gen.touched >> off & 1 == 1 {
                sig.conf[off] = (sig.conf[off] + 1).min(max_conf);
            } else {
                sig.conf[off] = sig.conf[off].saturating_sub(1);
            }
        }
    }

    /// Flush all open generations into their signatures (end of epoch).
    pub fn flush_generations(&mut self) {
        let open: Vec<ActiveRegion> = self.active.drain(..).collect();
        for g in open {
            self.close_generation(g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Visit `region` with the signature offsets {0, 3, 7} via primary pc.
    fn visit(e: &mut SmsEngine, pc: u64, region: u64, offs: &[u64]) -> Vec<SmsPrefetch> {
        let base = region * REGION_BYTES;
        let mut out = e.on_demand_miss(pc, base + offs[0] * 64, false);
        for &o in &offs[1..] {
            out.extend(e.on_demand_miss(pc + 4, base + o * 64, false));
        }
        out
    }

    #[test]
    fn recurring_signature_learned_and_prefetched() {
        let mut e = SmsEngine::new(SmsConfig::default());
        // Train over many regions with the same signature.
        for r in 0..40u64 {
            visit(&mut e, 0x4000, r, &[0, 3, 7]);
        }
        e.flush_generations();
        // A fresh region visit by the same primary PC prefetches 3 and 7.
        let pf = e.on_demand_miss(0x4000, 1000 * REGION_BYTES, false);
        let lines: Vec<u64> = pf.iter().map(|p| p.line % 64).collect();
        assert!(lines.contains(&3), "prefetches: {pf:?}");
        assert!(lines.contains(&7));
        assert!(pf.iter().all(|p| p.target == SmsTarget::L1));
    }

    #[test]
    fn transient_offsets_filtered_by_confidence() {
        let mut e = SmsEngine::new(SmsConfig::default());
        for r in 0..40u64 {
            // Offset 5 appears only once every 8 visits (transient).
            let offs: Vec<u64> = if r % 8 == 0 { vec![0, 3, 5] } else { vec![0, 3] };
            visit(&mut e, 0x4000, r, &offs);
        }
        e.flush_generations();
        let pf = e.on_demand_miss(0x4000, 2000 * REGION_BYTES, false);
        let l1_lines: Vec<u64> = pf
            .iter()
            .filter(|p| p.target == SmsTarget::L1)
            .map(|p| p.line % 64)
            .collect();
        assert!(l1_lines.contains(&3));
        assert!(!l1_lines.contains(&5), "transient offset must not reach L1: {pf:?}");
    }

    #[test]
    fn stride_arbitration_suppresses_training() {
        let mut e = SmsEngine::new(SmsConfig::default());
        let pf = e.on_demand_miss(0x4000, 55 * REGION_BYTES, true);
        assert!(pf.is_empty());
        assert_eq!(e.stats().suppressed, 1);
        assert_eq!(e.stats().generations, 0);
    }

    #[test]
    fn distinct_pcs_have_distinct_signatures() {
        let mut e = SmsEngine::new(SmsConfig::default());
        for r in 0..30u64 {
            visit(&mut e, 0x4000, 2 * r, &[0, 2]);
            visit(&mut e, 0x8000, 2 * r + 1, &[0, 9]);
        }
        e.flush_generations();
        let pf_a = e.on_demand_miss(0x4000, 3000 * REGION_BYTES, false);
        let pf_b = e.on_demand_miss(0x8000, 3001 * REGION_BYTES, false);
        assert!(pf_a.iter().any(|p| p.line % 64 == 2));
        assert!(!pf_a.iter().any(|p| p.line % 64 == 9));
        assert!(pf_b.iter().any(|p| p.line % 64 == 9));
    }

    #[test]
    fn medium_confidence_goes_l2_only() {
        let mut e = SmsEngine::new(SmsConfig::default());
        // Offset 11 present half the time: confidence hovers mid-range.
        for r in 0..40u64 {
            let offs: Vec<u64> = if r % 2 == 0 { vec![0, 4, 11] } else { vec![0, 4] };
            visit(&mut e, 0x4000, r, &offs);
        }
        e.flush_generations();
        let pf = e.on_demand_miss(0x4000, 4000 * REGION_BYTES, false);
        let of11: Vec<&SmsPrefetch> = pf.iter().filter(|p| p.line % 64 == 11).collect();
        if let Some(p) = of11.first() {
            assert_eq!(p.target, SmsTarget::L2Only, "half-confident offsets stay in L2");
        }
        // The always-present offset 4 must be L1.
        assert!(pf.iter().any(|p| p.line % 64 == 4 && p.target == SmsTarget::L1));
    }
}

impl SmsEngine {
    /// Drop trained signatures and open generations, keeping cumulative
    /// statistics.
    pub fn clear(&mut self) {
        self.signatures.clear();
        self.active.clear();
        self.stamp = 0;
    }
}

mod snapshot_impl {
    use super::*;
    use exynos_snapshot::{tags, Decoder, Encoder, Snapshot, SnapshotError};

    impl Snapshot for SmsEngine {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::SMS);
            enc.seq(self.signatures.len());
            for s in &self.signatures {
                enc.u64(s.pc);
                enc.bytes(&s.conf);
                enc.u64(s.lru);
            }
            enc.seq(self.active.len());
            for a in &self.active {
                enc.u64(a.region);
                enc.u64(a.primary_pc);
                enc.u64(a.touched);
                enc.u64(a.lru);
            }
            enc.u64(self.stamp);
            enc.u64(self.stats.generations);
            enc.u64(self.stats.trainings);
            enc.u64(self.stats.l1_prefetches);
            enc.u64(self.stats.l2_prefetches);
            enc.u64(self.stats.suppressed);
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::SMS)?;
            let ns = dec.seq(16 + LINES_PER_REGION)?;
            if ns > self.cfg.signatures {
                return Err(SnapshotError::Geometry {
                    what: "sms signatures",
                    expected: self.cfg.signatures as u64,
                    found: ns as u64,
                });
            }
            self.signatures.clear();
            for _ in 0..ns {
                let pc = dec.u64()?;
                let mut conf = [0u8; LINES_PER_REGION];
                for c in &mut conf {
                    *c = dec.u8()?;
                }
                let lru = dec.u64()?;
                self.signatures.push(Signature { pc, conf, lru });
            }
            let na = dec.seq(32)?;
            if na > self.cfg.active_regions {
                return Err(SnapshotError::Geometry {
                    what: "sms active regions",
                    expected: self.cfg.active_regions as u64,
                    found: na as u64,
                });
            }
            self.active.clear();
            for _ in 0..na {
                self.active.push(ActiveRegion {
                    region: dec.u64()?,
                    primary_pc: dec.u64()?,
                    touched: dec.u64()?,
                    lru: dec.u64()?,
                });
            }
            self.stamp = dec.u64()?;
            self.stats.generations = dec.u64()?;
            self.stats.trainings = dec.u64()?;
            self.stats.l1_prefetches = dec.u64()?;
            self.stats.l2_prefetches = dec.u64()?;
            self.stats.suppressed = dec.u64()?;
            dec.end_section()
        }
    }
}
