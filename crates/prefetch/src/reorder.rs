//! The address re-order buffer and duplicate filter feeding the L1
//! prefetcher's training unit (§VII.A, patents \[27\]\[28\]).
//!
//! "To avoid noisy behavior and improve pattern detection, out-of-order
//! addresses generated from multiple load pipes are reordered back into
//! program order using a ROB-like structure. To reduce the size of this
//! re-order buffer, an address filter is used to deallocate duplicate
//! entries to the same cache line."

use std::collections::VecDeque;

/// Statistics for the address re-order buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReorderStats {
    /// Entries dropped by the duplicate filter.
    pub filtered: u64,
    /// Entries dropped because the buffer was full (oldest released
    /// early).
    pub overflows: u64,
}

/// Re-orders (sequence-numbered) load addresses back into program order
/// and filters duplicate cache lines.
#[derive(Debug, Clone)]
pub struct AddressReorderBuffer {
    /// Pending out-of-order arrivals: (seq, line).
    pending: Vec<(u64, u64)>,
    /// Next sequence number to release.
    next_seq: u64,
    /// Recently released lines (duplicate filter).
    recent_lines: VecDeque<u64>,
    filter_depth: usize,
    capacity: usize,
    /// Entries dropped by the duplicate filter.
    filtered: u64,
    /// Entries dropped because the buffer was full (oldest released early).
    overflows: u64,
}

impl AddressReorderBuffer {
    /// A buffer of `capacity` entries with a `filter_depth`-line duplicate
    /// filter.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, filter_depth: usize) -> AddressReorderBuffer {
        assert!(capacity > 0);
        AddressReorderBuffer {
            pending: Vec::new(),
            next_seq: 0,
            recent_lines: VecDeque::with_capacity(filter_depth),
            filter_depth,
            capacity,
            filtered: 0,
            overflows: 0,
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> ReorderStats {
        ReorderStats {
            filtered: self.filtered,
            overflows: self.overflows,
        }
    }

    /// Insert a load's cache-line address with its program-order sequence
    /// number; returns the lines now releasable *in program order*.
    pub fn insert(&mut self, seq: u64, line: u64) -> Vec<u64> {
        // Duplicate filter: deallocate entries to a recently seen line.
        if self.recent_lines.contains(&line) || self.pending.iter().any(|&(_, l)| l == line) {
            self.filtered += 1;
            // Skip the sequence slot so in-order release continues.
            if seq == self.next_seq {
                self.next_seq += 1;
                return self.drain_ready();
            }
            self.pending.push((seq, u64::MAX)); // tombstone
            return Vec::new();
        }
        self.pending.push((seq, line));
        if self.pending.len() > self.capacity {
            // Pressure: release the oldest pending entry early.
            self.overflows += 1;
            self.pending.sort_unstable_by_key(|&(s, _)| s);
            let (s, l) = self.pending.remove(0);
            self.next_seq = self.next_seq.max(s + 1);
            let mut out = if l == u64::MAX { Vec::new() } else { vec![l] };
            for x in &out {
                self.remember(*x);
            }
            out.extend(self.drain_ready());
            return out;
        }
        self.drain_ready()
    }

    fn remember(&mut self, line: u64) {
        if self.filter_depth == 0 {
            return;
        }
        if self.recent_lines.len() == self.filter_depth {
            self.recent_lines.pop_front();
        }
        self.recent_lines.push_back(line);
    }

    fn drain_ready(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        loop {
            match self.pending.iter().position(|&(s, _)| s == self.next_seq) {
                Some(i) => {
                    let (_, line) = self.pending.swap_remove(i);
                    self.next_seq += 1;
                    if line != u64::MAX {
                        self.remember(line);
                        out.push(line);
                    }
                }
                None => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn releases_in_program_order() {
        let mut b = AddressReorderBuffer::new(8, 4);
        assert!(b.insert(2, 0x30).is_empty());
        assert!(b.insert(1, 0x20).is_empty());
        let out = b.insert(0, 0x10);
        assert_eq!(out, vec![0x10, 0x20, 0x30]);
    }

    #[test]
    fn duplicates_filtered() {
        let mut b = AddressReorderBuffer::new(8, 4);
        let out = b.insert(0, 0x10);
        assert_eq!(out, vec![0x10]);
        let out = b.insert(1, 0x10); // duplicate line
        assert!(out.is_empty());
        assert_eq!(b.stats().filtered, 1);
        // Sequence continues past the filtered slot.
        let out = b.insert(2, 0x20);
        assert_eq!(out, vec![0x20]);
    }

    #[test]
    fn duplicate_mid_window_does_not_stall_release() {
        let mut b = AddressReorderBuffer::new(8, 4);
        b.insert(0, 0x10);
        assert!(b.insert(2, 0x30).is_empty());
        // seq 1 is a duplicate of 0x10: tombstoned; 0x30 must release once
        // seq 1 resolves.
        let out = b.insert(1, 0x10);
        assert_eq!(out, vec![0x30]);
    }

    #[test]
    fn overflow_releases_oldest_early() {
        let mut b = AddressReorderBuffer::new(2, 0);
        assert!(b.insert(5, 0x50).is_empty());
        assert!(b.insert(3, 0x30).is_empty());
        // Third insert overflows: the oldest (seq 3) releases early.
        let out = b.insert(7, 0x70);
        assert!(out.contains(&0x30));
        assert_eq!(b.stats().overflows, 1);
    }
}

impl AddressReorderBuffer {
    /// Drop all in-flight addresses and the duplicate filter, keeping
    /// cumulative statistics.
    pub fn clear(&mut self) {
        self.pending.clear();
        self.recent_lines.clear();
        self.next_seq = 0;
    }
}

mod snapshot_impl {
    use super::*;
    use exynos_snapshot::{tags, Decoder, Encoder, Snapshot, SnapshotError};

    impl Snapshot for AddressReorderBuffer {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::REORDER);
            enc.seq(self.pending.len());
            for (seq, line) in &self.pending {
                enc.u64(*seq);
                enc.u64(*line);
            }
            enc.u64(self.next_seq);
            enc.seq(self.recent_lines.len());
            for l in &self.recent_lines {
                enc.u64(*l);
            }
            enc.u64(self.filtered);
            enc.u64(self.overflows);
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::REORDER)?;
            let n = dec.seq(16)?;
            if n > self.capacity + 1 {
                return Err(SnapshotError::Geometry {
                    what: "reorder pending entries",
                    expected: self.capacity as u64,
                    found: n as u64,
                });
            }
            self.pending.clear();
            for _ in 0..n {
                self.pending.push((dec.u64()?, dec.u64()?));
            }
            self.next_seq = dec.u64()?;
            let r = dec.seq(8)?;
            if r > self.filter_depth {
                return Err(SnapshotError::Geometry {
                    what: "reorder duplicate filter",
                    expected: self.filter_depth as u64,
                    found: r as u64,
                });
            }
            self.recent_lines.clear();
            for _ in 0..r {
                self.recent_lines.push_back(dec.u64()?);
            }
            self.filtered = dec.u64()?;
            self.overflows = dec.u64()?;
            dec.end_section()
        }
    }
}
