//! # exynos-prefetch — the Exynos prefetching engines (§VII–§VIII)
//!
//! * [`reorder`] — the program-order address re-order buffer + duplicate
//!   filter feeding the L1 training unit (§VII.A);
//! * [`stride`] — the multi-stride pattern engine with queue (M1) or
//!   integrated (M3+) confirmation (§VII.A/D);
//! * [`degree`] — the adaptive dynamic-degree controller (§VII.B);
//! * [`twopass`] — the one-pass/two-pass L1 delivery scheme (§VII.B,
//!   Fig. 14);
//! * [`sms`] — the Spatial Memory Streaming engine (M3+, §VII.C);
//! * [`l1engine`] — the composed L1 prefetcher with stride-over-SMS
//!   arbitration;
//! * [`buddy`] — the sectored-L2 Buddy prefetcher with skip filter (M4+,
//!   §VIII.B);
//! * [`standalone`] — the M5 standalone L2/L3 stream prefetcher with the
//!   two-level adaptive (phantom / aggressive) scheme (§VIII.C–D,
//!   Fig. 15).

#![warn(missing_docs)]

pub mod buddy;
pub mod degree;
pub mod l1engine;
pub mod observe;
pub mod reorder;
pub mod sms;
pub mod standalone;
pub mod stride;
pub mod twopass;

pub use buddy::BuddyPrefetcher;
pub use degree::DegreeController;
pub use l1engine::{L1Prefetcher, L1PrefetcherConfig, L1PrefetchRequest};
pub use sms::{SmsConfig, SmsEngine};
pub use standalone::{ConfMode, StandalonePrefetcher, StandaloneConfig};
pub use stride::{ConfirmScheme, MultiStrideEngine, StrideConfig};
pub use twopass::{PassMode, TwoPassController};
