//! The one-pass/two-pass L1 prefetch delivery scheme (§VII.B, Fig. 14,
//! patent \[31\] "Pre-fetch Chaining").
//!
//! In **two-pass** mode a prefetch does not allocate an L1 miss buffer up
//! front: the first pass sends a fill request into the L2 (steps 1–4 of
//! Fig. 14) while the address waits in a queue (step 2); when an L1 miss
//! buffer frees up, the second pass performs the L1 fill (steps 5–7).
//!
//! When the working set fits in the L2 every first pass would hit there,
//! so the controller "tracks the number of first pass prefetch hits in the
//! L2, and if they reach a certain watermark, it will switch into one-pass
//! mode", where only the queue entry is made and the L1 fill issues as
//! soon as buffers allow — saving power and L2 bandwidth.

use std::collections::VecDeque;

/// Current delivery mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassMode {
    /// First pass to L2, second pass to L1 when buffers free.
    TwoPass,
    /// Single L1 fill once buffers allow (L2-resident working set).
    OnePass,
}

/// A prefetch waiting for its L1 (second-pass) fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingFill {
    /// 64 B line address.
    pub line: u64,
    /// Cycle at which the data is available to fill (L2 response time).
    pub ready_at: u64,
}

/// Controller statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TwoPassStats {
    /// First-pass requests sent to the L2.
    pub first_passes: u64,
    /// First passes that hit in the L2.
    pub first_pass_l2_hits: u64,
    /// Second-pass L1 fills completed.
    pub second_passes: u64,
    /// One-pass L1 fills completed.
    pub one_passes: u64,
    /// Mode switches two-pass → one-pass.
    pub to_one_pass: u64,
    /// Mode switches one-pass → two-pass.
    pub to_two_pass: u64,
    /// Prefetches dropped because the pending queue overflowed.
    pub dropped: u64,
}

/// The one-pass/two-pass delivery controller.
#[derive(Debug, Clone)]
pub struct TwoPassController {
    mode: PassMode,
    pending: VecDeque<PendingFill>,
    queue_depth: usize,
    /// Saturating counter of recent first-pass L2 hits.
    l2_hit_score: i32,
    watermark: i32,
    stats: TwoPassStats,
}

impl TwoPassController {
    /// A controller with a pending queue of `queue_depth` entries and the
    /// given one-pass switch `watermark`.
    ///
    /// # Panics
    /// Panics if `queue_depth` is zero.
    pub fn new(queue_depth: usize, watermark: i32) -> TwoPassController {
        assert!(queue_depth > 0);
        TwoPassController {
            mode: PassMode::TwoPass,
            pending: VecDeque::new(),
            queue_depth,
            l2_hit_score: 0,
            watermark,
            stats: TwoPassStats::default(),
        }
    }

    /// The M1 production-ish configuration. The queue is sized for the
    /// dynamic-degree maximum (64) across a couple of concurrent streams.
    pub fn standard() -> TwoPassController {
        TwoPassController::new(128, 12)
    }

    /// Current mode.
    pub fn mode(&self) -> PassMode {
        self.mode
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TwoPassStats {
        self.stats
    }

    /// Pending second-pass/one-pass fills.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// A new prefetch enters the scheme. In two-pass mode the caller must
    /// have issued the L2 fill; `l2_hit` reports whether it hit there, and
    /// `ready_at` when data will be in the L2. Returns `false` if the
    /// prefetch was dropped (queue full).
    pub fn enqueue(&mut self, line: u64, l2_hit: bool, ready_at: u64) -> bool {
        if self.pending.len() >= self.queue_depth {
            self.stats.dropped += 1;
            return false;
        }
        if self.mode == PassMode::TwoPass {
            self.stats.first_passes += 1;
            if l2_hit {
                self.stats.first_pass_l2_hits += 1;
                self.l2_hit_score = (self.l2_hit_score + 1).min(self.watermark * 2);
                if self.l2_hit_score >= self.watermark {
                    self.mode = PassMode::OnePass;
                    self.stats.to_one_pass += 1;
                }
            } else {
                self.l2_hit_score = (self.l2_hit_score - 2).max(-self.watermark);
            }
        }
        self.pending.push_back(PendingFill { line, ready_at });
        true
    }

    /// In one-pass mode, an L1 fill that had to go to memory anyway
    /// signals the working set outgrew the L2: decay back toward two-pass.
    pub fn on_one_pass_l2_miss(&mut self) {
        self.l2_hit_score = (self.l2_hit_score - 2).max(-self.watermark);
        if self.mode == PassMode::OnePass && self.l2_hit_score <= 0 {
            self.mode = PassMode::TwoPass;
            self.stats.to_two_pass += 1;
        }
    }

    /// L1 miss buffers freed: drain up to `buffers` fills whose data is
    /// ready at `now`. Returns the lines to fill into the L1.
    pub fn drain_ready(&mut self, now: u64, buffers: usize) -> Vec<u64> {
        let mut out = Vec::new();
        self.drain_ready_into(now, buffers, &mut out);
        out
    }

    /// As [`TwoPassController::drain_ready`], but writing the lines into
    /// `out` (cleared first) so callers can reuse one buffer across drains
    /// instead of allocating per call.
    pub fn drain_ready_into(&mut self, now: u64, buffers: usize, out: &mut Vec<u64>) {
        out.clear();
        let mut rotated = 0;
        while out.len() < buffers && rotated < self.pending.len() {
            let Some(p) = self.pending.pop_front() else {
                break;
            };
            if p.ready_at <= now {
                match self.mode {
                    PassMode::TwoPass => self.stats.second_passes += 1,
                    PassMode::OnePass => self.stats.one_passes += 1,
                }
                out.push(p.line);
            } else {
                // Head not ready: rotate to look deeper.
                self.pending.push_back(p);
                rotated += 1;
            }
        }
    }

    /// Fault-injection hook: the chaining path loses every pending fill
    /// confirmation (steps 5–7 of Fig. 14 never arrive). The queued fills
    /// are discarded and counted into [`TwoPassStats::dropped`]. Returns
    /// how many fills were lost.
    pub fn drop_pending(&mut self) -> usize {
        let n = self.pending.len();
        self.pending.clear();
        self.stats.dropped += n as u64;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_in_two_pass() {
        let c = TwoPassController::standard();
        assert_eq!(c.mode(), PassMode::TwoPass);
    }

    #[test]
    fn l2_hits_promote_to_one_pass() {
        let mut c = TwoPassController::new(64, 4);
        for i in 0..4 {
            c.enqueue(100 + i, true, 0);
        }
        assert_eq!(c.mode(), PassMode::OnePass);
        assert_eq!(c.stats().to_one_pass, 1);
    }

    #[test]
    fn l2_misses_keep_two_pass() {
        let mut c = TwoPassController::new(64, 4);
        for i in 0..20 {
            c.enqueue(100 + i, i % 4 == 0, 0); // mostly misses
        }
        assert_eq!(c.mode(), PassMode::TwoPass);
    }

    #[test]
    fn one_pass_decays_back_on_misses() {
        let mut c = TwoPassController::new(64, 4);
        for i in 0..4 {
            c.enqueue(100 + i, true, 0);
        }
        assert_eq!(c.mode(), PassMode::OnePass);
        for _ in 0..6 {
            c.on_one_pass_l2_miss();
        }
        assert_eq!(c.mode(), PassMode::TwoPass);
        assert_eq!(c.stats().to_two_pass, 1);
    }

    #[test]
    fn drain_respects_readiness_and_buffer_count() {
        let mut c = TwoPassController::standard();
        c.enqueue(1, false, 100);
        c.enqueue(2, false, 10);
        c.enqueue(3, false, 10);
        // At t=50 only lines 2 and 3 are ready; 1 buffer available.
        let out = c.drain_ready(50, 1);
        assert_eq!(out, vec![2]);
        let out = c.drain_ready(50, 4);
        assert_eq!(out, vec![3]);
        // Line 1 becomes ready later.
        let out = c.drain_ready(120, 4);
        assert_eq!(out, vec![1]);
        assert_eq!(c.pending_len(), 0);
    }

    #[test]
    fn queue_overflow_drops() {
        let mut c = TwoPassController::new(2, 4);
        assert!(c.enqueue(1, false, 0));
        assert!(c.enqueue(2, false, 0));
        assert!(!c.enqueue(3, false, 0));
        assert_eq!(c.stats().dropped, 1);
    }
}

impl TwoPassController {
    /// Drop pending fills and reset the adaptive mode, keeping cumulative
    /// statistics.
    pub fn clear(&mut self) {
        self.pending.clear();
        self.mode = PassMode::TwoPass;
        self.l2_hit_score = 0;
    }
}

mod snapshot_impl {
    use super::*;
    use exynos_snapshot::{tags, Decoder, Encoder, Snapshot, SnapshotError};

    fn mode_to_u8(m: PassMode) -> u8 {
        match m {
            PassMode::TwoPass => 0,
            PassMode::OnePass => 1,
        }
    }

    fn mode_from_u8(v: u8) -> Result<PassMode, SnapshotError> {
        match v {
            0 => Ok(PassMode::TwoPass),
            1 => Ok(PassMode::OnePass),
            _ => Err(SnapshotError::Corrupt { what: "two-pass mode" }),
        }
    }

    impl Snapshot for TwoPassController {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::TWOPASS);
            enc.u8(mode_to_u8(self.mode));
            enc.seq(self.pending.len());
            for p in &self.pending {
                enc.u64(p.line);
                enc.u64(p.ready_at);
            }
            enc.i32(self.l2_hit_score);
            enc.u64(self.stats.first_passes);
            enc.u64(self.stats.first_pass_l2_hits);
            enc.u64(self.stats.second_passes);
            enc.u64(self.stats.one_passes);
            enc.u64(self.stats.to_one_pass);
            enc.u64(self.stats.to_two_pass);
            enc.u64(self.stats.dropped);
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::TWOPASS)?;
            self.mode = mode_from_u8(dec.u8()?)?;
            let n = dec.seq(16)?;
            if n > self.queue_depth {
                return Err(SnapshotError::Geometry {
                    what: "two-pass pending fills",
                    expected: self.queue_depth as u64,
                    found: n as u64,
                });
            }
            self.pending.clear();
            for _ in 0..n {
                self.pending.push_back(PendingFill {
                    line: dec.u64()?,
                    ready_at: dec.u64()?,
                });
            }
            self.l2_hit_score = dec.i32()?;
            self.stats.first_passes = dec.u64()?;
            self.stats.first_pass_l2_hits = dec.u64()?;
            self.stats.second_passes = dec.u64()?;
            self.stats.one_passes = dec.u64()?;
            self.stats.to_one_pass = dec.u64()?;
            self.stats.to_two_pass = dec.u64()?;
            self.stats.dropped = dec.u64()?;
            dec.end_section()
        }
    }
}
