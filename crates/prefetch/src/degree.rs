//! Adaptive dynamic prefetch degree (§VII.B, patent \[30\]).
//!
//! "Prefetches are grouped into windows, with the window size equal to the
//! current degree. A newly created stream starts with a low degree. After
//! some number of confirmations within the window, the degree will be
//! increased. If there are too few confirmations in the window, the degree
//! is decreased."

/// Controller for one stream's prefetch degree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegreeController {
    degree: u32,
    min: u32,
    max: u32,
    /// Prefetches issued in the current window.
    issued_in_window: u32,
    /// Confirmations observed in the current window.
    confirms_in_window: u32,
}

impl DegreeController {
    /// A controller starting at `start`, bounded by [`min`, `max`].
    ///
    /// # Panics
    /// Panics unless `min <= start <= max` and `min >= 1`.
    pub fn new(start: u32, min: u32, max: u32) -> DegreeController {
        assert!(min >= 1 && min <= start && start <= max);
        DegreeController {
            degree: start,
            min,
            max,
            issued_in_window: 0,
            confirms_in_window: 0,
        }
    }

    /// The paper-ish default: start at 2, grow to cover DRAM latency
    /// ("the required degree can be very large (over 50)").
    pub fn standard() -> DegreeController {
        DegreeController::new(2, 1, 64)
    }

    /// Current degree (also the window size).
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// Record an issued prefetch; closes the window when full.
    pub fn on_issue(&mut self) {
        self.issued_in_window += 1;
        if self.issued_in_window >= self.degree {
            self.close_window();
        }
    }

    /// Record a demand confirmation of a predicted address.
    pub fn on_confirm(&mut self) {
        self.confirms_in_window += 1;
    }

    fn close_window(&mut self) {
        let window = self.degree;
        let confirms = self.confirms_in_window;
        if confirms * 4 >= window * 3 {
            self.degree = (self.degree * 2).min(self.max);
        } else if confirms * 4 < window {
            self.degree = (self.degree / 2).max(self.min);
        }
        self.issued_in_window = 0;
        self.confirms_in_window = 0;
    }
}

impl Default for DegreeController {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confirmed_windows_grow_degree() {
        let mut d = DegreeController::standard();
        for _ in 0..6 {
            // Fully confirmed windows.
            for _ in 0..d.degree() {
                d.on_confirm();
                d.on_issue();
            }
        }
        assert!(d.degree() >= 32, "degree must ramp up, got {}", d.degree());
    }

    #[test]
    fn unconfirmed_windows_shrink_degree() {
        let mut d = DegreeController::new(32, 1, 64);
        for _ in 0..8 {
            for _ in 0..d.degree() {
                d.on_issue(); // no confirms
            }
        }
        assert_eq!(d.degree(), 1);
    }

    #[test]
    fn degree_respects_bounds() {
        let mut d = DegreeController::new(4, 2, 8);
        for _ in 0..10 {
            for _ in 0..d.degree() {
                d.on_confirm();
                d.on_issue();
            }
        }
        assert_eq!(d.degree(), 8);
    }

    #[test]
    fn middling_confirmation_holds_degree() {
        let mut d = DegreeController::new(8, 1, 64);
        // Half-confirmed window: between the two thresholds.
        for i in 0..8 {
            if i % 2 == 0 {
                d.on_confirm();
            }
            d.on_issue();
        }
        assert_eq!(d.degree(), 8);
    }
}

mod snapshot_impl {
    use super::*;
    use exynos_snapshot::{tags, Decoder, Encoder, Snapshot, SnapshotError};

    impl Snapshot for DegreeController {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::DEGREE);
            enc.u32(self.degree);
            enc.u32(self.min);
            enc.u32(self.max);
            enc.u32(self.issued_in_window);
            enc.u32(self.confirms_in_window);
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::DEGREE)?;
            let degree = dec.u32()?;
            let min = dec.u32()?;
            let max = dec.u32()?;
            if min < 1 || min > degree || degree > max {
                return Err(SnapshotError::Corrupt { what: "degree controller bounds" });
            }
            self.degree = degree;
            self.min = min;
            self.max = max;
            self.issued_in_window = dec.u32()?;
            self.confirms_in_window = dec.u32()?;
            dec.end_section()
        }
    }
}
