//! # exynos-uoc — the M5 micro-operation cache (§VI)
//!
//! "The M5 implementation added a micro-operation cache as an alternative
//! µop supply path, primarily to save fetch and decode power on repeatable
//! kernels. The UOC can hold up to 384 µops, and provides up to 6 µops per
//! cycle."
//!
//! The front end operates in three modes (Fig. 13):
//!
//! * **FilterMode** — the µBTB predictor determines predictability and size
//!   of the current code segment; only when it locks onto a small, highly
//!   predictable kernel does the UOC start building (avoiding unprofitable
//!   builds);
//! * **BuildMode** — basic blocks are allocated into the UOC. Each µBTB
//!   branch entry carries a "built" bit: on a prediction lookup
//!   `#BuildTimer` increments, and the bit selects between `#BuildEdge`
//!   (clear — block marked for allocation, UOC tags checked, bit
//!   back-propagated) and `#FetchEdge` (set). When the
//!   `#FetchEdge / #BuildEdge` ratio reaches a threshold before the timer
//!   expires, the front end shifts to FetchMode;
//! * **FetchMode** — the instruction cache and decoders are disabled and
//!   the µBTB predictions feed through the UAQ into the UOC. Built bits
//!   keep being monitored; too many `#BuildEdge` events flip back to
//!   FilterMode.

#![warn(missing_docs)]

use exynos_branch::ubtb::MicroBtb;
use std::fmt;

/// Internal inconsistency of the UOC detected during operation. Typed
/// (instead of a panic) so the core's watchdog can demote the UOC to
/// FilterMode and continue, or surface the error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UocError {
    /// The instruction-level driver lost the current block's start PC
    /// while a block was being accumulated.
    BlockStateLost {
        /// PC of the closing branch that found no block start.
        pc: u64,
    },
}

impl fmt::Display for UocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UocError::BlockStateLost { pc } => {
                write!(f, "UOC block accumulator lost its start PC at {pc:#x}")
            }
        }
    }
}

impl std::error::Error for UocError {}

/// Operating mode of the µop supply path (Fig. 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UocMode {
    /// µBTB filters for a profitable, predictable kernel.
    Filter,
    /// Basic blocks are being allocated into the UOC.
    Build,
    /// The UOC supplies µops; instruction cache and decode are gated.
    Fetch,
}

/// Geometry and thresholds of the UOC.
#[derive(Debug, Clone, PartialEq)]
pub struct UocConfig {
    /// Total µop capacity (384 in M5/M6).
    pub capacity_uops: u32,
    /// µops supplied per cycle in FetchMode (6 in M5).
    pub supply_width: u32,
    /// `#FetchEdge / #BuildEdge` ratio that promotes Build → Fetch.
    pub build_to_fetch_ratio: u32,
    /// Minimum edges observed before the promotion ratio is evaluated.
    pub min_edges: u32,
    /// `#BuildTimer` limit; expiry demotes Build → Filter.
    pub build_timer_limit: u32,
    /// `#BuildEdge` fraction (percent) of edges that demotes Fetch →
    /// Filter.
    pub fetch_miss_percent: u32,
}

impl Default for UocConfig {
    /// The M5 production configuration.
    fn default() -> UocConfig {
        UocConfig {
            capacity_uops: 384,
            supply_width: 6,
            build_to_fetch_ratio: 3,
            min_edges: 16,
            build_timer_limit: 2048,
            fetch_miss_percent: 25,
        }
    }
}

/// One cached basic block.
#[derive(Debug, Clone, Copy)]
struct UocBlock {
    /// Block start PC (tag).
    start: u64,
    /// Terminating branch PC (built-bit owner in the µBTB).
    branch_pc: u64,
    uops: u32,
    lru: u64,
}

/// Aggregate UOC statistics (power/effectiveness proxies).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UocStats {
    /// Blocks processed in FilterMode.
    pub filter_blocks: u64,
    /// Blocks processed in BuildMode.
    pub build_blocks: u64,
    /// Blocks processed in FetchMode.
    pub fetch_blocks: u64,
    /// µops supplied by the UOC (fetch+decode power saved).
    pub uops_supplied: u64,
    /// Basic-block allocations performed.
    pub builds: u64,
    /// Blocks evicted for capacity.
    pub evictions: u64,
    /// Build→Fetch promotions.
    pub promotions: u64,
    /// Demotions back to FilterMode.
    pub demotions: u64,
    /// Build requests squashed because the UOC already held the block
    /// (the back-propagation case in §VI).
    pub squashed_builds: u64,
}

impl exynos_telemetry::Observable for UocStats {
    fn component(&self) -> &'static str {
        "uoc.cache"
    }

    fn visit(&self, f: &mut dyn FnMut(&'static str, exynos_telemetry::Value)) {
        use exynos_telemetry::Value;
        f("filter_blocks", Value::U64(self.filter_blocks));
        f("build_blocks", Value::U64(self.build_blocks));
        f("fetch_blocks", Value::U64(self.fetch_blocks));
        f("uops_supplied", Value::U64(self.uops_supplied));
        f("builds", Value::U64(self.builds));
        f("evictions", Value::U64(self.evictions));
        f("promotions", Value::U64(self.promotions));
        f("demotions", Value::U64(self.demotions));
        f("squashed_builds", Value::U64(self.squashed_builds));
    }
}

/// The micro-operation cache and its mode state machine.
#[derive(Debug, Clone)]
pub struct Uoc {
    cfg: UocConfig,
    mode: UocMode,
    blocks: Vec<UocBlock>,
    used_uops: u32,
    build_edge: u32,
    fetch_edge: u32,
    build_timer: u32,
    stamp: u64,
    stats: UocStats,
    /// Block-accumulation state for the instruction-level driver.
    cur_block_start: Option<u64>,
    cur_block_uops: u32,
    /// Index of the most recent [`Uoc::find`] hit. Kernels loop over a
    /// handful of blocks, so verifying this tag first usually skips the
    /// linear scan; it is always re-validated against the block's start
    /// PC, so a stale hint (e.g. after `swap_remove`) just falls back.
    find_hint: usize,
}

impl Uoc {
    /// Build a UOC from `cfg`.
    ///
    /// # Panics
    /// Panics if `capacity_uops` or `supply_width` is zero.
    pub fn new(cfg: UocConfig) -> Uoc {
        assert!(cfg.capacity_uops > 0 && cfg.supply_width > 0);
        Uoc {
            mode: UocMode::Filter,
            blocks: Vec::new(),
            used_uops: 0,
            build_edge: 0,
            fetch_edge: 0,
            build_timer: 0,
            stamp: 0,
            stats: UocStats::default(),
            cfg,
            cur_block_start: None,
            cur_block_uops: 0,
            find_hint: 0,
        }
    }

    /// Current operating mode.
    pub fn mode(&self) -> UocMode {
        self.mode
    }

    /// The configuration in use.
    pub fn config(&self) -> &UocConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> UocStats {
        self.stats
    }

    /// µops currently resident.
    pub fn occupancy(&self) -> u32 {
        self.used_uops
    }

    fn reset_counters(&mut self) {
        self.build_edge = 0;
        self.fetch_edge = 0;
        self.build_timer = 0;
    }

    /// Watchdog degradation hook: force the mode machine back to
    /// FilterMode and drop the in-flight block accumulator. Resident
    /// blocks stay cached (they re-arm via the ordinary Build path), but
    /// µop supply stops until the filter re-qualifies the kernel.
    pub fn demote_to_filter(&mut self) {
        if self.mode != UocMode::Filter {
            self.stats.demotions += 1;
        }
        self.mode = UocMode::Filter;
        self.reset_counters();
        self.cur_block_start = None;
        self.cur_block_uops = 0;
    }

    #[inline]
    fn find(&mut self, start: u64) -> Option<usize> {
        if let Some(b) = self.blocks.get(self.find_hint) {
            if b.start == start {
                return Some(self.find_hint);
            }
        }
        let found = self.blocks.iter().position(|b| b.start == start);
        if let Some(i) = found {
            self.find_hint = i;
        }
        found
    }

    fn allocate(&mut self, start: u64, branch_pc: u64, uops: u32, ubtb: &mut MicroBtb) {
        let uops = uops.min(self.cfg.capacity_uops);
        if let Some(i) = self.find(start) {
            // Already present: the build request is squashed and the built
            // bit back-propagated.
            self.stats.squashed_builds += 1;
            self.blocks[i].lru = self.stamp;
            ubtb.set_built(branch_pc, true);
            return;
        }
        while self.used_uops + uops > self.cfg.capacity_uops && !self.blocks.is_empty() {
            let victim = self
                .blocks
                .iter()
                .enumerate()
                .min_by_key(|(_, b)| b.lru)
                .map(|(i, _)| i)
                .unwrap_or(0);
            let b = self.blocks.swap_remove(victim);
            self.used_uops -= b.uops;
            self.stats.evictions += 1;
            // Eviction clears the branch's built bit.
            ubtb.set_built(b.branch_pc, false);
        }
        self.blocks.push(UocBlock {
            start,
            branch_pc,
            uops,
            lru: self.stamp,
        });
        self.used_uops += uops;
        self.stats.builds += 1;
        ubtb.set_built(branch_pc, true);
    }

    /// Side-effect-free probe: is a block starting at `start` resident?
    /// Unlike the internal find path this touches no LRU hint, so batch
    /// dissection sweeps can interrogate residency without perturbing
    /// the mode machine or replacement order.
    pub fn contains_block(&self, start: u64) -> bool {
        self.blocks.iter().any(|b| b.start == start)
    }

    /// Batched SoA probe: test block residency of `start` across every
    /// member of a lockstep population, appending one bool per member to
    /// `out` (cleared first, member order preserved). Members without a
    /// UOC are passed as `None` and report `false` (pre-M5 generations).
    pub fn probe_batch(uocs: &[Option<&Uoc>], start: u64, out: &mut Vec<bool>) {
        out.clear();
        out.reserve(uocs.len());
        out.extend(uocs.iter().map(|u| u.is_some_and(|u| u.contains_block(start))));
    }

    /// Process one completed basic block: `start` is its first PC,
    /// `branch_pc` the terminating branch (whose µBTB entry owns the built
    /// bit), `uops` its µop count. Returns `true` when the block's µops
    /// were supplied by the UOC (instruction cache and decode gated).
    pub fn on_block(&mut self, start: u64, branch_pc: u64, uops: u32, ubtb: &mut MicroBtb) -> bool {
        self.stamp += 1;
        match self.mode {
            UocMode::Filter => {
                self.stats.filter_blocks += 1;
                // Profitability filter: the kernel must be µBTB-predictable
                // (locked) — the lock condition already implies it fits the
                // µBTB's finite resources.
                if ubtb.is_locked() {
                    self.mode = UocMode::Build;
                    self.reset_counters();
                }
                false
            }
            UocMode::Build => {
                self.stats.build_blocks += 1;
                self.build_timer += 1;
                match ubtb.built_bit(branch_pc) {
                    Some(true) => self.fetch_edge += 1,
                    _ => {
                        self.build_edge += 1;
                        self.allocate(start, branch_pc, uops, ubtb);
                    }
                }
                if self.build_timer > self.cfg.build_timer_limit {
                    self.mode = UocMode::Filter;
                    self.stats.demotions += 1;
                    self.reset_counters();
                } else if self.fetch_edge + self.build_edge >= self.cfg.min_edges
                    && self.fetch_edge >= self.cfg.build_to_fetch_ratio * self.build_edge.max(1)
                {
                    self.mode = UocMode::Fetch;
                    self.stats.promotions += 1;
                    self.reset_counters();
                }
                false
            }
            UocMode::Fetch => {
                self.stats.fetch_blocks += 1;
                let built = ubtb.built_bit(branch_pc) == Some(true);
                let resident = match self.find(start) {
                    Some(i) if built => {
                        self.fetch_edge += 1;
                        self.blocks[i].lru = self.stamp;
                        self.stats.uops_supplied += uops as u64;
                        true
                    }
                    found => {
                        self.build_edge += 1;
                        found.is_some()
                    }
                };
                // µBTB inaccuracy or too many UOC misses end FetchMode.
                let edges = self.fetch_edge + self.build_edge;
                let missy = edges >= self.cfg.min_edges
                    && self.build_edge * 100 >= self.cfg.fetch_miss_percent * edges;
                if !ubtb.is_locked() || missy {
                    self.mode = UocMode::Filter;
                    self.stats.demotions += 1;
                    self.reset_counters();
                    return false;
                }
                built && resident
            }
        }
    }

    /// Instruction-level driver: accumulates the current basic block and
    /// calls [`Uoc::on_block`] when a taken branch (or a redirect,
    /// signalled via `block_broken`) closes it. Returns whether the
    /// *closing* block was supplied by the UOC, or a typed [`UocError`]
    /// if the accumulator state is inconsistent.
    #[inline]
    pub fn on_inst(
        &mut self,
        pc: u64,
        is_branch: bool,
        taken: bool,
        block_broken: bool,
        ubtb: &mut MicroBtb,
    ) -> Result<bool, UocError> {
        if block_broken {
            self.cur_block_start = None;
            self.cur_block_uops = 0;
        }
        if self.cur_block_start.is_none() {
            self.cur_block_start = Some(pc);
        }
        self.cur_block_uops += 1;
        if is_branch && taken {
            let Some(start) = self.cur_block_start.take() else {
                return Err(UocError::BlockStateLost { pc });
            };
            let uops = self.cur_block_uops;
            self.cur_block_uops = 0;
            return Ok(self.on_block(start, pc, uops, ubtb));
        }
        // Very long fall-through regions close blocks at fetch width too,
        // but those are uninteresting to the UOC filter; cap block size.
        if self.cur_block_uops >= 64 {
            self.cur_block_start = None;
            self.cur_block_uops = 0;
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exynos_branch::ubtb::UbtbConfig;

    /// Lock the µBTB on a kernel made of the given branch PCs.
    fn locked_ubtb_on(pcs: &[u64]) -> MicroBtb {
        let mut u = MicroBtb::new(UbtbConfig::m5());
        for _ in 0..64 {
            for &pc in pcs {
                let _ = u.predict(pc);
                u.update(pc, true, pc - 0x80, false, true);
            }
        }
        assert!(u.is_locked());
        u
    }

    /// Lock the µBTB on a two-branch kernel and return it.
    fn locked_ubtb() -> MicroBtb {
        locked_ubtb_on(&[0x4100, 0x4200])
    }

    /// Drive the kernel's two blocks through the UOC once.
    fn drive(uoc: &mut Uoc, ubtb: &mut MicroBtb) -> bool {
        let mut any = false;
        for (start, bpc) in [(0x4080u64, 0x4100u64), (0x4180, 0x4200)] {
            any |= uoc.on_block(start, bpc, 8, ubtb);
        }
        any
    }

    #[test]
    fn filter_waits_for_ubtb_lock() {
        let mut uoc = Uoc::new(UocConfig::default());
        let mut ubtb = MicroBtb::new(UbtbConfig::m5());
        assert!(!uoc.on_block(0x4080, 0x4100, 8, &mut ubtb));
        assert_eq!(uoc.mode(), UocMode::Filter);
    }

    #[test]
    fn full_filter_build_fetch_progression() {
        let mut uoc = Uoc::new(UocConfig::default());
        let mut ubtb = locked_ubtb();
        // First block observes the lock and enters BuildMode.
        drive(&mut uoc, &mut ubtb);
        assert_eq!(uoc.mode(), UocMode::Build);
        // Building: blocks allocate, built bits set, fetch edges accrue.
        for _ in 0..40 {
            drive(&mut uoc, &mut ubtb);
        }
        assert_eq!(uoc.mode(), UocMode::Fetch, "stats: {:?}", uoc.stats());
        // Fetching supplies µops.
        let supplied = drive(&mut uoc, &mut ubtb);
        assert!(supplied);
        assert!(uoc.stats().uops_supplied > 0);
        assert!(uoc.stats().promotions == 1);
    }

    #[test]
    fn eviction_clears_built_bits() {
        let mut cfg = UocConfig::default();
        cfg.capacity_uops = 16; // room for exactly two 8-µop blocks
        let mut uoc = Uoc::new(cfg);
        let mut ubtb = locked_ubtb_on(&[0x4100, 0x4200, 0x4300]);
        drive(&mut uoc, &mut ubtb); // -> Build
        drive(&mut uoc, &mut ubtb); // allocates both blocks (16 µops)
        assert_eq!(ubtb.built_bit(0x4100), Some(true));
        // Allocating a third block forces an eviction.
        uoc.on_block(0x4280, 0x4300, 8, &mut ubtb);
        assert!(uoc.stats().evictions >= 1);
        let cleared = [0x4100u64, 0x4200]
            .iter()
            .any(|&pc| ubtb.built_bit(pc) == Some(false));
        assert!(cleared, "an evicted block's built bit must clear");
    }

    #[test]
    fn fetch_mode_demotes_on_misses() {
        let mut uoc = Uoc::new(UocConfig::default());
        let mut ubtb = locked_ubtb();
        drive(&mut uoc, &mut ubtb);
        for _ in 0..40 {
            drive(&mut uoc, &mut ubtb);
        }
        assert_eq!(uoc.mode(), UocMode::Fetch);
        // Suddenly the code walks new blocks the UOC has never seen: the
        // miss ratio demotes FetchMode (the still-locked µBTB may promote
        // again later, but a demotion must have occurred).
        for i in 0..40u64 {
            uoc.on_block(0x9000 + i * 0x80, 0x9040 + i * 0x80, 8, &mut ubtb);
        }
        assert!(uoc.stats().demotions >= 1);
        assert_ne!(uoc.mode(), UocMode::Fetch);
    }

    #[test]
    fn build_timer_expiry_demotes() {
        let mut cfg = UocConfig::default();
        cfg.build_timer_limit = 8;
        cfg.min_edges = 1000; // promotion unreachable
        let mut uoc = Uoc::new(cfg);
        let mut ubtb = locked_ubtb();
        drive(&mut uoc, &mut ubtb);
        for _ in 0..10 {
            drive(&mut uoc, &mut ubtb);
        }
        // The timer expired at least once (Filter may immediately re-enter
        // Build because the µBTB is still locked).
        assert!(uoc.stats().demotions >= 1);
        assert_ne!(uoc.mode(), UocMode::Fetch);
    }

    #[test]
    fn squashed_build_when_block_already_resident() {
        let mut uoc = Uoc::new(UocConfig::default());
        let mut ubtb = locked_ubtb();
        drive(&mut uoc, &mut ubtb); // -> Build
        drive(&mut uoc, &mut ubtb); // allocate both
        // Clear the built bit behind the UOC's back (as an eviction of the
        // µBTB node would); the next build request finds the block present
        // and squashes.
        ubtb.set_built(0x4100, false);
        drive(&mut uoc, &mut ubtb);
        assert!(uoc.stats().squashed_builds >= 1);
        assert_eq!(ubtb.built_bit(0x4100), Some(true), "bit back-propagated");
    }

    #[test]
    fn inst_level_driver_closes_blocks_on_taken_branches() {
        let mut uoc = Uoc::new(UocConfig::default());
        let mut ubtb = locked_ubtb();
        // 3 µops then the taken branch at 0x4100.
        for pc in [0x40F4u64, 0x40F8, 0x40FC] {
            assert!(!uoc.on_inst(pc, false, false, false, &mut ubtb).unwrap());
        }
        let _ = uoc.on_inst(0x4100, true, true, false, &mut ubtb);
        // One block processed in Filter mode (observing the lock).
        assert_eq!(uoc.stats().filter_blocks, 1);
        assert_eq!(uoc.mode(), UocMode::Build);
    }
}

impl Uoc {
    /// Drop all cached blocks and return to FilterMode, keeping cumulative
    /// statistics (they describe the run, not the state) — the
    /// `stats() / clear() / snapshot` surface shared by the stateful
    /// components.
    pub fn clear(&mut self) {
        self.mode = UocMode::Filter;
        self.blocks.clear();
        self.used_uops = 0;
        self.build_edge = 0;
        self.fetch_edge = 0;
        self.build_timer = 0;
        self.stamp = 0;
        self.cur_block_start = None;
        self.cur_block_uops = 0;
        self.find_hint = 0;
    }
}

mod snapshot_impl {
    use super::*;
    use exynos_snapshot::{tags, Decoder, Encoder, Snapshot, SnapshotError};

    fn mode_to_u8(m: UocMode) -> u8 {
        match m {
            UocMode::Filter => 0,
            UocMode::Build => 1,
            UocMode::Fetch => 2,
        }
    }

    fn mode_from_u8(v: u8) -> Result<UocMode, SnapshotError> {
        Ok(match v {
            0 => UocMode::Filter,
            1 => UocMode::Build,
            2 => UocMode::Fetch,
            _ => return Err(SnapshotError::Corrupt { what: "uoc mode tag" }),
        })
    }

    impl Snapshot for Uoc {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::UOC);
            enc.u8(mode_to_u8(self.mode));
            enc.seq(self.blocks.len());
            for b in &self.blocks {
                enc.u64(b.start);
                enc.u64(b.branch_pc);
                enc.u32(b.uops);
                enc.u64(b.lru);
            }
            enc.u32(self.used_uops);
            enc.u32(self.build_edge);
            enc.u32(self.fetch_edge);
            enc.u32(self.build_timer);
            enc.u64(self.stamp);
            match self.cur_block_start {
                Some(pc) => {
                    enc.u8(1);
                    enc.u64(pc);
                }
                None => enc.u8(0),
            }
            enc.u32(self.cur_block_uops);
            enc.u64(self.stats.filter_blocks);
            enc.u64(self.stats.build_blocks);
            enc.u64(self.stats.fetch_blocks);
            enc.u64(self.stats.uops_supplied);
            enc.u64(self.stats.builds);
            enc.u64(self.stats.evictions);
            enc.u64(self.stats.promotions);
            enc.u64(self.stats.demotions);
            enc.u64(self.stats.squashed_builds);
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::UOC)?;
            self.mode = mode_from_u8(dec.u8()?)?;
            let n = dec.seq(28)?;
            self.blocks.clear();
            for _ in 0..n {
                self.blocks.push(UocBlock {
                    start: dec.u64()?,
                    branch_pc: dec.u64()?,
                    uops: dec.u32()?,
                    lru: dec.u64()?,
                });
            }
            self.used_uops = dec.u32()?;
            self.build_edge = dec.u32()?;
            self.fetch_edge = dec.u32()?;
            self.build_timer = dec.u32()?;
            self.stamp = dec.u64()?;
            self.cur_block_start = match dec.u8()? {
                0 => None,
                1 => Some(dec.u64()?),
                _ => return Err(SnapshotError::Corrupt { what: "uoc current-block flag" }),
            };
            self.cur_block_uops = dec.u32()?;
            self.stats.filter_blocks = dec.u64()?;
            self.stats.build_blocks = dec.u64()?;
            self.stats.fetch_blocks = dec.u64()?;
            self.stats.uops_supplied = dec.u64()?;
            self.stats.builds = dec.u64()?;
            self.stats.evictions = dec.u64()?;
            self.stats.promotions = dec.u64()?;
            self.stats.demotions = dec.u64()?;
            self.stats.squashed_builds = dec.u64()?;
            // Hints are transient lookup accelerators, never part of the
            // architectural state: reset rather than serialize.
            self.find_hint = 0;
            dec.end_section()
        }
    }
}
