//! Property tests on the micro-op cache: capacity bounds and mode-machine
//! sanity under arbitrary block streams.

use exynos_branch::ubtb::{MicroBtb, UbtbConfig};
use exynos_uoc::{Uoc, UocConfig, UocMode};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Occupancy never exceeds capacity, and FetchMode only ever supplies
    /// blocks that are genuinely resident.
    #[test]
    fn uoc_capacity_and_supply(
        blocks in prop::collection::vec((0u64..64, 1u32..16), 300),
        cap in 32u32..256,
    ) {
        let mut uoc = Uoc::new(UocConfig {
            capacity_uops: cap,
            ..UocConfig::default()
        });
        let mut ubtb = MicroBtb::new(UbtbConfig::m5());
        // Register the branches so built bits exist, and lock the µBTB.
        for _ in 0..64 {
            for b in 0..8u64 {
                let pc = 0x9000 + b * 0x100;
                let _ = ubtb.predict(pc);
                ubtb.update(pc, true, 0x9000, false, true);
            }
        }
        for (b, uops) in blocks {
            let b = b % 8;
            let start = 0x8F80 + b * 0x100;
            let branch_pc = 0x9000 + b * 0x100;
            let supplied = uoc.on_block(start, branch_pc, uops, &mut ubtb);
            prop_assert!(uoc.occupancy() <= cap, "occupancy {} > cap {cap}", uoc.occupancy());
            if supplied {
                prop_assert_eq!(uoc.mode(), UocMode::Fetch);
            }
        }
        // Mode counters are consistent with the totals.
        let s = uoc.stats();
        prop_assert_eq!(
            s.filter_blocks + s.build_blocks + s.fetch_blocks,
            300
        );
        prop_assert!(s.promotions >= s.demotions.saturating_sub(1));
    }

    /// Without a locked µBTB the UOC never leaves FilterMode and never
    /// supplies anything (the profitability filter).
    #[test]
    fn uoc_never_builds_without_lock(blocks in prop::collection::vec((0u64..4096, 1u32..12), 200)) {
        let mut uoc = Uoc::new(UocConfig::default());
        let mut ubtb = MicroBtb::new(UbtbConfig::m5());
        for (b, uops) in blocks {
            let supplied = uoc.on_block(b * 64, b * 64 + 32, uops, &mut ubtb);
            prop_assert!(!supplied);
            prop_assert_eq!(uoc.mode(), UocMode::Filter);
        }
        prop_assert_eq!(uoc.stats().builds, 0);
        prop_assert_eq!(uoc.stats().uops_supplied, 0);
    }
}
