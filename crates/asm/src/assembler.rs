//! The two-pass assembler.
//!
//! Pass 1 walks the source, strips comments, tracks the active section
//! and assigns every label a [`SymRef`] (instruction index in `.text`,
//! byte offset in `.data`), while collecting the instruction and data
//! lines for the second pass. Pass 2 parses each instruction with the
//! complete symbol table in hand, so forward references (loop heads,
//! jump tables pointing at later handlers) need no fixup list.
//!
//! Every diagnostic is a typed [`TraceError::Asm`] carrying the 1-based
//! source line; nothing in here panics on bad input.

use crate::program::{AluOp, Cond, DataCell, MemOff, Op, Operand, Program, SymRef};
use exynos_trace::TraceError;
use std::collections::HashMap;

#[derive(Clone, Copy, PartialEq)]
enum Section {
    Text,
    Data,
}

struct InstLine<'a> {
    line: u32,
    text: &'a str,
}

enum DataLine<'a> {
    /// `.word v, ...` — parsed in pass 2 (values may be label refs).
    Words { line: u32, items: Vec<&'a str> },
    /// `.space N` — already counted; emits zeroed cells.
    Space { cells: usize },
}

/// Assemble `src` into a [`Program`].
pub(crate) fn assemble(name: &str, src: &str) -> Result<Program, TraceError> {
    // --- Pass 1: sections, labels, line collection. ----------------------
    let mut section = Section::Text;
    let mut labels: HashMap<&str, SymRef> = HashMap::new();
    let mut label_order: Vec<(String, SymRef)> = Vec::new();
    let mut insts: Vec<InstLine> = Vec::new();
    let mut data_lines: Vec<DataLine> = Vec::new();
    let mut data_cells = 0usize;

    for (i, raw) in src.lines().enumerate() {
        let line = (i + 1) as u32;
        let mut rest = strip_comment(raw).trim();

        // Zero or more `label:` prefixes, then an optional statement.
        while let Some(colon) = rest.find(':') {
            let (head, tail) = rest.split_at(colon);
            let head = head.trim();
            if !is_ident(head) {
                break;
            }
            let sym = match section {
                Section::Text => SymRef::Text(insts.len()),
                Section::Data => SymRef::Data((data_cells as u64) * 8),
            };
            if labels.insert(head, sym).is_some() {
                return Err(TraceError::asm(name, line, format!("duplicate label `{head}`")));
            }
            label_order.push((head.to_string(), sym));
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }

        if let Some(directive) = rest.strip_prefix('.') {
            let (word, args) = directive
                .split_once(char::is_whitespace)
                .unwrap_or((directive, ""));
            match word {
                "text" => section = Section::Text,
                "data" => section = Section::Data,
                "word" => {
                    if section != Section::Data {
                        return Err(TraceError::asm(name, line, ".word outside .data"));
                    }
                    let items = split_operands(args);
                    if items.is_empty() || items.iter().any(|s| s.is_empty()) {
                        return Err(TraceError::asm(name, line, ".word needs values"));
                    }
                    data_cells += items.len();
                    data_lines.push(DataLine::Words { line, items });
                }
                "space" => {
                    if section != Section::Data {
                        return Err(TraceError::asm(name, line, ".space outside .data"));
                    }
                    let bytes: u64 = parse_int(args.trim())
                        .filter(|&v| v > 0)
                        .and_then(|v| u64::try_from(v).ok())
                        .ok_or_else(|| {
                            TraceError::asm(name, line, ".space needs a positive byte count")
                        })?;
                    let cells = (bytes as usize).div_ceil(8);
                    data_cells += cells;
                    data_lines.push(DataLine::Space { cells });
                }
                other => {
                    return Err(TraceError::asm(
                        name,
                        line,
                        format!("unknown directive `.{other}`"),
                    ));
                }
            }
        } else {
            if section != Section::Text {
                return Err(TraceError::asm(
                    name,
                    line,
                    format!("instruction `{rest}` in .data section"),
                ));
            }
            insts.push(InstLine { line, text: rest });
        }
    }

    if insts.is_empty() {
        return Err(TraceError::program(name, "empty .text section"));
    }

    // --- Pass 2: parse with the full symbol table. -----------------------
    let n_ops = insts.len();
    let text_target = |tok: &str, line: u32| -> Result<usize, TraceError> {
        match labels.get(tok) {
            Some(SymRef::Text(idx)) => Ok(*idx),
            Some(SymRef::Data(_)) => Err(TraceError::asm(
                name,
                line,
                format!("branch target `{tok}` is a .data label"),
            )),
            None => Err(TraceError::asm(name, line, format!("undefined label `{tok}`"))),
        }
    };

    let mut ops = Vec::with_capacity(n_ops);
    for InstLine { line, text } in &insts {
        ops.push(parse_inst(name, *line, text, &labels, &text_target)?);
    }

    let mut data = Vec::with_capacity(data_cells);
    for dl in &data_lines {
        match dl {
            DataLine::Space { cells } => {
                data.extend(std::iter::repeat_n(DataCell::Word(0), *cells));
            }
            DataLine::Words { line, items } => {
                for item in items {
                    let cell = if let Some(v) = parse_int(item) {
                        DataCell::Word(v as u64)
                    } else {
                        match labels.get(item) {
                            Some(SymRef::Text(idx)) => DataCell::TextAddr(*idx),
                            Some(SymRef::Data(off)) => DataCell::DataAddr(*off),
                            None => {
                                return Err(TraceError::asm(
                                    name,
                                    *line,
                                    format!("undefined label `{item}` in .word"),
                                ));
                            }
                        }
                    };
                    data.push(cell);
                }
            }
        }
    }

    let entry = match labels.get("main") {
        Some(SymRef::Text(idx)) => *idx,
        Some(SymRef::Data(_)) => {
            return Err(TraceError::program(name, "`main` is a .data label"));
        }
        None => 0,
    };

    Ok(Program::from_parts(
        name.to_string(),
        ops,
        data,
        entry,
        label_order,
    ))
}

fn parse_inst(
    name: &str,
    line: u32,
    text: &str,
    labels: &HashMap<&str, SymRef>,
    text_target: &dyn Fn(&str, u32) -> Result<usize, TraceError>,
) -> Result<Op, TraceError> {
    let err = |detail: String| TraceError::asm(name, line, detail);
    let (mnemonic, rest) = text
        .split_once(char::is_whitespace)
        .unwrap_or((text, ""));
    let args = split_operands(rest);
    let arity = |n: usize| -> Result<(), TraceError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(err(format!(
                "`{mnemonic}` takes {n} operand(s), got {}",
                args.len()
            )))
        }
    };
    let reg = |tok: &str| -> Result<u8, TraceError> {
        parse_reg(tok).ok_or_else(|| err(format!("expected register, got `{tok}`")))
    };
    let operand = |tok: &str| -> Result<Operand, TraceError> {
        if let Some(r) = parse_reg(tok) {
            Ok(Operand::Reg(r))
        } else if let Some(i) = parse_imm(tok) {
            Ok(Operand::Imm(i))
        } else {
            Err(err(format!("expected register or #imm, got `{tok}`")))
        }
    };
    let mem = |tok: &str| -> Result<(u8, MemOff), TraceError> {
        parse_mem(tok).ok_or_else(|| err(format!("bad address operand `{tok}`")))
    };

    if let Some(suffix) = mnemonic.strip_prefix("b.") {
        let cond = match suffix {
            "eq" => Cond::Eq,
            "ne" => Cond::Ne,
            "lt" => Cond::Lt,
            "le" => Cond::Le,
            "gt" => Cond::Gt,
            "ge" => Cond::Ge,
            other => return Err(err(format!("unknown condition `b.{other}`"))),
        };
        arity(1)?;
        return Ok(Op::BCond {
            cond,
            target: text_target(args[0], line)?,
        });
    }

    Ok(match mnemonic {
        "mov" => {
            arity(2)?;
            Op::Mov {
                dst: reg(args[0])?,
                src: operand(args[1])?,
            }
        }
        "add" | "sub" | "and" | "orr" | "eor" | "lsl" | "lsr" | "asr" => {
            arity(3)?;
            let op = match mnemonic {
                "add" => AluOp::Add,
                "sub" => AluOp::Sub,
                "and" => AluOp::And,
                "orr" => AluOp::Orr,
                "eor" => AluOp::Eor,
                "lsl" => AluOp::Lsl,
                "lsr" => AluOp::Lsr,
                _ => AluOp::Asr,
            };
            Op::Alu {
                op,
                dst: reg(args[0])?,
                a: reg(args[1])?,
                b: operand(args[2])?,
            }
        }
        "mul" => {
            arity(3)?;
            Op::Mul {
                dst: reg(args[0])?,
                a: reg(args[1])?,
                b: reg(args[2])?,
            }
        }
        "udiv" => {
            arity(3)?;
            Op::Udiv {
                dst: reg(args[0])?,
                a: reg(args[1])?,
                b: reg(args[2])?,
            }
        }
        "cmp" => {
            arity(2)?;
            Op::Cmp {
                a: reg(args[0])?,
                b: operand(args[1])?,
            }
        }
        "adr" => {
            arity(2)?;
            let sym = labels
                .get(args[1])
                .copied()
                .ok_or_else(|| err(format!("undefined label `{}`", args[1])))?;
            Op::Adr {
                dst: reg(args[0])?,
                sym,
            }
        }
        "ldr" => {
            arity(2)?;
            let (base, off) = mem(args[1])?;
            Op::Ldr {
                dst: reg(args[0])?,
                base,
                off,
            }
        }
        "str" => {
            arity(2)?;
            let (base, off) = mem(args[1])?;
            Op::Str {
                src: reg(args[0])?,
                base,
                off,
            }
        }
        "b" => {
            arity(1)?;
            Op::B {
                target: text_target(args[0], line)?,
            }
        }
        "cbz" | "cbnz" => {
            arity(2)?;
            Op::Cbz {
                reg: reg(args[0])?,
                target: text_target(args[1], line)?,
                branch_if_nonzero: mnemonic == "cbnz",
            }
        }
        "bl" => {
            arity(1)?;
            Op::Bl {
                target: text_target(args[0], line)?,
            }
        }
        "br" => {
            arity(1)?;
            Op::Br { reg: reg(args[0])? }
        }
        "blr" => {
            arity(1)?;
            Op::Blr { reg: reg(args[0])? }
        }
        "ret" => {
            arity(0)?;
            Op::Ret
        }
        "nop" => {
            arity(0)?;
            Op::Nop
        }
        "halt" => {
            arity(0)?;
            Op::Halt
        }
        other => return Err(err(format!("unknown mnemonic `{other}`"))),
    })
}

/// Truncate `raw` at the first `;` or `//` comment marker.
fn strip_comment(raw: &str) -> &str {
    let cut = raw
        .find(';')
        .into_iter()
        .chain(raw.find("//"))
        .min()
        .unwrap_or(raw.len());
    &raw[..cut]
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Split a comma-separated operand list, treating `[...]` as atomic.
fn split_operands(s: &str) -> Vec<&str> {
    let s = s.trim();
    if s.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => depth -= 1,
            ',' if depth == 0 => {
                out.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(s[start..].trim());
    out
}

/// Parse a register token: `x0..x30`, `xzr`, `sp` (x28), `lr` (x30).
fn parse_reg(tok: &str) -> Option<u8> {
    match tok {
        "xzr" => Some(31),
        "sp" => Some(28),
        "lr" => Some(30),
        _ => tok
            .strip_prefix('x')
            .and_then(|n| n.parse::<u8>().ok())
            .filter(|&n| n <= 30),
    }
}

/// Parse a `#`-prefixed immediate.
fn parse_imm(tok: &str) -> Option<i64> {
    parse_int(tok.strip_prefix('#')?)
}

/// Parse a bare integer literal (decimal or `0x` hex, optional sign).
fn parse_int(t: &str) -> Option<i64> {
    let (neg, t) = match t.strip_prefix('-') {
        Some(r) => (true, r),
        None => (false, t),
    };
    let v = if let Some(h) = t.strip_prefix("0x") {
        i64::from_str_radix(h, 16).ok()?
    } else {
        t.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

/// Parse `[xB]`, `[xB, #imm]` or `[xB, xI]`.
fn parse_mem(tok: &str) -> Option<(u8, MemOff)> {
    let inner = tok.strip_prefix('[')?.strip_suffix(']')?;
    let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
    match parts.as_slice() {
        [b] => Some((parse_reg(b)?, MemOff::None)),
        [b, o] => {
            let base = parse_reg(b)?;
            if let Some(i) = parse_imm(o) {
                Some((base, MemOff::Imm(i)))
            } else {
                Some((base, MemOff::Reg(parse_reg(o)?)))
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_registers_and_aliases() {
        assert_eq!(parse_reg("x0"), Some(0));
        assert_eq!(parse_reg("x30"), Some(30));
        assert_eq!(parse_reg("x31"), None);
        assert_eq!(parse_reg("xzr"), Some(31));
        assert_eq!(parse_reg("sp"), Some(28));
        assert_eq!(parse_reg("lr"), Some(30));
        assert_eq!(parse_reg("w0"), None);
    }

    #[test]
    fn parses_immediates() {
        assert_eq!(parse_imm("#42"), Some(42));
        assert_eq!(parse_imm("#-8"), Some(-8));
        assert_eq!(parse_imm("#0x40"), Some(0x40));
        assert_eq!(parse_imm("42"), None);
    }

    #[test]
    fn splits_bracketed_operands() {
        assert_eq!(split_operands("x1, [x2, #8]"), vec!["x1", "[x2, #8]"]);
        assert_eq!(split_operands("x1, x2, #3"), vec!["x1", "x2", "#3"]);
        assert_eq!(split_operands(""), Vec::<&str>::new());
    }

    #[test]
    fn unknown_mnemonic_is_typed_error() {
        let e = assemble("t", "addd x1, x2, x3\n").unwrap_err();
        match e {
            TraceError::Asm { line, ref detail, .. } => {
                assert_eq!(line, 1);
                assert!(detail.contains("addd"), "{detail}");
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn undefined_label_is_reported_with_line() {
        let e = assemble("t", "main:\n  b nowhere\n").unwrap_err();
        assert!(matches!(e, TraceError::Asm { line: 2, .. }), "{e:?}");
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble("t", "a:\n  nop\na:\n  nop\n").unwrap_err();
        assert!(matches!(e, TraceError::Asm { line: 3, .. }), "{e:?}");
    }

    #[test]
    fn data_directives_build_cells() {
        let p = assemble(
            "t",
            ".data\ntab: .word 1, 0x10, handler\nbuf: .space 20\n.text\nhandler:\n  nop\n  halt\n",
        )
        .unwrap();
        assert_eq!(p.data().len(), 2 + 3 + 1);
        assert_eq!(p.data()[0], DataCell::Word(1));
        assert_eq!(p.data()[1], DataCell::Word(0x10));
        assert_eq!(p.data()[2], DataCell::TextAddr(0));
        assert_eq!(p.labels()[1], ("buf".to_string(), SymRef::Data(24)));
    }

    #[test]
    fn forward_references_resolve() {
        let p = assemble("t", "main:\n  b end\n  nop\nend:\n  halt\n").unwrap();
        assert_eq!(p.ops()[0], Op::B { target: 2 });
    }

    #[test]
    fn entry_defaults_to_first_op_and_honors_main() {
        let p = assemble("t", "  nop\n  halt\n").unwrap();
        assert_eq!(p.entry(), 0);
        let p = assemble("t", "  nop\nmain:\n  halt\n").unwrap();
        assert_eq!(p.entry(), 1);
    }

    #[test]
    fn instructions_in_data_are_rejected() {
        let e = assemble("t", ".data\n  mov x1, #0\n").unwrap_err();
        assert!(matches!(e, TraceError::Asm { .. }), "{e:?}");
    }

    #[test]
    fn empty_text_is_program_error() {
        let e = assemble("t", "; nothing\n").unwrap_err();
        assert_eq!(e.kind(), "program");
    }
}
