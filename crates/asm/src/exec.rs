//! The functional executor: runs an assembled [`Program`] and emits one
//! trace record per executed instruction.
//!
//! The executor owns the full architectural state — 31 general registers
//! plus `xzr`, the signed compare flags, and a sparse byte-addressed
//! memory — and is a [`TraceGen`]: `next_inst` executes exactly one
//! operation and returns its [`Inst`] record (PC, register operands,
//! resolved branch outcome, memory address). Determinism is structural:
//! the only inputs are the program, the address `region`, and the `seed`
//! (which lands in `x27` at reset).
//!
//! The stream never exhausts. `halt`, running off the end of `.text`, or
//! an indirect transfer outside the code window all emit one
//! unconditional branch back to the entry PC and reset the architectural
//! state (registers, flags, and the memory image), making the stream
//! periodic — the restart semantics required by
//! [`exynos_trace::source::TraceSource`]. An optional `restart_after`
//! bound forces that reset after a fixed number of emitted records, for
//! programs that would otherwise run a single unbounded pass.

use crate::program::{AluOp, Cond, DataCell, MemOff, Op, Operand, Program, SymRef};
use exynos_trace::gen::{CodeLayout, DataLayout};
use exynos_trace::{BranchInfo, BranchKind, Inst, InstKind, MemRef, Reg, TraceError, TraceGen};
use std::collections::HashMap;
use std::sync::Arc;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
/// Stack top, as an offset above the region's data window base. The data
/// image sits at the base; 128 MiB of headroom keeps them disjoint.
const STACK_OFFSET: u64 = 0x0800_0000;

/// Sparse byte-addressed memory backed by 4 KiB pages.
#[derive(Debug, Default)]
struct PageMem {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl PageMem {
    fn clear(&mut self) {
        self.pages.clear();
    }

    fn read_u64(&self, addr: u64) -> u64 {
        let off = (addr & (PAGE_SIZE as u64 - 1)) as usize;
        if off + 8 <= PAGE_SIZE {
            match self.pages.get(&(addr >> PAGE_SHIFT)) {
                Some(page) => {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&page[off..off + 8]);
                    u64::from_le_bytes(b)
                }
                None => 0,
            }
        } else {
            let mut b = [0u8; 8];
            for (i, slot) in b.iter_mut().enumerate() {
                let a = addr.wrapping_add(i as u64);
                *slot = match self.pages.get(&(a >> PAGE_SHIFT)) {
                    Some(page) => page[(a & (PAGE_SIZE as u64 - 1)) as usize],
                    None => 0,
                };
            }
            u64::from_le_bytes(b)
        }
    }

    fn write_u64(&mut self, addr: u64, val: u64) {
        let bytes = val.to_le_bytes();
        let off = (addr & (PAGE_SIZE as u64 - 1)) as usize;
        if off + 8 <= PAGE_SIZE {
            let page = self
                .pages
                .entry(addr >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            page[off..off + 8].copy_from_slice(&bytes);
        } else {
            for (i, byte) in bytes.iter().enumerate() {
                let a = addr.wrapping_add(i as u64);
                let page = self
                    .pages
                    .entry(a >> PAGE_SHIFT)
                    .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
                page[(a & (PAGE_SIZE as u64 - 1)) as usize] = *byte;
            }
        }
    }
}

/// Executes an assembled program as an infinite, deterministic
/// [`TraceGen`]. See the [module docs](self).
#[derive(Debug)]
pub struct Executor {
    prog: Arc<Program>,
    code_base: u64,
    data_base: u64,
    seed: u64,
    restart_after: Option<u64>,

    regs: [u64; 32],
    /// Operands of the last `cmp` (signed comparisons use them as i64).
    cmp: (u64, u64),
    /// First operand register of the last `cmp`, for branch dataflow.
    cmp_src: Option<Reg>,
    mem: PageMem,
    /// Next instruction index; may transiently equal `ops.len()` (the
    /// off-the-end slot, which emits the restart branch).
    cursor: usize,
    /// Records emitted in the current pass.
    pass_steps: u64,
    /// Completed passes (restarts).
    passes: u64,
}

impl Executor {
    /// Build an executor for `prog` in address `region` with `seed`.
    pub fn new(prog: Arc<Program>, region: u64, seed: u64) -> Result<Executor, TraceError> {
        if prog.ops().is_empty() {
            return Err(TraceError::program(prog.name(), "empty .text section"));
        }
        let mut code = CodeLayout::region(region);
        let code_base = code.alloc_block(prog.ops().len() as u64);
        let data_base = DataLayout::region(region).base();
        let mut ex = Executor {
            prog,
            code_base,
            data_base,
            seed,
            restart_after: None,
            regs: [0; 32],
            cmp: (0, 0),
            cmp_src: None,
            mem: PageMem::default(),
            cursor: 0,
            pass_steps: 0,
            passes: 0,
        };
        ex.reset();
        Ok(ex)
    }

    /// Force a restart after `n` emitted records even if the program has
    /// not halted (`None` disables the bound). The forced restart emits
    /// the same branch-to-entry record as `halt`.
    pub fn set_restart_after(&mut self, n: Option<u64>) {
        self.restart_after = n;
    }

    /// Completed passes (restarts) so far.
    pub fn passes(&self) -> u64 {
        self.passes
    }

    /// The PC of the program's entry point.
    pub fn entry_pc(&self) -> u64 {
        self.pc_of(self.prog.entry())
    }

    fn pc_of(&self, idx: usize) -> u64 {
        self.code_base + 4 * idx as u64
    }

    /// Reset architectural state to the post-load image: zero registers,
    /// `sp` at the stack top, `x27` seeded, `.data` re-materialized.
    fn reset(&mut self) {
        self.regs = [0; 32];
        self.regs[28] = self.data_base + STACK_OFFSET;
        self.regs[27] = splitmix(self.seed) | 1;
        self.cmp = (0, 0);
        self.cmp_src = None;
        self.mem.clear();
        for (i, cell) in self.prog.data().iter().enumerate() {
            let addr = self.data_base + 8 * i as u64;
            let val = match *cell {
                DataCell::Word(w) => w,
                DataCell::TextAddr(idx) => self.pc_of(idx),
                DataCell::DataAddr(off) => self.data_base + off,
            };
            self.mem.write_u64(addr, val);
        }
        self.cursor = self.prog.entry();
        self.pass_steps = 0;
    }

    fn read(&self, r: u8) -> u64 {
        if r == 31 {
            0
        } else {
            self.regs[r as usize]
        }
    }

    fn write(&mut self, r: u8, v: u64) {
        if r != 31 {
            self.regs[r as usize] = v;
        }
    }

    fn operand_val(&self, o: Operand) -> u64 {
        match o {
            Operand::Reg(r) => self.read(r),
            Operand::Imm(i) => i as u64,
        }
    }

    /// Source-register slot for dataflow tracking (`xzr` → no dep).
    fn src(r: u8) -> Option<Reg> {
        if r == 31 {
            None
        } else {
            Some(Reg::int(r))
        }
    }

    fn operand_src(o: Operand) -> Option<Reg> {
        match o {
            Operand::Reg(r) => Self::src(r),
            Operand::Imm(_) => None,
        }
    }

    fn dst(r: u8) -> Option<Reg> {
        if r == 31 {
            None
        } else {
            Some(Reg::int(r))
        }
    }

    fn eval_cond(&self, cond: Cond) -> bool {
        let (a, b) = (self.cmp.0 as i64, self.cmp.1 as i64);
        match cond {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
            Cond::Ge => a >= b,
        }
    }

    /// Whether `target` is a valid PC to transfer to: any instruction
    /// slot, or the off-the-end slot (which restarts).
    fn target_index(&self, target: u64) -> Option<usize> {
        if target < self.code_base || !target.is_multiple_of(4) {
            return None;
        }
        let idx = ((target - self.code_base) / 4) as usize;
        (idx <= self.prog.ops().len()).then_some(idx)
    }

    /// Emit the restart record: an unconditional branch from `pc` back to
    /// the entry point, then reset all architectural state.
    fn restart(&mut self, pc: u64, kind: BranchKind, srcs: [Option<Reg>; 2]) -> Inst {
        let entry = self.entry_pc();
        self.passes += 1;
        self.reset();
        Inst::branch(
            pc,
            BranchInfo {
                kind,
                taken: true,
                target: entry,
            },
            srcs,
        )
    }

    /// Transfer control through a register-supplied target. Valid targets
    /// jump there; anything outside the code window restarts the program
    /// (the emitted record's target is then the entry PC, keeping the
    /// stream self-consistent).
    fn indirect(&mut self, pc: u64, kind: BranchKind, target: u64, srcs: [Option<Reg>; 2]) -> Inst {
        match self.target_index(target) {
            Some(idx) => {
                self.cursor = idx;
                Inst::branch(
                    pc,
                    BranchInfo {
                        kind,
                        taken: true,
                        target,
                    },
                    srcs,
                )
            }
            None => self.restart(pc, kind, srcs),
        }
    }
}

impl TraceGen for Executor {
    fn next_inst(&mut self) -> Inst {
        let idx = self.cursor;
        let pc = self.pc_of(idx);

        // Off the end of .text, or past the per-pass budget: restart.
        if idx >= self.prog.ops().len() {
            return self.restart(pc, BranchKind::UncondDirect, [None, None]);
        }
        if let Some(bound) = self.restart_after {
            if self.pass_steps >= bound {
                return self.restart(pc, BranchKind::UncondDirect, [None, None]);
            }
        }
        self.pass_steps += 1;

        let op = self.prog.ops()[idx];
        self.cursor = idx + 1;
        match op {
            Op::Mov { dst, src } => {
                let v = self.operand_val(src);
                self.write(dst, v);
                Inst {
                    pc,
                    kind: InstKind::IntAlu,
                    srcs: [Self::operand_src(src), None],
                    dst: Self::dst(dst),
                    mem: None,
                    branch: None,
                }
            }
            Op::Alu { op, dst, a, b } => {
                let x = self.read(a);
                let y = self.operand_val(b);
                let v = match op {
                    AluOp::Add => x.wrapping_add(y),
                    AluOp::Sub => x.wrapping_sub(y),
                    AluOp::And => x & y,
                    AluOp::Orr => x | y,
                    AluOp::Eor => x ^ y,
                    AluOp::Lsl => x.wrapping_shl(y as u32 & 63),
                    AluOp::Lsr => x.wrapping_shr(y as u32 & 63),
                    AluOp::Asr => ((x as i64).wrapping_shr(y as u32 & 63)) as u64,
                };
                self.write(dst, v);
                Inst {
                    pc,
                    kind: InstKind::IntAlu,
                    srcs: [Self::src(a), Self::operand_src(b)],
                    dst: Self::dst(dst),
                    mem: None,
                    branch: None,
                }
            }
            Op::Mul { dst, a, b } => {
                let v = self.read(a).wrapping_mul(self.read(b));
                self.write(dst, v);
                Inst {
                    pc,
                    kind: InstKind::IntMul,
                    srcs: [Self::src(a), Self::src(b)],
                    dst: Self::dst(dst),
                    mem: None,
                    branch: None,
                }
            }
            Op::Udiv { dst, a, b } => {
                let v = self.read(a).checked_div(self.read(b)).unwrap_or(0);
                self.write(dst, v);
                Inst {
                    pc,
                    kind: InstKind::IntDiv,
                    srcs: [Self::src(a), Self::src(b)],
                    dst: Self::dst(dst),
                    mem: None,
                    branch: None,
                }
            }
            Op::Cmp { a, b } => {
                self.cmp = (self.read(a), self.operand_val(b));
                self.cmp_src = Self::src(a);
                Inst {
                    pc,
                    kind: InstKind::IntAlu,
                    srcs: [Self::src(a), Self::operand_src(b)],
                    dst: None,
                    mem: None,
                    branch: None,
                }
            }
            Op::Adr { dst, sym } => {
                let v = match sym {
                    SymRef::Text(i) => self.pc_of(i),
                    SymRef::Data(off) => self.data_base + off,
                };
                self.write(dst, v);
                Inst {
                    pc,
                    kind: InstKind::IntAlu,
                    srcs: [None, None],
                    dst: Self::dst(dst),
                    mem: None,
                    branch: None,
                }
            }
            Op::Ldr { dst, base, off } => {
                let vaddr = self.mem_addr(base, off);
                let v = self.mem.read_u64(vaddr);
                self.write(dst, v);
                Inst {
                    pc,
                    kind: InstKind::Load,
                    srcs: [Self::src(base), Self::mem_index_src(off)],
                    dst: Self::dst(dst),
                    mem: Some(MemRef { vaddr, size: 8 }),
                    branch: None,
                }
            }
            Op::Str { src, base, off } => {
                let vaddr = self.mem_addr(base, off);
                let v = self.read(src);
                self.mem.write_u64(vaddr, v);
                Inst {
                    pc,
                    kind: InstKind::Store,
                    srcs: [Self::src(src), Self::src(base)],
                    dst: None,
                    mem: Some(MemRef { vaddr, size: 8 }),
                    branch: None,
                }
            }
            Op::B { target } => {
                self.cursor = target;
                Inst::branch(
                    pc,
                    BranchInfo {
                        kind: BranchKind::UncondDirect,
                        taken: true,
                        target: self.pc_of(target),
                    },
                    [None, None],
                )
            }
            Op::BCond { cond, target } => {
                let taken = self.eval_cond(cond);
                if taken {
                    self.cursor = target;
                }
                Inst::branch(
                    pc,
                    BranchInfo {
                        kind: BranchKind::CondDirect,
                        taken,
                        target: self.pc_of(target),
                    },
                    [self.cmp_src, None],
                )
            }
            Op::Cbz {
                reg,
                target,
                branch_if_nonzero,
            } => {
                let taken = (self.read(reg) != 0) == branch_if_nonzero;
                if taken {
                    self.cursor = target;
                }
                Inst::branch(
                    pc,
                    BranchInfo {
                        kind: BranchKind::CondDirect,
                        taken,
                        target: self.pc_of(target),
                    },
                    [Self::src(reg), None],
                )
            }
            Op::Bl { target } => {
                self.write(30, pc + 4);
                self.cursor = target;
                Inst::branch(
                    pc,
                    BranchInfo {
                        kind: BranchKind::DirectCall,
                        taken: true,
                        target: self.pc_of(target),
                    },
                    [None, None],
                )
            }
            Op::Br { reg } => {
                let t = self.read(reg);
                self.indirect(pc, BranchKind::IndirectJump, t, [Self::src(reg), None])
            }
            Op::Blr { reg } => {
                let t = self.read(reg);
                self.write(30, pc + 4);
                self.indirect(pc, BranchKind::IndirectCall, t, [Self::src(reg), None])
            }
            Op::Ret => {
                let t = self.read(30);
                self.indirect(pc, BranchKind::Return, t, [Self::src(30), None])
            }
            Op::Nop => Inst {
                pc,
                kind: InstKind::Nop,
                srcs: [None, None],
                dst: None,
                mem: None,
                branch: None,
            },
            Op::Halt => self.restart(pc, BranchKind::UncondDirect, [None, None]),
        }
    }
}

impl Executor {
    fn mem_addr(&self, base: u8, off: MemOff) -> u64 {
        let b = self.read(base);
        match off {
            MemOff::None => b,
            MemOff::Imm(i) => b.wrapping_add(i as u64),
            MemOff::Reg(r) => b.wrapping_add(self.read(r)),
        }
    }

    fn mem_index_src(off: MemOff) -> Option<Reg> {
        match off {
            MemOff::Reg(r) => Self::src(r),
            _ => None,
        }
    }
}

/// SplitMix64 finalizer: decorrelates nearby seeds before they land in
/// `x27`.
fn splitmix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec(src: &str) -> Executor {
        let p = Program::assemble("t", src).unwrap();
        Executor::new(Arc::new(p), 0, 7).unwrap()
    }

    #[test]
    fn loop_emits_taken_then_fallthrough() {
        let mut e = exec("main:\n  mov x1, #0\nloop:\n  add x1, x1, #1\n  cmp x1, #3\n  b.lt loop\n  halt\n");
        let mut outcomes = Vec::new();
        for _ in 0..10 {
            let i = e.next_inst();
            if let Some(b) = i.branch {
                if b.kind == BranchKind::CondDirect {
                    outcomes.push(b.taken);
                }
            }
        }
        assert_eq!(outcomes, vec![true, true, false]);
    }

    #[test]
    fn halt_restarts_at_entry() {
        let mut e = exec("main:\n  mov x1, #1\n  halt\n");
        let a = e.next_inst();
        let h = e.next_inst();
        let b = e.next_inst();
        assert_eq!(h.branch.map(|b| b.kind), Some(BranchKind::UncondDirect));
        assert_eq!(h.branch.map(|b| b.target), Some(a.pc));
        assert_eq!(b.pc, a.pc);
        assert_eq!(e.passes(), 1);
    }

    #[test]
    fn call_and_ret_balance() {
        let mut e = exec("main:\n  bl f\n  halt\nf:\n  ret\n");
        let call = e.next_inst();
        let ret = e.next_inst();
        let halt = e.next_inst();
        assert_eq!(call.branch.map(|b| b.kind), Some(BranchKind::DirectCall));
        assert_eq!(ret.branch.map(|b| b.kind), Some(BranchKind::Return));
        assert_eq!(ret.branch.map(|b| b.target), Some(call.pc + 4));
        assert_eq!(halt.pc, call.pc + 4);
    }

    #[test]
    fn memory_round_trips() {
        let mut e = exec(
            ".data\nbuf: .space 64\n.text\nmain:\n  adr x1, buf\n  mov x2, #0xab\n  str x2, [x1, #8]\n  ldr x3, [x1, #8]\n  halt\n",
        );
        for _ in 0..4 {
            let _ = e.next_inst();
        }
        assert_eq!(e.regs[3], 0xab);
    }

    #[test]
    fn jump_table_dispatch_is_indirect() {
        let mut e = exec(
            ".data\ntab: .word f\n.text\nmain:\n  adr x1, tab\n  ldr x2, [x1]\n  br x2\nf:\n  halt\n",
        );
        let _ = e.next_inst();
        let _ = e.next_inst();
        let br = e.next_inst();
        assert_eq!(br.branch.map(|b| b.kind), Some(BranchKind::IndirectJump));
        let halt = e.next_inst();
        assert_eq!(Some(halt.pc), br.branch.map(|b| b.target));
    }

    #[test]
    fn wild_indirect_restarts() {
        let mut e = exec("main:\n  mov x1, #0x10\n  br x1\n  nop\n");
        let _ = e.next_inst();
        let br = e.next_inst();
        assert_eq!(br.branch.map(|b| b.taken), Some(true));
        assert_eq!(br.branch.map(|b| b.target), Some(e.entry_pc()));
        assert_eq!(e.passes(), 1);
    }

    #[test]
    fn falling_off_the_end_restarts() {
        let mut e = exec("main:\n  nop\n");
        let _ = e.next_inst();
        let wrap = e.next_inst();
        assert_eq!(wrap.branch.map(|b| b.target), Some(e.entry_pc()));
        assert_eq!(wrap.pc, e.entry_pc() + 4);
    }

    #[test]
    fn restart_after_bounds_a_pass() {
        let mut e = exec("main:\nloop:\n  add x1, x1, #1\n  b loop\n");
        e.set_restart_after(Some(10));
        for _ in 0..24 {
            let _ = e.next_inst();
        }
        assert!(e.passes() >= 2, "bounded passes: {}", e.passes());
    }

    #[test]
    fn same_seed_is_bit_identical_and_seeds_differ() {
        let src = "main:\n  mov x1, x27\n  and x1, x1, #7\n  cbz x1, a\na:\n  halt\n";
        let p = Arc::new(Program::assemble("t", src).unwrap());
        let mut a = Executor::new(p.clone(), 2, 5).unwrap();
        let mut b = Executor::new(p.clone(), 2, 5).unwrap();
        for _ in 0..50 {
            assert_eq!(a.next_inst(), b.next_inst());
        }
        let mut c = Executor::new(p, 2, 6).unwrap();
        let x: Vec<u64> = (0..4).map(|_| c.next_inst().pc).collect();
        assert_eq!(x.len(), 4);
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let mut e = exec("main:\n  mov x1, #9\n  udiv x2, x1, xzr\n  halt\n");
        let _ = e.next_inst();
        let _ = e.next_inst();
        assert_eq!(e.regs[2], 0);
    }

    #[test]
    fn pcs_live_in_the_region_code_window() {
        let p = Arc::new(Program::assemble("t", "main:\n  nop\n  halt\n").unwrap());
        let mut e = Executor::new(p, 3, 1).unwrap();
        let pc = e.next_inst().pc;
        assert!(pc >= 0x0000_4000_0000 + 3 * 0x1000_0000);
        assert!(pc < 0x0000_4000_0000 + 4 * 0x1000_0000);
    }
}
