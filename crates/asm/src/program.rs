//! The assembled-program IR: decoded operations, the initial data image,
//! and symbol information for disassembly.

use exynos_trace::TraceError;

/// A register-or-immediate operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Architectural integer register `x0..x30` / `xzr` (31).
    Reg(u8),
    /// A signed 64-bit immediate.
    Imm(i64),
}

/// Two-operand ALU operation selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// Wrapping add.
    Add,
    /// Wrapping subtract.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Orr,
    /// Bitwise xor.
    Eor,
    /// Logical shift left (amount masked to 63).
    Lsl,
    /// Logical shift right.
    Lsr,
    /// Arithmetic shift right.
    Asr,
}

impl AluOp {
    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Orr => "orr",
            AluOp::Eor => "eor",
            AluOp::Lsl => "lsl",
            AluOp::Lsr => "lsr",
            AluOp::Asr => "asr",
        }
    }
}

/// Condition codes evaluated against the last `cmp` (signed compare).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl Cond {
    /// Condition suffix as written after `b.`.
    pub fn suffix(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
        }
    }
}

/// Addressing-mode offset of a load/store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOff {
    /// `[xB]`.
    None,
    /// `[xB, #imm]`.
    Imm(i64),
    /// `[xB, xI]`.
    Reg(u8),
}

/// A resolved symbol reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymRef {
    /// Instruction index into `.text`.
    Text(usize),
    /// Byte offset into the `.data` image.
    Data(u64),
}

/// One 8-byte cell of the initial data image. Cells holding label
/// references are resolved to absolute addresses when the executor lays
/// the program into a concrete address region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataCell {
    /// A literal 64-bit word.
    Word(u64),
    /// The absolute address of a `.text` label (jump-table entry).
    TextAddr(usize),
    /// The absolute address of a `.data` label.
    DataAddr(u64),
}

/// One decoded operation of the program's `.text` section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `mov xD, src`.
    Mov {
        /// Destination register.
        dst: u8,
        /// Source register or immediate.
        src: Operand,
    },
    /// `op xD, xA, b`.
    Alu {
        /// Operation selector.
        op: AluOp,
        /// Destination register.
        dst: u8,
        /// First source register.
        a: u8,
        /// Second source (register or immediate).
        b: Operand,
    },
    /// `mul xD, xA, xB`.
    Mul {
        /// Destination register.
        dst: u8,
        /// First source.
        a: u8,
        /// Second source.
        b: u8,
    },
    /// `udiv xD, xA, xB` (division by zero yields zero).
    Udiv {
        /// Destination register.
        dst: u8,
        /// Dividend.
        a: u8,
        /// Divisor.
        b: u8,
    },
    /// `cmp xA, b` — sets the (signed) flags consumed by `b.cond`.
    Cmp {
        /// Left-hand register.
        a: u8,
        /// Right-hand register or immediate.
        b: Operand,
    },
    /// `adr xD, label` — materialize a symbol's absolute address.
    Adr {
        /// Destination register.
        dst: u8,
        /// Referenced symbol.
        sym: SymRef,
    },
    /// `ldr xD, [..]` (8-byte load).
    Ldr {
        /// Destination register.
        dst: u8,
        /// Base address register.
        base: u8,
        /// Addressing-mode offset.
        off: MemOff,
    },
    /// `str xS, [..]` (8-byte store).
    Str {
        /// Data source register.
        src: u8,
        /// Base address register.
        base: u8,
        /// Addressing-mode offset.
        off: MemOff,
    },
    /// `b label`.
    B {
        /// Target instruction index.
        target: usize,
    },
    /// `b.cond label`.
    BCond {
        /// Condition code.
        cond: Cond,
        /// Target instruction index.
        target: usize,
    },
    /// `cbz`/`cbnz xR, label`.
    Cbz {
        /// Tested register.
        reg: u8,
        /// Target instruction index.
        target: usize,
        /// `true` for `cbnz`.
        branch_if_nonzero: bool,
    },
    /// `bl label` — direct call, writes `lr`.
    Bl {
        /// Target instruction index.
        target: usize,
    },
    /// `br xR` — indirect jump.
    Br {
        /// Target-address register.
        reg: u8,
    },
    /// `blr xR` — indirect call, writes `lr`.
    Blr {
        /// Target-address register.
        reg: u8,
    },
    /// `ret` — return through `lr`.
    Ret,
    /// `nop`.
    Nop,
    /// `halt` — end of pass; the executor restarts at the entry point.
    Halt,
}

/// An assembled program: decoded `.text`, the initial `.data` image, the
/// entry point, and symbols for disassembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    name: String,
    ops: Vec<Op>,
    data: Vec<DataCell>,
    entry: usize,
    /// Symbol table (definition order), for disassembly and diagnostics.
    labels: Vec<(String, SymRef)>,
}

impl Program {
    pub(crate) fn from_parts(
        name: String,
        ops: Vec<Op>,
        data: Vec<DataCell>,
        entry: usize,
        labels: Vec<(String, SymRef)>,
    ) -> Program {
        Program {
            name,
            ops,
            data,
            entry,
            labels,
        }
    }

    /// Assemble `src` into a program. Errors carry the 1-based source
    /// line and never panic.
    pub fn assemble(name: &str, src: &str) -> Result<Program, TraceError> {
        crate::assembler::assemble(name, src)
    }

    /// The program's name (file stem or corpus key).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Decoded operations of the `.text` section.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Initial `.data` image (8-byte cells).
    pub fn data(&self) -> &[DataCell] {
        &self.data
    }

    /// Entry-point instruction index (`main`, or 0).
    pub fn entry(&self) -> usize {
        self.entry
    }

    /// Symbols in definition order.
    pub fn labels(&self) -> &[(String, SymRef)] {
        &self.labels
    }

    fn sym_name(&self, sym: SymRef) -> Option<&str> {
        self.labels
            .iter()
            .find(|(_, s)| *s == sym)
            .map(|(n, _)| n.as_str())
    }

    fn render_target(&self, idx: usize) -> String {
        match self.sym_name(SymRef::Text(idx)) {
            Some(n) => n.to_string(),
            None => format!("@{idx}"),
        }
    }

    fn render_operand(&self, o: Operand) -> String {
        match o {
            Operand::Reg(r) => reg_name(r),
            Operand::Imm(i) => format!("#{i}"),
        }
    }

    fn render_mem(&self, base: u8, off: MemOff) -> String {
        match off {
            MemOff::None => format!("[{}]", reg_name(base)),
            MemOff::Imm(i) => format!("[{}, #{}]", reg_name(base), i),
            MemOff::Reg(r) => format!("[{}, {}]", reg_name(base), reg_name(r)),
        }
    }

    /// Render one operation as assembly text.
    pub fn render_op(&self, op: &Op) -> String {
        match *op {
            Op::Mov { dst, src } => format!("mov {}, {}", reg_name(dst), self.render_operand(src)),
            Op::Alu { op, dst, a, b } => format!(
                "{} {}, {}, {}",
                op.mnemonic(),
                reg_name(dst),
                reg_name(a),
                self.render_operand(b)
            ),
            Op::Mul { dst, a, b } => {
                format!("mul {}, {}, {}", reg_name(dst), reg_name(a), reg_name(b))
            }
            Op::Udiv { dst, a, b } => {
                format!("udiv {}, {}, {}", reg_name(dst), reg_name(a), reg_name(b))
            }
            Op::Cmp { a, b } => format!("cmp {}, {}", reg_name(a), self.render_operand(b)),
            Op::Adr { dst, sym } => {
                format!("adr {}, {}", reg_name(dst), self.sym_name(sym).unwrap_or("?"))
            }
            Op::Ldr { dst, base, off } => {
                format!("ldr {}, {}", reg_name(dst), self.render_mem(base, off))
            }
            Op::Str { src, base, off } => {
                format!("str {}, {}", reg_name(src), self.render_mem(base, off))
            }
            Op::B { target } => format!("b {}", self.render_target(target)),
            Op::BCond { cond, target } => {
                format!("b.{} {}", cond.suffix(), self.render_target(target))
            }
            Op::Cbz {
                reg,
                target,
                branch_if_nonzero,
            } => format!(
                "{} {}, {}",
                if branch_if_nonzero { "cbnz" } else { "cbz" },
                reg_name(reg),
                self.render_target(target)
            ),
            Op::Bl { target } => format!("bl {}", self.render_target(target)),
            Op::Br { reg } => format!("br {}", reg_name(reg)),
            Op::Blr { reg } => format!("blr {}", reg_name(reg)),
            Op::Ret => "ret".to_string(),
            Op::Nop => "nop".to_string(),
            Op::Halt => "halt".to_string(),
        }
    }

    /// Full disassembly listing: `.text` with label lines and byte
    /// offsets, then the `.data` image.
    pub fn disasm(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("; {}\n.text\n", self.summary()));
        for (idx, op) in self.ops.iter().enumerate() {
            for (name, sym) in &self.labels {
                if *sym == SymRef::Text(idx) {
                    out.push_str(&format!("{name}:\n"));
                }
            }
            let marker = if idx == self.entry { "*" } else { " " };
            out.push_str(&format!(
                "{marker}   {:#07x}  {}\n",
                idx * 4,
                self.render_op(op)
            ));
        }
        if !self.data.is_empty() {
            out.push_str(".data\n");
            for (i, cell) in self.data.iter().enumerate() {
                let off = (i as u64) * 8;
                for (name, sym) in &self.labels {
                    if *sym == SymRef::Data(off) {
                        out.push_str(&format!("{name}:\n"));
                    }
                }
                let rendered = match cell {
                    DataCell::Word(w) => format!("{:#x}", w),
                    DataCell::TextAddr(idx) => self.render_target(*idx),
                    DataCell::DataAddr(off) => self
                        .sym_name(SymRef::Data(*off))
                        .unwrap_or("?")
                        .to_string(),
                };
                out.push_str(&format!("    {:#07x}  .word {}\n", off, rendered));
            }
        }
        out
    }

    /// One-line shape summary: op/data counts, entry, and a static
    /// breakdown of control flow and memory operations.
    pub fn summary(&self) -> String {
        let mut cond = 0usize;
        let mut uncond = 0usize;
        let mut call = 0usize;
        let mut indirect = 0usize;
        let mut ret = 0usize;
        let mut loads = 0usize;
        let mut stores = 0usize;
        for op in &self.ops {
            match op {
                Op::B { .. } => uncond += 1,
                Op::BCond { .. } | Op::Cbz { .. } => cond += 1,
                Op::Bl { .. } => call += 1,
                Op::Blr { .. } => {
                    call += 1;
                    indirect += 1;
                }
                Op::Br { .. } => indirect += 1,
                Op::Ret => ret += 1,
                Op::Ldr { .. } => loads += 1,
                Op::Str { .. } => stores += 1,
                _ => {}
            }
        }
        format!(
            "program {}: {} ops, {} data cells, entry {}; branches: {} cond, {} uncond, {} call, {} indirect, {} ret; {} loads, {} stores",
            self.name,
            self.ops.len(),
            self.data.len(),
            self.render_target(self.entry),
            cond,
            uncond,
            call,
            indirect,
            ret,
            loads,
            stores
        )
    }
}

/// Canonical register spelling (`sp`/`lr`/`xzr` aliases included).
pub(crate) fn reg_name(r: u8) -> String {
    match r {
        28 => "sp".to_string(),
        30 => "lr".to_string(),
        31 => "xzr".to_string(),
        n => format!("x{n}"),
    }
}
