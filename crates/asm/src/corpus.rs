//! The embedded program corpus and its catalog bindings.
//!
//! The repo ships ~8 hand-written kernels under `asm/` (embedded here via
//! `include_str!` so the corpus travels with the crate). Each covers a
//! behaviour the synthetic generator families cannot express natively:
//! real loop nests, recursion walking the RAS, computed-goto dispatch for
//! the indirect predictor, and history-dependent branches.
//!
//! [`AsmSource`] adapts an assembled [`Program`] to the
//! [`TraceSource`] contract, and [`corpus_slices`] packages the whole
//! corpus as [`SliceSpec`]s (suite [`SuiteKind::ProgramLike`]) ready for
//! the sweep machinery.

use crate::exec::Executor;
use crate::program::Program;
use exynos_trace::sample::SlicePlan;
use exynos_trace::suite::{SliceSpec, SuiteKind, WorkloadSpec};
use exynos_trace::{BoxedGen, FingerprintHasher, TraceError, TraceSource};
use std::sync::Arc;

/// The embedded corpus: `(name, source)` pairs, in catalog order.
pub const CORPUS: [(&str, &str); 8] = [
    ("nested_loops", include_str!("../../../asm/nested_loops.s")),
    ("fib_recursive", include_str!("../../../asm/fib_recursive.s")),
    ("computed_goto", include_str!("../../../asm/computed_goto.s")),
    ("pointer_chase", include_str!("../../../asm/pointer_chase.s")),
    ("stride_copy", include_str!("../../../asm/stride_copy.s")),
    ("parity_history", include_str!("../../../asm/parity_history.s")),
    ("call_tree", include_str!("../../../asm/call_tree.s")),
    ("matrix", include_str!("../../../asm/matrix.s")),
];

/// Look up a corpus program's source text by name.
pub fn corpus_source(name: &str) -> Option<&'static str> {
    CORPUS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, src)| *src)
}

/// Assemble a corpus program by name.
pub fn corpus_program(name: &str) -> Result<Program, TraceError> {
    let src = corpus_source(name).ok_or_else(|| {
        TraceError::program(
            name,
            format!(
                "not in the corpus (available: {})",
                CORPUS.map(|(n, _)| n).join(", ")
            ),
        )
    })?;
    Program::assemble(name, src)
}

/// A [`TraceSource`] backed by an assembled program.
///
/// Assembly happens once, up front (and fallibly); building a generator
/// from the shared [`Program`] afterwards cannot fail except on an empty
/// text section, which assembly already rejects.
#[derive(Debug, Clone)]
pub struct AsmSource {
    prog: Arc<Program>,
    restart_after: Option<u64>,
}

impl AsmSource {
    /// Wrap an assembled program.
    pub fn new(prog: Program) -> AsmSource {
        AsmSource {
            prog: Arc::new(prog),
            restart_after: None,
        }
    }

    /// Assemble `src` and wrap it.
    pub fn assemble(name: &str, src: &str) -> Result<AsmSource, TraceError> {
        Ok(AsmSource::new(Program::assemble(name, src)?))
    }

    /// Bound each pass to `n` emitted records (see
    /// [`Executor::set_restart_after`]).
    pub fn with_restart_after(mut self, n: Option<u64>) -> AsmSource {
        self.restart_after = n;
        self
    }

    /// The underlying program.
    pub fn program(&self) -> &Program {
        &self.prog
    }
}

impl TraceSource for AsmSource {
    fn label(&self) -> &str {
        self.prog.name()
    }

    fn build(&self, region: u64, seed: u64) -> Result<BoxedGen, TraceError> {
        let mut ex = Executor::new(self.prog.clone(), region, seed)?;
        ex.set_restart_after(self.restart_after);
        Ok(Box::new(ex))
    }

    /// Hash the assembled *content*, not the program name: two sources
    /// that reuse a file name for different programs must not collide in
    /// the chunk cache, and identical programs under different names may
    /// legitimately share chunks.
    fn fingerprint_into(&self, h: &mut FingerprintHasher) {
        h.write_str("asm");
        h.write_u64(self.prog.entry() as u64);
        h.write_u64(self.prog.ops().len() as u64);
        for op in self.prog.ops() {
            h.write_str(&self.prog.render_op(op));
        }
        h.write_u64(self.prog.data().len() as u64);
        for cell in self.prog.data() {
            h.write_str(&format!("{cell:?}"));
        }
        match self.restart_after {
            None => h.write_bool(false),
            Some(n) => {
                h.write_bool(true);
                h.write_u64(n);
            }
        }
    }
}

/// Package the whole corpus as catalog slices.
///
/// Slice names are `program/<name>`, suites are
/// [`SuiteKind::ProgramLike`], and regions start at `base_region`
/// (stepping by 16, matching the synthetic catalog's spacing — pass a
/// base above the synthetic population's regions when mixing).
pub fn corpus_slices(plan: SlicePlan, base_region: u64) -> Result<Vec<SliceSpec>, TraceError> {
    let mut slices = Vec::with_capacity(CORPUS.len());
    for (i, (name, src)) in CORPUS.iter().enumerate() {
        let source = AsmSource::assemble(name, src)?;
        slices.push(SliceSpec {
            name: format!("program/{name}"),
            suite: SuiteKind::ProgramLike,
            spec: WorkloadSpec::Program(Arc::new(source)),
            seed: 0xA500 + i as u64,
            region: base_region + (i as u64) * 16,
            plan,
        });
    }
    Ok(slices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exynos_trace::TraceGen;

    #[test]
    fn whole_corpus_assembles() {
        for (name, _) in CORPUS {
            let p = corpus_program(name).unwrap();
            assert!(!p.ops().is_empty(), "{name}");
            assert!(!p.disasm().is_empty(), "{name}");
        }
    }

    #[test]
    fn corpus_slices_build_and_stream() {
        let slices = corpus_slices(SlicePlan::default(), 1000).unwrap();
        assert_eq!(slices.len(), CORPUS.len());
        for s in &slices {
            assert!(s.name.starts_with("program/"), "{}", s.name);
            assert_eq!(s.suite.label(), "program");
            let mut g = s.build().unwrap();
            for _ in 0..2_000 {
                let _ = g.next_inst();
            }
        }
    }

    #[test]
    fn unknown_corpus_name_is_typed() {
        let e = corpus_program("nope").unwrap_err();
        assert_eq!(e.kind(), "program");
    }

    #[test]
    fn corpus_regions_do_not_collide() {
        let slices = corpus_slices(SlicePlan::default(), 0).unwrap();
        let mut regions: Vec<u64> = slices.iter().map(|s| s.region).collect();
        regions.sort_unstable();
        regions.dedup();
        assert_eq!(regions.len(), slices.len());
    }

    #[test]
    fn fingerprint_tracks_content_not_name() {
        let fp = |s: &AsmSource| {
            let mut h = FingerprintHasher::new();
            s.fingerprint_into(&mut h);
            h.finish()
        };
        let src = corpus_source("nested_loops").unwrap();
        let a = AsmSource::assemble("nested_loops", src).unwrap();
        let renamed = AsmSource::assemble("other_name", src).unwrap();
        assert_eq!(fp(&a), fp(&renamed), "name must not affect the content digest");
        let other = AsmSource::assemble("nested_loops", corpus_source("matrix").unwrap()).unwrap();
        assert_ne!(fp(&a), fp(&other), "same name, different program must differ");
        let bounded = a.clone().with_restart_after(Some(4_000));
        assert_ne!(fp(&a), fp(&bounded), "restart bound changes the stream");
    }

    #[test]
    fn fib_walks_the_ras() {
        let slices = corpus_slices(SlicePlan::default(), 0).unwrap();
        let fib = slices
            .iter()
            .find(|s| s.name == "program/fib_recursive")
            .unwrap();
        let mut g = fib.build().unwrap();
        let mut depth = 0i64;
        let mut max_depth = 0i64;
        for _ in 0..5_000 {
            let i = g.next_inst();
            if let Some(b) = i.branch {
                if b.kind.is_call() {
                    depth += 1;
                    max_depth = max_depth.max(depth);
                }
                if b.kind.is_return() {
                    depth -= 1;
                }
            }
        }
        assert!(max_depth >= 10, "RAS depth reached: {max_depth}");
    }
}
