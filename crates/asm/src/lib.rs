//! # exynos-asm — ARM-ish assembler frontend and program-driven traces
//!
//! Every workload in the suite catalog used to be a synthetic generator.
//! This crate adds *real programs*: a two-pass assembler for a small
//! ARM-like ISA and a functional executor that runs the assembled program
//! — architectural registers, flags, a sparse byte memory — emitting one
//! [`exynos_trace::Inst`] record per executed instruction. The executor
//! implements [`exynos_trace::TraceGen`], so an assembled program plugs
//! into everything the synthetic generators do: slicing, the batched
//! lockstep engine, warm pools, and the sweep service.
//!
//! ## The ISA
//!
//! Registers `x0..x30` plus `xzr` (always-zero, register 31) and the
//! aliases `sp` (= `x28`, initialized to a per-region stack top) and `lr`
//! (= `x30`, the link register written by `bl`/`blr`). `x27` is loaded
//! with a seed-derived odd value at reset so programs can vary per seed.
//!
//! | group        | mnemonics |
//! |--------------|-----------|
//! | moves        | `mov xD, xS` / `mov xD, #imm` / `adr xD, label` |
//! | ALU          | `add sub and orr eor lsl lsr asr xD, xA, (xB\|#imm)` |
//! | mul/div      | `mul xD, xA, xB` / `udiv xD, xA, xB` (÷0 → 0) |
//! | compare      | `cmp xA, (xB\|#imm)` (signed flags) |
//! | memory       | `ldr`/`str xR, [xB]`, `[xB, #imm]`, `[xB, xI]` (8 B) |
//! | branches     | `b`, `b.eq/ne/lt/le/gt/ge`, `cbz`/`cbnz xR, label` |
//! | calls        | `bl label`, `blr xR`, `br xR`, `ret` |
//! | misc         | `nop`, `halt` |
//!
//! Directives: `.text` / `.data` switch sections, `label:` defines a
//! symbol, `.word v, ...` emits 8-byte cells (integer literals or label
//! references — text labels resolve to code addresses, enabling jump
//! tables), `.space N` reserves N zeroed bytes. Comments run from `;` or
//! `//` to end of line. Execution starts at the `main` label (or the
//! first instruction when absent).
//!
//! ## Restart semantics
//!
//! Trace generators never exhaust. When a program executes `halt`, runs
//! off the end of `.text`, or takes an indirect transfer to an address
//! outside its code window, the executor emits one unconditional branch
//! back to the entry point and resets all architectural state (registers,
//! flags, memory image) — the stream is infinite and periodic. See
//! [`exynos_trace::source`] for the full `TraceSource` contract.
//!
//! ## Example
//!
//! ```
//! use exynos_asm::Program;
//! use exynos_trace::TraceGen;
//!
//! let prog = Program::assemble(
//!     "count",
//!     "main:\n  mov x1, #0\nloop:\n  add x1, x1, #1\n  cmp x1, #4\n  b.lt loop\n  halt\n",
//! )
//! .unwrap();
//! let mut gen = exynos_asm::Executor::new(std::sync::Arc::new(prog), 0, 1).unwrap();
//! let first = gen.next_inst();
//! let second = gen.next_inst();
//! assert_eq!(first.fallthrough(), second.pc);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod assembler;
pub mod corpus;
mod exec;
mod program;

pub use corpus::{corpus_program, corpus_slices, corpus_source, AsmSource, CORPUS};
pub use exec::Executor;
pub use program::{AluOp, Cond, DataCell, MemOff, Op, Operand, Program, SymRef};
