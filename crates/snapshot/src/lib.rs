//! # exynos-snapshot — versioned binary state snapshots
//!
//! Dependency-free checkpoint/resume encoding for every stateful
//! component of the simulator. The format is deterministic (the same
//! machine state always encodes to the same bytes), little-endian,
//! length-prefixed, and versioned:
//!
//! ```text
//! header:   magic u32 ("EXYS") | format version u16 | meta u16
//! body:     section*
//! section:  tag u16 | payload length u32 | payload (may nest sections)
//! ```
//!
//! The `meta` word carries snapshot-level context (the core crate stores
//! the generation tag there). Every component writes exactly one section
//! under its registered tag from [`tags`]; composite components nest
//! their members' sections inside their own payload. Sequences are
//! `u32` count followed by the elements; optional values are a `u8`
//! presence flag followed by the payload when present.
//!
//! Decoding never panics: every read is bounds-checked against both the
//! buffer and the innermost open section, and malformed input surfaces a
//! typed [`SnapshotError`]. Configuration-derived geometry (table sizes,
//! set counts) is *not* serialized — a component restores into an
//! instance built from the same configuration, and the length checks on
//! its sequences double as geometry validation.
//!
//! Bump [`FORMAT_VERSION`] on any layout change and update the DESIGN.md
//! format table in the same commit (tier1.sh gates on the two agreeing).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::error::Error;
use std::fmt;

/// Snapshot file magic: `EXYS` read as a little-endian u32.
pub const MAGIC: u32 = 0x5359_5845;

/// Current encoder format version. Decoders accept exactly this version.
pub const FORMAT_VERSION: u16 = 1;

pub mod journal;

/// The central registry of per-component section tags. Tags are grouped
/// by crate so a hex dump localizes a decode failure to a subsystem.
pub mod tags {
    // ---- crates/branch: 0x10-0x1F ----
    /// Scaled-hashed-perceptron direction predictor.
    pub const SHP: u16 = 0x10;
    /// Global (taken/not-taken) branch history.
    pub const GLOBAL_HISTORY: u16 = 0x11;
    /// Path (target bytes) history.
    pub const PATH_HISTORY: u16 = 0x12;
    /// Main BTB hierarchy (mBTB lines + vBTB + L2 BTB).
    pub const BTB: u16 = 0x13;
    /// Return-address stack (encrypted slots + key).
    pub const RAS: u16 = 0x14;
    /// Micro-BTB with the loop lock.
    pub const UBTB: u16 = 0x15;
    /// Indirect-target predictor.
    pub const INDIRECT: u16 = 0x16;
    /// Mispredict-recovery buffer.
    pub const MRB: u16 = 0x17;
    /// Branch-confidence table.
    pub const CONFIDENCE: u16 = 0x18;
    /// Composed front end (members + fetch-stream state).
    pub const FRONTEND: u16 = 0x19;
    // ---- crates/secure: 0x20-0x2F ----
    /// Context-hash cipher key.
    pub const CONTEXT_HASH: u16 = 0x20;
    /// Entropy-source pools behind CONTEXT_HASH.
    pub const ENTROPY: u16 = 0x21;
    // ---- crates/uoc: 0x30-0x3F ----
    /// Micro-op cache and its mode machine.
    pub const UOC: u16 = 0x30;
    // ---- crates/mem: 0x40-0x4F ----
    /// One cache level (tag array + stats).
    pub const CACHE: u16 = 0x40;
    /// One TLB level.
    pub const TLB: u16 = 0x41;
    /// The composed TLB hierarchy.
    pub const TLB_HIERARCHY: u16 = 0x42;
    /// Miss-address buffers (MSHRs).
    pub const MSHR: u16 = 0x43;
    // ---- crates/prefetch: 0x50-0x5F ----
    /// Address re-order buffer + duplicate filter.
    pub const REORDER: u16 = 0x50;
    /// Prefetch degree controller.
    pub const DEGREE: u16 = 0x51;
    /// Multi-stride engine (streams + confirmation queues).
    pub const STRIDE: u16 = 0x52;
    /// Spatial-memory-streaming engine.
    pub const SMS: u16 = 0x53;
    /// Two-pass L1-fill controller.
    pub const TWOPASS: u16 = 0x54;
    /// Buddy (next-line) L2 prefetcher.
    pub const BUDDY: u16 = 0x55;
    /// Standalone L2 stride prefetcher.
    pub const STANDALONE: u16 = 0x56;
    /// Composed L1 prefetcher.
    pub const L1_PREFETCHER: u16 = 0x57;
    // ---- crates/dram: 0x60-0x6F ----
    /// One DRAM bank (open row + busy horizon).
    pub const DRAM_BANK: u16 = 0x60;
    /// The DRAM controller (banks + stats).
    pub const DRAM_CONTROLLER: u16 = 0x61;
    /// Speculative-read miss predictor.
    pub const MISS_PREDICTOR: u16 = 0x62;
    /// Snoop filter backing the miss predictor.
    pub const SNOOP_FILTER: u16 = 0x63;
    /// Speculative-read controller.
    pub const SPEC_READ: u16 = 0x64;
    // ---- crates/core: 0x70-0x7F ----
    /// Composed memory system.
    pub const MEMSYS: u16 = 0x70;
    /// Execution-port booking window.
    pub const PORTS: u16 = 0x71;
    /// Deterministic fault injector (plan + rng + counters).
    pub const FAULT_INJECTOR: u16 = 0x72;
    /// Forward-progress watchdog.
    pub const WATCHDOG: u16 = 0x73;
    /// Simulator timing state (fetch/ROB/PRF/retire).
    pub const SIM: u16 = 0x74;
    /// Cumulative simulator counters.
    pub const SIM_STATS: u16 = 0x75;
}

/// Typed decode failures. Encoding is infallible; decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with [`MAGIC`].
    BadMagic {
        /// The u32 actually found (0 when the buffer is too short).
        found: u32,
    },
    /// The format version is not the one this build writes.
    UnsupportedVersion {
        /// Version in the header.
        found: u16,
        /// Version this decoder supports.
        supported: u16,
    },
    /// A read ran past the end of the buffer.
    Truncated {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes left in the buffer.
        remaining: usize,
    },
    /// A section opened with the wrong tag.
    SectionTag {
        /// Tag the component expected.
        expected: u16,
        /// Tag found in the stream.
        found: u16,
    },
    /// A read crossed the innermost section boundary.
    SectionOverrun {
        /// Tag of the violated section.
        tag: u16,
    },
    /// A section closed with payload bytes left unread.
    SectionUnderrun {
        /// Tag of the section.
        tag: u16,
        /// Unread payload bytes.
        leftover: usize,
    },
    /// Decoded state does not fit the configured component geometry.
    Geometry {
        /// What was being restored.
        what: &'static str,
        /// Size the configured instance has.
        expected: u64,
        /// Size found in the snapshot.
        found: u64,
    },
    /// A value failed semantic validation (bad bool, unknown enum tag…).
    Corrupt {
        /// What failed to validate.
        what: &'static str,
    },
    /// Decoding finished with bytes left over.
    TrailingBytes {
        /// Leftover byte count.
        count: usize,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic { found } => {
                write!(f, "bad snapshot magic {found:#010x} (expected {MAGIC:#010x})")
            }
            SnapshotError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported snapshot format version {found} (this build reads {supported})")
            }
            SnapshotError::Truncated { needed, remaining } => {
                write!(f, "truncated snapshot: read needs {needed} bytes, {remaining} remain")
            }
            SnapshotError::SectionTag { expected, found } => {
                write!(f, "section tag mismatch: expected {expected:#06x}, found {found:#06x}")
            }
            SnapshotError::SectionOverrun { tag } => {
                write!(f, "read crossed the boundary of section {tag:#06x}")
            }
            SnapshotError::SectionUnderrun { tag, leftover } => {
                write!(f, "section {tag:#06x} closed with {leftover} payload bytes unread")
            }
            SnapshotError::Geometry { what, expected, found } => {
                write!(f, "snapshot geometry mismatch restoring {what}: configured {expected}, snapshot has {found}")
            }
            SnapshotError::Corrupt { what } => write!(f, "corrupt snapshot value: {what}"),
            SnapshotError::TrailingBytes { count } => {
                write!(f, "snapshot decoded with {count} trailing bytes")
            }
        }
    }
}

impl Error for SnapshotError {}

/// A component that can serialize its dynamic state.
///
/// `restore` runs on an instance built from the *same configuration* the
/// snapshot was taken under: configuration-derived geometry is never
/// serialized, and a component whose decoded sequences do not match its
/// configured sizes reports [`SnapshotError::Geometry`].
pub trait Snapshot {
    /// Append this component's state to `enc` as one tagged section.
    fn save(&self, enc: &mut Encoder);
    /// Overwrite this component's state from `dec`.
    fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError>;
}

/// The deterministic binary encoder. All scalars are little-endian;
/// sections are backpatched with their payload length on close.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
    /// Open sections: byte offset of each section's length word.
    open: Vec<usize>,
}

impl Encoder {
    /// An empty encoder (no header) — used for nested payloads in tests.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// An encoder primed with the snapshot header carrying `meta`.
    pub fn with_header(meta: u16) -> Encoder {
        let mut e = Encoder::default();
        e.u32(MAGIC);
        e.u16(FORMAT_VERSION);
        e.u16(meta);
        e
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the encoder. Panics in debug builds if sections are open.
    pub fn finish(self) -> Vec<u8> {
        debug_assert!(self.open.is_empty(), "unclosed snapshot section");
        self.buf
    }

    /// Open a section under `tag`; the length word is backpatched by
    /// [`Encoder::end_section`].
    pub fn begin_section(&mut self, tag: u16) {
        self.u16(tag);
        self.open.push(self.buf.len());
        self.u32(0);
    }

    /// Close the innermost open section.
    pub fn end_section(&mut self) {
        if let Some(at) = self.open.pop() {
            let len = (self.buf.len() - at - 4) as u32;
            self.buf[at..at + 4].copy_from_slice(&len.to_le_bytes());
        } else {
            debug_assert!(false, "end_section without begin_section");
        }
    }

    /// Write a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i8`.
    pub fn i8(&mut self, v: i8) {
        self.buf.push(v as u8);
    }

    /// Write an `i32`.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `bool` as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Write a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Write a sequence count (`u32`). Callers then write the elements.
    pub fn seq(&mut self, count: usize) {
        debug_assert!(count <= u32::MAX as usize, "snapshot sequence too long");
        self.u32(count as u32);
    }

    /// Write raw bytes (no length prefix).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// The bounds-checked decoder over a snapshot byte buffer.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Open sections: (tag, end offset).
    open: Vec<(u16, usize)>,
}

impl<'a> Decoder<'a> {
    /// Decode from `buf`.
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0, open: Vec::new() }
    }

    /// Validate the header (magic + version) and return the `meta` word.
    pub fn header(&mut self) -> Result<u16, SnapshotError> {
        let magic = self.u32().map_err(|_| SnapshotError::BadMagic { found: 0 })?;
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic { found: magic });
        }
        let version = self.u16()?;
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        self.u16()
    }

    /// Bytes readable before the innermost boundary (section end or
    /// buffer end).
    pub fn remaining(&self) -> usize {
        self.limit() - self.pos
    }

    fn limit(&self) -> usize {
        self.open.last().map_or(self.buf.len(), |&(_, end)| end)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let limit = self.limit();
        if self.pos + n > limit {
            if let Some(&(tag, _)) = self.open.last() {
                if self.pos + n <= self.buf.len() {
                    return Err(SnapshotError::SectionOverrun { tag });
                }
            }
            return Err(SnapshotError::Truncated {
                needed: n,
                remaining: limit - self.pos,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Open a section, asserting its tag is `tag`.
    pub fn begin_section(&mut self, tag: u16) -> Result<(), SnapshotError> {
        let found = self.u16()?;
        if found != tag {
            return Err(SnapshotError::SectionTag { expected: tag, found });
        }
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(SnapshotError::Truncated { needed: len, remaining: self.remaining() });
        }
        self.open.push((tag, self.pos + len));
        Ok(())
    }

    /// Close the innermost section, asserting its payload was consumed
    /// exactly.
    pub fn end_section(&mut self) -> Result<(), SnapshotError> {
        match self.open.pop() {
            Some((_, end)) if self.pos == end => Ok(()),
            Some((tag, end)) => Err(SnapshotError::SectionUnderrun {
                tag,
                leftover: end.saturating_sub(self.pos),
            }),
            None => Err(SnapshotError::Corrupt { what: "end_section without begin_section" }),
        }
    }

    /// Assert the whole buffer was consumed.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(SnapshotError::TrailingBytes { count: self.buf.len() - self.pos })
        }
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    /// Read an `i8`.
    pub fn i8(&mut self) -> Result<i8, SnapshotError> {
        Ok(self.u8()? as i8)
    }

    /// Read an `i32`.
    pub fn i32(&mut self) -> Result<i32, SnapshotError> {
        Ok(self.u32()? as i32)
    }

    /// Read an `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(self.u64()? as i64)
    }

    /// Read a `bool`, rejecting anything but 0 or 1.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt { what: "bool byte not 0 or 1" }),
        }
    }

    /// Read a `usize` (stored as `u64`), rejecting values that do not fit.
    pub fn usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?)
            .map_err(|_| SnapshotError::Corrupt { what: "usize overflows the host" })
    }

    /// Read a sequence count written by [`Encoder::seq`]. `elem_min`
    /// (>= 1) is the smallest possible element encoding; the count is
    /// rejected when `count * elem_min` cannot fit in the bytes left, so
    /// corrupt counts fail fast instead of driving huge allocations.
    pub fn seq(&mut self, elem_min: usize) -> Result<usize, SnapshotError> {
        let count = self.u32()? as usize;
        let need = count.saturating_mul(elem_min.max(1));
        if need > self.remaining() {
            return Err(SnapshotError::Truncated { needed: need, remaining: self.remaining() });
        }
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut e = Encoder::with_header(42);
        e.u8(7);
        e.u16(0xBEEF);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 3);
        e.i8(-5);
        e.i32(-100_000);
        e.i64(i64::MIN + 1);
        e.bool(true);
        e.bool(false);
        e.usize(12345);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.header().unwrap(), 42);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u16().unwrap(), 0xBEEF);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.i8().unwrap(), -5);
        assert_eq!(d.i32().unwrap(), -100_000);
        assert_eq!(d.i64().unwrap(), i64::MIN + 1);
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        assert_eq!(d.usize().unwrap(), 12345);
        d.finish().unwrap();
    }

    #[test]
    fn nested_sections_roundtrip() {
        let mut e = Encoder::new();
        e.begin_section(tags::FRONTEND);
        e.u64(1);
        e.begin_section(tags::RAS);
        e.u32(2);
        e.end_section();
        e.u8(3);
        e.end_section();
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        d.begin_section(tags::FRONTEND).unwrap();
        assert_eq!(d.u64().unwrap(), 1);
        d.begin_section(tags::RAS).unwrap();
        assert_eq!(d.u32().unwrap(), 2);
        d.end_section().unwrap();
        assert_eq!(d.u8().unwrap(), 3);
        d.end_section().unwrap();
        d.finish().unwrap();
    }

    #[test]
    fn bad_magic_is_typed() {
        let bytes = [1u8, 2, 3, 4, 0, 0, 0, 0];
        let mut d = Decoder::new(&bytes);
        assert!(matches!(d.header(), Err(SnapshotError::BadMagic { .. })));
    }

    #[test]
    fn wrong_version_is_typed() {
        let mut e = Encoder::new();
        e.u32(MAGIC);
        e.u16(FORMAT_VERSION + 1);
        e.u16(0);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(
            d.header(),
            Err(SnapshotError::UnsupportedVersion { found, .. }) if found == FORMAT_VERSION + 1
        ));
    }

    #[test]
    fn truncation_is_typed_everywhere() {
        let mut e = Encoder::with_header(0);
        e.begin_section(tags::SIM);
        e.u64(9);
        e.end_section();
        let bytes = e.finish();
        // Chop the buffer at every prefix length: decode must error (not
        // panic) on all of them.
        for cut in 0..bytes.len() {
            let mut d = Decoder::new(&bytes[..cut]);
            let r = d
                .header()
                .and_then(|_| d.begin_section(tags::SIM))
                .and_then(|_| d.u64().map(|_| ()))
                .and_then(|_| d.end_section());
            assert!(r.is_err(), "cut at {cut} decoded successfully");
        }
    }

    #[test]
    fn section_overrun_is_caught() {
        let mut e = Encoder::new();
        e.begin_section(tags::SHP);
        e.u16(1);
        e.end_section();
        e.u64(0xFFFF_FFFF);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        d.begin_section(tags::SHP).unwrap();
        // Reading u32 would cross the 2-byte payload boundary.
        assert!(matches!(d.u32(), Err(SnapshotError::SectionOverrun { tag }) if tag == tags::SHP));
    }

    #[test]
    fn section_underrun_is_caught() {
        let mut e = Encoder::new();
        e.begin_section(tags::SHP);
        e.u32(5);
        e.end_section();
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        d.begin_section(tags::SHP).unwrap();
        let _ = d.u16().unwrap();
        assert!(matches!(
            d.end_section(),
            Err(SnapshotError::SectionUnderrun { leftover: 2, .. })
        ));
    }

    #[test]
    fn wrong_tag_is_typed() {
        let mut e = Encoder::new();
        e.begin_section(tags::SHP);
        e.end_section();
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(
            d.begin_section(tags::BTB),
            Err(SnapshotError::SectionTag { expected, found })
                if expected == tags::BTB && found == tags::SHP
        ));
    }

    #[test]
    fn absurd_sequence_count_is_rejected_cheaply() {
        let mut e = Encoder::new();
        e.u32(u32::MAX); // claims 4 billion elements
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(d.seq(8), Err(SnapshotError::Truncated { .. })));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut e = Encoder::with_header(0);
        e.u8(1);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        let _ = d.header().unwrap();
        assert!(matches!(d.finish(), Err(SnapshotError::TrailingBytes { count: 1 })));
    }

    #[test]
    fn encoding_is_deterministic() {
        let build = || {
            let mut e = Encoder::with_header(3);
            e.begin_section(tags::UOC);
            e.u64(77);
            e.bool(true);
            e.end_section();
            e.finish()
        };
        assert_eq!(build(), build());
    }
}
