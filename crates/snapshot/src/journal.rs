//! Append-only, crash-tolerant record journal.
//!
//! The service tier's write-ahead log: every record is framed with a
//! magic, a length, and an FNV-1a-64 checksum, and the writer syncs each
//! append, so a `kill -9` mid-write leaves at most one *torn tail* frame.
//! The reader validates frames in order and stops — without failing — at
//! the first torn or corrupt tail, reporting how much clean prefix it
//! recovered. Replaying a journal over deterministic jobs therefore
//! reconstructs exactly the pre-crash state.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! u32 magic "EXJL" | u8 kind | u64 seq | u32 len | len payload bytes | u64 fnv1a(kind, seq, payload)
//! ```
//!
//! The journal is content-agnostic: `kind` and `payload` belong to the
//! layer above (the service journals job submissions and terminal
//! outcomes). `seq` is a caller-supplied monotone sequence number; the
//! reader rejects (as tail corruption) any frame whose `seq` is not
//! strictly greater than its predecessor's, which catches blocks of
//! recycled disk.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

/// Frame magic: "EXJL" little-endian.
pub const JOURNAL_MAGIC: u32 = 0x4C4A_5845;

/// FNV-1a 64-bit over `kind`, `seq` (LE bytes) and the payload.
fn fnv1a(kind: u8, seq: u64, payload: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    eat(kind);
    for b in seq.to_le_bytes() {
        eat(b);
    }
    for &b in payload {
        eat(b);
    }
    h
}

/// One clean frame recovered from a journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Caller-defined record type.
    pub kind: u8,
    /// Caller-supplied monotone sequence number.
    pub seq: u64,
    /// Record body.
    pub payload: Vec<u8>,
}

/// The clean prefix of a journal, plus whether a torn/corrupt tail was
/// discarded to obtain it.
#[derive(Debug, Clone, Default)]
pub struct JournalScan {
    /// Every validated frame, in append order.
    pub records: Vec<JournalRecord>,
    /// `true` when trailing bytes failed validation (torn final write
    /// from a crash) and were dropped.
    pub torn_tail: bool,
}

/// Journal I/O errors. Frame corruption is *not* an error — it
/// terminates the scan (see [`JournalScan::torn_tail`]); only the file
/// system can fail a journal operation.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying file-system error.
    Io(std::io::Error),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o: {e}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> JournalError {
        JournalError::Io(e)
    }
}

/// Appending side of the journal. Each [`append`](JournalWriter::append)
/// writes one complete frame and syncs file data, giving the layer above
/// write-ahead semantics: once `append` returns, the record survives a
/// crash.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
}

impl JournalWriter {
    /// Open `path` for appending, creating it if absent.
    pub fn open(path: &Path) -> Result<JournalWriter, JournalError> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JournalWriter { file })
    }

    /// Append one framed record and sync it to disk.
    pub fn append(&mut self, kind: u8, seq: u64, payload: &[u8]) -> Result<(), JournalError> {
        let mut frame = Vec::with_capacity(25 + payload.len());
        frame.extend_from_slice(&JOURNAL_MAGIC.to_le_bytes());
        frame.push(kind);
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(payload);
        frame.extend_from_slice(&fnv1a(kind, seq, payload).to_le_bytes());
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        Ok(())
    }
}

/// Scan the journal at `path`, returning its clean prefix. A missing
/// file is an empty scan, so first boot and restart share one code path.
pub fn scan(path: &Path) -> Result<JournalScan, JournalError> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(JournalScan::default()),
        Err(e) => return Err(e.into()),
    }
    Ok(scan_bytes(&bytes))
}

fn scan_bytes(bytes: &[u8]) -> JournalScan {
    let mut out = JournalScan::default();
    let mut pos = 0usize;
    let mut last_seq: Option<u64> = None;
    while pos < bytes.len() {
        let Some(rec) = parse_frame(&bytes[pos..]) else {
            out.torn_tail = true;
            break;
        };
        if last_seq.is_some_and(|prev| rec.0.seq <= prev) {
            out.torn_tail = true;
            break;
        }
        last_seq = Some(rec.0.seq);
        pos += rec.1;
        out.records.push(rec.0);
    }
    out
}

/// Parse one frame from the front of `b`; `None` on truncation or any
/// validation failure. Returns the record and its encoded size.
fn parse_frame(b: &[u8]) -> Option<(JournalRecord, usize)> {
    const HEADER: usize = 4 + 1 + 8 + 4;
    if b.len() < HEADER {
        return None;
    }
    let magic = u32::from_le_bytes(b[0..4].try_into().ok()?);
    if magic != JOURNAL_MAGIC {
        return None;
    }
    let kind = b[4];
    let seq = u64::from_le_bytes(b[5..13].try_into().ok()?);
    let len = u32::from_le_bytes(b[13..17].try_into().ok()?) as usize;
    let total = HEADER + len + 8;
    if b.len() < total {
        return None;
    }
    let payload = &b[HEADER..HEADER + len];
    let want = u64::from_le_bytes(b[HEADER + len..total].try_into().ok()?);
    if fnv1a(kind, seq, payload) != want {
        return None;
    }
    Some((JournalRecord { kind, seq, payload: payload.to_vec() }, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("exynos-journal-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trip_preserves_records_in_order() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = JournalWriter::open(&path).unwrap();
            w.append(1, 1, b"alpha").unwrap();
            w.append(2, 2, b"").unwrap();
            w.append(1, 3, &[0u8, 255, 42]).unwrap();
        }
        let s = scan(&path).unwrap();
        assert!(!s.torn_tail);
        assert_eq!(s.records.len(), 3);
        assert_eq!(s.records[0].payload, b"alpha");
        assert_eq!(s.records[1].kind, 2);
        assert_eq!(s.records[2].seq, 3);
        // Reopen appends after the existing tail.
        let mut w = JournalWriter::open(&path).unwrap();
        w.append(1, 4, b"later").unwrap();
        let s = scan(&path).unwrap();
        assert_eq!(s.records.len(), 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_scans_empty() {
        let path = tmp("absent");
        let _ = std::fs::remove_file(&path);
        let s = scan(&path).unwrap();
        assert!(s.records.is_empty() && !s.torn_tail);
    }

    #[test]
    fn torn_tail_is_dropped_and_flagged() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = JournalWriter::open(&path).unwrap();
            w.append(1, 1, b"keep-me").unwrap();
            w.append(1, 2, b"torn-victim").unwrap();
        }
        // Simulate the kill -9 mid-write: chop bytes off the last frame.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let s = scan(&path).unwrap();
        assert!(s.torn_tail, "truncated tail must be reported");
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.records[0].payload, b"keep-me");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_checksum_ends_the_scan() {
        let path = tmp("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = JournalWriter::open(&path).unwrap();
            w.append(1, 1, b"good").unwrap();
            w.append(1, 2, b"flipped").unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 12] ^= 0x40; // flip one payload bit in the second frame
        std::fs::write(&path, &bytes).unwrap();
        let s = scan(&path).unwrap();
        assert!(s.torn_tail);
        assert_eq!(s.records.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_monotone_sequence_is_rejected() {
        let path = tmp("seq");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = JournalWriter::open(&path).unwrap();
            w.append(1, 5, b"a").unwrap();
            w.append(1, 5, b"b").unwrap();
        }
        let s = scan(&path).unwrap();
        assert!(s.torn_tail);
        assert_eq!(s.records.len(), 1);
        let _ = std::fs::remove_file(&path);
    }
}
