//! The zero-bubble micro-BTB (µBTB) with its local-history hashed
//! perceptron (LHP).
//!
//! §IV.B (and the Dundas/Zuraski patent the paper cites): the µBTB is
//! graph-based — it filters for common branches with common roots
//! ("seeds"), then learns both TAKEN and NOT-TAKEN edges into a graph over
//! several iterations (Fig. 4). Difficult nodes use a local-history hashed
//! perceptron. "When a small kernel is confirmed as both fully fitting
//! within the µBTB and predictable by the µBTB, the µBTB will *lock* and
//! drive the pipe at 0 bubble throughput until a misprediction", with the
//! mBTB/SHP checking (and, at high confidence, clock-gated). After a
//! mispredict the µBTB is disabled until the next seed branch (§IV.E,
//! Fig. 6 caption).
//!
//! M3 doubled the graph size with uncond-only entries (§IV.C); M5 shrank
//! the µBTB and let ZAT/ZOT participate more (§IV.E).

/// Geometry/tuning of the µBTB.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UbtbConfig {
    /// Graph nodes usable by any branch.
    pub general_nodes: usize,
    /// Additional nodes restricted to unconditional branches (M3+).
    pub uncond_only_nodes: usize,
    /// Consecutive correct µBTB-covered predictions required to lock.
    pub lock_threshold: u32,
    /// Cycles of startup penalty when the µBTB takes over the pipe.
    pub startup_penalty: u32,
    /// LHP local-history length in bits.
    pub lhp_history: usize,
    /// LHP weight-table rows.
    pub lhp_rows: usize,
}

impl UbtbConfig {
    /// M1/M2 µBTB: 64 general nodes.
    pub fn m1() -> UbtbConfig {
        UbtbConfig {
            general_nodes: 64,
            uncond_only_nodes: 0,
            lock_threshold: 24,
            startup_penalty: 2,
            lhp_history: 10,
            lhp_rows: 256,
        }
    }

    /// M3/M4: graph doubled, but the new entries store only unconditional
    /// branches (area-efficient growth, §IV.C).
    pub fn m3() -> UbtbConfig {
        UbtbConfig {
            general_nodes: 64,
            uncond_only_nodes: 64,
            ..UbtbConfig::m1()
        }
    }

    /// M5/M6: fewer entries — ZAT/ZOT participates more (§IV.E).
    pub fn m5() -> UbtbConfig {
        UbtbConfig {
            general_nodes: 48,
            uncond_only_nodes: 32,
            ..UbtbConfig::m1()
        }
    }

    /// Total node capacity.
    pub fn total_nodes(&self) -> usize {
        self.general_nodes + self.uncond_only_nodes
    }
}

/// One learned branch node in the µBTB graph.
#[derive(Debug, Clone, Copy)]
struct Node {
    pc: u64,
    taken_target: u64,
    is_uncond: bool,
    /// Local outcome history (newest in bit 0).
    local_history: u16,
    /// Edge-learned presence bits: has each successor been observed?
    saw_taken: bool,
    saw_not_taken: bool,
    lru: u64,
    /// "Built" bit used by the micro-op cache's BuildMode (§VI).
    built: bool,
}

/// Outcome of a µBTB prediction attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UbtbPrediction {
    /// Node present; predicted direction and (if taken) target.
    Hit {
        /// Predicted direction from the LHP / edge structure.
        taken: bool,
        /// Predicted target when taken.
        target: u64,
    },
    /// Branch not in the graph.
    Miss,
}

/// Statistics for the µBTB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UbtbStats {
    /// Predictions made while locked (zero-bubble).
    pub locked_predictions: u64,
    /// Lock acquisitions.
    pub locks: u64,
    /// Locks broken by a mispredict or graph miss.
    pub unlocks: u64,
    /// Cycles the mBTB/SHP could be clock-gated (power proxy).
    pub gated_cycles: u64,
}

/// The graph-based micro-BTB.
#[derive(Debug, Clone)]
pub struct MicroBtb {
    cfg: UbtbConfig,
    nodes: Vec<Node>,
    /// LHP weight table shared across nodes: indexed by
    /// `hash(pc, local_history)`.
    lhp: Vec<i8>,
    /// Seed filter: recently seen taken-branch PCs awaiting a second
    /// occurrence before allocation.
    seed_filter: Vec<(u64, u64)>,
    stamp: u64,
    /// Consecutive correct graph-covered predictions.
    streak: u32,
    locked: bool,
    /// Disabled until the next seed after a mispredict.
    disabled: bool,
    stats: UbtbStats,
}

impl MicroBtb {
    /// Build a µBTB from `cfg`.
    ///
    /// # Panics
    /// Panics if `general_nodes` is zero or `lhp_rows` is not a power of
    /// two.
    pub fn new(cfg: UbtbConfig) -> MicroBtb {
        assert!(cfg.general_nodes > 0, "need general nodes");
        assert!(cfg.lhp_rows.is_power_of_two(), "lhp_rows must be a power of two");
        MicroBtb {
            lhp: vec![0; cfg.lhp_rows],
            nodes: Vec::with_capacity(cfg.total_nodes()),
            seed_filter: Vec::new(),
            stamp: 0,
            streak: 0,
            locked: false,
            disabled: false,
            stats: UbtbStats::default(),
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &UbtbConfig {
        &self.cfg
    }

    /// Whether the µBTB currently drives the pipe at zero bubbles.
    pub fn is_locked(&self) -> bool {
        self.locked
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> UbtbStats {
        self.stats
    }

    fn lhp_index(&self, pc: u64, hist: u16) -> usize {
        let h = (pc >> 2) as u32 ^ ((hist as u32) << 3).wrapping_mul(0x9E37_79B9);
        (h as usize ^ (h >> 13) as usize) & (self.cfg.lhp_rows - 1)
    }

    fn find(&self, pc: u64) -> Option<usize> {
        self.nodes.iter().position(|n| n.pc == pc)
    }

    /// Predict the branch at `pc` (direction + target) from the graph.
    pub fn predict(&mut self, pc: u64) -> UbtbPrediction {
        self.stamp += 1;
        let Some(i) = self.find(pc) else {
            return UbtbPrediction::Miss;
        };
        self.nodes[i].lru = self.stamp;
        let n = self.nodes[i];
        let taken = if n.is_uncond || !n.saw_not_taken {
            true
        } else if !n.saw_taken {
            false
        } else {
            // Difficult node: consult the LHP.
            let w = self.lhp[self.lhp_index(pc, n.local_history)];
            w >= 0
        };
        UbtbPrediction::Hit {
            taken,
            target: n.taken_target,
        }
    }

    /// Side-effect-free probe: what [`MicroBtb::predict`] would return
    /// for `pc`, without touching the LRU stamp or lock bookkeeping.
    /// The direction logic is identical (edge bits, then the pow2-masked
    /// LHP row for difficult nodes); only the timing-visible state is
    /// left alone, which is what batch dissection paths need.
    pub fn probe(&self, pc: u64) -> UbtbPrediction {
        let Some(i) = self.find(pc) else {
            return UbtbPrediction::Miss;
        };
        let n = self.nodes[i];
        let taken = if n.is_uncond || !n.saw_not_taken {
            true
        } else if !n.saw_taken {
            false
        } else {
            self.lhp[self.lhp_index(pc, n.local_history)] >= 0
        };
        UbtbPrediction::Hit { taken, target: n.taken_target }
    }

    /// Batched SoA probe: resolve `pc` against every member's graph,
    /// appending one [`UbtbPrediction`] per member to `out` (cleared
    /// first, member order preserved). Read-only — see
    /// [`MicroBtb::probe`].
    pub fn probe_batch(ubtbs: &[&MicroBtb], pc: u64, out: &mut Vec<UbtbPrediction>) {
        out.clear();
        out.reserve(ubtbs.len());
        out.extend(ubtbs.iter().map(|u| u.probe(pc)));
    }

    /// Record the architectural outcome of the branch at `pc`, learning
    /// graph edges, training the LHP, maintaining lock state, and (when the
    /// branch was not yet a node) passing it through the seed filter.
    ///
    /// `predicted_correctly` refers to the *overall* front-end prediction
    /// of this branch (lock policy listens to the checking predictors too).
    pub fn update(
        &mut self,
        pc: u64,
        taken: bool,
        target: u64,
        is_uncond: bool,
        predicted_correctly: bool,
    ) {
        self.stamp += 1;
        match self.find(pc) {
            Some(i) => {
                // Train the LHP before updating local history.
                let hist = self.nodes[i].local_history;
                let li = self.lhp_index(pc, hist);
                {
                    let n = &mut self.nodes[i];
                    if taken {
                        n.saw_taken = true;
                        n.taken_target = target;
                    } else {
                        n.saw_not_taken = true;
                    }
                    n.local_history = (n.local_history << 1) | taken as u16;
                    let mask = (1u16 << self.cfg.lhp_history.min(15)) - 1;
                    n.local_history &= mask;
                    n.lru = self.stamp;
                }
                let w = &mut self.lhp[li];
                let nv = (*w as i32 + if taken { 1 } else { -1 }).clamp(-31, 31);
                *w = nv as i8;
                // Lock bookkeeping. A correctly handled taken graph node
                // acts as the next "seed": it re-enables a µBTB that was
                // disabled by a mispredict (the loop's root branch re-arms
                // the graph on the next iteration).
                if predicted_correctly && taken {
                    self.disabled = false;
                }
                if predicted_correctly {
                    self.streak += 1;
                    if self.locked {
                        self.stats.locked_predictions += 1;
                        self.stats.gated_cycles += 1;
                    } else if self.streak >= self.cfg.lock_threshold && !self.disabled {
                        self.locked = true;
                        self.stats.locks += 1;
                    }
                } else {
                    self.break_lock();
                    self.disabled = true;
                }
            }
            None => {
                self.streak = 0;
                if self.locked {
                    self.break_lock();
                }
                if taken {
                    self.consider_seed(pc, target, is_uncond);
                }
            }
        }
    }

    fn break_lock(&mut self) {
        if self.locked {
            self.locked = false;
            self.stats.unlocks += 1;
        }
        self.streak = 0;
    }

    /// A taken branch missing from the graph: allocate on its second
    /// occurrence (the "filter and identify common branches" step).
    fn consider_seed(&mut self, pc: u64, target: u64, is_uncond: bool) {
        self.disabled = false; // a new seed re-enables the µBTB
        if let Some(pos) = self.seed_filter.iter().position(|&(p, _)| p == pc) {
            self.seed_filter.remove(pos);
            self.allocate(pc, target, is_uncond);
        } else {
            if self.seed_filter.len() >= 16 {
                self.seed_filter.remove(0);
            }
            self.seed_filter.push((pc, target));
        }
    }

    fn allocate(&mut self, pc: u64, target: u64, is_uncond: bool) {
        let node = Node {
            pc,
            taken_target: target,
            is_uncond,
            local_history: 0,
            saw_taken: true,
            saw_not_taken: false,
            lru: self.stamp,
            built: false,
        };
        // Capacity accounting: unconditional branches may use either pool;
        // conditionals only the general pool.
        let uncond_used = self.nodes.iter().filter(|n| n.is_uncond).count();
        let cond_used = self.nodes.len() - uncond_used;
        let fits = if is_uncond {
            self.nodes.len() < self.cfg.total_nodes()
        } else {
            cond_used < self.cfg.general_nodes
        };
        if fits {
            self.nodes.push(node);
            return;
        }
        // Evict the LRU node this class may replace.
        let victim = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| if is_uncond { true } else { !n.is_uncond || uncond_used <= self.cfg.uncond_only_nodes })
            .min_by_key(|(_, n)| n.lru)
            .map(|(i, _)| i);
        if let Some(i) = victim {
            self.nodes[i] = node;
        }
    }

    /// Whether the working set currently fits (used by the UOC FilterMode).
    pub fn occupancy(&self) -> usize {
        self.nodes.len()
    }

    /// Fraction of resident nodes with their "built" bit set — the
    /// paper's µBTB built-bit coverage metric (0.0 when empty).
    pub fn built_fraction(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        let built = self.nodes.iter().filter(|n| n.built).count();
        built as f64 / self.nodes.len() as f64
    }

    /// Read the "built" bit of the node at `pc` (UOC BuildMode support).
    pub fn built_bit(&self, pc: u64) -> Option<bool> {
        self.find(pc).map(|i| self.nodes[i].built)
    }

    /// Set the "built" bit back-propagated from the UOC.
    pub fn set_built(&mut self, pc: u64, built: bool) {
        if let Some(i) = self.find(pc) {
            self.nodes[i].built = built;
        }
    }

    /// Clear all built bits (UOC flush).
    pub fn clear_built(&mut self) {
        for n in &mut self.nodes {
            n.built = false;
        }
    }

    /// Snapshot of the learned branch graph: `(pc, taken_target,
    /// saw_taken, saw_not_taken, is_uncond)` per node (Fig. 4 dump).
    pub fn graph_snapshot(&self) -> Vec<(u64, u64, bool, bool, bool)> {
        self.nodes
            .iter()
            .map(|n| (n.pc, n.taken_target, n.saw_taken, n.saw_not_taken, n.is_uncond))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_loop(u: &mut MicroBtb, pc: u64, target: u64, iters: usize) -> usize {
        // A single always-taken loop branch; count correct µBTB predictions.
        let mut correct = 0;
        for _ in 0..iters {
            let pred = u.predict(pc);
            let ok = matches!(pred, UbtbPrediction::Hit { taken: true, target: t } if t == target);
            if ok {
                correct += 1;
            }
            u.update(pc, true, target, false, ok);
        }
        correct
    }

    #[test]
    fn seed_filter_requires_two_occurrences() {
        let mut u = MicroBtb::new(UbtbConfig::m1());
        u.update(0x4000, true, 0x5000, false, false);
        assert_eq!(u.occupancy(), 0, "first occurrence only seeds the filter");
        u.update(0x4000, true, 0x5000, false, false);
        assert_eq!(u.occupancy(), 1, "second occurrence allocates");
    }

    #[test]
    fn locks_on_predictable_kernel() {
        let mut u = MicroBtb::new(UbtbConfig::m1());
        let correct = run_loop(&mut u, 0x4000, 0x3f00, 100);
        assert!(u.is_locked(), "steady loop must lock the µBTB");
        assert!(correct > 60);
        assert!(u.stats().locked_predictions > 0);
    }

    #[test]
    fn mispredict_breaks_lock_and_disables() {
        let mut u = MicroBtb::new(UbtbConfig::m1());
        run_loop(&mut u, 0x4000, 0x3f00, 100);
        assert!(u.is_locked());
        // Now the branch goes the other way and the front end mispredicts.
        u.update(0x4000, false, 0x3f00, false, false);
        assert!(!u.is_locked());
        assert_eq!(u.stats().unlocks, 1);
        // While the front end keeps mispredicting, the µBTB must not lock.
        for _ in 0..50 {
            let _ = u.predict(0x4000);
            u.update(0x4000, true, 0x3f00, false, false);
        }
        assert!(!u.is_locked(), "no lock without correct predictions");
        // A correctly handled taken node acts as the next seed: the µBTB
        // re-enables and re-locks once the streak rebuilds (the loop's
        // root branch re-arms the graph on the next iteration).
        for _ in 0..50 {
            let _ = u.predict(0x4000);
            u.update(0x4000, true, 0x3f00, false, true);
        }
        assert!(u.is_locked(), "re-enabled by a correct taken seed");
        assert!(u.stats().locks >= 2);
    }

    #[test]
    fn lhp_learns_alternating_branch() {
        let mut u = MicroBtb::new(UbtbConfig::m1());
        let pc = 0x4000;
        // Allocate.
        u.update(pc, true, 0x5000, false, false);
        u.update(pc, true, 0x5000, false, false);
        // Make it a difficult node (both edges seen), alternating.
        let mut correct = 0;
        for i in 0..400 {
            let t = i % 2 == 0;
            let pred = u.predict(pc);
            let ok = matches!(pred, UbtbPrediction::Hit { taken, .. } if taken == t);
            if i > 100 && ok {
                correct += 1;
            }
            u.update(pc, t, 0x5000, false, ok);
        }
        assert!(
            correct > 250,
            "LHP must learn a 2-periodic local pattern, got {correct}/299"
        );
    }

    #[test]
    fn conditional_cannot_use_uncond_only_pool() {
        let mut cfg = UbtbConfig::m3();
        cfg.general_nodes = 2;
        cfg.uncond_only_nodes = 8;
        let mut u = MicroBtb::new(cfg);
        // Allocate 4 conditional branches (each needs two occurrences).
        for i in 0..4u64 {
            let pc = 0x4000 + i * 16;
            u.update(pc, true, pc + 0x100, false, false);
            u.update(pc, true, pc + 0x100, false, false);
        }
        let cond_nodes = u.nodes.iter().filter(|n| !n.is_uncond).count();
        assert!(cond_nodes <= 2, "conditionals capped by the general pool");
        // Unconditionals can fill the rest.
        for i in 0..8u64 {
            let pc = 0x8000 + i * 16;
            u.update(pc, true, pc + 0x100, true, false);
            u.update(pc, true, pc + 0x100, true, false);
        }
        assert!(u.occupancy() > 2);
    }

    #[test]
    fn probe_matches_predict_without_side_effects() {
        let mut u = MicroBtb::new(UbtbConfig::m1());
        run_loop(&mut u, 0x4000, 0x3f00, 50);
        let stamp_before = u.stamp;
        let probed = u.probe(0x4000);
        assert_eq!(u.stamp, stamp_before, "probe must not touch LRU state");
        let predicted = u.predict(0x4000);
        assert_eq!(probed, predicted);
        assert_eq!(u.probe(0x9999), UbtbPrediction::Miss);
        let mut out = Vec::new();
        MicroBtb::probe_batch(&[&u, &u], 0x4000, &mut out);
        assert_eq!(out, vec![probed, probed]);
    }

    #[test]
    fn built_bits_roundtrip() {
        let mut u = MicroBtb::new(UbtbConfig::m5());
        u.update(0x4000, true, 0x5000, false, false);
        u.update(0x4000, true, 0x5000, false, false);
        assert_eq!(u.built_bit(0x4000), Some(false));
        u.set_built(0x4000, true);
        assert_eq!(u.built_bit(0x4000), Some(true));
        u.clear_built();
        assert_eq!(u.built_bit(0x4000), Some(false));
        assert_eq!(u.built_bit(0x9999), None);
    }
}

mod snapshot_impl {
    use super::*;
    use exynos_snapshot::{tags, Decoder, Encoder, Snapshot, SnapshotError};

    impl Snapshot for MicroBtb {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::UBTB);
            enc.seq(self.nodes.len());
            for n in &self.nodes {
                enc.u64(n.pc);
                enc.u64(n.taken_target);
                enc.bool(n.is_uncond);
                enc.u16(n.local_history);
                enc.bool(n.saw_taken);
                enc.bool(n.saw_not_taken);
                enc.u64(n.lru);
                enc.bool(n.built);
            }
            enc.seq(self.lhp.len());
            for w in &self.lhp {
                enc.i8(*w);
            }
            enc.seq(self.seed_filter.len());
            for (a, b) in &self.seed_filter {
                enc.u64(*a);
                enc.u64(*b);
            }
            enc.u64(self.stamp);
            enc.u32(self.streak);
            enc.bool(self.locked);
            enc.bool(self.disabled);
            enc.u64(self.stats.locked_predictions);
            enc.u64(self.stats.locks);
            enc.u64(self.stats.unlocks);
            enc.u64(self.stats.gated_cycles);
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::UBTB)?;
            let n = dec.seq(8)?;
            // `allocate` bounds the pools separately (conditionals by the
            // general pool, unconditionals by the whole arena), so the
            // arena can legitimately hold up to total + general nodes.
            let cap = self.cfg.total_nodes() + self.cfg.general_nodes;
            if n > cap {
                return Err(SnapshotError::Geometry {
                    what: "ubtb nodes",
                    expected: cap as u64,
                    found: n as u64,
                });
            }
            self.nodes.clear();
            for _ in 0..n {
                self.nodes.push(Node {
                    pc: dec.u64()?,
                    taken_target: dec.u64()?,
                    is_uncond: dec.bool()?,
                    local_history: dec.u16()?,
                    saw_taken: dec.bool()?,
                    saw_not_taken: dec.bool()?,
                    lru: dec.u64()?,
                    built: dec.bool()?,
                });
            }
            let l = dec.seq(1)?;
            if l != self.lhp.len() {
                return Err(SnapshotError::Geometry {
                    what: "ubtb loop-history table",
                    expected: self.lhp.len() as u64,
                    found: l as u64,
                });
            }
            for w in &mut self.lhp {
                *w = dec.i8()?;
            }
            let f = dec.seq(16)?;
            self.seed_filter.clear();
            for _ in 0..f {
                self.seed_filter.push((dec.u64()?, dec.u64()?));
            }
            self.stamp = dec.u64()?;
            self.streak = dec.u32()?;
            self.locked = dec.bool()?;
            self.disabled = dec.bool()?;
            self.stats.locked_predictions = dec.u64()?;
            self.stats.locks = dec.u64()?;
            self.stats.unlocks = dec.u64()?;
            self.stats.gated_cycles = dec.u64()?;
            dec.end_section()
        }
    }
}
