//! The BTB hierarchy: main BTB (mBTB), virtual BTB (vBTB) and Level-2 BTB
//! (L2BTB).
//!
//! §IV.A/Fig. 2: "The main BTBs are organized into 8 sequential discovered
//! branches per 128B cacheline ... additional dense branches exceeding the
//! first 8 spill to a virtual-indexed vBTB at an additional access latency
//! cost." The L2BTB "retains learned information" (§IV), was doubled in M3
//! and doubled again in M4 with reduced fill latency and 2× fill bandwidth
//! (§IV.D), and M6 grew the mBTB by 50% (§IV.F).
//!
//! Indirect and return targets stored in these structures are encrypted
//! with the context's CONTEXT_HASH (§V) by the front end before insertion;
//! the BTB itself is oblivious to the cipher and just stores bits.

use crate::error::PredictorError;
use exynos_trace::BranchKind;

/// One discovered branch's BTB payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbEntry {
    /// Branch PC this entry describes.
    pub pc: u64,
    /// Stored (possibly encrypted) predicted-taken target.
    pub target: u64,
    /// Control-flow class.
    pub kind: BranchKind,
    /// Local BIAS weight consulted (doubled) by the SHP sum.
    pub bias: i8,
    /// Set while the branch has never been observed not-taken (drives the
    /// always-taken SHP filter, 1AT early redirects and ZAT replication).
    pub always_taken: bool,
    /// Saturating taken-rate counter (0..=15) classifying often-taken
    /// branches for ZOT replication.
    pub taken_ctr: u8,
    /// ZAT/ZOT replication (§IV.E, Fig. 5): the (encrypted) target of the
    /// always/often-taken branch that follows this branch's own target,
    /// allowing a zero-bubble second redirect.
    pub replicated_next: Option<(u64, u64)>,
}

impl BtbEntry {
    /// A fresh entry for a newly discovered branch.
    pub fn discover(pc: u64, target: u64, kind: BranchKind, taken: bool) -> BtbEntry {
        BtbEntry {
            pc,
            target,
            kind,
            bias: if taken { 1 } else { -1 },
            always_taken: taken,
            taken_ctr: if taken { 8 } else { 7 },
            replicated_next: None,
        }
    }

    /// Record an executed direction, maintaining AT/OT classification.
    pub fn record_direction(&mut self, taken: bool) {
        if taken {
            self.taken_ctr = (self.taken_ctr + 1).min(15);
        } else {
            self.always_taken = false;
            self.taken_ctr = self.taken_ctr.saturating_sub(1);
        }
    }

    /// Whether ZOT replication considers this branch often-taken.
    pub fn is_often_taken(&self) -> bool {
        self.taken_ctr >= 14
    }
}

/// Where a lookup found its entry (drives bubble accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BtbHit {
    /// Found in the mBTB line (1–2 bubble path).
    Main,
    /// Found in the vBTB (extra access-latency bubble).
    Virtual,
    /// Found only in the L2BTB; entry was filled into the L1 (fill-latency
    /// bubbles apply).
    Level2,
}

/// Geometry of the BTB hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BtbConfig {
    /// mBTB lines (each covers 128 B and holds up to 8 branches).
    pub mbtb_lines: usize,
    /// mBTB set associativity.
    pub mbtb_ways: usize,
    /// vBTB entries (entry-granular, virtually indexed).
    pub vbtb_entries: usize,
    /// vBTB ways.
    pub vbtb_ways: usize,
    /// L2BTB entries.
    pub l2btb_entries: usize,
    /// L2BTB ways.
    pub l2btb_ways: usize,
    /// Bubbles charged when a taken-branch prediction was served by an
    /// L2BTB fill (reduced in M4).
    pub l2_fill_latency: u32,
    /// Entries moved per L2→L1 fill event (doubled in M4).
    pub l2_fill_bandwidth: usize,
}

impl BtbConfig {
    /// Branches per 128 B line before spilling to the vBTB.
    pub const SLOTS_PER_LINE: usize = 8;
}

/// One mBTB line: up to 8 discovered branches in a 128 B code window.
#[derive(Debug, Clone)]
struct Line {
    /// 128 B-aligned line address (`pc >> 7`); `u64::MAX` = invalid.
    line_addr: u64,
    slots: [Option<BtbEntry>; BtbConfig::SLOTS_PER_LINE],
    lru: u64,
}

impl Line {
    fn empty() -> Line {
        Line {
            line_addr: u64::MAX,
            slots: [None; BtbConfig::SLOTS_PER_LINE],
            lru: 0,
        }
    }
}

/// Entry-granular victim/spill store (used for both vBTB and L2BTB).
#[derive(Debug, Clone)]
struct EntryStore {
    sets: usize,
    ways: usize,
    /// `sets - 1` when `sets` is a power of two (every shipped geometry),
    /// letting `set_of` mask instead of divide; `None` keeps the modulo
    /// for exact non-power-of-two geometries.
    set_mask: Option<usize>,
    entries: Vec<Option<(BtbEntry, u64)>>, // (entry, lru stamp)
}

impl EntryStore {
    fn new(total: usize, ways: usize) -> EntryStore {
        let ways = ways.max(1);
        let sets = (total / ways).max(1);
        EntryStore {
            sets,
            ways,
            set_mask: sets.is_power_of_two().then(|| sets - 1),
            entries: vec![None; sets * ways],
        }
    }

    #[inline]
    fn set_of(&self, pc: u64) -> usize {
        // Mix line and intra-line bits so branches 128 B apart spread over
        // the sets; modulo supports exact (non-power-of-two) geometries.
        let h = (pc >> 2) ^ (pc >> 7) ^ (pc >> 16);
        match self.set_mask {
            Some(mask) => h as usize & mask,
            None => h as usize % self.sets,
        }
    }

    #[inline]
    fn lookup(&mut self, pc: u64, stamp: u64) -> Option<BtbEntry> {
        let s = self.set_of(pc);
        for w in 0..self.ways {
            if let Some((e, lru)) = &mut self.entries[s * self.ways + w] {
                if e.pc == pc {
                    *lru = stamp;
                    return Some(*e);
                }
            }
        }
        None
    }

    fn update_in_place(&mut self, entry: BtbEntry) -> bool {
        let s = self.set_of(entry.pc);
        for w in 0..self.ways {
            if let Some((e, _)) = &mut self.entries[s * self.ways + w] {
                if e.pc == entry.pc {
                    *e = entry;
                    return true;
                }
            }
        }
        false
    }

    /// Insert, evicting LRU; returns the victim if one was displaced.
    fn insert(&mut self, entry: BtbEntry, stamp: u64) -> Option<BtbEntry> {
        if self.update_in_place(entry) {
            return None;
        }
        let s = self.set_of(entry.pc);
        let base = s * self.ways;
        // Free way?
        for w in 0..self.ways {
            if self.entries[base + w].is_none() {
                self.entries[base + w] = Some((entry, stamp));
                return None;
            }
        }
        // Evict LRU (every way is occupied here; an impossible empty way
        // sorts first and is simply reused).
        let victim_way = (0..self.ways)
            .min_by_key(|&w| self.entries[base + w].as_ref().map(|&(_, lru)| lru).unwrap_or(0))
            .unwrap_or(0);
        let victim = self.entries[base + victim_way].take().map(|(e, _)| e);
        self.entries[base + victim_way] = Some((entry, stamp));
        victim
    }

    fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }
}

/// Hit/miss/traffic statistics for the hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BtbStats {
    /// Lookups that hit in the mBTB.
    pub main_hits: u64,
    /// Lookups that hit in the vBTB.
    pub virtual_hits: u64,
    /// Lookups served by an L2BTB fill.
    pub l2_hits: u64,
    /// Lookups that missed everywhere (branch discovery).
    pub misses: u64,
    /// Entries written back to the L2BTB on L1 eviction.
    pub l2_writebacks: u64,
    /// Lines looked up that contained no branch at all (Empty Line
    /// Optimization candidates, §IV.E).
    pub empty_line_lookups: u64,
}

/// The three-level BTB hierarchy.
#[derive(Debug, Clone)]
pub struct BtbHierarchy {
    cfg: BtbConfig,
    sets: usize,
    /// `sets - 1` when `sets` is a power of two; `None` keeps the modulo
    /// for exact non-power-of-two geometries.
    line_mask: Option<usize>,
    lines: Vec<Line>,
    vbtb: EntryStore,
    l2btb: EntryStore,
    stamp: u64,
    stats: BtbStats,
}

impl BtbHierarchy {
    /// Build the hierarchy from `cfg`.
    ///
    /// # Panics
    /// Panics if any geometry field is zero.
    pub fn new(cfg: BtbConfig) -> BtbHierarchy {
        assert!(cfg.mbtb_lines > 0 && cfg.mbtb_ways > 0);
        assert!(cfg.vbtb_entries > 0 && cfg.l2btb_entries > 0);
        let sets = (cfg.mbtb_lines / cfg.mbtb_ways).max(1);
        BtbHierarchy {
            sets,
            line_mask: sets.is_power_of_two().then(|| sets - 1),
            lines: vec![Line::empty(); sets * cfg.mbtb_ways],
            vbtb: EntryStore::new(cfg.vbtb_entries, cfg.vbtb_ways),
            l2btb: EntryStore::new(cfg.l2btb_entries, cfg.l2btb_ways),
            cfg,
            stamp: 0,
            stats: BtbStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BtbConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BtbStats {
        self.stats
    }

    #[inline]
    fn set_of_line(&self, line_addr: u64) -> usize {
        let h = line_addr as usize ^ (line_addr >> 11) as usize;
        match self.line_mask {
            Some(mask) => h & mask,
            None => h % self.sets,
        }
    }

    #[inline]
    fn find_line(&mut self, line_addr: u64) -> Option<usize> {
        let s = self.set_of_line(line_addr);
        let base = s * self.cfg.mbtb_ways;
        (0..self.cfg.mbtb_ways)
            .map(|w| base + w)
            .find(|&i| self.lines[i].line_addr == line_addr)
    }

    /// Look up the branch at `pc`. On an L1 miss the L2BTB is probed and,
    /// on a hit there, the entry (plus up to `l2_fill_bandwidth - 1`
    /// neighbours from the same line) is filled into the L1.
    ///
    /// Scanning the line also validates it: an entry stored under a line
    /// whose address window does not contain its PC is detectable
    /// corruption (the parity-check analog) and returns a typed
    /// [`PredictorError`] instead of a bogus prediction.
    pub fn lookup(&mut self, pc: u64) -> Result<Option<(BtbEntry, BtbHit)>, PredictorError> {
        self.stamp += 1;
        let line_addr = pc >> 7;
        if let Some(li) = self.find_line(line_addr) {
            self.lines[li].lru = self.stamp;
            // One pass over the line's slots: validate every tag, note
            // whether the line holds any branch at all, and pick up the
            // PC match. The first bad tag still wins over a hit, exactly
            // as with the separate validation scan.
            let mut occupied = false;
            let mut hit: Option<BtbEntry> = None;
            for e in self.lines[li].slots.iter().flatten() {
                if e.pc >> 7 != line_addr {
                    return Err(PredictorError::BtbTagMismatch {
                        slot_pc: e.pc,
                        line_addr,
                    });
                }
                occupied = true;
                if hit.is_none() && e.pc == pc {
                    hit = Some(*e);
                }
            }
            if !occupied {
                self.stats.empty_line_lookups += 1;
            }
            if let Some(e) = hit {
                self.stats.main_hits += 1;
                return Ok(Some((e, BtbHit::Main)));
            }
        }
        if let Some(e) = self.vbtb.lookup(pc, self.stamp) {
            self.stats.virtual_hits += 1;
            return Ok(Some((e, BtbHit::Virtual)));
        }
        if let Some(e) = self.l2btb.lookup(pc, self.stamp) {
            self.stats.l2_hits += 1;
            // Fill into the L1 (and pull sibling entries of the same 128 B
            // line up to the configured fill bandwidth).
            self.install(e);
            let mut pulled = 1;
            if self.cfg.l2_fill_bandwidth > 1 {
                let sibs = self.l2_line_siblings(pc);
                for sib in sibs {
                    if pulled >= self.cfg.l2_fill_bandwidth {
                        break;
                    }
                    self.install(sib);
                    pulled += 1;
                }
            }
            return Ok(Some((e, BtbHit::Level2)));
        }
        self.stats.misses += 1;
        Ok(None)
    }

    fn l2_line_siblings(&mut self, pc: u64) -> Vec<BtbEntry> {
        let line = pc >> 7;
        let stamp = self.stamp;
        // An entry always lives in the set its own PC hashes to, and the
        // hash only depends on pc >> 2 within a line, so a 128 B line can
        // reach at most 32 distinct sets. Probing just those (in ascending
        // set order, hence ascending slot order) visits every possible
        // sibling in the same order the old full-store scan did, without
        // walking all the L2BTB entries.
        let mut sets = [0usize; 32];
        for (k, s) in sets.iter_mut().enumerate() {
            *s = self.l2btb.set_of((line << 7) | ((k as u64) << 2));
        }
        sets.sort_unstable();
        let mut out = Vec::new();
        let mut prev = usize::MAX;
        for &s in &sets {
            if s == prev {
                continue;
            }
            prev = s;
            let base = s * self.l2btb.ways;
            for slot in self.l2btb.entries[base..base + self.l2btb.ways].iter_mut() {
                if let Some((e, lru)) = slot {
                    if e.pc >> 7 == line && e.pc != pc {
                        *lru = stamp;
                        out.push(*e);
                    }
                }
            }
        }
        out
    }

    /// Install (allocate or update) an entry in the L1, spilling dense
    /// lines to the vBTB and evictions to the L2BTB.
    pub fn install(&mut self, entry: BtbEntry) {
        self.stamp += 1;
        let line_addr = entry.pc >> 7;
        let li = match self.find_line(line_addr) {
            Some(li) => li,
            None => {
                // Allocate a line, evicting the LRU way; evicted branches
                // retire to the L2BTB (retention).
                let s = self.set_of_line(line_addr);
                let base = s * self.cfg.mbtb_ways;
                let victim = (0..self.cfg.mbtb_ways)
                    .map(|w| base + w)
                    .min_by_key(|&i| {
                        if self.lines[i].line_addr == u64::MAX {
                            0
                        } else {
                            self.lines[i].lru.max(1)
                        }
                    })
                    .unwrap_or(base);
                let old = std::mem::replace(&mut self.lines[victim], Line::empty());
                if old.line_addr != u64::MAX {
                    for e in old.slots.into_iter().flatten() {
                        self.stats.l2_writebacks += 1;
                        self.l2btb.insert(e, self.stamp);
                    }
                }
                self.lines[victim].line_addr = line_addr;
                victim
            }
        };
        self.lines[li].lru = self.stamp;
        // Update in place if the branch is already present.
        if let Some(slot) = self.lines[li]
            .slots
            .iter_mut()
            .flatten()
            .find(|e| e.pc == entry.pc)
        {
            *slot = entry;
            return;
        }
        // Free slot in the line?
        if let Some(slot) = self.lines[li].slots.iter_mut().find(|s| s.is_none()) {
            *slot = Some(entry);
            return;
        }
        // Dense line: spill to the vBTB; vBTB victims retire to the L2BTB.
        if self.vbtb.lookup(entry.pc, self.stamp).is_some() {
            self.vbtb.update_in_place(entry);
            return;
        }
        if let Some(victim) = self.vbtb.insert(entry, self.stamp) {
            self.stats.l2_writebacks += 1;
            self.l2btb.insert(victim, self.stamp);
        }
    }

    /// Side-effect-free probe: find the entry for `pc` without touching
    /// LRU state, statistics, or triggering L2 fills. Used by maintenance
    /// paths (e.g. ZAT/ZOT replication learning) that must not perturb the
    /// timing-visible state.
    pub fn probe(&self, pc: u64) -> Option<BtbEntry> {
        let line_addr = pc >> 7;
        let s = self.set_of_line(line_addr);
        let base = s * self.cfg.mbtb_ways;
        for w in 0..self.cfg.mbtb_ways {
            let line = &self.lines[base + w];
            if line.line_addr == line_addr {
                if let Some(e) = line.slots.iter().flatten().find(|e| e.pc == pc) {
                    return Some(*e);
                }
            }
        }
        let vs = self.vbtb.set_of(pc);
        for w in 0..self.vbtb.ways {
            if let Some((e, _)) = &self.vbtb.entries[vs * self.vbtb.ways + w] {
                if e.pc == pc {
                    return Some(*e);
                }
            }
        }
        None
    }

    /// Batched SoA probe: resolve `pc` against the L1 tag+target arrays
    /// of every member of a lockstep population, appending one slot per
    /// member to `out` (cleared first, member order preserved). Each
    /// member's probe is the side-effect-free pow2-masked
    /// [`BtbHierarchy::probe`] — no LRU movement, no statistics, no L2
    /// fills — so population-wide dissection sweeps can interrogate BTB
    /// contents without perturbing timing-visible state.
    pub fn probe_batch(btbs: &[&BtbHierarchy], pc: u64, out: &mut Vec<Option<BtbEntry>>) {
        out.clear();
        out.reserve(btbs.len());
        out.extend(btbs.iter().map(|b| b.probe(pc)));
    }

    /// Update an existing entry wherever it currently lives (used for
    /// direction-counter and replication maintenance without changing
    /// residency).
    pub fn update_entry(&mut self, entry: BtbEntry) {
        let line_addr = entry.pc >> 7;
        if let Some(li) = self.find_line(line_addr) {
            if let Some(slot) = self.lines[li]
                .slots
                .iter_mut()
                .flatten()
                .find(|e| e.pc == entry.pc)
            {
                *slot = entry;
                return;
            }
        }
        if self.vbtb.update_in_place(entry) {
            return;
        }
        self.l2btb.update_in_place(entry);
    }

    /// Fault-injection hook: flip bits in the stored target of one
    /// resident mBTB entry (chosen deterministically from `salt`). Target
    /// corruption is *not* detectable by the tag check — it models a soft
    /// error the predictor can only recover from by mispredicting and
    /// retraining. Returns whether an entry was corrupted.
    pub fn corrupt_target(&mut self, salt: u64) -> bool {
        let n = self.lines.len();
        for k in 0..n {
            let line = &mut self.lines[(salt as usize + k) % n];
            if line.line_addr == u64::MAX {
                continue;
            }
            if let Some(e) = line.slots.iter_mut().flatten().next() {
                e.target ^= 0x40 ^ (salt & 0xFFF0);
                return true;
            }
        }
        false
    }

    /// Fault-injection hook: corrupt the PC tag of one resident mBTB
    /// entry so it no longer belongs to its line's 128 B window. Unlike
    /// [`BtbHierarchy::corrupt_target`], this *is* detectable — the next
    /// [`BtbHierarchy::lookup`] of the line reports a
    /// [`PredictorError::BtbTagMismatch`]. Returns whether an entry was
    /// corrupted.
    pub fn corrupt_tag(&mut self, salt: u64) -> bool {
        let n = self.lines.len();
        for k in 0..n {
            let line = &mut self.lines[(salt as usize + k) % n];
            if line.line_addr == u64::MAX {
                continue;
            }
            if let Some(e) = line.slots.iter_mut().flatten().next() {
                e.pc ^= 1 << (7 + (salt % 8));
                return true;
            }
        }
        false
    }

    /// Current number of valid entries in (mBTB, vBTB, L2BTB).
    pub fn occupancy(&self) -> (usize, usize, usize) {
        let main = self
            .lines
            .iter()
            .map(|l| l.slots.iter().flatten().count())
            .sum();
        (main, self.vbtb.occupancy(), self.l2btb.occupancy())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_small() -> BtbConfig {
        BtbConfig {
            mbtb_lines: 16,
            mbtb_ways: 4,
            vbtb_entries: 16,
            vbtb_ways: 4,
            l2btb_entries: 128,
            l2btb_ways: 4,
            l2_fill_latency: 4,
            l2_fill_bandwidth: 1,
        }
    }

    fn entry(pc: u64) -> BtbEntry {
        BtbEntry::discover(pc, pc + 0x100, BranchKind::CondDirect, true)
    }

    #[test]
    fn install_then_hit_main() {
        let mut b = BtbHierarchy::new(cfg_small());
        b.install(entry(0x4000));
        let (e, hit) = b.lookup(0x4000).unwrap().unwrap();
        assert_eq!(hit, BtbHit::Main);
        assert_eq!(e.target, 0x4100);
        assert_eq!(b.stats().main_hits, 1);
    }

    #[test]
    fn miss_returns_none() {
        let mut b = BtbHierarchy::new(cfg_small());
        assert!(b.lookup(0x9000).unwrap().is_none());
        assert_eq!(b.stats().misses, 1);
    }

    #[test]
    fn ninth_branch_in_line_spills_to_vbtb() {
        let mut b = BtbHierarchy::new(cfg_small());
        // 9 branches in the same 128 B line.
        for i in 0..9u64 {
            b.install(entry(0x4000 + i * 4));
        }
        let mut hits = Vec::new();
        for i in 0..9u64 {
            let (_, h) = b.lookup(0x4000 + i * 4).unwrap().unwrap();
            hits.push(h);
        }
        assert_eq!(hits.iter().filter(|&&h| h == BtbHit::Main).count(), 8);
        assert_eq!(hits.iter().filter(|&&h| h == BtbHit::Virtual).count(), 1);
    }

    #[test]
    fn evicted_lines_retire_to_l2_and_refill() {
        let mut b = BtbHierarchy::new(cfg_small());
        // Far more lines than the mBTB holds (16 lines): 64 distinct lines.
        for i in 0..64u64 {
            b.install(entry(0x4000 + i * 128));
        }
        assert!(b.stats().l2_writebacks > 0);
        // Early lines were evicted; a lookup must be served by L2 fill.
        let (_, h) = b.lookup(0x4000).unwrap().unwrap();
        assert_eq!(h, BtbHit::Level2);
        // And is now resident in L1.
        let (_, h2) = b.lookup(0x4000).unwrap().unwrap();
        assert_eq!(h2, BtbHit::Main);
    }

    #[test]
    fn fill_bandwidth_pulls_line_siblings() {
        let mut cfg = cfg_small();
        cfg.l2_fill_bandwidth = 4;
        let mut b = BtbHierarchy::new(cfg);
        // Two branches in one line, then thrash the L1 away.
        b.install(entry(0x4000));
        b.install(entry(0x4008));
        for i in 1..64u64 {
            b.install(entry(0x4000 + i * 128));
        }
        let (_, h) = b.lookup(0x4000).unwrap().unwrap();
        assert_eq!(h, BtbHit::Level2);
        // The sibling came along with the fill.
        let (_, h2) = b.lookup(0x4008).unwrap().unwrap();
        assert_eq!(h2, BtbHit::Main, "sibling should have been filled too");
    }

    #[test]
    fn direction_counters_classify_at_and_ot() {
        let mut e = entry(0x4000);
        assert!(e.always_taken);
        for _ in 0..8 {
            e.record_direction(true);
        }
        assert!(e.always_taken && e.is_often_taken());
        e.record_direction(false);
        assert!(!e.always_taken);
        assert!(e.is_often_taken());
        for _ in 0..8 {
            e.record_direction(false);
        }
        assert!(!e.is_often_taken());
    }

    #[test]
    fn update_entry_preserves_residency() {
        let mut b = BtbHierarchy::new(cfg_small());
        let mut e = entry(0x4000);
        b.install(e);
        e.bias = 42;
        b.update_entry(e);
        let (got, hit) = b.lookup(0x4000).unwrap().unwrap();
        assert_eq!(hit, BtbHit::Main);
        assert_eq!(got.bias, 42);
    }

    #[test]
    fn occupancy_tracks_installs() {
        let mut b = BtbHierarchy::new(cfg_small());
        for i in 0..10u64 {
            b.install(entry(0x4000 + i * 4));
        }
        let (m, v, _) = b.occupancy();
        assert_eq!(m + v, 10);
    }
}

mod snapshot_impl {
    use super::*;
    use exynos_snapshot::{tags, Decoder, Encoder, Snapshot, SnapshotError};

    fn kind_to_u8(k: BranchKind) -> u8 {
        match k {
            BranchKind::CondDirect => 0,
            BranchKind::UncondDirect => 1,
            BranchKind::DirectCall => 2,
            BranchKind::IndirectJump => 3,
            BranchKind::IndirectCall => 4,
            BranchKind::Return => 5,
        }
    }

    fn kind_from_u8(v: u8) -> Result<BranchKind, SnapshotError> {
        Ok(match v {
            0 => BranchKind::CondDirect,
            1 => BranchKind::UncondDirect,
            2 => BranchKind::DirectCall,
            3 => BranchKind::IndirectJump,
            4 => BranchKind::IndirectCall,
            5 => BranchKind::Return,
            _ => return Err(SnapshotError::Corrupt { what: "btb branch-kind tag" }),
        })
    }

    fn save_entry(enc: &mut Encoder, e: &BtbEntry) {
        enc.u64(e.pc);
        enc.u64(e.target);
        enc.u8(kind_to_u8(e.kind));
        enc.i8(e.bias);
        enc.bool(e.always_taken);
        enc.u8(e.taken_ctr);
        match e.replicated_next {
            Some((pc, tgt)) => {
                enc.u8(1);
                enc.u64(pc);
                enc.u64(tgt);
            }
            None => enc.u8(0),
        }
    }

    fn load_entry(dec: &mut Decoder<'_>) -> Result<BtbEntry, SnapshotError> {
        Ok(BtbEntry {
            pc: dec.u64()?,
            target: dec.u64()?,
            kind: kind_from_u8(dec.u8()?)?,
            bias: dec.i8()?,
            always_taken: dec.bool()?,
            taken_ctr: dec.u8()?,
            replicated_next: match dec.u8()? {
                0 => None,
                1 => Some((dec.u64()?, dec.u64()?)),
                _ => return Err(SnapshotError::Corrupt { what: "btb replicated-next flag" }),
            },
        })
    }

    fn save_opt_entry(enc: &mut Encoder, slot: &Option<BtbEntry>) {
        match slot {
            Some(e) => {
                enc.u8(1);
                save_entry(enc, e);
            }
            None => enc.u8(0),
        }
    }

    fn load_opt_entry(dec: &mut Decoder<'_>) -> Result<Option<BtbEntry>, SnapshotError> {
        match dec.u8()? {
            0 => Ok(None),
            1 => Ok(Some(load_entry(dec)?)),
            _ => Err(SnapshotError::Corrupt { what: "btb slot presence flag" }),
        }
    }

    fn save_store(enc: &mut Encoder, s: &EntryStore) {
        enc.seq(s.entries.len());
        for slot in &s.entries {
            match slot {
                Some((e, lru)) => {
                    enc.u8(1);
                    save_entry(enc, e);
                    enc.u64(*lru);
                }
                None => enc.u8(0),
            }
        }
    }

    fn load_store(dec: &mut Decoder<'_>, s: &mut EntryStore) -> Result<(), SnapshotError> {
        let n = dec.seq(1)?;
        if n != s.entries.len() {
            return Err(SnapshotError::Geometry {
                what: "btb entry store",
                expected: s.entries.len() as u64,
                found: n as u64,
            });
        }
        for slot in &mut s.entries {
            *slot = match dec.u8()? {
                0 => None,
                1 => Some((load_entry(dec)?, dec.u64()?)),
                _ => return Err(SnapshotError::Corrupt { what: "btb store presence flag" }),
            };
        }
        Ok(())
    }

    impl Snapshot for BtbHierarchy {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::BTB);
            enc.seq(self.lines.len());
            for line in &self.lines {
                enc.u64(line.line_addr);
                for slot in &line.slots {
                    save_opt_entry(enc, slot);
                }
                enc.u64(line.lru);
            }
            save_store(enc, &self.vbtb);
            save_store(enc, &self.l2btb);
            enc.u64(self.stamp);
            enc.u64(self.stats.main_hits);
            enc.u64(self.stats.virtual_hits);
            enc.u64(self.stats.l2_hits);
            enc.u64(self.stats.misses);
            enc.u64(self.stats.l2_writebacks);
            enc.u64(self.stats.empty_line_lookups);
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::BTB)?;
            let n = dec.seq(1)?;
            if n != self.lines.len() {
                return Err(SnapshotError::Geometry {
                    what: "mbtb lines",
                    expected: self.lines.len() as u64,
                    found: n as u64,
                });
            }
            for line in &mut self.lines {
                line.line_addr = dec.u64()?;
                for slot in &mut line.slots {
                    *slot = load_opt_entry(dec)?;
                }
                line.lru = dec.u64()?;
            }
            load_store(dec, &mut self.vbtb)?;
            load_store(dec, &mut self.l2btb)?;
            self.stamp = dec.u64()?;
            self.stats.main_hits = dec.u64()?;
            self.stats.virtual_hits = dec.u64()?;
            self.stats.l2_hits = dec.u64()?;
            self.stats.misses = dec.u64()?;
            self.stats.l2_writebacks = dec.u64()?;
            self.stats.empty_line_lookups = dec.u64()?;
            dec.end_section()
        }
    }
}
