//! # exynos-branch — the Exynos branch-prediction stack (§IV–§V)
//!
//! Implements all six generations of the paper's branch prediction:
//!
//! * [`shp`] — the Scaled Hashed Perceptron conditional predictor;
//! * [`history`] — GHIST/PHIST registers and interval folding;
//! * [`btb`] — the mBTB (8 branches / 128 B line) + vBTB + L2BTB hierarchy;
//! * [`ubtb`] — the zero-bubble graph-based µBTB with its local-history
//!   hashed perceptron and lock mode;
//! * [`ras`] — the return-address stack (CONTEXT_HASH-encrypted);
//! * [`indirect`] — VPC chains and the M6 hybrid indirect hash table;
//! * [`confidence`] / [`mrb`] — branch confidence and the M5 Mispredict
//!   Recovery Buffer;
//! * [`config`] — per-generation feature/geometry presets (M1–M6);
//! * [`frontend`] — the assembled prediction pipeline with per-branch
//!   bubble/redirect accounting;
//! * [`storage`] — Table II storage-budget accounting.
//!
//! ## Example
//!
//! ```
//! use exynos_branch::config::FrontendConfig;
//! use exynos_branch::frontend::FrontEnd;
//! use exynos_trace::gen::loops::{LoopNest, LoopNestParams};
//! use exynos_trace::TraceGen;
//!
//! let mut fe = FrontEnd::new(FrontendConfig::m5());
//! let mut gen = LoopNest::new(&LoopNestParams::default(), 0, 1);
//! for _ in 0..10_000 {
//!     let inst = gen.next_inst();
//!     let _feedback = fe.on_inst(&inst).expect("predictor state uncorrupted");
//! }
//! assert!(fe.stats().mpki() < 5.0);
//! ```

#![warn(missing_docs)]

pub mod btb;
pub mod config;
pub mod confidence;
pub mod error;
pub mod frontend;
pub mod history;
pub mod indirect;
pub mod mrb;
pub mod observe;
pub mod ras;
pub mod shp;
pub mod storage;
pub mod ubtb;

pub use config::FrontendConfig;
pub use error::PredictorError;
pub use frontend::{FetchFeedback, FrontEnd, FrontendStats, Redirect};
pub use storage::{storage_budget, StorageBudget};
