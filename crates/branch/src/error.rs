//! Typed predictor-state corruption errors.
//!
//! Hardware predictors protect their arrays with parity/ECC and treat a
//! detected error as a recoverable event (drop the entry, retrain) rather
//! than a machine check. This module is the model's analog: structural
//! invariant violations that a lookup can *detect* surface as a
//! [`PredictorError`] instead of a panic, and the core's watchdog decides
//! whether to recover (flush and retrain) or to abort the slice with a
//! typed error.

use std::fmt;

/// A detectable corruption of predictor state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorError {
    /// An mBTB line held an entry whose PC does not belong to the line's
    /// 128 B address window — the model's parity-error analog.
    BtbTagMismatch {
        /// PC stored in the offending slot.
        slot_pc: u64,
        /// 128 B-aligned line address (`pc >> 7`) the slot lives under.
        line_addr: u64,
    },
    /// The RAS depth exceeded its capacity (pointer arithmetic corrupted).
    RasDepthInvariant {
        /// Observed depth.
        depth: usize,
        /// Configured capacity.
        capacity: usize,
    },
}

impl fmt::Display for PredictorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictorError::BtbTagMismatch { slot_pc, line_addr } => write!(
                f,
                "mBTB tag mismatch: slot pc {slot_pc:#x} stored under line {line_addr:#x} \
                 (expected line {:#x})",
                slot_pc >> 7
            ),
            PredictorError::RasDepthInvariant { depth, capacity } => {
                write!(f, "RAS depth {depth} exceeds capacity {capacity}")
            }
        }
    }
}

impl std::error::Error for PredictorError {}
