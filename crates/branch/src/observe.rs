//! [`Observable`] wiring for every branch-prediction statistics producer.
//!
//! Component paths are rooted at `branch.`; names mirror the public stat
//! field names so the registry schema reads like the structs. Derived
//! rates (MPKI) ride along as gauges.

use crate::btb::BtbStats;
use crate::frontend::FrontendStats;
use crate::indirect::IndirectStats;
use crate::mrb::MrbStats;
use crate::ras::RasStats;
use crate::ubtb::UbtbStats;
use exynos_telemetry::{Observable, Value};

impl Observable for FrontendStats {
    fn component(&self) -> &'static str {
        "branch.frontend"
    }

    fn visit(&self, f: &mut dyn FnMut(&'static str, Value)) {
        f("instructions", Value::U64(self.instructions));
        f("branches", Value::U64(self.branches));
        f("cond_branches", Value::U64(self.cond_branches));
        f("taken_branches", Value::U64(self.taken_branches));
        f("cond_mispredicts", Value::U64(self.cond_mispredicts));
        f("indirect_mispredicts", Value::U64(self.indirect_mispredicts));
        f("return_mispredicts", Value::U64(self.return_mispredicts));
        f("discoveries", Value::U64(self.discoveries));
        f("trace_gaps", Value::U64(self.trace_gaps));
        f("bubbles", Value::U64(self.bubbles));
        f("zat_zot_zero_bubble", Value::U64(self.zat_zot_zero_bubble));
        f("one_bubble_at", Value::U64(self.one_bubble_at));
        f("ubtb_zero_bubble", Value::U64(self.ubtb_zero_bubble));
        f("mrb_covered", Value::U64(self.mrb_covered));
        f("elo_skipped_lookups", Value::U64(self.elo_skipped_lookups));
        f("shp_lookups", Value::U64(self.shp_lookups));
        f("conf_flips_to_low", Value::U64(self.conf_flips_to_low));
        f("conf_flips_to_high", Value::U64(self.conf_flips_to_high));
        f("mpki", Value::F64(self.mpki()));
    }
}

impl Observable for RasStats {
    fn component(&self) -> &'static str {
        "branch.ras"
    }

    fn visit(&self, f: &mut dyn FnMut(&'static str, Value)) {
        f("overflows", Value::U64(self.overflows));
        f("underflows", Value::U64(self.underflows));
    }
}

impl Observable for MrbStats {
    fn component(&self) -> &'static str {
        "branch.mrb"
    }

    fn visit(&self, f: &mut dyn FnMut(&'static str, Value)) {
        f("hits", Value::U64(self.hits));
        f("misses", Value::U64(self.misses));
        f("addresses_confirmed", Value::U64(self.addresses_confirmed));
        f("addresses_corrected", Value::U64(self.addresses_corrected));
    }
}

impl Observable for UbtbStats {
    fn component(&self) -> &'static str {
        "branch.ubtb"
    }

    fn visit(&self, f: &mut dyn FnMut(&'static str, Value)) {
        f("locked_predictions", Value::U64(self.locked_predictions));
        f("locks", Value::U64(self.locks));
        f("unlocks", Value::U64(self.unlocks));
        f("gated_cycles", Value::U64(self.gated_cycles));
    }
}

impl Observable for BtbStats {
    fn component(&self) -> &'static str {
        "branch.btb"
    }

    fn visit(&self, f: &mut dyn FnMut(&'static str, Value)) {
        f("main_hits", Value::U64(self.main_hits));
        f("virtual_hits", Value::U64(self.virtual_hits));
        f("l2_hits", Value::U64(self.l2_hits));
        f("misses", Value::U64(self.misses));
        f("l2_writebacks", Value::U64(self.l2_writebacks));
        f("empty_line_lookups", Value::U64(self.empty_line_lookups));
    }
}

impl Observable for IndirectStats {
    fn component(&self) -> &'static str {
        "branch.indirect"
    }

    fn visit(&self, f: &mut dyn FnMut(&'static str, Value)) {
        f("lookups", Value::U64(self.lookups));
        f("correct", Value::U64(self.correct));
        f("hash_hits", Value::U64(self.hash_hits));
        f("extra_cycles", Value::U64(self.extra_cycles));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(obs: &dyn Observable) -> Vec<&'static str> {
        let mut v = Vec::new();
        obs.visit(&mut |n, _| v.push(n));
        v
    }

    #[test]
    fn visit_order_is_stable() {
        let a = names(&FrontendStats::default());
        let b = names(&FrontendStats::default());
        assert_eq!(a, b);
        assert!(a.contains(&"mpki"));
        assert_eq!(names(&RasStats::default()), vec!["overflows", "underflows"]);
    }
}
