//! Global outcome history (GHIST) and path history (PHIST) registers with
//! interval folding.
//!
//! §IV.A: each SHP table is indexed by an XOR hash of (1) a hash of the
//! GHIST pattern *in a given interval for that table* — one bit per
//! conditional-branch outcome; (2) a hash of the PHIST in a given interval —
//! "three bits, bits two through four, of each branch address encountered";
//! and (3) a hash of the PC. M1 used 165 bits of GHIST and 80 entries of
//! PHIST; M5 grew GHIST by 25% and rebalanced the intervals.

/// Maximum GHIST bits any generation keeps (M5/M6 use 206).
pub const MAX_GHIST: usize = 256;
/// Maximum PHIST entries (3 bits each) any generation keeps.
pub const MAX_PHIST: usize = 128;
// The PHIST ring buffer masks with MAX_PHIST - 1.
const _: () = assert!(MAX_PHIST.is_power_of_two());

/// A shift-register of conditional-branch outcomes, newest in bit 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalHistory {
    words: [u64; MAX_GHIST / 64],
}

impl GlobalHistory {
    /// An all-not-taken history.
    pub fn new() -> GlobalHistory {
        GlobalHistory {
            words: [0; MAX_GHIST / 64],
        }
    }

    /// Record a conditional-branch outcome.
    #[inline]
    pub fn push(&mut self, taken: bool) {
        // Shift the whole register left by one, inserting at bit 0.
        let n = self.words.len();
        for i in (1..n).rev() {
            self.words[i] = (self.words[i] << 1) | (self.words[i - 1] >> 63);
        }
        self.words[0] = (self.words[0] << 1) | taken as u64;
    }

    /// Bit `i` of history (0 = most recent outcome).
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        debug_assert!(i < MAX_GHIST);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Bits `[pos, pos + n)` of history as a little-endian value (bit
    /// `pos` in bit 0), extracted by whole-word shifts. `n <= 32`.
    #[inline]
    fn bits(&self, pos: usize, n: usize) -> u64 {
        debug_assert!(n >= 1 && n <= 32 && pos + n <= MAX_GHIST);
        let w = pos / 64;
        let off = pos % 64;
        let mut v = self.words[w] >> off;
        if off > 0 && w + 1 < self.words.len() {
            v |= self.words[w + 1] << (64 - off);
        }
        v & ((1u64 << n) - 1)
    }

    /// Fold the most recent `len` bits into `out_bits` bits by XOR-ing
    /// successive chunks (the classic folded-history index hash).
    ///
    /// # Panics
    /// Panics if `out_bits` is 0 or greater than 32.
    #[inline]
    pub fn fold(&self, len: usize, out_bits: u32) -> u32 {
        assert!(out_bits >= 1 && out_bits <= 32, "fold width out of range");
        let len = len.min(MAX_GHIST);
        if len == 0 {
            return 0;
        }
        let mask = (1u64 << out_bits) - 1;
        let mut acc = 0u64;
        let mut consumed = 0usize;
        // Each chunk is extracted with word shifts rather than bit-by-bit
        // — same chunks, same XOR, so the hash is unchanged.
        while consumed < len {
            let chunk_len = (len - consumed).min(out_bits as usize);
            acc ^= self.bits(consumed, chunk_len);
            consumed += chunk_len;
        }
        (acc & mask) as u32
    }
}

impl Default for GlobalHistory {
    fn default() -> Self {
        Self::new()
    }
}

/// A shift-register of per-branch path nibbles: bits 2..=4 of each branch
/// address encountered, newest first.
///
/// Stored as a ring buffer: `head` is the index of the newest entry and
/// a push only writes one byte, instead of rotating the whole 128-byte
/// array per branch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathHistory {
    /// 3-bit entries; the newest is at `entries[head]`, older entries
    /// follow at increasing (wrapping) indices.
    entries: [u8; MAX_PHIST],
    head: usize,
}

impl PathHistory {
    /// An empty path history.
    pub fn new() -> PathHistory {
        PathHistory {
            entries: [0; MAX_PHIST],
            head: 0,
        }
    }

    /// Record a branch address (any branch encountered).
    #[inline]
    pub fn push(&mut self, pc: u64) {
        self.head = (self.head + MAX_PHIST - 1) & (MAX_PHIST - 1);
        self.entries[self.head] = ((pc >> 2) & 0x7) as u8;
    }

    /// Fold the most recent `len` entries (3 bits each) into `out_bits`
    /// bits.
    ///
    /// # Panics
    /// Panics if `out_bits` is 0 or greater than 32.
    #[inline]
    pub fn fold(&self, len: usize, out_bits: u32) -> u32 {
        assert!(out_bits >= 1 && out_bits <= 32, "fold width out of range");
        let len = len.min(MAX_PHIST);
        let mask = (1u64 << out_bits) - 1;
        let mut acc = 0u64;
        let mut bitpos = 0u32;
        // Walk newest → older through the ring, identical entry order to
        // the pre-ring shift-register layout.
        for k in 0..len {
            let e = self.entries[(self.head + k) & (MAX_PHIST - 1)];
            acc ^= (e as u64) << bitpos;
            bitpos += 3;
            if bitpos + 3 > out_bits {
                // Wrap the rolling insertion point.
                acc = ((acc >> out_bits) ^ acc) & mask;
                bitpos = 0;
            }
        }
        ((acc ^ (acc >> out_bits)) & mask) as u32
    }
}

impl Default for PathHistory {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghist_push_and_bit() {
        let mut g = GlobalHistory::new();
        g.push(true);
        g.push(false);
        g.push(true);
        // Newest first: T, NT, T.
        assert!(g.bit(0));
        assert!(!g.bit(1));
        assert!(g.bit(2));
        assert!(!g.bit(3));
    }

    #[test]
    fn ghist_shift_crosses_word_boundary() {
        let mut g = GlobalHistory::new();
        g.push(true);
        for _ in 0..70 {
            g.push(false);
        }
        assert!(g.bit(70));
        assert!(!g.bit(69));
        assert!(!g.bit(71));
    }

    #[test]
    fn fold_depends_only_on_interval() {
        let mut a = GlobalHistory::new();
        let mut b = GlobalHistory::new();
        // Same last 10 outcomes, different older outcomes.
        b.push(true);
        b.push(true);
        for i in 0..10 {
            let t = i % 3 == 0;
            a.push(t);
            b.push(t);
        }
        assert_eq!(a.fold(10, 8), b.fold(10, 8));
        assert_ne!(a.fold(16, 8), b.fold(16, 8));
    }

    #[test]
    fn fold_zero_len_is_zero() {
        let mut g = GlobalHistory::new();
        g.push(true);
        assert_eq!(g.fold(0, 10), 0);
    }

    #[test]
    fn fold_distinguishes_patterns() {
        let mut a = GlobalHistory::new();
        let mut b = GlobalHistory::new();
        for i in 0..64 {
            a.push(i % 2 == 0);
            b.push(i % 3 == 0);
        }
        assert_ne!(a.fold(64, 12), b.fold(64, 12));
    }

    #[test]
    fn phist_records_addr_bits_2_to_4() {
        let mut p = PathHistory::new();
        p.push(0b10100); // bits 2..=4 = 0b101
        let mut q = PathHistory::new();
        q.push(0b00100); // bits 2..=4 = 0b001
        assert_ne!(p.fold(1, 6), q.fold(1, 6));
        let mut r = PathHistory::new();
        r.push(0b10100 | (0b11 << 40)); // high bits ignored
        assert_eq!(p.fold(1, 6), r.fold(1, 6));
    }

    #[test]
    fn phist_fold_interval_sensitivity() {
        let mut a = PathHistory::new();
        let mut b = PathHistory::new();
        b.push(0x7C); // older entry differs
        for pc in [0x10u64, 0x24, 0x38, 0x4C] {
            a.push(pc);
            b.push(pc);
        }
        assert_eq!(a.fold(4, 9), b.fold(4, 9));
        assert_ne!(a.fold(5, 9), b.fold(5, 9));
    }
}

mod snapshot_impl {
    use super::*;
    use exynos_snapshot::{tags, Decoder, Encoder, Snapshot, SnapshotError};

    impl Snapshot for GlobalHistory {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::GLOBAL_HISTORY);
            for w in self.words {
                enc.u64(w);
            }
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::GLOBAL_HISTORY)?;
            for w in &mut self.words {
                *w = dec.u64()?;
            }
            dec.end_section()
        }
    }

    impl Snapshot for PathHistory {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::PATH_HISTORY);
            enc.bytes(&self.entries);
            enc.usize(self.head);
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::PATH_HISTORY)?;
            for e in &mut self.entries {
                *e = dec.u8()?;
            }
            let head = dec.usize()?;
            if head >= MAX_PHIST {
                return Err(SnapshotError::Corrupt { what: "path-history head out of range" });
            }
            self.head = head;
            dec.end_section()
        }
    }
}
