//! The Return Address Stack with CONTEXT_HASH target encryption.
//!
//! §IV: "Function returns are predicted with a Return-Address Stack (RAS)
//! with standard mechanisms to repair multiple speculative pushes and
//! pops." §V/Fig. 11 adds the stream-cipher encryption of stored return
//! targets.

use exynos_secure::cipher::{decrypt_target, encrypt_target, EncryptedTarget};
use exynos_secure::context::ContextHash;

/// A bounded return-address stack. Overflow wraps (oldest entries are
/// silently overwritten), underflow predicts nothing — both are genuine
/// mispredict sources on deep recursion.
///
/// The stack owns its [`RasStats`] and exposes them through
/// [`Ras::stats`], matching every other predictor component.
#[derive(Debug, Clone)]
pub struct Ras {
    slots: Vec<Option<EncryptedTarget>>,
    top: usize,
    depth: usize,
    capacity: usize,
    key: ContextHash,
    stats: RasStats,
}

/// RAS statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RasStats {
    /// Pushes that overwrote a live entry (overflow).
    pub overflows: u64,
    /// Pops from an empty stack (underflow).
    pub underflows: u64,
}

impl Ras {
    /// A RAS with `capacity` entries, storing targets under `key`.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, key: ContextHash) -> Ras {
        assert!(capacity > 0, "RAS capacity must be positive");
        Ras {
            slots: vec![None; capacity],
            top: 0,
            depth: 0,
            capacity,
            key,
            stats: RasStats::default(),
        }
    }

    /// Install a new context key (context switch). Existing entries keep
    /// their old-key ciphertext and will decode to garbage — which is the
    /// security property, not a bug.
    pub fn set_key(&mut self, key: ContextHash) {
        self.key = key;
    }

    /// Push a return address (on a call).
    pub fn push(&mut self, ret_addr: u64) {
        if self.depth == self.capacity {
            self.stats.overflows += 1;
        } else {
            self.depth += 1;
        }
        self.slots[self.top] = Some(encrypt_target(self.key, ret_addr));
        self.top = (self.top + 1) % self.capacity;
    }

    /// Pop and predict the return target (on a return).
    pub fn pop(&mut self) -> Option<u64> {
        if self.depth == 0 {
            self.stats.underflows += 1;
            return None;
        }
        self.depth -= 1;
        self.top = (self.top + self.capacity - 1) % self.capacity;
        self.slots[self.top]
            .take()
            .map(|e| decrypt_target(self.key, e))
    }

    /// Fault-injection hook: forget all but the newest `keep` entries.
    /// Models a speculative-repair bug truncating the stack; the forgotten
    /// frames underflow later and mispredict, which the front end absorbs
    /// as ordinary return mispredicts.
    pub fn truncate(&mut self, keep: usize) {
        self.depth = self.depth.min(keep);
    }

    /// Flush all entries (pipeline-flush recovery) while keeping the key
    /// and the cumulative statistics.
    pub fn clear(&mut self) {
        self.slots.fill(None);
        self.top = 0;
        self.depth = 0;
    }

    /// Current number of live entries.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> RasStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exynos_secure::context::{compute_context_hash, ContextId, EntropySources};

    fn key(asid: u16) -> ContextHash {
        compute_context_hash(&EntropySources::from_seed(11), ContextId::user(asid, 0))
    }

    #[test]
    fn push_pop_lifo() {
        let mut r = Ras::new(8, key(1));
        r.push(0x100);
        r.push(0x200);
        assert_eq!(r.pop(), Some(0x200));
        assert_eq!(r.pop(), Some(0x100));
        assert_eq!(r.stats().overflows + r.stats().underflows, 0);
    }

    #[test]
    fn underflow_counts_and_returns_none() {
        let mut r = Ras::new(4, key(1));
        assert_eq!(r.pop(), None);
        assert_eq!(r.stats().underflows, 1);
    }

    #[test]
    fn overflow_wraps_and_loses_oldest() {
        let mut r = Ras::new(2, key(1));
        r.push(0x100);
        r.push(0x200);
        r.push(0x300); // overwrites 0x100
        assert_eq!(r.stats().overflows, 1);
        assert_eq!(r.pop(), Some(0x300));
        assert_eq!(r.pop(), Some(0x200));
        assert_eq!(r.pop(), None, "0x100 was lost to the wrap");
    }

    #[test]
    fn deep_recursion_depth_tracks() {
        let mut r = Ras::new(16, key(1));
        for i in 0..10u64 {
            r.push(0x1000 + i * 4);
        }
        assert_eq!(r.depth(), 10);
        assert_eq!(r.capacity(), 16);
    }

    #[test]
    fn clear_empties_but_keeps_stats() {
        let mut r = Ras::new(4, key(1));
        let _ = r.pop(); // underflow
        r.push(0x100);
        r.clear();
        assert_eq!(r.depth(), 0);
        assert_eq!(r.pop(), None);
        assert_eq!(r.stats().underflows, 2, "stats survive the flush");
    }

    #[test]
    fn context_switch_scrambles_stale_entries() {
        let mut r = Ras::new(8, key(1));
        r.push(0xAAA0);
        r.set_key(key(2));
        let got = r.pop().unwrap();
        assert_ne!(got, 0xAAA0, "old-context entries must not decode");
        // New pushes under the new key decode fine.
        r.push(0xBBB0);
        assert_eq!(r.pop(), Some(0xBBB0));
    }
}

mod snapshot_impl {
    use super::*;
    use exynos_snapshot::{tags, Decoder, Encoder, Snapshot, SnapshotError};

    impl Snapshot for Ras {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::RAS);
            enc.seq(self.slots.len());
            for slot in &self.slots {
                match slot {
                    Some(t) => {
                        enc.u8(1);
                        enc.u64(t.raw_bits());
                    }
                    None => enc.u8(0),
                }
            }
            enc.usize(self.top);
            enc.usize(self.depth);
            self.key.save(enc);
            enc.u64(self.stats.overflows);
            enc.u64(self.stats.underflows);
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::RAS)?;
            let n = dec.seq(1)?;
            if n != self.slots.len() {
                return Err(SnapshotError::Geometry {
                    what: "ras slots",
                    expected: self.slots.len() as u64,
                    found: n as u64,
                });
            }
            for slot in &mut self.slots {
                *slot = match dec.u8()? {
                    0 => None,
                    1 => Some(EncryptedTarget::from_raw(dec.u64()?)),
                    _ => return Err(SnapshotError::Corrupt { what: "ras slot presence flag" }),
                };
            }
            let top = dec.usize()?;
            let depth = dec.usize()?;
            if top >= self.capacity.max(1) || depth > self.capacity {
                return Err(SnapshotError::Corrupt { what: "ras top/depth out of range" });
            }
            self.top = top;
            self.depth = depth;
            self.key.restore(dec)?;
            self.stats.overflows = dec.u64()?;
            self.stats.underflows = dec.u64()?;
            dec.end_section()
        }
    }
}
