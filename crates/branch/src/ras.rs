//! The Return Address Stack with CONTEXT_HASH target encryption.
//!
//! §IV: "Function returns are predicted with a Return-Address Stack (RAS)
//! with standard mechanisms to repair multiple speculative pushes and
//! pops." §V/Fig. 11 adds the stream-cipher encryption of stored return
//! targets.

use exynos_secure::cipher::{decrypt_target, encrypt_target, EncryptedTarget};
use exynos_secure::context::ContextHash;

/// A bounded return-address stack. Overflow wraps (oldest entries are
/// silently overwritten), underflow predicts nothing — both are genuine
/// mispredict sources on deep recursion.
#[derive(Debug, Clone)]
pub struct Ras {
    slots: Vec<Option<EncryptedTarget>>,
    top: usize,
    depth: usize,
    capacity: usize,
    key: ContextHash,
}

/// RAS statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RasStats {
    /// Pushes that overwrote a live entry (overflow).
    pub overflows: u64,
    /// Pops from an empty stack (underflow).
    pub underflows: u64,
}

impl Ras {
    /// A RAS with `capacity` entries, storing targets under `key`.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, key: ContextHash) -> Ras {
        assert!(capacity > 0, "RAS capacity must be positive");
        Ras {
            slots: vec![None; capacity],
            top: 0,
            depth: 0,
            capacity,
            key,
        }
    }

    /// Install a new context key (context switch). Existing entries keep
    /// their old-key ciphertext and will decode to garbage — which is the
    /// security property, not a bug.
    pub fn set_key(&mut self, key: ContextHash) {
        self.key = key;
    }

    /// Push a return address (on a call).
    pub fn push(&mut self, ret_addr: u64, stats: &mut RasStats) {
        if self.depth == self.capacity {
            stats.overflows += 1;
        } else {
            self.depth += 1;
        }
        self.slots[self.top] = Some(encrypt_target(self.key, ret_addr));
        self.top = (self.top + 1) % self.capacity;
    }

    /// Pop and predict the return target (on a return).
    pub fn pop(&mut self, stats: &mut RasStats) -> Option<u64> {
        if self.depth == 0 {
            stats.underflows += 1;
            return None;
        }
        self.depth -= 1;
        self.top = (self.top + self.capacity - 1) % self.capacity;
        self.slots[self.top]
            .take()
            .map(|e| decrypt_target(self.key, e))
    }

    /// Fault-injection hook: forget all but the newest `keep` entries.
    /// Models a speculative-repair bug truncating the stack; the forgotten
    /// frames underflow later and mispredict, which the front end absorbs
    /// as ordinary return mispredicts.
    pub fn truncate(&mut self, keep: usize) {
        self.depth = self.depth.min(keep);
    }

    /// Current number of live entries.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exynos_secure::context::{compute_context_hash, ContextId, EntropySources};

    fn key(asid: u16) -> ContextHash {
        compute_context_hash(&EntropySources::from_seed(11), ContextId::user(asid, 0))
    }

    #[test]
    fn push_pop_lifo() {
        let mut s = RasStats::default();
        let mut r = Ras::new(8, key(1));
        r.push(0x100, &mut s);
        r.push(0x200, &mut s);
        assert_eq!(r.pop(&mut s), Some(0x200));
        assert_eq!(r.pop(&mut s), Some(0x100));
        assert_eq!(s.overflows + s.underflows, 0);
    }

    #[test]
    fn underflow_counts_and_returns_none() {
        let mut s = RasStats::default();
        let mut r = Ras::new(4, key(1));
        assert_eq!(r.pop(&mut s), None);
        assert_eq!(s.underflows, 1);
    }

    #[test]
    fn overflow_wraps_and_loses_oldest() {
        let mut s = RasStats::default();
        let mut r = Ras::new(2, key(1));
        r.push(0x100, &mut s);
        r.push(0x200, &mut s);
        r.push(0x300, &mut s); // overwrites 0x100
        assert_eq!(s.overflows, 1);
        assert_eq!(r.pop(&mut s), Some(0x300));
        assert_eq!(r.pop(&mut s), Some(0x200));
        assert_eq!(r.pop(&mut s), None, "0x100 was lost to the wrap");
    }

    #[test]
    fn deep_recursion_depth_tracks() {
        let mut s = RasStats::default();
        let mut r = Ras::new(16, key(1));
        for i in 0..10u64 {
            r.push(0x1000 + i * 4, &mut s);
        }
        assert_eq!(r.depth(), 10);
        assert_eq!(r.capacity(), 16);
    }

    #[test]
    fn context_switch_scrambles_stale_entries() {
        let mut s = RasStats::default();
        let mut r = Ras::new(8, key(1));
        r.push(0xAAA0, &mut s);
        r.set_key(key(2));
        let got = r.pop(&mut s).unwrap();
        assert_ne!(got, 0xAAA0, "old-context entries must not decode");
        // New pushes under the new key decode fine.
        r.push(0xBBB0, &mut s);
        assert_eq!(r.pop(&mut s), Some(0xBBB0));
    }
}
