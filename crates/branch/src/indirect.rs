//! Indirect-branch target prediction: VPC chains, and the M6 hybrid of a
//! length-limited VPC with a dedicated indirect target hash table.
//!
//! §IV.A/Fig. 3: the indirect predictor is based on the VPC approach —
//! an indirect prediction becomes a sequence of conditional predictions of
//! "virtual PCs" that each consult the SHP, with each unique target (up to
//! a design maximum of 16 per chain) stored in BTB program order.
//!
//! §IV.F/Fig. 8: JavaScript allocates "in some cases hundreds of unique
//! indirect targets for a given indirect branch"; VPC needs O(n) cycles to
//! train/predict n targets and floods the vBTB. M6 therefore keeps a
//! 5-target VPC *in parallel with* the launch of a dedicated hash-table
//! lookup; the hash "based on the history of recent indirect branch
//! targets" (not the SHP's GHIST/PHIST/PC hash, which "did not perform
//! well, as the precursor conditional branches do not highly correlate
//! with the indirect targets").

use crate::history::{GlobalHistory, PathHistory};
use crate::shp::{apply_bias_delta, Shp};

/// Geometry/behaviour of the indirect predictor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndirectConfig {
    /// Maximum VPC chain positions consulted per prediction.
    pub max_vpc: usize,
    /// Maximum targets retained per branch (chain storage bound).
    pub max_chain: usize,
    /// Dedicated indirect target hash table (M6); `None` = full VPC only.
    pub hash_table: Option<IndirectHashConfig>,
}

/// The M6 dedicated indirect-target table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndirectHashConfig {
    /// Entries (power of two).
    pub entries: usize,
    /// Access latency in prediction-pipe cycles (it is "large dedicated
    /// storage \[that\] takes a few cycles to access").
    pub latency: u32,
    /// Bits of recent-target history folded into the index.
    pub target_history_bits: u32,
}

impl IndirectConfig {
    /// M1–M5: full VPC with a 16-target chain maximum.
    pub fn full_vpc() -> IndirectConfig {
        IndirectConfig {
            max_vpc: 16,
            max_chain: 16,
            hash_table: None,
        }
    }

    /// M6 hybrid: VPC cut to 5 targets, hash table launched in parallel.
    pub fn m6_hybrid() -> IndirectConfig {
        IndirectConfig {
            max_vpc: 5,
            max_chain: 16,
            hash_table: Some(IndirectHashConfig {
                entries: 2048,
                latency: 3,
                target_history_bits: 10,
            }),
        }
    }
}

/// One indirect branch's learned target chain.
#[derive(Debug, Clone)]
struct Chain {
    pc: u64,
    /// (target, per-virtual-branch bias weight), program order.
    targets: Vec<(u64, i8)>,
    lru: u64,
}

/// A produced indirect prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndirectPrediction {
    /// Predicted target, if any structure produced one.
    pub target: Option<u64>,
    /// Extra prediction-pipe cycles spent (VPC iterations or hash-table
    /// latency) beyond a normal taken-branch redirect.
    pub extra_cycles: u32,
    /// Whether the hash table (rather than the VPC) supplied the target.
    pub from_hash_table: bool,
}

/// Statistics for the indirect predictor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndirectStats {
    /// Predictions attempted.
    pub lookups: u64,
    /// Correct target predictions.
    pub correct: u64,
    /// Predictions supplied by the hash table.
    pub hash_hits: u64,
    /// Total extra cycles spent in VPC iteration / table latency.
    pub extra_cycles: u64,
}

/// The indirect target predictor (VPC + optional hash table).
#[derive(Debug, Clone)]
pub struct IndirectPredictor {
    cfg: IndirectConfig,
    chains: Vec<Chain>,
    chain_capacity: usize,
    /// M6 hash table: (tag, target).
    table: Vec<Option<(u32, u64)>>,
    /// Folded history of recent indirect targets.
    target_hist: u32,
    stamp: u64,
    stats: IndirectStats,
}

impl IndirectPredictor {
    /// Build an indirect predictor; `chain_capacity` bounds how many
    /// distinct indirect branches can hold chains (vBTB pressure model).
    ///
    /// # Panics
    /// Panics if `chain_capacity` is zero or the hash-table size is not a
    /// power of two.
    pub fn new(cfg: IndirectConfig, chain_capacity: usize) -> IndirectPredictor {
        assert!(chain_capacity > 0, "need chain storage");
        let table = match &cfg.hash_table {
            Some(h) => {
                assert!(h.entries.is_power_of_two(), "hash entries must be a power of two");
                vec![None; h.entries]
            }
            None => Vec::new(),
        };
        IndirectPredictor {
            cfg,
            chains: Vec::new(),
            chain_capacity,
            table,
            target_hist: 0,
            stamp: 0,
            stats: IndirectStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &IndirectConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> IndirectStats {
        self.stats
    }

    /// The virtual PC for chain position `i` of branch `pc` (Fig. 3).
    fn virtual_pc(pc: u64, i: usize) -> u64 {
        pc ^ ((i as u64 + 1).wrapping_mul(0x1F3_5151) << 2)
    }

    fn table_index(&self, pc: u64) -> Option<usize> {
        let h = self.cfg.hash_table.as_ref()?;
        let hist = self.target_hist & ((1u32 << h.target_history_bits) - 1);
        let x = (pc >> 2) as u32 ^ hist.wrapping_mul(0x9E37_79B9);
        Some((x ^ (x >> 13)) as usize & (h.entries - 1))
    }

    fn table_tag(&self, pc: u64) -> u32 {
        ((pc >> 2) as u32).wrapping_mul(0x85EB_CA6B) >> 18
    }

    /// Predict the target of the indirect branch at `pc`, consulting the
    /// SHP through virtual PCs and (M6) the hash table in parallel.
    ///
    /// As in the VPC paper, each virtual conditional consults the SHP with
    /// the history state *as of that iteration*: not-taken virtual outcomes
    /// are speculatively shifted into (cloned) histories between
    /// iterations, mirroring what [`IndirectPredictor::update`] commits.
    pub fn predict(
        &mut self,
        pc: u64,
        shp: &Shp,
        ghist: &GlobalHistory,
        phist: &PathHistory,
    ) -> IndirectPrediction {
        self.stamp += 1;
        self.stats.lookups += 1;
        let chain = self.chains.iter_mut().find(|c| c.pc == pc);
        let mut vpc_result: Option<(u64, u32)> = None;
        let mut chain_len = 0;
        if let Some(c) = chain {
            c.lru = self.stamp;
            chain_len = c.targets.len();
            let mut g = ghist.clone();
            let mut p = phist.clone();
            for (i, (target, bias)) in c.targets.iter().enumerate().take(self.cfg.max_vpc) {
                let vp = Self::virtual_pc(pc, i);
                let pr = shp.predict(vp, *bias, &g, &p);
                if pr.taken {
                    vpc_result = Some((*target, i as u32));
                    break;
                }
                g.push(false);
                p.push(vp);
            }
        }
        // Arbitration (§IV.F): "the accuracy of SHP+VPC+hash-table lookups
        // still proves superior to a pure hash-table lookup for small
        // numbers of targets" — so branches whose chain fits in the VPC
        // window use the VPC result; branches with many targets (chain at
        // or beyond the window) trust the hash table launched in parallel,
        // falling back to the VPC's pick when the table misses.
        let many_targets = chain_len >= self.cfg.max_vpc && self.cfg.hash_table.is_some();
        let hash_hit: Option<(u64, u32)> = match &self.cfg.hash_table {
            Some(h) if !self.table.is_empty() => {
                let tag = self.table_tag(pc);
                self.table_index(pc).and_then(|idx| {
                    self.table[idx]
                        .filter(|(t, _)| *t == tag)
                        .map(|(_, tgt)| (tgt, h.latency))
                })
            }
            _ => None,
        };
        let pred = if many_targets {
            match (hash_hit, vpc_result) {
                (Some((t, lat)), vpc) => {
                    self.stats.hash_hits += 1;
                    IndirectPrediction {
                        target: Some(t),
                        extra_cycles: lat.max(vpc.map(|(_, c)| c).unwrap_or(0)),
                        from_hash_table: true,
                    }
                }
                (None, Some((t, cyc))) => IndirectPrediction {
                    target: Some(t),
                    extra_cycles: cyc,
                    from_hash_table: false,
                },
                (None, None) => IndirectPrediction {
                    target: None,
                    extra_cycles: self.cfg.max_vpc.min(chain_len) as u32,
                    from_hash_table: false,
                },
            }
        } else {
            match (vpc_result, hash_hit) {
                (Some((t, cyc)), _) => IndirectPrediction {
                    target: Some(t),
                    extra_cycles: cyc,
                    from_hash_table: false,
                },
                (None, Some((t, lat))) => {
                    self.stats.hash_hits += 1;
                    IndirectPrediction {
                        target: Some(t),
                        extra_cycles: lat.max(self.cfg.max_vpc.min(chain_len) as u32),
                        from_hash_table: true,
                    }
                }
                (None, None) => IndirectPrediction {
                    target: None,
                    extra_cycles: self.cfg.max_vpc.min(chain_len) as u32,
                    from_hash_table: false,
                },
            }
        };
        self.stats.extra_cycles += pred.extra_cycles as u64;
        pred
    }

    /// Train on the architectural `target`, updating the VPC chain (and
    /// its virtual conditional branches in the SHP), the hash table, and
    /// the recent-target history. The virtual-branch outcomes are committed
    /// into `ghist`/`phist` (they are conditional branches from the SHP's
    /// point of view), which is also how an indirect branch becomes visible
    /// to later history-based predictions. Returns whether the earlier
    /// prediction `predicted` was correct.
    pub fn update(
        &mut self,
        pc: u64,
        target: u64,
        predicted: Option<u64>,
        shp: &mut Shp,
        ghist: &mut GlobalHistory,
        phist: &mut PathHistory,
    ) -> bool {
        self.stamp += 1;
        let correct = predicted == Some(target);
        if correct {
            self.stats.correct += 1;
        }
        // --- VPC chain maintenance + virtual-branch SHP training. ---------
        let stamp = self.stamp;
        let max_chain = self.cfg.max_chain;
        let max_vpc = self.cfg.max_vpc;
        let chain = match self.chains.iter_mut().find(|c| c.pc == pc) {
            Some(c) => c,
            None => {
                if self.chains.len() >= self.chain_capacity {
                    let victim = self
                        .chains
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, c)| c.lru)
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    self.chains.remove(victim);
                }
                self.chains.push(Chain {
                    pc,
                    targets: Vec::new(),
                    lru: stamp,
                });
                // Just pushed, so the vec is non-empty; fall back to index
                // 0 rather than abort if that ever changes.
                let last = self.chains.len() - 1;
                &mut self.chains[last]
            }
        };
        chain.lru = stamp;
        let pos = chain.targets.iter().position(|(t, _)| *t == target);
        let pos = match pos {
            Some(p) => p,
            None => {
                if chain.targets.len() < max_chain {
                    chain.targets.push((target, 0));
                    chain.targets.len() - 1
                } else {
                    // Chain full: replace the last slot (the coldest in
                    // program-order training).
                    let last = chain.targets.len() - 1;
                    chain.targets[last] = (target, 0);
                    last
                }
            }
        };
        // Train virtual branches: positions before `pos` resolve NOT-TAKEN,
        // position `pos` resolves TAKEN (classic VPC training), limited to
        // the VPC window; outcomes are committed into the real histories
        // exactly as `predict` walked them.
        for i in 0..=pos.min(max_vpc.saturating_sub(1)) {
            let is_hit = i == pos;
            let (_, bias) = &mut chain.targets[i];
            let vp = Self::virtual_pc(pc, i);
            let p = shp.predict(vp, *bias, ghist, phist);
            let d = shp.update(&p, is_hit, false);
            *bias = apply_bias_delta(*bias, d);
            ghist.push(is_hit);
            phist.push(vp);
        }
        // --- Hash table training. -----------------------------------------
        if let Some(idx) = self.table_index(pc) {
            let tag = self.table_tag(pc);
            self.table[idx] = Some((tag, target));
        }
        // --- Recent-target history. ----------------------------------------
        // Sliding window of recent target chunks: old targets age out
        // completely after window_bits/5 branches, so a single anomalous
        // target only briefly desynchronizes the table index. The chunk is
        // an XOR-fold of the *whole* stored value — targets may be
        // CONTEXT_HASH ciphertext whose entropy sits in arbitrary bit
        // positions (§V).
        let mut t = target ^ (target >> 32);
        t ^= t >> 16;
        t ^= t >> 8;
        let tbits = ((t ^ (t >> 5)) & 0x1F) as u32;
        let window_bits = self
            .cfg
            .hash_table
            .as_ref()
            .map(|h| h.target_history_bits)
            .unwrap_or(10);
        let mask = (1u32 << window_bits) - 1;
        self.target_hist = ((self.target_hist << 5) | tbits) & mask;
        correct
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shp::ShpConfig;

    struct Rig {
        shp: Shp,
        g: GlobalHistory,
        p: PathHistory,
        pred: IndirectPredictor,
    }

    fn rig(cfg: IndirectConfig) -> Rig {
        Rig {
            shp: Shp::new(ShpConfig::m1()),
            g: GlobalHistory::new(),
            p: PathHistory::new(),
            pred: IndirectPredictor::new(cfg, 64),
        }
    }

    fn step(r: &mut Rig, pc: u64, target: u64) -> bool {
        let pr = r.pred.predict(pc, &r.shp, &r.g, &r.p);
        // update() commits the virtual-branch outcomes into the histories.
        r.pred
            .update(pc, target, pr.target, &mut r.shp, &mut r.g, &mut r.p)
    }

    #[test]
    fn single_target_learned_immediately() {
        let mut r = rig(IndirectConfig::full_vpc());
        let mut correct = 0;
        for _ in 0..100 {
            if step(&mut r, 0x4000, 0x9000) {
                correct += 1;
            }
        }
        assert!(correct >= 98, "monomorphic indirect must be near-perfect, got {correct}");
    }

    #[test]
    fn two_targets_with_regular_alternation_learned() {
        let mut r = rig(IndirectConfig::full_vpc());
        let mut correct = 0;
        for i in 0..600 {
            let t = if i % 2 == 0 { 0x9000 } else { 0xA000 };
            if step(&mut r, 0x4000, t) && i >= 200 {
                correct += 1;
            }
        }
        assert!(
            correct > 320,
            "alternating 2-target indirect should be learnable via GHIST, got {correct}/400"
        );
    }

    #[test]
    fn vpc_cost_grows_with_target_position() {
        let mut r = rig(IndirectConfig::full_vpc());
        // Train 8 targets round-robin; measure extra cycles.
        for i in 0..800u64 {
            let t = 0x9000 + (i % 8) * 0x100;
            step(&mut r, 0x4000, t);
        }
        let stats = r.pred.stats();
        let avg_cycles = stats.extra_cycles as f64 / stats.lookups as f64;
        assert!(
            avg_cycles > 1.0,
            "deep chains must cost VPC iterations, got {avg_cycles}"
        );
    }

    #[test]
    fn m6_hash_table_covers_many_targets() {
        // A 64-target Markov-sequenced indirect branch: full VPC (16-max)
        // cannot even store all targets; the M6 hash table keyed by recent
        // target history can follow a deterministic target walk.
        let run = |cfg: IndirectConfig| -> (u64, u64) {
            let mut r = rig(cfg);
            let mut cur = 0u64;
            for _ in 0..6000 {
                // Deterministic successor walk over 64 targets.
                cur = (cur * 13 + 7) % 64;
                let t = 0x9000 + cur * 0x40;
                step(&mut r, 0x4000, t);
            }
            (r.pred.stats().correct, r.pred.stats().lookups)
        };
        let (full_ok, n) = run(IndirectConfig::full_vpc());
        let (hybrid_ok, _) = run(IndirectConfig::m6_hybrid());
        assert!(
            hybrid_ok > full_ok + n / 10,
            "hybrid must clearly beat full VPC on many-target walks: {hybrid_ok} vs {full_ok} of {n}"
        );
    }

    #[test]
    fn m6_latency_beats_full_vpc_on_deep_chains() {
        // §IV.F: the hybrid "reduced end-to-end prediction latency compared
        // to the full-VPC approach". Round-robin over 60 targets.
        let run = |cfg: IndirectConfig| -> (f64, u64) {
            let mut r = rig(cfg);
            for i in 0..3000u64 {
                let t = 0x9000 + (i % 60) * 0x40;
                step(&mut r, 0x4000, t);
            }
            let s = r.pred.stats();
            (s.extra_cycles as f64 / s.lookups as f64, s.hash_hits)
        };
        let (full_avg, _) = run(IndirectConfig::full_vpc());
        let (hybrid_avg, hash_hits) = run(IndirectConfig::m6_hybrid());
        assert!(
            hybrid_avg < full_avg,
            "hybrid must be faster end-to-end: {hybrid_avg} vs {full_avg}"
        );
        // Bounded by max(vpc window, table latency) = 5.
        assert!(hybrid_avg <= 5.0, "got {hybrid_avg}");
        assert!(hash_hits > 0);
    }

    #[test]
    fn chain_capacity_evicts_lru_branch() {
        let mut r = rig(IndirectConfig::full_vpc());
        r.pred = IndirectPredictor::new(IndirectConfig::full_vpc(), 2);
        step(&mut r, 0x4000, 0x9000);
        step(&mut r, 0x5000, 0x9100);
        step(&mut r, 0x6000, 0x9200); // evicts 0x4000
        let pr = r.pred.predict(0x4000, &r.shp, &r.g, &r.p);
        assert_eq!(pr.target, None, "evicted chain must not predict");
    }
}

mod snapshot_impl {
    use super::*;
    use exynos_snapshot::{tags, Decoder, Encoder, Snapshot, SnapshotError};

    impl Snapshot for IndirectPredictor {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::INDIRECT);
            enc.seq(self.chains.len());
            for c in &self.chains {
                enc.u64(c.pc);
                enc.seq(c.targets.len());
                for (t, conf) in &c.targets {
                    enc.u64(*t);
                    enc.i8(*conf);
                }
                enc.u64(c.lru);
            }
            enc.seq(self.table.len());
            for slot in &self.table {
                match slot {
                    Some((tag, tgt)) => {
                        enc.u8(1);
                        enc.u32(*tag);
                        enc.u64(*tgt);
                    }
                    None => enc.u8(0),
                }
            }
            enc.u32(self.target_hist);
            enc.u64(self.stamp);
            enc.u64(self.stats.lookups);
            enc.u64(self.stats.correct);
            enc.u64(self.stats.hash_hits);
            enc.u64(self.stats.extra_cycles);
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::INDIRECT)?;
            let n = dec.seq(8)?;
            if n > self.chain_capacity {
                return Err(SnapshotError::Geometry {
                    what: "indirect chains",
                    expected: self.chain_capacity as u64,
                    found: n as u64,
                });
            }
            self.chains.clear();
            for _ in 0..n {
                let pc = dec.u64()?;
                let t = dec.seq(9)?;
                let mut targets = Vec::with_capacity(t);
                for _ in 0..t {
                    targets.push((dec.u64()?, dec.i8()?));
                }
                let lru = dec.u64()?;
                self.chains.push(Chain { pc, targets, lru });
            }
            let t = dec.seq(1)?;
            if t != self.table.len() {
                return Err(SnapshotError::Geometry {
                    what: "indirect hash table",
                    expected: self.table.len() as u64,
                    found: t as u64,
                });
            }
            for slot in &mut self.table {
                *slot = match dec.u8()? {
                    0 => None,
                    1 => Some((dec.u32()?, dec.u64()?)),
                    _ => {
                        return Err(SnapshotError::Corrupt {
                            what: "indirect table presence flag",
                        })
                    }
                };
            }
            self.target_hist = dec.u32()?;
            self.stamp = dec.u64()?;
            self.stats.lookups = dec.u64()?;
            self.stats.correct = dec.u64()?;
            self.stats.hash_hits = dec.u64()?;
            self.stats.extra_cycles = dec.u64()?;
            dec.end_section()
        }
    }
}
