//! Per-generation front-end configurations (M1–M6).
//!
//! Geometry follows Table I/II and the §IV narrative: M3 widened the
//! machine and doubled SHP rows and L2BTB capacity, M4 doubled the L2BTB
//! again with lower fill latency and 2× fill bandwidth, M5 added ZAT/ZOT,
//! the Empty-Line Optimization, the MRB and the 16-table SHP, and M6 grew
//! the mBTB by 50%, doubled the L2BTB and added the indirect hash table.

use crate::btb::BtbConfig;
use crate::indirect::IndirectConfig;
use crate::shp::ShpConfig;
use crate::ubtb::UbtbConfig;

/// Complete configuration of one generation's branch-prediction front end.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontendConfig {
    /// Display name ("M1".."M6").
    pub name: &'static str,
    /// Conditional predictor geometry.
    pub shp: ShpConfig,
    /// µBTB geometry.
    pub ubtb: UbtbConfig,
    /// BTB hierarchy geometry.
    pub btb: BtbConfig,
    /// Indirect predictor behaviour.
    pub indirect: IndirectConfig,
    /// Indirect chain storage (vBTB share), in branches.
    pub indirect_chains: usize,
    /// RAS entries.
    pub ras_entries: usize,
    /// Front-end fetch width in instructions per cycle.
    pub fetch_width: u32,
    /// Pipeline refill penalty of a mispredict, in cycles (Table I).
    pub mispredict_penalty: u32,
    /// Bubbles for a taken branch predicted from the mBTB.
    pub taken_bubbles: u32,
    /// M3+: always-taken branches redirect one cycle earlier (1AT).
    pub one_bubble_at: bool,
    /// M5+: zero-bubble always/often-taken via target replication
    /// (ZAT/ZOT).
    pub zero_bubble_atot: bool,
    /// M5+: Empty Line Optimization (power/lookup-skip for branchless
    /// lines).
    pub empty_line_opt: bool,
    /// M5+: Mispredict Recovery Buffer capacity (None = absent).
    pub mrb_entries: Option<usize>,
    /// §V: encrypt indirect/RAS targets with CONTEXT_HASH.
    pub encrypt_targets: bool,
    /// §IV.A anti-aliasing: always-taken branches do not update the SHP
    /// weight tables (true in every shipped generation; ablation knob).
    pub at_filter: bool,
}

impl FrontendConfig {
    /// M1 (14nm, 2016): SHP 8×1K, µBTB, full VPC, 4-wide.
    pub fn m1() -> FrontendConfig {
        FrontendConfig {
            name: "M1",
            shp: ShpConfig::m1(),
            ubtb: UbtbConfig::m1(),
            btb: BtbConfig {
                mbtb_lines: 512,
                mbtb_ways: 4,
                vbtb_entries: 1024,
                vbtb_ways: 4,
                l2btb_entries: 8192,
                l2btb_ways: 4,
                l2_fill_latency: 5,
                l2_fill_bandwidth: 1,
            },
            indirect: IndirectConfig::full_vpc(),
            indirect_chains: 128,
            ras_entries: 32,
            fetch_width: 4,
            mispredict_penalty: 14,
            taken_bubbles: 2,
            one_bubble_at: false,
            zero_bubble_atot: false,
            empty_line_opt: false,
            mrb_entries: None,
            encrypt_targets: false,
            at_filter: true,
        }
    }

    /// M2 (10nm): no significant branch-prediction changes over M1 (§IV.B).
    pub fn m2() -> FrontendConfig {
        FrontendConfig {
            name: "M2",
            ..FrontendConfig::m1()
        }
    }

    /// M3 (10nm, 6-wide): µBTB doubled (uncond-only entries), 1AT early
    /// redirect, SHP rows doubled, L2BTB doubled.
    pub fn m3() -> FrontendConfig {
        FrontendConfig {
            name: "M3",
            shp: ShpConfig::m3(),
            ubtb: UbtbConfig::m3(),
            btb: BtbConfig {
                mbtb_lines: 768,
                mbtb_ways: 4,
                vbtb_entries: 1024,
                vbtb_ways: 4,
                l2btb_entries: 16384,
                l2btb_ways: 4,
                l2_fill_latency: 5,
                l2_fill_bandwidth: 1,
            },
            fetch_width: 6,
            mispredict_penalty: 16,
            one_bubble_at: true,
            ..FrontendConfig::m1()
        }
    }

    /// M4 (8nm): L2BTB doubled again, fill latency reduced, fill bandwidth
    /// doubled (§IV.D); Spectre mitigations productized (§V).
    pub fn m4() -> FrontendConfig {
        let mut c = FrontendConfig::m3();
        c.name = "M4";
        c.btb.l2btb_entries = 32768;
        c.btb.l2_fill_latency = 3;
        c.btb.l2_fill_bandwidth = 2;
        c.encrypt_targets = true;
        c
    }

    /// M5 (7nm): ZAT/ZOT replication, Empty-Line Optimization, smaller
    /// µBTB, 16×2K SHP with 25% longer GHIST, MRB (§IV.E).
    pub fn m5() -> FrontendConfig {
        let mut c = FrontendConfig::m4();
        c.name = "M5";
        c.shp = ShpConfig::m5();
        c.ubtb = UbtbConfig::m5();
        c.zero_bubble_atot = true;
        c.empty_line_opt = true;
        c.mrb_entries = Some(32);
        c
    }

    /// M6 (5nm, 8-wide): mBTB +50%, L2BTB doubled, hybrid VPC + indirect
    /// hash table (§IV.F).
    pub fn m6() -> FrontendConfig {
        let mut c = FrontendConfig::m5();
        c.name = "M6";
        c.btb.mbtb_lines = 1152;
        c.btb.l2btb_entries = 65536;
        c.indirect = IndirectConfig::m6_hybrid();
        c.indirect_chains = 192;
        c.fetch_width = 8;
        c
    }

    /// All six generations in order.
    pub fn all_generations() -> Vec<FrontendConfig> {
        vec![
            FrontendConfig::m1(),
            FrontendConfig::m2(),
            FrontendConfig::m3(),
            FrontendConfig::m4(),
            FrontendConfig::m5(),
            FrontendConfig::m6(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generations_are_monotone_in_l2btb() {
        let gens = FrontendConfig::all_generations();
        for w in gens.windows(2) {
            assert!(w[0].btb.l2btb_entries <= w[1].btb.l2btb_entries);
        }
    }

    #[test]
    fn m2_matches_m1_except_name() {
        let m1 = FrontendConfig::m1();
        let m2 = FrontendConfig::m2();
        assert_eq!(m1.shp, m2.shp);
        assert_eq!(m1.btb, m2.btb);
        assert_ne!(m1.name, m2.name);
    }

    #[test]
    fn feature_introduction_order() {
        assert!(!FrontendConfig::m1().one_bubble_at);
        assert!(FrontendConfig::m3().one_bubble_at);
        assert!(!FrontendConfig::m4().zero_bubble_atot);
        assert!(FrontendConfig::m5().zero_bubble_atot);
        assert!(FrontendConfig::m5().mrb_entries.is_some());
        assert!(FrontendConfig::m6().indirect.hash_table.is_some());
        assert!(FrontendConfig::m5().indirect.hash_table.is_none());
    }

    #[test]
    fn m6_mbtb_is_50_percent_larger() {
        assert_eq!(
            FrontendConfig::m6().btb.mbtb_lines,
            FrontendConfig::m5().btb.mbtb_lines * 3 / 2
        );
    }
}
