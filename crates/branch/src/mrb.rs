//! The Mispredict Recovery Buffer (MRB), added in M5 (§IV.E, Figs. 6–7).
//!
//! After a mispredict to a chain of small taken-ending basic blocks, the
//! branch-prediction pipe needs ~3 cycles per block to discover each next
//! taken branch, so the core is fetch-starved. The MRB records, for
//! identified low-confidence branches, "the highest probability sequence of
//! the next three fetch addresses"; on a matching mispredict redirect those
//! addresses stream out in consecutive cycles, eliminating the prediction
//! delay (14 instructions in 5 cycles instead of 9 in the paper's example).
//! In the third stage the MRB-supplied target is checked against the newly
//! predicted one; agreement needs no correction.

/// Fetch addresses recorded per MRB entry (the paper uses three).
pub const MRB_SEQ_LEN: usize = 3;

#[derive(Debug, Clone, Copy)]
struct MrbEntry {
    /// The mispredicting branch PC this entry covers.
    branch_pc: u64,
    /// The recorded correct-path fetch targets following the redirect.
    seq: [u64; MRB_SEQ_LEN],
    len: u8,
    lru: u64,
}

/// Statistics for the MRB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MrbStats {
    /// Redirects that hit a recorded sequence.
    pub hits: u64,
    /// Redirects with no entry.
    pub misses: u64,
    /// Individual supplied addresses later confirmed by the predictor.
    pub addresses_confirmed: u64,
    /// Individual supplied addresses that disagreed (corrected, no gain).
    pub addresses_corrected: u64,
}

/// The recovery-sequence buffer.
#[derive(Debug, Clone)]
pub struct Mrb {
    entries: Vec<MrbEntry>,
    capacity: usize,
    stamp: u64,
    stats: MrbStats,
    /// In-flight playback: addresses remaining from the active hit.
    playback: Vec<u64>,
    /// In-flight recording after a mispredict: (branch pc, collected).
    recording: Option<(u64, Vec<u64>)>,
}

impl Mrb {
    /// An MRB holding `capacity` sequences.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Mrb {
        assert!(capacity > 0, "MRB capacity must be positive");
        Mrb {
            entries: Vec::with_capacity(capacity),
            capacity,
            stamp: 0,
            stats: MrbStats::default(),
            playback: Vec::new(),
            recording: None,
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> MrbStats {
        self.stats
    }

    /// A low-confidence branch at `branch_pc` just mispredicted. Starts
    /// playback if a sequence is recorded, and begins (re)recording the
    /// correct-path sequence that follows. Returns the number of fetch
    /// addresses the MRB will supply with zero prediction delay.
    pub fn on_mispredict(&mut self, branch_pc: u64) -> usize {
        self.stamp += 1;
        self.playback.clear();
        let found = self.entries.iter_mut().find(|e| e.branch_pc == branch_pc);
        let supplied = match found {
            Some(e) => {
                e.lru = self.stamp;
                self.stats.hits += 1;
                self.playback = e.seq[..e.len as usize].to_vec();
                self.playback.reverse(); // pop() yields them in order
                e.len as usize
            }
            None => {
                self.stats.misses += 1;
                0
            }
        };
        self.recording = Some((branch_pc, Vec::with_capacity(MRB_SEQ_LEN)));
        supplied
    }

    /// The front end reached the next taken-branch target `addr` on the
    /// correct path. Feeds recording, and — if playback is active — checks
    /// the MRB-supplied address against the real one. Returns `true` if
    /// this redirect's bubbles are covered by MRB playback.
    pub fn on_correct_path_target(&mut self, addr: u64) -> bool {
        // Recording side.
        let mut finished = None;
        if let Some((pc, seq)) = &mut self.recording {
            seq.push(addr);
            if seq.len() == MRB_SEQ_LEN {
                finished = Some((*pc, seq.clone()));
            }
        }
        if let Some((pc, seq)) = finished {
            self.install(pc, &seq);
            self.recording = None;
        }
        // Playback side.
        if let Some(supplied) = self.playback.pop() {
            if supplied == addr {
                self.stats.addresses_confirmed += 1;
                true
            } else {
                // Disagreement: correction needed, abandon the playback.
                self.stats.addresses_corrected += 1;
                self.playback.clear();
                false
            }
        } else {
            false
        }
    }

    fn install(&mut self, branch_pc: u64, seq: &[u64]) {
        self.stamp += 1;
        let mut entry = MrbEntry {
            branch_pc,
            seq: [0; MRB_SEQ_LEN],
            len: seq.len().min(MRB_SEQ_LEN) as u8,
            lru: self.stamp,
        };
        entry.seq[..entry.len as usize].copy_from_slice(&seq[..entry.len as usize]);
        if let Some(e) = self.entries.iter_mut().find(|e| e.branch_pc == branch_pc) {
            *e = entry;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
            return;
        }
        let victim = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.lru)
            .map(|(i, _)| i)
            .unwrap_or(0);
        self.entries[victim] = entry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_mispredict_records_second_plays_back() {
        let mut m = Mrb::new(8);
        // First mispredict at X: nothing recorded yet.
        assert_eq!(m.on_mispredict(0x4000), 0);
        // Correct path visits A, B, C.
        assert!(!m.on_correct_path_target(0xA0));
        assert!(!m.on_correct_path_target(0xB0));
        assert!(!m.on_correct_path_target(0xC0));
        // Second mispredict at X: sequence plays back.
        assert_eq!(m.on_mispredict(0x4000), 3);
        assert!(m.on_correct_path_target(0xA0));
        assert!(m.on_correct_path_target(0xB0));
        assert!(m.on_correct_path_target(0xC0));
        assert_eq!(m.stats().addresses_confirmed, 3);
    }

    #[test]
    fn diverging_path_stops_playback() {
        let mut m = Mrb::new(8);
        m.on_mispredict(0x4000);
        for a in [0xA0, 0xB0, 0xC0] {
            m.on_correct_path_target(a);
        }
        m.on_mispredict(0x4000);
        assert!(m.on_correct_path_target(0xA0));
        // Path diverges at the second block.
        assert!(!m.on_correct_path_target(0xBB));
        // Playback abandoned: third address not supplied.
        assert!(!m.on_correct_path_target(0xC0));
        assert_eq!(m.stats().addresses_corrected, 1);
    }

    #[test]
    fn sequence_is_rerecorded_after_divergence() {
        let mut m = Mrb::new(8);
        m.on_mispredict(0x4000);
        for a in [0xA0, 0xB0, 0xC0] {
            m.on_correct_path_target(a);
        }
        // Second occurrence records the *new* path.
        m.on_mispredict(0x4000);
        for a in [0xD0, 0xE0, 0xF0] {
            m.on_correct_path_target(a);
        }
        m.on_mispredict(0x4000);
        assert!(m.on_correct_path_target(0xD0));
        assert!(m.on_correct_path_target(0xE0));
        assert!(m.on_correct_path_target(0xF0));
    }

    #[test]
    fn capacity_evicts_lru() {
        let mut m = Mrb::new(2);
        for pc in [0x1000u64, 0x2000, 0x3000] {
            m.on_mispredict(pc);
            for a in [0xA0, 0xB0, 0xC0] {
                m.on_correct_path_target(a);
            }
        }
        // 0x1000 evicted.
        assert_eq!(m.on_mispredict(0x1000), 0);
        // Consume recording slots.
        for a in [0xA0, 0xB0, 0xC0] {
            m.on_correct_path_target(a);
        }
        assert_eq!(m.on_mispredict(0x3000), 3);
    }
}

mod snapshot_impl {
    use super::*;
    use exynos_snapshot::{tags, Decoder, Encoder, Snapshot, SnapshotError};

    impl Snapshot for Mrb {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::MRB);
            enc.seq(self.entries.len());
            for e in &self.entries {
                enc.u64(e.branch_pc);
                for a in e.seq {
                    enc.u64(a);
                }
                enc.u8(e.len);
                enc.u64(e.lru);
            }
            enc.u64(self.stamp);
            enc.seq(self.playback.len());
            for a in &self.playback {
                enc.u64(*a);
            }
            match &self.recording {
                Some((pc, addrs)) => {
                    enc.u8(1);
                    enc.u64(*pc);
                    enc.seq(addrs.len());
                    for a in addrs {
                        enc.u64(*a);
                    }
                }
                None => enc.u8(0),
            }
            enc.u64(self.stats.hits);
            enc.u64(self.stats.misses);
            enc.u64(self.stats.addresses_confirmed);
            enc.u64(self.stats.addresses_corrected);
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::MRB)?;
            let n = dec.seq(8)?;
            if n > self.capacity {
                return Err(SnapshotError::Geometry {
                    what: "mrb entries",
                    expected: self.capacity as u64,
                    found: n as u64,
                });
            }
            self.entries.clear();
            for _ in 0..n {
                let branch_pc = dec.u64()?;
                let mut seq = [0u64; MRB_SEQ_LEN];
                for a in &mut seq {
                    *a = dec.u64()?;
                }
                let len = dec.u8()?;
                if len as usize > MRB_SEQ_LEN {
                    return Err(SnapshotError::Corrupt { what: "mrb entry length" });
                }
                let lru = dec.u64()?;
                self.entries.push(MrbEntry { branch_pc, seq, len, lru });
            }
            self.stamp = dec.u64()?;
            let p = dec.seq(8)?;
            self.playback.clear();
            for _ in 0..p {
                self.playback.push(dec.u64()?);
            }
            self.recording = match dec.u8()? {
                0 => None,
                1 => {
                    let pc = dec.u64()?;
                    let a = dec.seq(8)?;
                    let mut addrs = Vec::with_capacity(a);
                    for _ in 0..a {
                        addrs.push(dec.u64()?);
                    }
                    Some((pc, addrs))
                }
                _ => return Err(SnapshotError::Corrupt { what: "mrb recording flag" }),
            };
            self.stats.hits = dec.u64()?;
            self.stats.misses = dec.u64()?;
            self.stats.addresses_confirmed = dec.u64()?;
            self.stats.addresses_corrected = dec.u64()?;
            dec.end_section()
        }
    }
}
