//! The Scaled Hashed Perceptron (SHP) conditional predictor (§IV.A).
//!
//! * N weight tables (8×1024 in M1, doubled rows in M3, 16×2048 in M5/M6)
//!   of 8-bit sign/magnitude weights;
//! * each table indexed by `hash(PC) ^ fold(GHIST, interval_i) ^
//!   fold(PHIST, interval_i)`;
//! * prediction = `2*bias + Σ table weights ≥ 0` where the local BIAS
//!   weight lives in the branch's BTB entry (the "scaled" part — the bias
//!   is doubled, after Jiménez's optimized scaled neural predictor);
//! * update on a mispredict, or on a correct prediction whose |sum| fails
//!   to exceed an O-GEHL-style adaptively trained threshold;
//! * always-taken branches do not update the weight tables (anti-aliasing,
//!   §IV.A).

use crate::history::{GlobalHistory, PathHistory};

/// Saturating sign/magnitude 8-bit weight: −127..=127.
pub const WEIGHT_MAX: i32 = 127;
/// Minimum weight value.
pub const WEIGHT_MIN: i32 = -127;

/// Geometry and tuning of an SHP instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ShpConfig {
    /// Number of weight tables.
    pub tables: usize,
    /// Rows per table (power of two).
    pub rows: usize,
    /// Total GHIST length the longest table sees (165 in M1, 206 in M5).
    pub ghist_len: usize,
    /// Total PHIST entries the longest table sees (80 in M1).
    pub phist_len: usize,
    /// Initial training threshold (O-GEHL adapts it at runtime).
    pub initial_theta: i32,
    /// Multiplier applied to the BTB bias weight in the sum (the paper
    /// doubles it, after Jiménez's scaled neural predictor; 1 disables
    /// the scaling for ablation).
    pub bias_scale: i32,
}

impl ShpConfig {
    /// M1/M2 geometry: 8 tables × 1024 weights, 165-bit GHIST, 80-entry
    /// PHIST (8.0 KB of weights — Table II).
    pub fn m1() -> ShpConfig {
        ShpConfig {
            tables: 8,
            rows: 1024,
            ghist_len: 165,
            phist_len: 80,
            initial_theta: 18,
            bias_scale: 2,
        }
    }

    /// M3/M4 geometry: rows doubled to reduce aliasing (16.0 KB).
    pub fn m3() -> ShpConfig {
        ShpConfig {
            rows: 2048,
            ..ShpConfig::m1()
        }
    }

    /// M5/M6 geometry: 16 tables × 2048 weights, GHIST +25% and intervals
    /// rebalanced (32.0 KB).
    pub fn m5() -> ShpConfig {
        ShpConfig {
            tables: 16,
            rows: 2048,
            ghist_len: 206,
            phist_len: 100,
            initial_theta: 24,
            bias_scale: 2,
        }
    }

    /// Per-table GHIST interval lengths: a geometric series from 0 to
    /// `ghist_len` (table 0 sees no history — pure PC/bias — like O-GEHL).
    pub fn intervals(&self) -> Vec<usize> {
        let n = self.tables;
        (0..n)
            .map(|i| {
                if i == 0 {
                    0
                } else {
                    let ratio = (self.ghist_len as f64).powf(i as f64 / (n - 1) as f64);
                    ratio.round() as usize
                }
            })
            .collect()
    }

    /// Storage footprint of the weight tables in bytes (Table II's "SHP"
    /// column counts exactly this).
    pub fn storage_bytes(&self) -> usize {
        self.tables * self.rows
    }
}

/// The sum and metadata produced by a prediction, consumed by the update.
#[derive(Debug, Clone, Copy)]
pub struct ShpPrediction {
    /// Predicted direction.
    pub taken: bool,
    /// The perceptron output (2*bias + Σ weights).
    pub sum: i32,
    /// Row index used in each table (recorded for the update).
    indices: [u16; 16],
    /// Number of valid entries in `indices`.
    n: u8,
}

/// The Scaled Hashed Perceptron predictor.
#[derive(Debug, Clone)]
pub struct Shp {
    cfg: ShpConfig,
    intervals: Vec<usize>,
    /// Per-table PHIST interval lengths, derived from `intervals` at
    /// construction (the derivation divides; the lookup path must not).
    plens: Vec<usize>,
    /// `tables × rows` weights, row-major.
    weights: Vec<i8>,
    /// Adaptive threshold (O-GEHL).
    theta: i32,
    /// Saturating counter steering threshold adaptation.
    theta_ctr: i32,
    idx_bits: u32,
}

impl Shp {
    /// Build an SHP from `cfg`.
    ///
    /// # Panics
    /// Panics if `rows` is not a power of two or `tables` exceeds 16.
    pub fn new(cfg: ShpConfig) -> Shp {
        assert!(cfg.rows.is_power_of_two(), "rows must be a power of two");
        assert!(cfg.tables >= 1 && cfg.tables <= 16, "1..=16 tables supported");
        let intervals = cfg.intervals();
        let plens = intervals
            .iter()
            .map(|&glen| {
                (glen.min(cfg.phist_len) * cfg.phist_len / cfg.ghist_len.max(1))
                    .min(cfg.phist_len)
            })
            .collect();
        let idx_bits = cfg.rows.trailing_zeros();
        Shp {
            weights: vec![0; cfg.tables * cfg.rows],
            intervals,
            plens,
            theta: cfg.initial_theta,
            theta_ctr: 0,
            cfg,
            idx_bits,
        }
    }

    /// The configuration this SHP was built with.
    pub fn config(&self) -> &ShpConfig {
        &self.cfg
    }

    /// Current adaptive threshold.
    pub fn theta(&self) -> i32 {
        self.theta
    }

    /// Fault-injection hook: invert one weight, chosen deterministically
    /// from `salt` (a zero weight flips to full magnitude). A soft error
    /// in the weight array — never detectable, only trainable-away.
    pub fn flip_weight(&mut self, salt: u64) {
        if self.weights.is_empty() {
            return;
        }
        let i = salt as usize % self.weights.len();
        let w = self.weights[i] as i32;
        self.weights[i] = if w == 0 {
            WEIGHT_MAX as i8
        } else {
            (-w).clamp(WEIGHT_MIN, WEIGHT_MAX) as i8
        };
    }

    #[inline]
    fn pc_hash(&self, pc: u64, table: usize) -> u32 {
        // Cheap PC mix, diversified per table.
        let x = (pc >> 2) as u32;
        let t = table as u32;
        (x ^ (x >> self.idx_bits) ^ (x >> (2 * self.idx_bits)))
            .wrapping_mul(0x9E37_79B9)
            .rotate_left(t * 3)
    }

    /// Fill `out[..tables]` with the per-table row indices for `pc`
    /// under the given histories, returning the table count. Branchless:
    /// a zero-length interval folds to 0, so table 0's pure-PC index
    /// needs no special case. The scalar [`Shp::predict`] and the batch
    /// probe path share this kernel — same-geometry members of a
    /// lockstep batch reuse one row set, because the indices depend only
    /// on the (shared) trace-architectural histories and the geometry.
    #[inline]
    pub fn row_set(
        &self,
        pc: u64,
        ghist: &GlobalHistory,
        phist: &PathHistory,
        out: &mut [u16; 16],
    ) -> usize {
        let mask = (self.cfg.rows - 1) as u32;
        for t in 0..self.cfg.tables {
            let h = self.pc_hash(pc, t)
                ^ ghist.fold(self.intervals[t], self.idx_bits)
                ^ phist.fold(self.plens[t], self.idx_bits).rotate_left(1);
            out[t] = (h & mask) as u16;
        }
        self.cfg.tables
    }

    /// Branchless dot product over pre-computed row indices: the
    /// pow2-masked rows make every access `t * rows + idx`, so the
    /// per-table loop is a straight-line gather-and-add the compiler can
    /// unroll and vectorize.
    #[inline]
    fn dot(&self, indices: &[u16; 16], n: usize) -> i32 {
        let rows = self.cfg.rows;
        let mut sum = 0i32;
        for t in 0..n {
            sum += self.weights[t * rows + indices[t] as usize] as i32;
        }
        sum
    }

    /// Predict the direction of the conditional branch at `pc` given the
    /// speculative histories and the branch's BTB `bias` weight.
    #[inline]
    pub fn predict(
        &self,
        pc: u64,
        bias: i8,
        ghist: &GlobalHistory,
        phist: &PathHistory,
    ) -> ShpPrediction {
        let mut indices = [0u16; 16];
        let n = self.row_set(pc, ghist, phist, &mut indices);
        let sum = self.cfg.bias_scale * bias as i32 + self.dot(&indices, n);
        ShpPrediction {
            taken: sum >= 0,
            sum,
            indices,
            n: n as u8,
        }
    }

    /// Whether the predictor wants a weight update given the outcome:
    /// update on a mispredict, or when |sum| fails the threshold.
    #[inline]
    pub fn needs_update(&self, pred: &ShpPrediction, taken: bool) -> bool {
        pred.taken != taken || pred.sum.abs() <= self.theta
    }

    /// Train the weight tables toward `taken`, also adapting the threshold
    /// (O-GEHL threshold-fitting), and return the bias adjustment the
    /// caller must apply to the branch's BTB bias weight.
    ///
    /// `always_taken_filtered` implements §IV.A's anti-aliasing rule: when
    /// true (unconditional or so-far-always-taken branches), the weight
    /// tables are left untouched and only the threshold logic runs.
    pub fn update(
        &mut self,
        pred: &ShpPrediction,
        taken: bool,
        always_taken_filtered: bool,
    ) -> i8 {
        let mispredict = pred.taken != taken;
        // O-GEHL adaptive threshold: mispredicts push theta up, low-margin
        // correct predictions push it down.
        if mispredict {
            self.theta_ctr += 1;
            if self.theta_ctr >= 7 {
                self.theta_ctr = 0;
                self.theta = (self.theta + 1).min(255);
            }
        } else if pred.sum.abs() <= self.theta {
            self.theta_ctr -= 1;
            if self.theta_ctr <= -7 {
                self.theta_ctr = 0;
                self.theta = (self.theta - 1).max(1);
            }
        }
        if !self.needs_update(pred, taken) {
            return 0;
        }
        let delta: i32 = if taken { 1 } else { -1 };
        if !always_taken_filtered {
            for t in 0..pred.n as usize {
                let w = &mut self.weights[t * self.cfg.rows + pred.indices[t] as usize];
                let nv = (*w as i32 + delta).clamp(WEIGHT_MIN, WEIGHT_MAX);
                *w = nv as i8;
            }
        }
        delta as i8
    }
}

/// Clamp-add a bias delta into a stored i8 bias weight.
#[inline]
pub fn apply_bias_delta(bias: i8, delta: i8) -> i8 {
    (bias as i32 + delta as i32).clamp(WEIGHT_MIN, WEIGHT_MAX) as i8
}

/// Batched SoA probe: predict the branch at `pc` for every member of a
/// lockstep population in one pass, appending one [`ShpPrediction`] per
/// member to `out` (cleared first) in member order.
///
/// Lockstep members consume the same trace, so the architectural
/// GHIST/PHIST content is identical across them — only the weight
/// tables and the per-branch BTB bias are member state. Consecutive
/// same-geometry members therefore reuse one [`Shp::row_set`], and the
/// per-member inner loop is the branchless pow2-masked dot product.
/// Results are bit-identical to calling [`Shp::predict`] per member.
///
/// # Panics
/// Panics if `biases` and `shps` have different lengths.
pub fn predict_batch(
    shps: &[&Shp],
    pc: u64,
    biases: &[i8],
    ghist: &GlobalHistory,
    phist: &PathHistory,
    out: &mut Vec<ShpPrediction>,
) {
    assert_eq!(shps.len(), biases.len(), "one bias per member");
    out.clear();
    out.reserve(shps.len());
    let mut m = 0;
    while m < shps.len() {
        let lead = shps[m];
        let mut end = m + 1;
        while end < shps.len() && shps[end].cfg == lead.cfg {
            end += 1;
        }
        let mut indices = [0u16; 16];
        let n = lead.row_set(pc, ghist, phist, &mut indices);
        for i in m..end {
            let sum = shps[i].cfg.bias_scale * biases[i] as i32 + shps[i].dot(&indices, n);
            out.push(ShpPrediction { taken: sum >= 0, sum, indices, n: n as u8 });
        }
        m = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histories() -> (GlobalHistory, PathHistory) {
        (GlobalHistory::new(), PathHistory::new())
    }

    /// Drive one branch through the predictor `n` times with a fixed
    /// outcome function; return the mispredict count.
    fn train_run(
        shp: &mut Shp,
        pc: u64,
        n: usize,
        mut outcome: impl FnMut(usize, &GlobalHistory) -> bool,
    ) -> usize {
        let (mut g, mut p) = histories();
        let mut bias = 0i8;
        let mut miss = 0;
        for i in 0..n {
            let pred = shp.predict(pc, bias, &g, &p);
            let t = outcome(i, &g);
            if pred.taken != t {
                miss += 1;
            }
            let d = shp.update(&pred, t, false);
            bias = apply_bias_delta(bias, d);
            g.push(t);
            p.push(pc);
        }
        miss
    }

    #[test]
    fn learns_always_taken_quickly() {
        let mut shp = Shp::new(ShpConfig::m1());
        let miss = train_run(&mut shp, 0x4000, 200, |_, _| true);
        assert!(miss <= 2, "got {miss} mispredicts");
    }

    #[test]
    fn learns_alternating_pattern() {
        let mut shp = Shp::new(ShpConfig::m1());
        let miss = train_run(&mut shp, 0x4000, 500, |i, _| i % 2 == 0);
        assert!(miss < 30, "alternating should be learned, got {miss}");
    }

    #[test]
    fn learns_history_correlated_branch() {
        // Outcome = outcome 4 branches ago: learnable with GHIST >= 4.
        let mut shp = Shp::new(ShpConfig::m1());
        let mut past = vec![true; 8];
        let miss = train_run(&mut shp, 0x4000, 2000, move |i, _| {
            let t = if i < 4 { i % 3 == 0 } else { past[(i - 4) % 8] };
            past[i % 8] = t;
            t
        });
        assert!(
            (miss as f64) < 2000.0 * 0.10,
            "history-correlated branch should be <10% mispredicted, got {miss}"
        );
    }

    #[test]
    fn random_branch_is_hard() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
        let mut shp = Shp::new(ShpConfig::m1());
        let miss = train_run(&mut shp, 0x4000, 2000, move |_, _| rng.gen_bool(0.5));
        assert!(
            miss > 600,
            "random outcomes can't be predicted well, got {miss}/2000"
        );
    }

    #[test]
    fn predict_batch_matches_scalar_across_geometries() {
        // Mixed-geometry population: m1, m1, m3, m5, m5 — trained apart
        // so weights differ, probed over shared histories.
        let mut shps = vec![
            Shp::new(ShpConfig::m1()),
            Shp::new(ShpConfig::m1()),
            Shp::new(ShpConfig::m3()),
            Shp::new(ShpConfig::m5()),
            Shp::new(ShpConfig::m5()),
        ];
        for (k, shp) in shps.iter_mut().enumerate() {
            let _ = train_run(shp, 0x4000, 300, move |i, _| (i + k) % (k + 2) == 0);
        }
        let (mut g, mut p) = histories();
        for i in 0..40 {
            g.push(i % 3 == 0);
            p.push(0x4000 + 4 * i);
        }
        let biases: Vec<i8> = vec![5, -3, 0, 127, -127];
        let refs: Vec<&Shp> = shps.iter().collect();
        let mut out = Vec::new();
        for pc in [0x4000u64, 0x77F4, 0xDEAD_BEE0] {
            predict_batch(&refs, pc, &biases, &g, &p, &mut out);
            assert_eq!(out.len(), shps.len());
            for (i, b) in out.iter().enumerate() {
                let scalar = shps[i].predict(pc, biases[i], &g, &p);
                assert_eq!(b.taken, scalar.taken);
                assert_eq!(b.sum, scalar.sum);
                assert_eq!(b.indices, scalar.indices);
                assert_eq!(b.n, scalar.n);
            }
        }
    }

    #[test]
    fn m5_config_has_more_storage() {
        assert_eq!(ShpConfig::m1().storage_bytes(), 8 * 1024);
        assert_eq!(ShpConfig::m3().storage_bytes(), 16 * 1024);
        assert_eq!(ShpConfig::m5().storage_bytes(), 32 * 1024);
    }

    #[test]
    fn intervals_are_monotone_and_span_full_history() {
        for cfg in [ShpConfig::m1(), ShpConfig::m3(), ShpConfig::m5()] {
            let iv = cfg.intervals();
            assert_eq!(iv[0], 0);
            assert_eq!(*iv.last().unwrap(), cfg.ghist_len);
            for w in iv.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn threshold_adapts_upward_under_mispredicts() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let mut shp = Shp::new(ShpConfig::m1());
        let theta0 = shp.theta();
        let _ = train_run(&mut shp, 0x4000, 3000, move |_, _| rng.gen_bool(0.5));
        assert!(shp.theta() > theta0, "theta should rise on noisy branches");
    }

    #[test]
    fn always_taken_filter_leaves_weights_untouched() {
        let mut shp = Shp::new(ShpConfig::m1());
        let (g, p) = histories();
        let before = shp.weights.clone();
        let pred = shp.predict(0x4000, 0, &g, &p);
        let d = shp.update(&pred, true, true);
        assert_eq!(shp.weights, before);
        // Bias still trains.
        assert_eq!(d, 1);
    }

    #[test]
    fn bias_scaling_doubles_bias_contribution() {
        let shp = Shp::new(ShpConfig::m1());
        let (g, p) = histories();
        let a = shp.predict(0x4000, 10, &g, &p);
        let b = shp.predict(0x4000, 11, &g, &p);
        assert_eq!(b.sum - a.sum, 2);
    }

    #[test]
    fn weights_saturate() {
        let mut shp = Shp::new(ShpConfig::m1());
        let _ = train_run(&mut shp, 0x4000, 2000, |_, _| true);
        assert!(shp.weights.iter().all(|&w| (w as i32) <= WEIGHT_MAX));
        assert_eq!(apply_bias_delta(127, 1), 127);
        assert_eq!(apply_bias_delta(-127, -1), -127);
    }
}

mod snapshot_impl {
    use super::*;
    use exynos_snapshot::{tags, Decoder, Encoder, Snapshot, SnapshotError};

    impl Snapshot for Shp {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::SHP);
            enc.seq(self.weights.len());
            for w in &self.weights {
                enc.i8(*w);
            }
            enc.i32(self.theta);
            enc.i32(self.theta_ctr);
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::SHP)?;
            let n = dec.seq(1)?;
            if n != self.weights.len() {
                return Err(SnapshotError::Geometry {
                    what: "shp weight table",
                    expected: self.weights.len() as u64,
                    found: n as u64,
                });
            }
            for w in &mut self.weights {
                *w = dec.i8()?;
            }
            self.theta = dec.i32()?;
            self.theta_ctr = dec.i32()?;
            dec.end_section()
        }
    }
}
