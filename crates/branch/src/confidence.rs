//! Branch-confidence estimation (Jacobsen/Rotenberg/Smith style), used by
//! the M5 Mispredict Recovery Buffer to identify low-confidence branches
//! (§IV.E, \[19\] in the paper).

/// A table of resetting saturating counters: correct predictions increment,
/// mispredicts reset. A branch is low-confidence while its counter is below
/// the threshold.
#[derive(Debug, Clone)]
pub struct ConfidenceTable {
    ctrs: Vec<u8>,
    threshold: u8,
    max: u8,
}

impl ConfidenceTable {
    /// A table with `rows` counters (power of two), saturating at `max`,
    /// with low-confidence below `threshold`.
    ///
    /// # Panics
    /// Panics if `rows` is not a power of two or `threshold > max`.
    pub fn new(rows: usize, threshold: u8, max: u8) -> ConfidenceTable {
        assert!(rows.is_power_of_two(), "rows must be a power of two");
        assert!(threshold <= max, "threshold must not exceed max");
        ConfidenceTable {
            ctrs: vec![0; rows],
            threshold,
            max,
        }
    }

    /// Default geometry used by the M5 front end.
    pub fn m5() -> ConfidenceTable {
        ConfidenceTable::new(1024, 6, 15)
    }

    fn index(&self, pc: u64) -> usize {
        let h = (pc >> 2) as u32;
        ((h ^ (h >> 11)).wrapping_mul(0x9E37_79B9) >> 16) as usize & (self.ctrs.len() - 1)
    }

    /// Whether the branch at `pc` is currently low-confidence.
    pub fn is_low_confidence(&self, pc: u64) -> bool {
        self.ctrs[self.index(pc)] < self.threshold
    }

    /// Reset every counter to the untrained (low-confidence) state,
    /// keeping the configured geometry and thresholds.
    pub fn clear(&mut self) {
        self.ctrs.fill(0);
    }

    /// Record a prediction outcome for the branch at `pc`.
    ///
    /// Returns `Some(now_low)` when the update flipped the branch across
    /// the confidence threshold (`true` = became low-confidence), `None`
    /// when the classification is unchanged — the flip feeds the
    /// telemetry event trace.
    pub fn record(&mut self, pc: u64, correct: bool) -> Option<bool> {
        let i = self.index(pc);
        let was_low = self.ctrs[i] < self.threshold;
        if correct {
            self.ctrs[i] = (self.ctrs[i] + 1).min(self.max);
        } else {
            self.ctrs[i] = 0;
        }
        let now_low = self.ctrs[i] < self.threshold;
        if was_low != now_low {
            Some(now_low)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_low_confidence() {
        let c = ConfidenceTable::m5();
        assert!(c.is_low_confidence(0x4000));
    }

    #[test]
    fn correct_streak_builds_confidence() {
        let mut c = ConfidenceTable::m5();
        for _ in 0..8 {
            c.record(0x4000, true);
        }
        assert!(!c.is_low_confidence(0x4000));
    }

    #[test]
    fn mispredict_resets() {
        let mut c = ConfidenceTable::m5();
        for _ in 0..15 {
            c.record(0x4000, true);
        }
        c.record(0x4000, false);
        assert!(c.is_low_confidence(0x4000));
    }

    #[test]
    fn counter_saturates_at_max() {
        let mut c = ConfidenceTable::new(16, 2, 3);
        for _ in 0..100 {
            c.record(0x4000, true);
        }
        assert_eq!(c.ctrs[c.index(0x4000)], 3);
    }

    #[test]
    fn record_reports_threshold_flips() {
        let mut c = ConfidenceTable::new(16, 2, 3);
        assert_eq!(c.record(0x4000, true), None, "0→1 stays low");
        assert_eq!(c.record(0x4000, true), Some(false), "1→2 crosses up");
        assert_eq!(c.record(0x4000, true), None, "2→3 stays high");
        assert_eq!(c.record(0x4000, false), Some(true), "reset crosses down");
        assert_eq!(c.record(0x4000, false), None, "already low");
    }

    #[test]
    #[should_panic]
    fn bad_threshold_rejected() {
        let _ = ConfidenceTable::new(16, 9, 3);
    }
}

mod snapshot_impl {
    use super::*;
    use exynos_snapshot::{tags, Decoder, Encoder, Snapshot, SnapshotError};

    impl Snapshot for ConfidenceTable {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::CONFIDENCE);
            enc.seq(self.ctrs.len());
            enc.bytes(&self.ctrs);
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::CONFIDENCE)?;
            let n = dec.seq(1)?;
            if n != self.ctrs.len() {
                return Err(SnapshotError::Geometry {
                    what: "confidence table",
                    expected: self.ctrs.len() as u64,
                    found: n as u64,
                });
            }
            for c in &mut self.ctrs {
                *c = dec.u8()?;
            }
            dec.end_section()
        }
    }
}
