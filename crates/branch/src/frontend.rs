//! The per-generation front-end prediction pipeline.
//!
//! Consumes the architectural instruction stream (trace-driven, like the
//! paper's model, §II) and produces per-instruction fetch-timing feedback:
//! how many prediction-pipe bubbles precede the instruction, and whether a
//! pipeline-refilling redirect (mispredict / branch discovery / trace gap)
//! occurs at it. The out-of-order core model turns that feedback into fetch
//! cycles.
//!
//! Bubble accounting per predicted-taken branch:
//!
//! * µBTB locked hit — 0 bubbles (§IV.B), with the mBTB/SHP clock-gated;
//! * ZAT/ZOT replicated target — 0 bubbles (M5+, §IV.E);
//! * 1AT always-taken mBTB hit — 1 bubble (M3+, §IV.C);
//! * ordinary mBTB hit — 2 bubbles;
//! * vBTB hit — 3 bubbles (extra access latency, §IV.A);
//! * L2BTB fill — `l2_fill_latency` bubbles (§IV.D);
//! * VPC iterations / indirect-hash latency add on top (§IV.F);
//! * MRB-covered post-mispredict redirects are free (M5+, §IV.E).

use crate::btb::{BtbEntry, BtbHierarchy, BtbHit};
use crate::config::FrontendConfig;
use crate::confidence::ConfidenceTable;
use crate::error::PredictorError;
use crate::history::{GlobalHistory, PathHistory};
use crate::indirect::IndirectPredictor;
use crate::mrb::{Mrb, MrbStats};
use crate::ras::{Ras, RasStats};
use crate::shp::{apply_bias_delta, Shp, ShpPrediction};
use crate::ubtb::{MicroBtb, UbtbPrediction};
use exynos_secure::cipher::{decrypt_target, encrypt_target};
use exynos_secure::context::{compute_context_hash, ContextHash, ContextId, EntropySources};
use exynos_trace::{BranchKind, Inst};

/// Why the front end must refill the pipeline at an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Redirect {
    /// A branch direction or target mispredict resolved at execute.
    Mispredict,
    /// A taken branch absent from every BTB level (discovery).
    Discovery,
    /// A PC discontinuity in the trace (phase switch / context change).
    TraceGap,
}

/// Per-instruction timing feedback to the core model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchFeedback {
    /// Prediction-pipe bubbles charged before this instruction's fetch
    /// group continues.
    pub bubbles: u32,
    /// Pipeline-refill event at this instruction, if any.
    pub redirect: Option<Redirect>,
}

impl FetchFeedback {
    /// No delay.
    pub const NONE: FetchFeedback = FetchFeedback {
        bubbles: 0,
        redirect: None,
    };
}

/// Aggregate front-end statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct FrontendStats {
    /// Instructions observed.
    pub instructions: u64,
    /// Branches observed.
    pub branches: u64,
    /// Conditional branches observed.
    pub cond_branches: u64,
    /// Taken branches observed.
    pub taken_branches: u64,
    /// Conditional direction mispredicts.
    pub cond_mispredicts: u64,
    /// Indirect (non-return) target mispredicts.
    pub indirect_mispredicts: u64,
    /// Return-target mispredicts.
    pub return_mispredicts: u64,
    /// Taken branches discovered missing from all BTBs.
    pub discoveries: u64,
    /// Trace-gap redirects.
    pub trace_gaps: u64,
    /// Total prediction-pipe bubbles charged.
    pub bubbles: u64,
    /// Taken redirects served with zero bubbles by ZAT/ZOT replication.
    pub zat_zot_zero_bubble: u64,
    /// Taken redirects served with one bubble by the 1AT path.
    pub one_bubble_at: u64,
    /// Taken redirects served bubble-free by µBTB lock.
    pub ubtb_zero_bubble: u64,
    /// Redirects whose refill was covered by MRB playback.
    pub mrb_covered: u64,
    /// Branch-pair pattern counts (§IV.A: 60%/24%/16%).
    pub pair_lead_taken: u64,
    /// Pairs where the lead was not-taken and the second was taken.
    pub pair_second_taken: u64,
    /// Pairs where both branches were not-taken.
    pub pair_both_not_taken: u64,
    /// Fetch-line lookups skipped by the Empty Line Optimization (power
    /// proxy, §IV.E).
    pub elo_skipped_lookups: u64,
    /// SHP lookups performed (power proxy; gated under µBTB lock).
    pub shp_lookups: u64,
    /// Confidence-table crossings into low confidence (MRB eligibility).
    pub conf_flips_to_low: u64,
    /// Confidence-table crossings back to high confidence.
    pub conf_flips_to_high: u64,
}

impl FrontendStats {
    /// Mispredicts per kilo-instruction — the paper's MPKI metric
    /// (direction + target + discovery mispredicts).
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        let miss = self.cond_mispredicts
            + self.indirect_mispredicts
            + self.return_mispredicts
            + self.discoveries;
        miss as f64 * 1000.0 / self.instructions as f64
    }

    /// Total mispredict-class events.
    pub fn total_mispredicts(&self) -> u64 {
        self.cond_mispredicts
            + self.indirect_mispredicts
            + self.return_mispredicts
            + self.discoveries
    }
}

/// The assembled front end of one generation.
#[derive(Debug, Clone)]
pub struct FrontEnd {
    cfg: FrontendConfig,
    shp: Shp,
    ghist: GlobalHistory,
    phist: PathHistory,
    ubtb: MicroBtb,
    btb: BtbHierarchy,
    ras: Ras,
    indirect: IndirectPredictor,
    confidence: ConfidenceTable,
    mrb: Option<Mrb>,
    /// Security machinery (used when `cfg.encrypt_targets`).
    entropy: EntropySources,
    key: ContextHash,
    /// Next expected PC (trace-gap detection).
    expected_pc: Option<u64>,
    /// Previous predicted-taken branch (for ZAT/ZOT replication learning).
    last_taken_branch: Option<(u64, u64)>, // (pc, target)
    /// Pending zero-bubble redirect for the branch at this PC with this
    /// target, granted by the previous branch's replicated_next.
    pending_zero_bubble: Option<(u64, u64)>,
    /// Branch-pair state: true while waiting for the second of a pair.
    pair_pending_second: bool,
    /// Empty Line Optimization: learned "line has no branches" bits.
    elo_bits: Vec<u64>,
    /// Line currently being scanned and whether a branch was seen in it.
    cur_line: u64,
    cur_line_had_branch: bool,
    stats: FrontendStats,
}

impl FrontEnd {
    /// Build a front end for `cfg`, keyed initially to ASID 0.
    pub fn new(cfg: FrontendConfig) -> FrontEnd {
        let entropy = EntropySources::from_seed(0xE5_EC0DE);
        let key = compute_context_hash(&entropy, ContextId::user(0, 0));
        FrontEnd {
            shp: Shp::new(cfg.shp.clone()),
            ghist: GlobalHistory::new(),
            phist: PathHistory::new(),
            ubtb: MicroBtb::new(cfg.ubtb.clone()),
            btb: BtbHierarchy::new(cfg.btb.clone()),
            ras: Ras::new(cfg.ras_entries, key),
            indirect: IndirectPredictor::new(cfg.indirect.clone(), cfg.indirect_chains),
            confidence: ConfidenceTable::m5(),
            mrb: cfg.mrb_entries.map(Mrb::new),
            entropy,
            key,
            expected_pc: None,
            last_taken_branch: None,
            pending_zero_bubble: None,
            pair_pending_second: false,
            elo_bits: vec![0; 4096 / 64],
            cur_line: u64::MAX,
            cur_line_had_branch: false,
            stats: FrontendStats::default(),
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FrontendConfig {
        &self.cfg
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &FrontendStats {
        &self.stats
    }

    /// RAS statistics.
    pub fn ras_stats(&self) -> RasStats {
        self.ras.stats()
    }

    /// MRB statistics (zeroes when the generation has no MRB).
    pub fn mrb_stats(&self) -> MrbStats {
        self.mrb.as_ref().map(|m| m.stats()).unwrap_or_default()
    }

    /// µBTB statistics.
    pub fn ubtb_stats(&self) -> crate::ubtb::UbtbStats {
        self.ubtb.stats()
    }

    /// BTB hierarchy statistics.
    pub fn btb_stats(&self) -> crate::btb::BtbStats {
        self.btb.stats()
    }

    /// Indirect predictor statistics.
    pub fn indirect_stats(&self) -> crate::indirect::IndirectStats {
        self.indirect.stats()
    }

    /// Shared µBTB access (the UOC reads built bits through this).
    pub fn ubtb_mut(&mut self) -> &mut MicroBtb {
        &mut self.ubtb
    }

    /// Read-only µBTB access (telemetry gauges).
    pub fn ubtb(&self) -> &MicroBtb {
        &self.ubtb
    }

    /// Read-only SHP access (batched probe paths).
    pub fn shp(&self) -> &Shp {
        &self.shp
    }

    /// Read-only BTB-hierarchy access (batched probe paths).
    pub fn btb(&self) -> &BtbHierarchy {
        &self.btb
    }

    /// Read-only speculative-history access `(ghist, phist)` — lockstep
    /// population members share architectural history content, so the
    /// batched SHP probe borrows one member's registers for the group.
    pub fn histories(&self) -> (&GlobalHistory, &PathHistory) {
        (&self.ghist, &self.phist)
    }

    /// Switch to a new execution context: recompute CONTEXT_HASH. Stored
    /// indirect/RAS targets trained by the old context now decode to
    /// garbage (the §V property).
    pub fn set_context(&mut self, ctx: ContextId) {
        self.key = compute_context_hash(&self.entropy, ctx);
        self.ras.set_key(self.key);
    }

    /// Switch contexts with the *simple* mitigation the paper rejects for
    /// its cost (§V: "erasing all branch prediction state on a context
    /// change may be necessary in some context transitions, but come at
    /// the cost of having to retrain"): flush every predictor structure.
    pub fn set_context_flushing(&mut self, ctx: ContextId) {
        self.set_context(ctx);
        self.flush_predictors();
    }

    /// Flush every predictor structure without changing the context key.
    /// Clears any corruption (detected or silent) at the cost of a full
    /// retrain — the first rung of the core watchdog's degradation ladder,
    /// and the recovery action after a detected [`PredictorError`].
    pub fn flush_predictors(&mut self) {
        self.shp = Shp::new(self.cfg.shp.clone());
        self.ubtb = MicroBtb::new(self.cfg.ubtb.clone());
        self.btb = BtbHierarchy::new(self.cfg.btb.clone());
        // The RAS is cleared in place so its cumulative overflow/underflow
        // stats survive the flush (they describe the run, not the state).
        self.ras.clear();
        self.indirect = IndirectPredictor::new(self.cfg.indirect.clone(), self.cfg.indirect_chains);
        self.ghist = GlobalHistory::new();
        self.phist = PathHistory::new();
        self.mrb = self.cfg.mrb_entries.map(Mrb::new);
        self.last_taken_branch = None;
        self.pending_zero_bubble = None;
        self.expected_pc = None;
    }

    /// Reset every dynamic structure — predictors, history, confidence,
    /// line-scan transients — while keeping the cumulative [`stats`]
    /// (they describe the run so far, not the state). Part of the
    /// `stats()/clear()/snapshot` surface every stateful component
    /// exposes.
    ///
    /// [`stats`]: FrontEnd::stats
    pub fn clear(&mut self) {
        self.flush_predictors();
        self.confidence.clear();
        self.pair_pending_second = false;
        self.elo_bits.fill(0);
        self.cur_line = u64::MAX;
        self.cur_line_had_branch = false;
    }

    /// Rotate the context cipher key in place (CEASER-style re-keying,
    /// §V). Every sealed indirect/RAS target trained under the old key now
    /// decodes to garbage, so poisoned (or corrupted) encrypted state is
    /// neutralized without a structural flush. The final rung of the
    /// watchdog's degradation ladder.
    pub fn rekey(&mut self, salt: u64) {
        self.key = self.key.rotate(salt);
        self.ras.set_key(self.key);
    }

    // ---- fault-injection hooks (driven by exynos-core's FaultInjector) --

    /// Flip bits in one resident mBTB entry's stored target (silent,
    /// recoverable-by-retraining corruption). Returns whether an entry was
    /// hit.
    pub fn corrupt_btb_target(&mut self, salt: u64) -> bool {
        self.btb.corrupt_target(salt)
    }

    /// Corrupt one resident mBTB entry's PC tag out of its line window
    /// (detectable corruption: the next lookup of the line reports a
    /// [`PredictorError::BtbTagMismatch`]). Returns whether an entry was
    /// hit.
    pub fn corrupt_btb_tag(&mut self, salt: u64) -> bool {
        self.btb.corrupt_tag(salt)
    }

    /// Invert one SHP weight (soft error in the weight array).
    pub fn flip_shp_weight(&mut self, salt: u64) {
        self.shp.flip_weight(salt);
    }

    /// Forget all but the newest `keep` RAS entries (models a speculative
    /// repair gone wrong).
    pub fn truncate_ras(&mut self, keep: usize) {
        self.ras.truncate(keep);
    }

    fn seal(&self, kind: BranchKind, target: u64) -> u64 {
        if self.cfg.encrypt_targets && kind.is_indirect() {
            encrypt_target(self.key, target).raw_bits()
        } else {
            target
        }
    }

    fn unseal(&self, kind: BranchKind, stored: u64) -> u64 {
        if self.cfg.encrypt_targets && kind.is_indirect() {
            decrypt_target(self.key, exynos_secure::cipher::EncryptedTarget::from_raw(stored))
        } else {
            stored
        }
    }

    /// ELO bit index for a 128 B line.
    fn elo_index(line: u64) -> (usize, u64) {
        let h = (line ^ (line >> 12)) as usize & 4095;
        (h / 64, 1u64 << (h % 64))
    }

    fn elo_is_empty(&self, line: u64) -> bool {
        let (w, m) = Self::elo_index(line);
        self.elo_bits[w] & m != 0
    }

    fn elo_mark(&mut self, line: u64, empty: bool) {
        let (w, m) = Self::elo_index(line);
        if empty {
            self.elo_bits[w] |= m;
        } else {
            self.elo_bits[w] &= !m;
        }
    }

    /// Track 128 B fetch lines to learn branch-free lines (ELO).
    fn track_line(&mut self, pc: u64, is_branch: bool) {
        let line = pc >> 7;
        if line != self.cur_line {
            if self.cfg.empty_line_opt && self.cur_line != u64::MAX {
                self.elo_mark(self.cur_line, !self.cur_line_had_branch);
            }
            if self.cfg.empty_line_opt && self.elo_is_empty(line) {
                self.stats.elo_skipped_lookups += 1;
            }
            self.cur_line = line;
            self.cur_line_had_branch = false;
        }
        if is_branch {
            self.cur_line_had_branch = true;
            if self.cfg.empty_line_opt {
                self.elo_mark(line, false);
            }
        }
    }

    /// Branch-pair statistics (§IV.A): lead taken / second taken / both NT.
    fn track_pair(&mut self, taken: bool) {
        if !self.pair_pending_second {
            if taken {
                self.stats.pair_lead_taken += 1;
            } else {
                self.pair_pending_second = true;
            }
        } else {
            self.pair_pending_second = false;
            if taken {
                self.stats.pair_second_taken += 1;
            } else {
                self.stats.pair_both_not_taken += 1;
            }
        }
    }

    /// Process one instruction of the architectural stream.
    ///
    /// Detected predictor-state corruption surfaces as a typed
    /// [`PredictorError`]; the caller decides between recovery
    /// ([`FrontEnd::flush_predictors`]) and abort.
    pub fn on_inst(&mut self, inst: &Inst) -> Result<FetchFeedback, PredictorError> {
        self.stats.instructions += 1;
        // Trace-gap detection.
        let gap = match self.expected_pc {
            Some(e) if e != inst.pc => true,
            _ => false,
        };
        self.expected_pc = Some(inst.next_pc());
        self.track_line(inst.pc, inst.branch.is_some());
        if gap {
            self.stats.trace_gaps += 1;
            self.pending_zero_bubble = None;
            self.last_taken_branch = None;
            return Ok(FetchFeedback {
                bubbles: 0,
                redirect: Some(Redirect::TraceGap),
            });
        }
        match inst.branch {
            Some(b) => self.on_branch(inst.pc, b.kind, b.taken, b.target),
            None => Ok(FetchFeedback::NONE),
        }
    }

    fn on_branch(
        &mut self,
        pc: u64,
        kind: BranchKind,
        taken: bool,
        target: u64,
    ) -> Result<FetchFeedback, PredictorError> {
        if self.ras.depth() > self.ras.capacity() {
            return Err(PredictorError::RasDepthInvariant {
                depth: self.ras.depth(),
                capacity: self.ras.capacity(),
            });
        }
        self.stats.branches += 1;
        if kind.is_conditional() {
            self.stats.cond_branches += 1;
            self.track_pair(taken);
        }
        if taken {
            self.stats.taken_branches += 1;
        }

        // ---------------- Prediction ----------------
        let locked = self.ubtb.is_locked();
        let upred = self.ubtb.predict(pc);
        let mut used_ubtb = false;
        let mut pred_taken;
        let mut pred_target: Option<u64>;
        let mut bubbles: u32 = 0;
        let mut btb_entry: Option<(BtbEntry, BtbHit)> = None;
        let mut indirect_pred: Option<Option<u64>> = None;
        // SHP lookup made on the prediction path, reused at training time:
        // nothing between the two points touches the SHP tables, the
        // histories, or the entry bias, so recomputing it would return the
        // same rows.
        let mut shp_pred: Option<ShpPrediction> = None;
        let mut ras_popped = false;

        if locked {
            if let UbtbPrediction::Hit { taken: t, target: tg } = upred {
                used_ubtb = true;
                pred_taken = match kind {
                    BranchKind::CondDirect => t,
                    _ => true,
                };
                pred_target = Some(match kind {
                    BranchKind::Return => {
                        // Returns still use the RAS even under lock.
                        ras_popped = true;
                        self.ras.pop().unwrap_or(tg)
                    }
                    _ => tg,
                });
                if pred_taken {
                    self.stats.ubtb_zero_bubble += 1;
                }
            } else {
                pred_taken = false;
                pred_target = None;
            }
        } else {
            pred_taken = false;
            pred_target = None;
        }

        if !used_ubtb {
            // Main predictor path.
            btb_entry = self.btb.lookup(pc)?;
            match btb_entry {
                Some((entry, hit)) => {
                    // Direction.
                    pred_taken = match kind {
                        BranchKind::CondDirect => {
                            self.stats.shp_lookups += 1;
                            if entry.always_taken {
                                true
                            } else {
                                let p =
                                    self.shp.predict(pc, entry.bias, &self.ghist, &self.phist);
                                shp_pred = Some(p);
                                p.taken
                            }
                        }
                        _ => true,
                    };
                    // Target.
                    pred_target = if pred_taken {
                        match kind {
                            BranchKind::Return => {
                                ras_popped = true;
                                self.ras.pop()
                            }
                            BranchKind::IndirectJump | BranchKind::IndirectCall => {
                                // Chains store CONTEXT_HASH-sealed targets;
                                // the raw (sealed) prediction is kept for
                                // training, the unsealed one drives fetch.
                                let p = self
                                    .indirect
                                    .predict(pc, &self.shp, &self.ghist, &self.phist);
                                bubbles += p.extra_cycles;
                                indirect_pred = Some(p.target);
                                p.target.map(|t| self.unseal(kind, t))
                            }
                            _ => Some(self.unseal(kind, entry.target)),
                        }
                    } else {
                        None
                    };
                    // Taken-redirect bubbles by serving structure.
                    if pred_taken {
                        let base = match hit {
                            BtbHit::Main => {
                                if self.cfg.zero_bubble_atot
                                    && self
                                        .pending_zero_bubble
                                        .map(|(zpc, ztg)| {
                                            zpc == pc && Some(ztg) == pred_target
                                        })
                                        .unwrap_or(false)
                                {
                                    self.stats.zat_zot_zero_bubble += 1;
                                    0
                                } else if self.cfg.one_bubble_at && entry.always_taken {
                                    self.stats.one_bubble_at += 1;
                                    1
                                } else {
                                    self.cfg.taken_bubbles
                                }
                            }
                            BtbHit::Virtual => self.cfg.taken_bubbles + 1,
                            BtbHit::Level2 => self.cfg.btb.l2_fill_latency,
                        };
                        bubbles += base;
                    }
                }
                None => {
                    // Not in any BTB: implicitly predicted not-taken.
                    pred_taken = false;
                    pred_target = None;
                }
            }
        }
        self.pending_zero_bubble = None;

        // ---------------- Resolution ----------------
        let dir_wrong = pred_taken != taken;
        let target_wrong = taken && pred_taken && pred_target != Some(target);
        let discovered = btb_entry.is_none() && !used_ubtb && taken;
        let mispredicted = dir_wrong || target_wrong;
        let correct = !mispredicted && !discovered;

        let mut redirect = None;
        if discovered {
            self.stats.discoveries += 1;
            redirect = Some(Redirect::Discovery);
        } else if mispredicted {
            match kind {
                BranchKind::CondDirect => self.stats.cond_mispredicts += 1,
                BranchKind::Return => self.stats.return_mispredicts += 1,
                BranchKind::IndirectJump | BranchKind::IndirectCall => {
                    self.stats.indirect_mispredicts += 1
                }
                _ => self.stats.discoveries += 1, // direct target drift
            }
            redirect = Some(Redirect::Mispredict);
        }

        // ---------------- MRB ----------------
        if let Some(mrb) = &mut self.mrb {
            if redirect == Some(Redirect::Mispredict) {
                if self.confidence.is_low_confidence(pc) {
                    mrb.on_mispredict(pc);
                }
            } else if taken && !mispredicted {
                // Correct-path taken redirect: MRB playback may cover it.
                if mrb.on_correct_path_target(target) {
                    self.stats.mrb_covered += 1;
                    bubbles = 0;
                }
            }
        }
        match self.confidence.record(pc, correct) {
            Some(true) => self.stats.conf_flips_to_low += 1,
            Some(false) => self.stats.conf_flips_to_high += 1,
            None => {}
        }

        // ---------------- Training ----------------
        // RAS: calls push; a return whose prediction path never consulted
        // the RAS (BTB miss) still pops at decode to stay balanced.
        if kind.is_call() {
            self.ras.push(pc + 4);
        } else if kind.is_return() && !ras_popped {
            let _ = self.ras.pop();
        }
        // BTB entry maintenance (discovery, direction counters, targets).
        let sealed_target = self.seal(kind, target);
        match btb_entry {
            Some((mut entry, _)) => {
                entry.record_direction(taken);
                if taken {
                    entry.target = sealed_target;
                }
                // SHP for conditionals (with always-taken filtering).
                if kind.is_conditional() {
                    let filtered = entry.always_taken && self.cfg.at_filter;
                    let p = shp_pred.unwrap_or_else(|| {
                        self.shp.predict(pc, entry.bias, &self.ghist, &self.phist)
                    });
                    let d = self.shp.update(&p, taken, filtered);
                    entry.bias = apply_bias_delta(entry.bias, d);
                }
                self.btb.update_entry(entry);
            }
            None if !used_ubtb => {
                // Allocate discovered branches (taken, or conditional NT so
                // the direction predictor owns it next time).
                if taken || kind.is_conditional() {
                    self.btb
                        .install(BtbEntry::discover(pc, sealed_target, kind, taken));
                }
            }
            _ => {
                // µBTB-covered: the mBTB is clock-gated; keep its direction
                // counters loosely in sync without timing side effects.
                if let Some(mut entry) = self.btb.probe(pc) {
                    entry.record_direction(taken);
                    self.btb.update_entry(entry);
                }
            }
        }
        // Indirect chains + hash table (also commits virtual outcomes into
        // the histories).
        if kind.is_indirect() && !kind.is_return() && taken {
            // Train in sealed-target space: the stored chain entries and
            // the hash table hold ciphertext under the current context key.
            let predicted_sealed = indirect_pred.unwrap_or(None);
            self.indirect.update(
                pc,
                self.seal(kind, target),
                predicted_sealed,
                &mut self.shp,
                &mut self.ghist,
                &mut self.phist,
            );
        }
        // Histories.
        if kind.is_conditional() {
            self.ghist.push(taken);
        }
        self.phist.push(pc);
        // µBTB graph learning.
        let predicted_correctly = !mispredicted && !discovered;
        self.ubtb.update(
            pc,
            taken,
            target,
            matches!(kind, BranchKind::UncondDirect | BranchKind::DirectCall),
            predicted_correctly,
        );
        // ZAT/ZOT replication learning: if this branch is always/often
        // taken, replicate its target into the previous taken branch's
        // entry; and arm the zero-bubble grant for the *next* occurrence.
        // Replication applies to direct always/often-taken branches (their
        // targets are stored in plaintext; indirect targets stay sealed).
        if self.cfg.zero_bubble_atot && taken && !kind.is_indirect() {
            if let Some((prev_pc, _)) = self.last_taken_branch {
                if let Some(mut prev_entry) = self.btb.probe(prev_pc) {
                    if let Some(cur_entry) = self.btb.probe(pc) {
                        if cur_entry.always_taken || cur_entry.is_often_taken() {
                            prev_entry.replicated_next = Some((pc, cur_entry.target));
                            self.btb.update_entry(prev_entry);
                        }
                    }
                }
            }
        }
        // Arm the pending zero-bubble grant from this branch's replication.
        if self.cfg.zero_bubble_atot && taken {
            if let Some(entry) = self.btb.probe(pc) {
                if let Some((npc, ntg)) = entry.replicated_next {
                    self.pending_zero_bubble = Some((npc, ntg));
                }
            }
        }
        if taken {
            self.last_taken_branch = Some((pc, target));
        }

        self.stats.bubbles += bubbles as u64;
        Ok(FetchFeedback { bubbles, redirect })
    }
}

mod snapshot_impl {
    use super::*;
    use exynos_snapshot::{tags, Decoder, Encoder, Snapshot, SnapshotError};

    fn save_opt_pair(enc: &mut Encoder, v: Option<(u64, u64)>) {
        match v {
            Some((a, b)) => {
                enc.u8(1);
                enc.u64(a);
                enc.u64(b);
            }
            None => enc.u8(0),
        }
    }

    fn load_opt_pair(dec: &mut Decoder<'_>) -> Result<Option<(u64, u64)>, SnapshotError> {
        match dec.u8()? {
            0 => Ok(None),
            1 => Ok(Some((dec.u64()?, dec.u64()?))),
            _ => Err(SnapshotError::Corrupt { what: "frontend option flag" }),
        }
    }

    fn save_stats(enc: &mut Encoder, s: &FrontendStats) {
        for v in [
            s.instructions,
            s.branches,
            s.cond_branches,
            s.taken_branches,
            s.cond_mispredicts,
            s.indirect_mispredicts,
            s.return_mispredicts,
            s.discoveries,
            s.trace_gaps,
            s.bubbles,
            s.zat_zot_zero_bubble,
            s.one_bubble_at,
            s.ubtb_zero_bubble,
            s.mrb_covered,
            s.pair_lead_taken,
            s.pair_second_taken,
            s.pair_both_not_taken,
            s.elo_skipped_lookups,
            s.shp_lookups,
            s.conf_flips_to_low,
            s.conf_flips_to_high,
        ] {
            enc.u64(v);
        }
    }

    fn load_stats(dec: &mut Decoder<'_>, s: &mut FrontendStats) -> Result<(), SnapshotError> {
        for v in [
            &mut s.instructions,
            &mut s.branches,
            &mut s.cond_branches,
            &mut s.taken_branches,
            &mut s.cond_mispredicts,
            &mut s.indirect_mispredicts,
            &mut s.return_mispredicts,
            &mut s.discoveries,
            &mut s.trace_gaps,
            &mut s.bubbles,
            &mut s.zat_zot_zero_bubble,
            &mut s.one_bubble_at,
            &mut s.ubtb_zero_bubble,
            &mut s.mrb_covered,
            &mut s.pair_lead_taken,
            &mut s.pair_second_taken,
            &mut s.pair_both_not_taken,
            &mut s.elo_skipped_lookups,
            &mut s.shp_lookups,
            &mut s.conf_flips_to_low,
            &mut s.conf_flips_to_high,
        ] {
            *v = dec.u64()?;
        }
        Ok(())
    }

    impl Snapshot for FrontEnd {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::FRONTEND);
            self.shp.save(enc);
            self.ghist.save(enc);
            self.phist.save(enc);
            self.ubtb.save(enc);
            self.btb.save(enc);
            self.ras.save(enc);
            self.indirect.save(enc);
            self.confidence.save(enc);
            match &self.mrb {
                Some(m) => {
                    enc.u8(1);
                    m.save(enc);
                }
                None => enc.u8(0),
            }
            self.entropy.save(enc);
            self.key.save(enc);
            match self.expected_pc {
                Some(pc) => {
                    enc.u8(1);
                    enc.u64(pc);
                }
                None => enc.u8(0),
            }
            save_opt_pair(enc, self.last_taken_branch);
            save_opt_pair(enc, self.pending_zero_bubble);
            enc.bool(self.pair_pending_second);
            enc.seq(self.elo_bits.len());
            for w in &self.elo_bits {
                enc.u64(*w);
            }
            enc.u64(self.cur_line);
            enc.bool(self.cur_line_had_branch);
            save_stats(enc, &self.stats);
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::FRONTEND)?;
            self.shp.restore(dec)?;
            self.ghist.restore(dec)?;
            self.phist.restore(dec)?;
            self.ubtb.restore(dec)?;
            self.btb.restore(dec)?;
            self.ras.restore(dec)?;
            self.indirect.restore(dec)?;
            self.confidence.restore(dec)?;
            let has_mrb = match dec.u8()? {
                0 => false,
                1 => true,
                _ => return Err(SnapshotError::Corrupt { what: "frontend mrb flag" }),
            };
            match (&mut self.mrb, has_mrb) {
                (Some(m), true) => m.restore(dec)?,
                (None, false) => {}
                (mine, _) => {
                    return Err(SnapshotError::Geometry {
                        what: "frontend mrb presence",
                        expected: u64::from(mine.is_some()),
                        found: u64::from(has_mrb),
                    })
                }
            }
            self.entropy.restore(dec)?;
            self.key.restore(dec)?;
            self.expected_pc = match dec.u8()? {
                0 => None,
                1 => Some(dec.u64()?),
                _ => return Err(SnapshotError::Corrupt { what: "frontend expected-pc flag" }),
            };
            self.last_taken_branch = load_opt_pair(dec)?;
            self.pending_zero_bubble = load_opt_pair(dec)?;
            self.pair_pending_second = dec.bool()?;
            let n = dec.seq(8)?;
            if n != self.elo_bits.len() {
                return Err(SnapshotError::Geometry {
                    what: "frontend elo bitmap",
                    expected: self.elo_bits.len() as u64,
                    found: n as u64,
                });
            }
            for w in &mut self.elo_bits {
                *w = dec.u64()?;
            }
            self.cur_line = dec.u64()?;
            self.cur_line_had_branch = dec.bool()?;
            load_stats(dec, &mut self.stats)?;
            // The restored RAS carries the snapshot's key; keep the
            // front-end copy (used for re-keying) in sync with it.
            self.ras.set_key(self.key);
            dec.end_section()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::config::FrontendConfig;
        use exynos_trace::{BranchInfo, BranchKind, Inst, Reg};

        fn warmed_frontend(cfg: FrontendConfig) -> FrontEnd {
            let mut fe = FrontEnd::new(cfg);
            for i in 0..5_000u64 {
                let pc = 0x1000 + (i % 97) * 4;
                let inst = if i % 7 == 0 {
                    let info = BranchInfo {
                        kind: BranchKind::CondDirect,
                        taken: i % 3 != 0,
                        target: pc + 64,
                    };
                    Inst::branch(pc, info, [None, None])
                } else if i % 31 == 0 {
                    Inst::load(pc, Reg::int(1), None, 0x10_0000 + i * 8)
                } else {
                    Inst::alu(pc, Reg::int(2), [None, None])
                };
                let _ = fe.on_inst(&inst);
            }
            fe
        }

        #[test]
        fn frontend_roundtrip_is_bit_identical() {
            for cfg in FrontendConfig::all_generations() {
                let fe = warmed_frontend(cfg.clone());
                let mut enc = Encoder::new();
                fe.save(&mut enc);
                let bytes = enc.finish();

                let mut fe2 = FrontEnd::new(cfg.clone());
                let mut dec = Decoder::new(&bytes);
                fe2.restore(&mut dec).unwrap();
                dec.finish().unwrap();

                // Re-encoding the restored front end must reproduce the
                // exact snapshot bytes: every field round-tripped.
                let mut enc2 = Encoder::new();
                fe2.save(&mut enc2);
                assert_eq!(enc2.finish(), bytes, "gen {}", cfg.name);
            }
        }

        #[test]
        fn restore_into_wrong_generation_is_a_typed_error() {
            let cfgs = FrontendConfig::all_generations();
            let fe = warmed_frontend(cfgs[5].clone());
            let mut enc = Encoder::new();
            fe.save(&mut enc);
            let bytes = enc.finish();
            let mut fe1 = FrontEnd::new(cfgs[0].clone());
            let mut dec = Decoder::new(&bytes);
            assert!(fe1.restore(&mut dec).is_err());
        }
    }
}
