//! Branch-predictor storage accounting (Table II).
//!
//! Computes the bit budget of the SHP, L1 BTBs (µBTB + mBTB + vBTB + RAS)
//! and L2BTB from the actual structure geometry of each generation's
//! [`FrontendConfig`]. The paper's Table II (in KB):
//!
//! | Gen   | SHP  | L1BTBs | L2BTB | Total |
//! |-------|------|--------|-------|-------|
//! | M1/M2 | 8.0  | 32.5   | 58.4  | 98.9  |
//! | M3    | 16.0 | 49.0   | 110.8 | 175.8 |
//! | M4    | 16.0 | 50.5   | 221.5 | 288.0 |
//! | M5    | 32.0 | 53.3   | 225.5 | 310.8 |
//! | M6    | 32.0 | 78.5   | 451.0 | 561.5 |

use crate::btb::BtbConfig;
use crate::config::FrontendConfig;

/// Bits per mBTB/vBTB entry: partial tag(10) + target offset(25) + bias(8)
/// + kind(3) + AT/OT(5) + valid(1).
pub const L1_ENTRY_BITS: usize = 52;
/// Bits per L2BTB entry: the L2BTB "uses a slower denser macro as part of a
/// latency/area tradeoff" and stores a compressed payload.
pub const L2_ENTRY_BITS: usize = 56;
/// Bits per µBTB node: tag + target + edges + local history + LHP metadata.
pub const UBTB_NODE_BITS: usize = 96;
/// Bits per RAS entry (48-bit VA + metadata).
pub const RAS_ENTRY_BITS: usize = 49;

/// One generation's storage budget in KiB, by component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageBudget {
    /// SHP weight tables.
    pub shp_kb: f64,
    /// L1 BTB structures (µBTB + mBTB + vBTB + RAS + replication state).
    pub l1btb_kb: f64,
    /// L2BTB.
    pub l2btb_kb: f64,
}

impl StorageBudget {
    /// Total KiB.
    pub fn total_kb(&self) -> f64 {
        self.shp_kb + self.l1btb_kb + self.l2btb_kb
    }
}

/// Compute the storage budget of a generation from its geometry.
pub fn storage_budget(cfg: &FrontendConfig) -> StorageBudget {
    let kb = |bits: usize| bits as f64 / 8.0 / 1024.0;
    let shp_kb = kb(cfg.shp.storage_bytes() * 8);
    let mbtb_bits = cfg.btb.mbtb_lines * BtbConfig::SLOTS_PER_LINE * L1_ENTRY_BITS;
    let vbtb_bits = cfg.btb.vbtb_entries * L1_ENTRY_BITS;
    let ubtb_bits = cfg.ubtb.total_nodes() * UBTB_NODE_BITS + cfg.ubtb.lhp_rows * 8;
    let ras_bits = cfg.ras_entries * RAS_ENTRY_BITS;
    // ZAT/ZOT replication adds a (pc, target) pair to a fraction of mBTB
    // entries; MRB adds 3 addresses per entry.
    let replication_bits = if cfg.zero_bubble_atot {
        cfg.btb.mbtb_lines * BtbConfig::SLOTS_PER_LINE / 8 * 76
    } else {
        0
    };
    let mrb_bits = cfg.mrb_entries.unwrap_or(0) * (48 + 3 * 48);
    let elo_bits = if cfg.empty_line_opt { 4096 } else { 0 };
    // M6's dedicated indirect hash table is part of the L1 budget.
    let ihash_bits = cfg
        .indirect
        .hash_table
        .as_ref()
        .map(|h| h.entries * (14 + 28))
        .unwrap_or(0);
    let l1btb_kb = kb(mbtb_bits + vbtb_bits + ubtb_bits + ras_bits + replication_bits + mrb_bits + elo_bits + ihash_bits);
    let l2btb_kb = kb(cfg.btb.l2btb_entries * L2_ENTRY_BITS);
    StorageBudget {
        shp_kb,
        l1btb_kb,
        l2btb_kb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table II values (KB).
    const PAPER: [(&str, f64, f64, f64); 5] = [
        ("M1", 8.0, 32.5, 58.4),
        ("M3", 16.0, 49.0, 110.8),
        ("M4", 16.0, 50.5, 221.5),
        ("M5", 32.0, 53.3, 225.5),
        ("M6", 32.0, 78.5, 451.0),
    ];

    fn cfg_by_name(name: &str) -> FrontendConfig {
        FrontendConfig::all_generations()
            .into_iter()
            .find(|c| c.name == name)
            .unwrap()
    }

    #[test]
    fn shp_storage_matches_paper_exactly() {
        for (name, shp, _, _) in PAPER {
            let b = storage_budget(&cfg_by_name(name));
            assert!(
                (b.shp_kb - shp).abs() < 1e-9,
                "{name}: shp {} vs paper {shp}",
                b.shp_kb
            );
        }
    }

    #[test]
    fn l1_and_l2_storage_within_20_percent_of_paper() {
        for (name, _, l1, l2) in PAPER {
            let b = storage_budget(&cfg_by_name(name));
            let l1_err = (b.l1btb_kb - l1).abs() / l1;
            let l2_err = (b.l2btb_kb - l2).abs() / l2;
            assert!(l1_err < 0.20, "{name}: L1 {:.1} vs paper {l1} ({l1_err:.2})", b.l1btb_kb);
            assert!(l2_err < 0.20, "{name}: L2 {:.1} vs paper {l2} ({l2_err:.2})", b.l2btb_kb);
        }
    }

    #[test]
    fn totals_grow_monotonically() {
        let gens = FrontendConfig::all_generations();
        let totals: Vec<f64> = gens.iter().map(|c| storage_budget(c).total_kb()).collect();
        for w in totals.windows(2) {
            assert!(w[0] <= w[1] + 1e-9, "storage must grow: {w:?}");
        }
    }
}
