//! Property tests over the branch-prediction structures.

use exynos_branch::btb::{BtbConfig, BtbEntry, BtbHierarchy};
use exynos_branch::config::FrontendConfig;
use exynos_branch::frontend::FrontEnd;
use exynos_branch::history::GlobalHistory;
use exynos_branch::ras::Ras;
use exynos_branch::shp::{apply_bias_delta, Shp, ShpConfig, WEIGHT_MAX, WEIGHT_MIN};
use exynos_secure::context::{compute_context_hash, ContextId, EntropySources};
use exynos_trace::gen::web::{WebParams, WebWorkload};
use exynos_trace::{BranchKind, TraceGen};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// SHP predictions stay within the mathematically possible sum range
    /// and bias deltas never overflow, under arbitrary training.
    #[test]
    fn shp_sum_bounded_under_random_training(
        outcomes in prop::collection::vec(any::<bool>(), 200),
        pcs in prop::collection::vec(0u64..4096, 200),
    ) {
        let mut shp = Shp::new(ShpConfig::m1());
        let g = GlobalHistory::new();
        let p = exynos_branch::history::PathHistory::new();
        let mut bias = 0i8;
        let bound = 2 * 127 + 8 * 127; // bias_scale*|bias|max + tables*|w|max
        for (t, pc) in outcomes.iter().zip(&pcs) {
            let pred = shp.predict(*pc * 4, bias, &g, &p);
            prop_assert!(pred.sum.abs() <= bound, "sum {} out of range", pred.sum);
            let d = shp.update(&pred, *t, false);
            bias = apply_bias_delta(bias, d);
            prop_assert!((WEIGHT_MIN..=WEIGHT_MAX).contains(&(bias as i32)));
        }
    }

    /// A RAS with capacity >= depth of nesting behaves exactly like a
    /// software stack (LIFO), including across arbitrary push/pop mixes.
    #[test]
    fn ras_matches_reference_stack(ops in prop::collection::vec(any::<Option<u16>>(), 120)) {
        let sources = EntropySources::from_seed(5);
        let key = compute_context_hash(&sources, ContextId::user(1, 0));
        let mut ras = Ras::new(256, key);
        let mut reference: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                Some(addr) => {
                    let a = addr as u64 * 4;
                    ras.push(a);
                    reference.push(a);
                }
                None => {
                    let got = ras.pop();
                    let want = reference.pop();
                    prop_assert_eq!(got, want);
                }
            }
        }
        prop_assert_eq!(ras.depth(), reference.len());
        prop_assert_eq!(ras.stats().overflows, 0);
    }

    /// The BTB hierarchy never stores duplicate PCs within a level and its
    /// occupancy never exceeds the configured capacities.
    #[test]
    fn btb_occupancy_bounded(pcs in prop::collection::vec(0u64..100_000, 400)) {
        let cfg = BtbConfig {
            mbtb_lines: 32,
            mbtb_ways: 4,
            vbtb_entries: 32,
            vbtb_ways: 4,
            l2btb_entries: 256,
            l2btb_ways: 4,
            l2_fill_latency: 4,
            l2_fill_bandwidth: 1,
        };
        let mut b = BtbHierarchy::new(cfg);
        for pc in pcs {
            let pc = pc * 4;
            let _ = b.lookup(pc);
            b.install(BtbEntry::discover(pc, pc + 64, BranchKind::CondDirect, true));
            let (m, v, l2) = b.occupancy();
            prop_assert!(m <= 32 * 8, "mBTB overflow: {m}");
            prop_assert!(v <= 32, "vBTB overflow: {v}");
            prop_assert!(l2 <= 256, "L2BTB overflow: {l2}");
        }
    }

    /// After installing a branch, looking it up immediately returns the
    /// installed target (through any level).
    #[test]
    fn btb_install_then_lookup(pcs in prop::collection::vec(0u64..10_000, 100)) {
        let cfg = BtbConfig {
            mbtb_lines: 64,
            mbtb_ways: 4,
            vbtb_entries: 64,
            vbtb_ways: 4,
            l2btb_entries: 1024,
            l2btb_ways: 4,
            l2_fill_latency: 4,
            l2_fill_bandwidth: 1,
        };
        let mut b = BtbHierarchy::new(cfg);
        for pc in &pcs {
            let pc = pc * 4;
            b.install(BtbEntry::discover(pc, pc ^ 0xF00, BranchKind::CondDirect, true));
            let got = b.lookup(pc).unwrap();
            prop_assert!(got.is_some(), "freshly installed branch must be found");
            prop_assert_eq!(got.unwrap().0.target, pc ^ 0xF00);
        }
    }

    /// The assembled front end never panics and keeps its statistics
    /// internally consistent on arbitrary web workloads.
    #[test]
    fn frontend_stats_consistent(seed in 0u64..500, functions in 3usize..60) {
        let mut fe = FrontEnd::new(FrontendConfig::m5());
        let mut gen = WebWorkload::new(
            &WebParams {
                functions,
                dispatch_targets: (functions - 1).min(8),
                ..Default::default()
            },
            30,
            seed,
        );
        for _ in 0..5_000 {
            let inst = gen.next_inst();
            let _ = fe.on_inst(&inst);
        }
        let s = fe.stats();
        prop_assert!(s.branches <= s.instructions);
        prop_assert!(s.cond_branches <= s.branches);
        prop_assert!(s.taken_branches <= s.branches);
        prop_assert!(s.cond_mispredicts <= s.cond_branches);
        prop_assert!(s.total_mispredicts() <= s.branches + s.discoveries);
        prop_assert!(s.mpki() >= 0.0 && s.mpki() <= 1000.0);
    }

    /// Global-history folding is a pure function of the covered interval.
    #[test]
    fn ghist_fold_pure(bits in prop::collection::vec(any::<bool>(), 64), len in 1usize..64, out in 1u32..20) {
        let mut a = GlobalHistory::new();
        let mut b = GlobalHistory::new();
        // b gets extra old history first.
        b.push(true);
        b.push(false);
        b.push(true);
        for &x in &bits {
            a.push(x);
            b.push(x);
        }
        let la = a.fold(len.min(bits.len()), out);
        let lb = b.fold(len.min(bits.len()), out);
        prop_assert_eq!(la, lb, "fold must depend only on the newest `len` bits");
        prop_assert!(la < (1 << out));
    }
}
