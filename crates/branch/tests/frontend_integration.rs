//! Cross-generation front-end integration tests: the properties Fig. 9 and
//! §IV of the paper claim must emerge from the assembled predictor.

use exynos_branch::config::FrontendConfig;
use exynos_branch::frontend::{FrontEnd, Redirect};
use exynos_trace::gen::loops::{LoopNest, LoopNestParams};
use exynos_trace::gen::markov::{MarkovBranches, MarkovParams};
use exynos_trace::gen::web::{WebParams, WebWorkload};
use exynos_trace::{BoxedGen, TraceGen};

fn run(fe: &mut FrontEnd, gen: &mut dyn TraceGen, n: usize) {
    for _ in 0..n {
        let inst = gen.next_inst();
        let _ = fe.on_inst(&inst);
    }
}

fn mpki_on(cfg: FrontendConfig, mut gen: BoxedGen, warmup: usize, detail: usize) -> f64 {
    let mut fe = FrontEnd::new(cfg);
    run(&mut fe, &mut *gen, warmup);
    let before = fe.stats().clone();
    run(&mut fe, &mut *gen, detail);
    let after = fe.stats();
    let miss = after.total_mispredicts() - before.total_mispredicts();
    miss as f64 * 1000.0 / (after.instructions - before.instructions) as f64
}

fn web_gen(seed: u64) -> BoxedGen {
    Box::new(WebWorkload::new(
        &WebParams {
            functions: 300,
            dispatch_targets: 64,
            ..Default::default()
        },
        40,
        seed,
    ))
}

fn markov_gen(depth: u32, seed: u64) -> BoxedGen {
    Box::new(MarkovBranches::new(
        &MarkovParams {
            sites: 96,
            history_depth: depth,
            noise: 0.01,
            ..Default::default()
        },
        41,
        seed,
    ))
}

#[test]
fn loop_kernel_is_near_perfect_on_every_generation() {
    for cfg in FrontendConfig::all_generations() {
        let name = cfg.name;
        let gen: BoxedGen = Box::new(LoopNest::new(&LoopNestParams::default(), 42, 7));
        let mpki = mpki_on(cfg, gen, 5_000, 30_000);
        assert!(mpki < 2.0, "{name}: loop kernel MPKI {mpki}");
    }
}

#[test]
fn m6_beats_m1_on_web_workload() {
    let m1 = mpki_on(FrontendConfig::m1(), web_gen(3), 30_000, 120_000);
    let m6 = mpki_on(FrontendConfig::m6(), web_gen(3), 30_000, 120_000);
    assert!(
        m6 < m1 * 0.9,
        "M6 must clearly beat M1 on web-like code: {m6:.2} vs {m1:.2}"
    );
}

#[test]
fn m5_beats_m1_on_deep_history_branches() {
    // History depth 40 exceeds nothing (both cover it), but the 16-table
    // SHP with longer GHIST should still win via less aliasing.
    let m1 = mpki_on(FrontendConfig::m1(), markov_gen(48, 5), 30_000, 120_000);
    let m5 = mpki_on(FrontendConfig::m5(), markov_gen(48, 5), 30_000, 120_000);
    assert!(
        m5 < m1,
        "M5 SHP must beat M1 on deep-history branches: {m5:.2} vs {m1:.2}"
    );
}

#[test]
fn generational_mpki_is_monotone_down_on_mixed_suite() {
    // Average over three behaviour classes; the cross-generation trend of
    // Fig. 9 (3.62 -> 2.54 average MPKI) must be monotone non-increasing
    // modulo small noise.
    let gens = FrontendConfig::all_generations();
    let mut avgs = Vec::new();
    for cfg in gens {
        let name = cfg.name;
        let mut total = 0.0;
        total += mpki_on(cfg.clone(), web_gen(11), 20_000, 80_000);
        total += mpki_on(cfg.clone(), markov_gen(32, 13), 20_000, 80_000);
        total += mpki_on(
            cfg,
            Box::new(LoopNest::new(&LoopNestParams::default(), 42, 7)),
            20_000,
            80_000,
        );
        avgs.push((name, total / 3.0));
    }
    let m1 = avgs[0].1;
    let m6 = avgs[5].1;
    assert!(
        m6 < m1 * 0.85,
        "M6 must reduce average MPKI over M1 by >15%: {avgs:?}"
    );
    // Every generation at least doesn't regress badly vs its predecessor.
    for w in avgs.windows(2) {
        assert!(
            w[1].1 <= w[0].1 * 1.10,
            "{} regressed vs {}: {avgs:?}",
            w[1].0,
            w[0].0
        );
    }
}

#[test]
fn trace_gap_reports_redirect() {
    let mut fe = FrontEnd::new(FrontendConfig::m3());
    let mut gen = LoopNest::new(&LoopNestParams::default(), 42, 7);
    let first = gen.next_inst();
    let _ = fe.on_inst(&first);
    // Jump to a wildly different PC without a branch.
    let mut far = gen.next_inst();
    far.pc += 0x100_0000;
    let fb = fe.on_inst(&far).unwrap();
    assert_eq!(fb.redirect, Some(Redirect::TraceGap));
}

#[test]
fn zat_zot_produces_zero_bubble_redirects_on_m5() {
    // Small basic blocks with always-taken branches: M5's replication must
    // fire; M4 (no ZAT/ZOT) must not.
    let mk = || -> BoxedGen {
        Box::new(LoopNest::new(
            &LoopNestParams {
                depth: 3,
                trip_counts: vec![4, 4, 4096],
                body_len: 3,
                loads_per_body: 0,
                stores_per_body: 0,
                ..Default::default()
            },
            43,
            9,
        ))
    };
    let mut m5 = FrontEnd::new(FrontendConfig::m5());
    run(&mut m5, &mut *mk(), 60_000);
    assert!(
        m5.stats().zat_zot_zero_bubble > 0 || m5.stats().ubtb_zero_bubble > 0,
        "M5 must serve zero-bubble taken redirects"
    );
    let mut m4 = FrontEnd::new(FrontendConfig::m4());
    run(&mut m4, &mut *mk(), 60_000);
    assert_eq!(m4.stats().zat_zot_zero_bubble, 0);
}

#[test]
fn m5_taken_bubbles_not_worse_than_m3() {
    // ZAT/ZOT + µBTB should give M5 no more bubbles per taken branch than
    // M3 on branchy code.
    let bubbles_per_taken = |cfg: FrontendConfig| -> f64 {
        let mut fe = FrontEnd::new(cfg);
        let mut g = web_gen(17);
        run(&mut fe, &mut *g, 150_000);
        fe.stats().bubbles as f64 / fe.stats().taken_branches as f64
    };
    let m3 = bubbles_per_taken(FrontendConfig::m3());
    let m5 = bubbles_per_taken(FrontendConfig::m5());
    assert!(m5 <= m3 * 1.05, "M5 {m5:.3} vs M3 {m3:.3} bubbles/taken");
}

#[test]
fn branch_pair_stats_have_all_three_classes() {
    let mut fe = FrontEnd::new(FrontendConfig::m1());
    let mut g = web_gen(23);
    run(&mut fe, &mut *g, 100_000);
    let s = fe.stats();
    assert!(s.pair_lead_taken > 0);
    assert!(s.pair_second_taken > 0);
    assert!(s.pair_both_not_taken > 0);
    // Lead-taken must dominate, as in the paper's 60/24/16 split.
    assert!(s.pair_lead_taken > s.pair_second_taken);
}

#[test]
fn mrb_covers_refills_on_m5() {
    // Low-confidence branch followed by a run of small taken blocks: the
    // MRB should cover some post-mispredict redirects.
    let mut fe = FrontEnd::new(FrontendConfig::m5());
    let mut g = markov_gen(8, 29);
    run(&mut fe, &mut *g, 200_000);
    assert!(
        fe.stats().mrb_covered > 0,
        "MRB must cover some post-mispredict refills: {:?}",
        fe.mrb_stats()
    );
}

#[test]
fn empty_line_optimization_only_on_m5_plus() {
    let mk = || -> BoxedGen {
        Box::new(LoopNest::new(
            &LoopNestParams {
                depth: 1,
                trip_counts: vec![1_000_000],
                body_len: 96, // several branch-free 128 B lines per iteration
                loads_per_body: 4,
                stores_per_body: 0,
                ..Default::default()
            },
            44,
            3,
        ))
    };
    let mut m5 = FrontEnd::new(FrontendConfig::m5());
    run(&mut m5, &mut *mk(), 50_000);
    assert!(m5.stats().elo_skipped_lookups > 0, "ELO must kick in on M5");
    let mut m4 = FrontEnd::new(FrontendConfig::m4());
    run(&mut m4, &mut *mk(), 50_000);
    assert_eq!(m4.stats().elo_skipped_lookups, 0);
}

#[test]
fn shp_gated_under_ubtb_lock() {
    // On a tiny lockable kernel, SHP lookups must be far fewer than
    // conditional branches (power saving under lock).
    let mut fe = FrontEnd::new(FrontendConfig::m1());
    let mut g = LoopNest::new(
        &LoopNestParams {
            depth: 1,
            trip_counts: vec![64],
            body_len: 4,
            loads_per_body: 1,
            stores_per_body: 0,
            ..Default::default()
        },
        45,
        5,
    );
    run(&mut fe, &mut g, 100_000);
    let s = fe.stats();
    assert!(
        s.shp_lookups < s.cond_branches / 2,
        "lock must gate most SHP lookups: {} of {}",
        s.shp_lookups,
        s.cond_branches
    );
}
