//! [`Observable`] wiring for the memory-hierarchy statistics producers.
//!
//! Cache and TLB stats are multi-instance (one per level), so their
//! [`Observable::component`] returns a generic path and the sampler
//! overrides it per level via `Telemetry::sample_named` (e.g.
//! `mem.cache.l1d`, `mem.tlb.itlb`).

use crate::cache::CacheStats;
use crate::mshr::MshrStats;
use crate::tlb::TlbStats;
use exynos_telemetry::{Observable, Value};

impl Observable for CacheStats {
    fn component(&self) -> &'static str {
        "mem.cache"
    }

    fn visit(&self, f: &mut dyn FnMut(&'static str, Value)) {
        f("demand_hits", Value::U64(self.demand_hits));
        f("demand_misses", Value::U64(self.demand_misses));
        f("prefetch_hits", Value::U64(self.prefetch_hits));
        f("prefetch_misses", Value::U64(self.prefetch_misses));
        f("fills", Value::U64(self.fills));
        f("evictions", Value::U64(self.evictions));
        f("useful_prefetch_hits", Value::U64(self.useful_prefetch_hits));
    }
}

impl Observable for TlbStats {
    fn component(&self) -> &'static str {
        "mem.tlb"
    }

    fn visit(&self, f: &mut dyn FnMut(&'static str, Value)) {
        f("hits", Value::U64(self.hits));
        f("misses", Value::U64(self.misses));
    }
}

impl Observable for MshrStats {
    fn component(&self) -> &'static str {
        "mem.mshr"
    }

    fn visit(&self, f: &mut dyn FnMut(&'static str, Value)) {
        f("allocations", Value::U64(self.allocations));
        f("rejections", Value::U64(self.rejections));
        f("peak", Value::U64(self.peak));
    }
}
