//! Outstanding-miss tracking: fill buffers and the M4+ data-less Memory
//! Address Buffer (MAB).
//!
//! §VII: "Outstanding misses grew from 8 in M1, to 12 in M3, to 32 in M4,
//! and 40 in M6. The significant increase in misses in M4 was due to
//! transitioning from a fill buffer approach to a data-less memory address
//! buffer (MAB) approach that held fill data only in the data cache."
//!
//! Occupancy is modeled with timestamped slots: each allocated miss holds
//! its slot until its fill completes. The available memory-level
//! parallelism is therefore bounded by the structure size, which is what
//! limits prefetch degree and MLP in the core model.

/// A bank of miss-tracking slots.
#[derive(Debug, Clone)]
pub struct MissBuffers {
    /// Release time per slot (cycle at which the slot frees).
    slots: Vec<u64>,
    /// Peak simultaneous occupancy observed.
    peak: usize,
    /// Allocations performed.
    allocations: u64,
    /// Allocation attempts rejected because all slots were busy.
    rejections: u64,
}

impl MissBuffers {
    /// A bank with `n` slots.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> MissBuffers {
        assert!(n > 0, "need at least one miss buffer");
        MissBuffers {
            slots: vec![0; n],
            peak: 0,
            allocations: 0,
            rejections: 0,
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Slots busy at `now`.
    pub fn occupancy(&self, now: u64) -> usize {
        self.slots.iter().filter(|&&r| r > now).count()
    }

    /// Try to allocate a slot at `now`, holding it until `release`.
    /// Returns `true` on success.
    pub fn try_allocate(&mut self, now: u64, release: u64) -> bool {
        match self.slots.iter_mut().find(|r| **r <= now) {
            Some(slot) => {
                *slot = release;
                self.allocations += 1;
                let occ = self.occupancy(now);
                self.peak = self.peak.max(occ);
                true
            }
            None => {
                self.rejections += 1;
                false
            }
        }
    }

    /// The earliest cycle at which any slot frees (for stall modeling).
    pub fn earliest_free(&self, now: u64) -> u64 {
        self.slots
            .iter()
            .copied()
            .map(|r| r.max(now))
            .min()
            .unwrap_or(now)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> MshrStats {
        MshrStats {
            allocations: self.allocations,
            rejections: self.rejections,
            peak: self.peak as u64,
        }
    }
}

/// Occupancy statistics for a miss-buffer bank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MshrStats {
    /// Allocations performed.
    pub allocations: u64,
    /// Allocation attempts rejected with every slot busy.
    pub rejections: u64,
    /// Peak simultaneous occupancy observed.
    pub peak: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_until_full() {
        let mut m = MissBuffers::new(2);
        assert!(m.try_allocate(0, 100));
        assert!(m.try_allocate(0, 100));
        assert!(!m.try_allocate(0, 100));
        assert_eq!(m.stats().rejections, 1);
    }

    #[test]
    fn slots_free_after_release() {
        let mut m = MissBuffers::new(1);
        assert!(m.try_allocate(0, 50));
        assert!(!m.try_allocate(49, 80));
        assert!(m.try_allocate(50, 80));
    }

    #[test]
    fn earliest_free_reports_stall_target() {
        let mut m = MissBuffers::new(2);
        m.try_allocate(0, 30);
        m.try_allocate(0, 70);
        assert_eq!(m.earliest_free(10), 30);
        assert_eq!(m.earliest_free(80), 80, "clamped to now when free");
    }

    #[test]
    fn peak_occupancy_tracked() {
        let mut m = MissBuffers::new(8);
        for _ in 0..5 {
            m.try_allocate(0, 100);
        }
        assert_eq!(m.stats().peak, 5);
        assert_eq!(m.occupancy(100), 0);
    }
}

impl MissBuffers {
    /// Release every slot (as if all outstanding misses drained), keeping
    /// cumulative statistics — the `stats() / clear() / snapshot` surface
    /// shared by the stateful components.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = 0;
        }
    }
}

mod snapshot_impl {
    use super::*;
    use exynos_snapshot::{tags, Decoder, Encoder, Snapshot, SnapshotError};

    impl Snapshot for MissBuffers {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::MSHR);
            enc.seq(self.slots.len());
            for s in &self.slots {
                enc.u64(*s);
            }
            enc.usize(self.peak);
            enc.u64(self.allocations);
            enc.u64(self.rejections);
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::MSHR)?;
            let n = dec.seq(8)?;
            if n != self.slots.len() {
                return Err(SnapshotError::Geometry {
                    what: "miss-buffer slots",
                    expected: self.slots.len() as u64,
                    found: n as u64,
                });
            }
            for s in &mut self.slots {
                *s = dec.u64()?;
            }
            self.peak = dec.usize()?;
            self.allocations = dec.u64()?;
            self.rejections = dec.u64()?;
            dec.end_section()
        }
    }
}
