//! Per-generation memory-hierarchy geometry (Table I / Table III).

use crate::cache::CacheConfig;
use crate::tlb::TlbHierarchyConfig;

/// One generation's cache/TLB/miss-buffer geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct MemGenConfig {
    /// Display name ("M1".."M6").
    pub name: &'static str,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// L2 cache (sectored tags from M4 on, enabling the Buddy prefetcher).
    pub l2: CacheConfig,
    /// L3 cache (M3+), exclusive of the inner levels.
    pub l3: Option<CacheConfig>,
    /// Outstanding L1 misses (fill buffers / MABs): 8 → 12 → 32 → 40.
    pub miss_buffers: usize,
    /// L2 miss buffers.
    pub l2_miss_buffers: usize,
    /// Translation hierarchy.
    pub tlb: TlbHierarchyConfig,
    /// M4+: load-to-load cascading gives dependent loads an effective
    /// 3-cycle L1 latency.
    pub load_cascade: bool,
}

impl MemGenConfig {
    /// M1 (and M2): 32 KB L1D, shared 2 MB L2 at 22 cycles, no L3, 8 fill
    /// buffers.
    pub fn m1() -> MemGenConfig {
        MemGenConfig {
            name: "M1",
            l1i: CacheConfig { size_bytes: 64 << 10, ways: 4, line_bytes: 64, sectors_per_tag: 1, latency: 0 },
            l1d: CacheConfig { size_bytes: 32 << 10, ways: 8, line_bytes: 64, sectors_per_tag: 1, latency: 4 },
            l2: CacheConfig { size_bytes: 2048 << 10, ways: 16, line_bytes: 64, sectors_per_tag: 1, latency: 22 },
            l3: None,
            miss_buffers: 8,
            l2_miss_buffers: 16,
            tlb: TlbHierarchyConfig::m1(),
            load_cascade: false,
        }
    }

    /// M2: same resources as M1 (§III: "no significant resource changes").
    pub fn m2() -> MemGenConfig {
        MemGenConfig { name: "M2", ..MemGenConfig::m1() }
    }

    /// M3: 64 KB L1D, private 512 KB L2 at 12 cycles, 4 MB L3 at 37, 12
    /// MABs.
    pub fn m3() -> MemGenConfig {
        MemGenConfig {
            name: "M3",
            l1d: CacheConfig { size_bytes: 64 << 10, ways: 8, line_bytes: 64, sectors_per_tag: 1, latency: 4 },
            l2: CacheConfig { size_bytes: 512 << 10, ways: 8, line_bytes: 64, sectors_per_tag: 1, latency: 12 },
            l3: Some(CacheConfig { size_bytes: 4096 << 10, ways: 16, line_bytes: 64, sectors_per_tag: 1, latency: 37 }),
            miss_buffers: 12,
            l2_miss_buffers: 24,
            tlb: TlbHierarchyConfig::m3(),
            ..MemGenConfig::m1()
        }
    }

    /// M4: 1 MB sectored L2, 3 MB L3, MAB (32), load cascading.
    pub fn m4() -> MemGenConfig {
        MemGenConfig {
            name: "M4",
            l1d: CacheConfig { size_bytes: 64 << 10, ways: 4, line_bytes: 64, sectors_per_tag: 1, latency: 4 },
            l2: CacheConfig { size_bytes: 1024 << 10, ways: 8, line_bytes: 64, sectors_per_tag: 2, latency: 12 },
            l3: Some(CacheConfig { size_bytes: 3072 << 10, ways: 16, line_bytes: 64, sectors_per_tag: 1, latency: 37 }),
            miss_buffers: 32,
            l2_miss_buffers: 32,
            tlb: TlbHierarchyConfig::m4(),
            load_cascade: true,
            ..MemGenConfig::m3()
        }
    }

    /// M5: 2 MB shared-by-2 L2 at ~14 cycles, 3 MB L3 at 30.
    pub fn m5() -> MemGenConfig {
        MemGenConfig {
            name: "M5",
            l2: CacheConfig { size_bytes: 2048 << 10, ways: 8, line_bytes: 64, sectors_per_tag: 2, latency: 14 },
            l3: Some(CacheConfig { size_bytes: 3072 << 10, ways: 12, line_bytes: 64, sectors_per_tag: 1, latency: 30 }),
            ..MemGenConfig::m4()
        }
    }

    /// M6: 128 KB L1s, 2 MB L2, 4 MB L3, 40 MABs.
    pub fn m6() -> MemGenConfig {
        MemGenConfig {
            name: "M6",
            l1i: CacheConfig { size_bytes: 128 << 10, ways: 4, line_bytes: 64, sectors_per_tag: 1, latency: 0 },
            l1d: CacheConfig { size_bytes: 128 << 10, ways: 8, line_bytes: 64, sectors_per_tag: 1, latency: 4 },
            l3: Some(CacheConfig { size_bytes: 4096 << 10, ways: 16, line_bytes: 64, sectors_per_tag: 1, latency: 30 }),
            miss_buffers: 40,
            l2_miss_buffers: 40,
            tlb: TlbHierarchyConfig::m6(),
            ..MemGenConfig::m5()
        }
    }

    /// All six generations in order.
    pub fn all_generations() -> Vec<MemGenConfig> {
        vec![
            MemGenConfig::m1(),
            MemGenConfig::m2(),
            MemGenConfig::m3(),
            MemGenConfig::m4(),
            MemGenConfig::m5(),
            MemGenConfig::m6(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_l2_l3_sizes() {
        // Table III: (L2 KB, L3 KB).
        let expect = [
            ("M1", 2048, 0u64),
            ("M2", 2048, 0),
            ("M3", 512, 4096),
            ("M4", 1024, 3072),
            ("M5", 2048, 3072),
            ("M6", 2048, 4096),
        ];
        for (cfg, (name, l2, l3)) in MemGenConfig::all_generations().iter().zip(expect) {
            assert_eq!(cfg.name, name);
            assert_eq!(cfg.l2.size_bytes >> 10, l2);
            assert_eq!(cfg.l3.map(|c| c.size_bytes >> 10).unwrap_or(0), l3);
        }
    }

    #[test]
    fn miss_buffer_growth_matches_paper() {
        let growth: Vec<usize> = MemGenConfig::all_generations().iter().map(|c| c.miss_buffers).collect();
        assert_eq!(growth, vec![8, 8, 12, 32, 32, 40]);
    }

    #[test]
    fn sectored_l2_from_m4() {
        assert_eq!(MemGenConfig::m3().l2.sectors_per_tag, 1);
        assert_eq!(MemGenConfig::m4().l2.sectors_per_tag, 2);
        assert_eq!(MemGenConfig::m6().l2.sectors_per_tag, 2);
    }

    #[test]
    fn load_cascade_from_m4() {
        assert!(!MemGenConfig::m3().load_cascade);
        assert!(MemGenConfig::m4().load_cascade);
    }

    #[test]
    fn l1d_growth() {
        assert_eq!(MemGenConfig::m1().l1d.size_bytes, 32 << 10);
        assert_eq!(MemGenConfig::m3().l1d.size_bytes, 64 << 10);
        assert_eq!(MemGenConfig::m6().l1d.size_bytes, 128 << 10);
    }
}
