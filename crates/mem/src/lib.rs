//! # exynos-mem — cache arrays, TLBs and miss buffers (§III, §VIII)
//!
//! Provides the storage structures of the Exynos memory hierarchy:
//!
//! * [`cache`] — set-associative caches with 128 B-sectored L2 tags
//!   (§VIII.B), reuse/prefetch metadata and insertion priorities for the
//!   coordinated exclusive-hierarchy policy (§VIII.A);
//! * [`tlb`] — the Table I translation hierarchy including the M3+
//!   "level 1.5" data TLB;
//! * [`mshr`] — fill-buffer / MAB occupancy (8 → 12 → 32 → 40 outstanding
//!   misses across generations, §VII);
//! * [`config`] — per-generation geometry presets.
//!
//! The composition of these into a full load/store path (with prefetchers
//! and DRAM) lives in `exynos-core::memsys`.

#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod mshr;
pub mod observe;
pub mod tlb;

pub use cache::{
    AccessKind, Cache, CacheConfig, CacheStats, InsertPriority, LineMeta, Victim, Victims,
};
pub use config::MemGenConfig;
pub use mshr::MissBuffers;
pub use tlb::{Tlb, TlbConfig, TlbHierarchy, TlbHierarchyConfig};
