//! Set-associative cache arrays with the metadata the paper's large-cache
//! management needs (§VIII.A–B).
//!
//! Each line tracks whether it was brought in by a prefetch, whether a
//! demand access ever hit it (the adaptive standalone prefetcher's
//! confidence metadata, §VIII.D), and a small reuse counter fed by L2 hits
//! and L3 re-allocations (the coordinated exclusive-hierarchy policy,
//! §VIII.A). L2 tags may be *sectored* at 128 B for 64 B data lines
//! (§VIII.B): two sectors share one tag, which is what makes the Buddy
//! prefetcher pollution-free.

/// How an access entered the cache (affects metadata and policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Demand load/store/ifetch.
    Demand,
    /// Hardware prefetch, first pass (two-pass scheme, §VII.B).
    PrefetchFirstPass,
    /// Hardware prefetch, second pass / ordinary prefetch fill.
    Prefetch,
    /// Writeback / castout from an inner level.
    Writeback,
}

impl AccessKind {
    /// Whether this access is any kind of prefetch.
    pub fn is_prefetch(self) -> bool {
        matches!(self, AccessKind::Prefetch | AccessKind::PrefetchFirstPass)
    }
}

/// Insertion priority chosen by the coordinated-management policy when a
/// castout allocates into the L3 (§VIII.A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertPriority {
    /// Elevated replacement state (protected — observed reuse).
    Elevated,
    /// Ordinary replacement state.
    Ordinary,
    /// Do not allocate at all.
    Bypass,
}

/// Per-line metadata carried through the hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LineMeta {
    /// Brought in by a prefetch and not yet demanded.
    pub prefetched: bool,
    /// A demand access has hit this line since fill.
    pub demand_hit: bool,
    /// Reuse level: L2 hits and L3 re-allocations increment (saturating).
    pub reuse: u8,
    /// Second-pass-prefetch filter (§VIII.A: "some cases needed to be
    /// filtered out from being marked as reuse, such as the second pass
    /// prefetch of two-pass prefetching").
    pub second_pass: bool,
}

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// 64 B-aligned line address of the evicted line.
    pub addr: u64,
    /// Its metadata at eviction.
    pub meta: LineMeta,
    /// Whether the line was dirty.
    pub dirty: bool,
}

/// The victims displaced by one fill: at most both sectors of a single
/// evicted tag, so a fixed two-slot array avoids a heap allocation on
/// every fill in the simulator's hot loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct Victims {
    items: [Option<Victim>; 2],
    len: u8,
}

impl Victims {
    fn push(&mut self, v: Victim) {
        debug_assert!((self.len as usize) < 2, "a fill evicts at most one tag");
        if (self.len as usize) < self.items.len() {
            self.items[self.len as usize] = Some(v);
            self.len += 1;
        }
    }

    /// Number of victims.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the fill displaced nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate over the victims by reference.
    pub fn iter(&self) -> impl Iterator<Item = &Victim> {
        self.items[..self.len as usize].iter().flatten()
    }
}

impl IntoIterator for Victims {
    type Item = Victim;
    type IntoIter = std::iter::Flatten<std::array::IntoIter<Option<Victim>, 2>>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter().flatten()
    }
}

impl<'a> IntoIterator for &'a Victims {
    type Item = &'a Victim;
    type IntoIter = std::iter::Flatten<std::slice::Iter<'a, Option<Victim>>>;

    fn into_iter(self) -> Self::IntoIter {
        self.items[..self.len as usize].iter().flatten()
    }
}

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Data line size in bytes (64 throughout the paper).
    pub line_bytes: u64,
    /// Tag-sector factor: 1 = one tag per line; 2 = 128 B-sectored tags
    /// (two 64 B sectors share a tag, §VIII.B).
    pub sectors_per_tag: u64,
    /// Access latency in cycles (hit).
    pub latency: u32,
}

impl CacheConfig {
    /// Number of tag entries.
    pub fn tags(&self) -> u64 {
        self.size_bytes / (self.line_bytes * self.sectors_per_tag)
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        (self.tags() / self.ways as u64).max(1)
    }
}

#[derive(Debug, Clone, Copy)]
struct TagEntry {
    /// Tag-granule address (`addr / (line * sectors)`); `u64::MAX` invalid.
    tag_addr: u64,
    /// Per-sector valid bits.
    sector_valid: u8,
    /// Per-sector dirty bits.
    sector_dirty: u8,
    /// Per-sector metadata.
    meta: [LineMeta; 2],
    /// 2-bit SRRIP re-reference prediction value: 0 = near re-reference
    /// (elevated / recently hit), 3 = evictable. The "elevated" vs
    /// "ordinary" replacement states of §VIII.A map onto the insertion
    /// RRPV.
    rrpv: u8,
}

impl TagEntry {
    fn invalid() -> TagEntry {
        TagEntry {
            tag_addr: u64::MAX,
            sector_valid: 0,
            sector_dirty: 0,
            meta: [LineMeta::default(); 2],
            rrpv: 3,
        }
    }
}

/// Access statistics for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand hits.
    pub demand_hits: u64,
    /// Demand misses.
    pub demand_misses: u64,
    /// Prefetch hits (already present).
    pub prefetch_hits: u64,
    /// Prefetch misses (will fill).
    pub prefetch_misses: u64,
    /// Lines filled.
    pub fills: u64,
    /// Victims evicted (valid lines displaced).
    pub evictions: u64,
    /// Demand hits on lines brought by prefetch (useful prefetches).
    pub useful_prefetch_hits: u64,
}

/// A set-associative, optionally sectored, write-back cache array with
/// SRRIP replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: u64,
    /// `log2(granule)` when the tag granule is a power of two (every
    /// shipped geometry), letting `tag_addr` shift instead of divide.
    granule_shift: Option<u32>,
    /// `log2(line_bytes)` when the line size is a power of two.
    line_shift: Option<u32>,
    /// `sets - 1` when the set count is a power of two.
    set_mask: Option<u64>,
    entries: Vec<TagEntry>,
    stats: CacheStats,
}

impl Cache {
    /// Build a cache from `cfg`.
    ///
    /// # Panics
    /// Panics if geometry is degenerate (zero ways/size, or more than two
    /// sectors per tag).
    pub fn new(cfg: CacheConfig) -> Cache {
        assert!(cfg.size_bytes > 0 && cfg.ways > 0 && cfg.line_bytes > 0);
        assert!(
            cfg.sectors_per_tag == 1 || cfg.sectors_per_tag == 2,
            "1 or 2 sectors per tag supported"
        );
        let sets = cfg.sets();
        let granule = cfg.line_bytes * cfg.sectors_per_tag;
        Cache {
            sets,
            granule_shift: granule.is_power_of_two().then(|| granule.trailing_zeros()),
            line_shift: cfg
                .line_bytes
                .is_power_of_two()
                .then(|| cfg.line_bytes.trailing_zeros()),
            set_mask: sets.is_power_of_two().then(|| sets - 1),
            entries: vec![TagEntry::invalid(); (sets * cfg.ways as u64) as usize],
            stats: CacheStats::default(),
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn granule(&self) -> u64 {
        self.cfg.line_bytes * self.cfg.sectors_per_tag
    }

    #[inline]
    fn tag_addr(&self, addr: u64) -> u64 {
        match self.granule_shift {
            Some(s) => addr >> s,
            None => addr / self.granule(),
        }
    }

    #[inline]
    fn sector_of(&self, addr: u64) -> usize {
        // sectors_per_tag is 1 or 2 (asserted in `new`), so it is always
        // a power of two and the modulo can be a mask.
        let line = match self.line_shift {
            Some(s) => addr >> s,
            None => addr / self.cfg.line_bytes,
        };
        (line & (self.cfg.sectors_per_tag - 1)) as usize
    }

    #[inline]
    fn set_of(&self, addr: u64) -> u64 {
        let t = self.tag_addr(addr);
        let h = t ^ (t >> 13);
        match self.set_mask {
            Some(mask) => h & mask,
            None => h % self.sets,
        }
    }

    #[inline]
    fn find(&self, addr: u64) -> Option<usize> {
        let t = self.tag_addr(addr);
        let base = (self.set_of(addr) * self.cfg.ways as u64) as usize;
        let sector = self.sector_of(addr);
        (base..base + self.cfg.ways)
            .find(|&i| self.entries[i].tag_addr == t && self.entries[i].sector_valid >> sector & 1 == 1)
    }

    /// Probe without side effects: is the 64 B line present?
    pub fn probe(&self, addr: u64) -> bool {
        self.find(addr).is_some()
    }

    /// Branchless tag-array probe: fold the pow2-masked tag compare over
    /// every way with no early exit — the fixed-shape per-member inner
    /// loop the batched probe path hands the autovectorizer. Same result
    /// as [`Cache::probe`].
    #[inline]
    fn probe_ways(&self, addr: u64) -> bool {
        let t = self.tag_addr(addr);
        let base = (self.set_of(addr) * self.cfg.ways as u64) as usize;
        let sector = self.sector_of(addr);
        let mut hit = false;
        for e in &self.entries[base..base + self.cfg.ways] {
            hit |= e.tag_addr == t && (e.sector_valid >> sector) & 1 == 1;
        }
        hit
    }

    /// Batched SoA probe: test the 64 B line at `addr` for presence in
    /// every member of a lockstep population, appending one bool per
    /// member to `out` (cleared first, member order preserved). Side-
    /// effect-free: no replacement-state movement, no statistics.
    pub fn probe_batch(caches: &[&Cache], addr: u64, out: &mut Vec<bool>) {
        out.clear();
        out.reserve(caches.len());
        out.extend(caches.iter().map(|c| c.probe_ways(addr)));
    }

    /// Probe whether the *buddy* sector of `addr` is valid under the same
    /// tag (Buddy prefetcher support; always false for unsectored caches).
    pub fn buddy_valid(&self, addr: u64) -> bool {
        if self.cfg.sectors_per_tag != 2 {
            return false;
        }
        let buddy = addr ^ self.cfg.line_bytes;
        self.probe(buddy)
    }

    /// Look up `addr`; on a hit, update replacement state and metadata.
    /// Returns hit.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> bool {
        match self.find(addr) {
            Some(i) => {
                let sector = self.sector_of(addr);
                self.entries[i].rrpv = 0;
                match kind {
                    AccessKind::Demand => {
                        let m = &mut self.entries[i].meta[sector];
                        if m.prefetched && !m.demand_hit {
                            self.stats.useful_prefetch_hits += 1;
                        }
                        m.demand_hit = true;
                        if !m.second_pass {
                            m.reuse = m.reuse.saturating_add(1).min(3);
                        }
                        self.stats.demand_hits += 1;
                    }
                    AccessKind::Writeback => {
                        self.entries[i].sector_dirty |= 1 << sector;
                    }
                    _ => {
                        self.stats.prefetch_hits += 1;
                    }
                }
                true
            }
            None => {
                match kind {
                    AccessKind::Demand => self.stats.demand_misses += 1,
                    AccessKind::Writeback => {}
                    _ => self.stats.prefetch_misses += 1,
                }
                false
            }
        }
    }

    /// Fill the 64 B line at `addr`. Returns victims displaced by the fill
    /// (up to both sectors of an evicted sectored tag).
    pub fn fill(&mut self, addr: u64, kind: AccessKind, mut meta: LineMeta, priority: InsertPriority) -> Victims {
        if priority == InsertPriority::Bypass {
            return Victims::default();
        }
        self.stats.fills += 1;
        meta.prefetched = kind.is_prefetch();
        if kind == AccessKind::Demand {
            meta.demand_hit = true;
        }
        let t = self.tag_addr(addr);
        let sector = self.sector_of(addr);
        let base = (self.set_of(addr) * self.cfg.ways as u64) as usize;
        let insert_rrpv = match priority {
            InsertPriority::Elevated => 0,
            InsertPriority::Ordinary => 2,
            InsertPriority::Bypass => unreachable!("checked above"),
        };
        // Same tag already present (other sector valid, or refill)?
        if let Some(i) = (base..base + self.cfg.ways).find(|&i| self.entries[i].tag_addr == t) {
            let e = &mut self.entries[i];
            e.sector_valid |= 1 << sector;
            e.meta[sector] = meta;
            e.rrpv = e.rrpv.min(insert_rrpv);
            return Victims::default();
        }
        // SRRIP victim selection: a free way, else a way at RRPV 3 (aging
        // the set until one appears). Among RRPV-3 candidates, prefer
        // lines that a demand has already consumed over
        // prefetched-but-unconsumed ones — evicting the stream's past
        // rather than its prefetched future (§VIII.A's "preserve useful
        // data in the wake of transient streams").
        let victim_idx = loop {
            if let Some(i) = (base..base + self.cfg.ways).find(|&i| self.entries[i].sector_valid == 0) {
                break i;
            }
            // One scan, no candidate list: remember the first RRPV-3 way
            // and stop at the first fully demand-consumed one.
            let mut first = None;
            let mut consumed = None;
            for i in base..base + self.cfg.ways {
                if self.entries[i].rrpv < 3 {
                    continue;
                }
                if first.is_none() {
                    first = Some(i);
                }
                let e = &self.entries[i];
                if (0..self.cfg.sectors_per_tag as usize)
                    .filter(|&s| e.sector_valid >> s & 1 == 1)
                    .all(|s| e.meta[s].demand_hit)
                {
                    consumed = Some(i);
                    break;
                }
            }
            if let Some(i) = consumed.or(first) {
                break i;
            }
            for i in base..base + self.cfg.ways {
                self.entries[i].rrpv += 1;
            }
        };
        let mut victims = Victims::default();
        let granule = self.granule();
        {
            let e = &self.entries[victim_idx];
            if e.sector_valid != 0 {
                for s in 0..self.cfg.sectors_per_tag as usize {
                    if e.sector_valid >> s & 1 == 1 {
                        victims.push(Victim {
                            addr: e.tag_addr * granule + s as u64 * self.cfg.line_bytes,
                            meta: e.meta[s],
                            dirty: e.sector_dirty >> s & 1 == 1,
                        });
                    }
                }
                self.stats.evictions += victims.len() as u64;
            }
        }
        let e = &mut self.entries[victim_idx];
        *e = TagEntry::invalid();
        e.tag_addr = t;
        e.sector_valid = 1 << sector;
        e.meta[sector] = meta;
        e.rrpv = insert_rrpv;
        victims
    }

    /// Invalidate the 64 B line (exclusive-hierarchy swap). Returns its
    /// metadata if it was present.
    pub fn invalidate(&mut self, addr: u64) -> Option<(LineMeta, bool)> {
        let i = self.find(addr)?;
        let sector = self.sector_of(addr);
        let e = &mut self.entries[i];
        let meta = e.meta[sector];
        let dirty = e.sector_dirty >> sector & 1 == 1;
        e.sector_valid &= !(1 << sector);
        e.sector_dirty &= !(1 << sector);
        if e.sector_valid == 0 {
            e.tag_addr = u64::MAX;
            e.rrpv = 3;
        }
        Some((meta, dirty))
    }

    /// Mark the line dirty (store hit).
    pub fn mark_dirty(&mut self, addr: u64) {
        if let Some(i) = self.find(addr) {
            let sector = self.sector_of(addr);
            self.entries[i].sector_dirty |= 1 << sector;
        }
    }

    /// Read a line's metadata (no side effects).
    pub fn meta(&self, addr: u64) -> Option<LineMeta> {
        self.find(addr).map(|i| self.entries[i].meta[self.sector_of(addr)])
    }

    /// Mark the line as demanded by an inner level (§VIII.A: reuse
    /// metadata "passed through request or response channels between the
    /// cache levels"). No hit statistics are charged.
    pub fn mark_demanded(&mut self, addr: u64) {
        if let Some(i) = self.find(addr) {
            let sector = self.sector_of(addr);
            let m = &mut self.entries[i].meta[sector];
            m.demand_hit = true;
            if !m.second_pass {
                m.reuse = m.reuse.saturating_add(1).min(3);
            }
        }
    }

    /// Number of valid 64 B lines resident.
    pub fn occupancy(&self) -> usize {
        self.entries
            .iter()
            .map(|e| e.sector_valid.count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 4096,
            ways: 4,
            line_bytes: 64,
            sectors_per_tag: 1,
            latency: 4,
        })
    }

    #[test]
    fn probe_batch_matches_scalar_probe() {
        let mut a = small();
        let mut b = Cache::new(CacheConfig {
            size_bytes: 8192,
            ways: 8,
            line_bytes: 64,
            sectors_per_tag: 2,
            latency: 4,
        });
        for i in 0..32u64 {
            a.fill(0x1000 + i * 64, AccessKind::Demand, LineMeta::default(), InsertPriority::Elevated);
            if i % 2 == 0 {
                b.fill(0x1000 + i * 64, AccessKind::Demand, LineMeta::default(), InsertPriority::Elevated);
            }
        }
        let stats = (a.stats(), b.stats());
        let mut out = Vec::new();
        for addr in [0x1000u64, 0x1040, 0x9000, 0x1000 + 31 * 64] {
            Cache::probe_batch(&[&a, &b], addr, &mut out);
            assert_eq!(out, vec![a.probe(addr), b.probe(addr)]);
        }
        assert_eq!((a.stats(), b.stats()), stats, "probes must not touch stats");
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        assert!(!c.access(0x1000, AccessKind::Demand));
        c.fill(0x1000, AccessKind::Demand, LineMeta::default(), InsertPriority::Elevated);
        assert!(c.access(0x1000, AccessKind::Demand));
        assert_eq!(c.stats().demand_hits, 1);
        assert_eq!(c.stats().demand_misses, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small();
        // 4 ways: fill 5 lines mapping to the same set (set stride =
        // sets*64).
        let sets = c.config().sets();
        let stride = sets * 64;
        for i in 0..5u64 {
            let a = 0x10_0000 + i * stride;
            c.access(a, AccessKind::Demand);
            c.fill(a, AccessKind::Demand, LineMeta::default(), InsertPriority::Elevated);
        }
        assert!(!c.probe(0x10_0000), "oldest line evicted");
        assert!(c.probe(0x10_0000 + 4 * stride));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn sectored_tags_share_one_tag() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 4096,
            ways: 2,
            line_bytes: 64,
            sectors_per_tag: 2,
            latency: 12,
        });
        c.fill(0x2000, AccessKind::Demand, LineMeta::default(), InsertPriority::Elevated);
        assert!(c.probe(0x2000));
        assert!(!c.probe(0x2040), "buddy sector invalid until filled");
        assert!(!c.buddy_valid(0x2040) == false || c.buddy_valid(0x2040));
        assert!(c.buddy_valid(0x2040), "0x2000 is 0x2040's buddy");
        // Filling the buddy does not evict anything (same tag).
        let v = c.fill(0x2040, AccessKind::Prefetch, LineMeta::default(), InsertPriority::Ordinary);
        assert!(v.is_empty());
        assert!(c.probe(0x2040));
    }

    #[test]
    fn eviction_of_sectored_tag_yields_both_victims() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 1,
            line_bytes: 64,
            sectors_per_tag: 2,
            latency: 12,
        });
        let sets = c.config().sets();
        let stride = sets * 128;
        c.fill(0x4000, AccessKind::Demand, LineMeta::default(), InsertPriority::Elevated);
        c.fill(0x4040, AccessKind::Demand, LineMeta::default(), InsertPriority::Elevated);
        let v = c.fill(0x4000 + stride, AccessKind::Demand, LineMeta::default(), InsertPriority::Elevated);
        assert_eq!(v.len(), 2, "both sectors evicted with the tag");
    }

    #[test]
    fn useful_prefetch_tracked_once() {
        let mut c = small();
        c.fill(0x3000, AccessKind::Prefetch, LineMeta::default(), InsertPriority::Ordinary);
        assert!(c.access(0x3000, AccessKind::Demand));
        assert!(c.access(0x3000, AccessKind::Demand));
        assert_eq!(c.stats().useful_prefetch_hits, 1);
    }

    #[test]
    fn reuse_counter_saturates_and_skips_second_pass() {
        let mut c = small();
        let mut meta = LineMeta::default();
        meta.second_pass = true;
        c.fill(0x3000, AccessKind::PrefetchFirstPass, meta, InsertPriority::Ordinary);
        for _ in 0..5 {
            c.access(0x3000, AccessKind::Demand);
        }
        assert_eq!(c.meta(0x3000).unwrap().reuse, 0, "second-pass lines don't mark reuse");
        c.fill(0x3040, AccessKind::Demand, LineMeta::default(), InsertPriority::Elevated);
        for _ in 0..5 {
            c.access(0x3040, AccessKind::Demand);
        }
        assert_eq!(c.meta(0x3040).unwrap().reuse, 3, "saturates at 3");
    }

    #[test]
    fn elevated_insertion_resists_ordinary_stream() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 1024,
            ways: 4,
            line_bytes: 64,
            sectors_per_tag: 1,
            latency: 30,
        });
        let sets = c.config().sets();
        let stride = sets * 64;
        // One elevated (hot) line.
        c.fill(0x8000, AccessKind::Demand, LineMeta::default(), InsertPriority::Elevated);
        // An ordinary transient stream through the same set.
        for i in 1..9u64 {
            c.fill(0x8000 + i * stride, AccessKind::Demand, LineMeta::default(), InsertPriority::Ordinary);
        }
        assert!(c.probe(0x8000), "elevated line survives a transient stream");
        // But protection ages out eventually — a cold elevated line cannot
        // pin its way forever.
        for i in 9..40u64 {
            c.fill(0x8000 + i * stride, AccessKind::Demand, LineMeta::default(), InsertPriority::Ordinary);
        }
        assert!(!c.probe(0x8000), "unreferenced elevated line ages out");
    }

    #[test]
    fn invalidate_supports_exclusive_swaps() {
        let mut c = small();
        c.fill(0x9000, AccessKind::Demand, LineMeta::default(), InsertPriority::Elevated);
        c.mark_dirty(0x9000);
        let (meta, dirty) = c.invalidate(0x9000).unwrap();
        assert!(dirty);
        assert!(meta.demand_hit);
        assert!(!c.probe(0x9000));
        assert!(c.invalidate(0x9000).is_none());
    }

    #[test]
    fn occupancy_counts_valid_lines() {
        let mut c = small();
        for i in 0..10u64 {
            c.fill(0xA000 + i * 64, AccessKind::Demand, LineMeta::default(), InsertPriority::Elevated);
        }
        assert_eq!(c.occupancy(), 10);
    }
}

mod snapshot_impl {
    use super::*;
    use exynos_snapshot::{tags, Decoder, Encoder, Snapshot, SnapshotError};

    fn save_meta(enc: &mut Encoder, m: &LineMeta) {
        enc.bool(m.prefetched);
        enc.bool(m.demand_hit);
        enc.u8(m.reuse);
        enc.bool(m.second_pass);
    }

    fn load_meta(dec: &mut Decoder<'_>) -> Result<LineMeta, SnapshotError> {
        Ok(LineMeta {
            prefetched: dec.bool()?,
            demand_hit: dec.bool()?,
            reuse: dec.u8()?,
            second_pass: dec.bool()?,
        })
    }

    impl Snapshot for Cache {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::CACHE);
            enc.seq(self.entries.len());
            for e in &self.entries {
                enc.u64(e.tag_addr);
                enc.u8(e.sector_valid);
                enc.u8(e.sector_dirty);
                for m in &e.meta {
                    save_meta(enc, m);
                }
                enc.u8(e.rrpv);
            }
            enc.u64(self.stats.demand_hits);
            enc.u64(self.stats.demand_misses);
            enc.u64(self.stats.prefetch_hits);
            enc.u64(self.stats.prefetch_misses);
            enc.u64(self.stats.fills);
            enc.u64(self.stats.evictions);
            enc.u64(self.stats.useful_prefetch_hits);
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::CACHE)?;
            let n = dec.seq(1)?;
            if n != self.entries.len() {
                return Err(SnapshotError::Geometry {
                    what: "cache tag array",
                    expected: self.entries.len() as u64,
                    found: n as u64,
                });
            }
            for e in &mut self.entries {
                e.tag_addr = dec.u64()?;
                e.sector_valid = dec.u8()?;
                e.sector_dirty = dec.u8()?;
                for m in &mut e.meta {
                    *m = load_meta(dec)?;
                }
                e.rrpv = dec.u8()?;
            }
            self.stats.demand_hits = dec.u64()?;
            self.stats.demand_misses = dec.u64()?;
            self.stats.prefetch_hits = dec.u64()?;
            self.stats.prefetch_misses = dec.u64()?;
            self.stats.fills = dec.u64()?;
            self.stats.evictions = dec.u64()?;
            self.stats.useful_prefetch_hits = dec.u64()?;
            dec.end_section()
        }
    }
}
