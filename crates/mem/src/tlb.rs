//! The translation hierarchy of Table I: L1 instruction TLB, L1 data TLB,
//! the M3+ "level 1.5 Data TLB" ("additional capacity at much lower latency
//! than the much-larger L2 TLB"), and the shared L2 TLB, backed by a page
//! walker.
//!
//! Table I gives each structure as total pages (#entries / #ways /
//! #sectors); sectoring is modeled as multiple translations per entry
//! (adjacent pages sharing a tag).

/// Geometry of one TLB level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Tag entries.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
    /// Pages per entry (sectoring).
    pub sectors: usize,
    /// Hit latency added to the access (0 for the in-pipeline L1s).
    pub latency: u32,
}

impl TlbConfig {
    /// Total pages covered.
    pub fn pages(&self) -> usize {
        self.entries * self.sectors
    }
}

/// Hit/miss statistics for one TLB level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

/// One TLB array (page-granular, 4 KiB pages, sectored tags).
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    sets: usize,
    /// (tag-granule vpn, sector valid bits, lru)
    entries: Vec<(u64, u64, u64)>,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Build a TLB from `cfg`.
    ///
    /// # Panics
    /// Panics if entries or ways are zero.
    pub fn new(cfg: TlbConfig) -> Tlb {
        assert!(cfg.entries > 0 && cfg.ways > 0 && cfg.sectors > 0);
        let sets = (cfg.entries / cfg.ways).max(1);
        Tlb {
            sets,
            entries: vec![(u64::MAX, 0, 0); sets * cfg.ways],
            stamp: 0,
            hits: 0,
            misses: 0,
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TlbConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TlbStats {
        TlbStats {
            hits: self.hits,
            misses: self.misses,
        }
    }

    fn granule_vpn(&self, vaddr: u64) -> (u64, usize) {
        let vpn = vaddr >> 12;
        (vpn / self.cfg.sectors as u64, (vpn % self.cfg.sectors as u64) as usize)
    }

    fn set_of(&self, gvpn: u64) -> usize {
        ((gvpn ^ (gvpn >> 9)) % self.sets as u64) as usize
    }

    /// Translate `vaddr`; returns whether it hit.
    pub fn access(&mut self, vaddr: u64) -> bool {
        self.stamp += 1;
        let (gvpn, sector) = self.granule_vpn(vaddr);
        let base = self.set_of(gvpn) * self.cfg.ways;
        for i in base..base + self.cfg.ways {
            let (tag, valid, _) = self.entries[i];
            if tag == gvpn && valid >> sector & 1 == 1 {
                self.entries[i].2 = self.stamp;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Install the translation for `vaddr`.
    pub fn fill(&mut self, vaddr: u64) {
        self.stamp += 1;
        let (gvpn, sector) = self.granule_vpn(vaddr);
        let base = self.set_of(gvpn) * self.cfg.ways;
        // Same tag present: set the sector bit.
        for i in base..base + self.cfg.ways {
            if self.entries[i].0 == gvpn {
                self.entries[i].1 |= 1 << sector;
                self.entries[i].2 = self.stamp;
                return;
            }
        }
        let victim = (base..base + self.cfg.ways)
            .min_by_key(|&i| if self.entries[i].0 == u64::MAX { 0 } else { self.entries[i].2.max(1) })
            .unwrap_or(base);
        self.entries[victim] = (gvpn, 1 << sector, self.stamp);
    }
}

/// The per-generation translation hierarchy.
#[derive(Debug, Clone)]
pub struct TlbHierarchy {
    /// L1 instruction TLB.
    pub itlb: Tlb,
    /// L1 data TLB.
    pub dtlb: Tlb,
    /// The fast "level 1.5" data TLB (M3+).
    pub dtlb15: Option<Tlb>,
    /// Shared L2 TLB.
    pub l2tlb: Tlb,
    /// Page-walk latency in cycles on a full miss.
    pub walk_latency: u32,
}

/// Per-generation TLB geometry from Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlbHierarchyConfig {
    /// L1 ITLB.
    pub itlb: TlbConfig,
    /// L1 DTLB.
    pub dtlb: TlbConfig,
    /// L1.5 DTLB if present.
    pub dtlb15: Option<TlbConfig>,
    /// L2 TLB.
    pub l2tlb: TlbConfig,
    /// Page-walk latency.
    pub walk_latency: u32,
}

impl TlbHierarchyConfig {
    /// M1/M2 (Table I column 1–2).
    pub fn m1() -> TlbHierarchyConfig {
        TlbHierarchyConfig {
            itlb: TlbConfig { entries: 64, ways: 64, sectors: 4, latency: 0 },
            dtlb: TlbConfig { entries: 32, ways: 32, sectors: 1, latency: 0 },
            dtlb15: None,
            l2tlb: TlbConfig { entries: 1024, ways: 4, sectors: 1, latency: 8 },
            walk_latency: 40,
        }
    }

    /// M3 (adds the L1.5 DTLB; larger L2 TLB).
    pub fn m3() -> TlbHierarchyConfig {
        TlbHierarchyConfig {
            itlb: TlbConfig { entries: 64, ways: 64, sectors: 8, latency: 0 },
            dtlb: TlbConfig { entries: 32, ways: 32, sectors: 1, latency: 0 },
            dtlb15: Some(TlbConfig { entries: 128, ways: 4, sectors: 4, latency: 2 }),
            l2tlb: TlbConfig { entries: 1024, ways: 4, sectors: 4, latency: 10 },
            walk_latency: 40,
        }
    }

    /// M4/M5 (48-page DTLB).
    pub fn m4() -> TlbHierarchyConfig {
        let mut c = TlbHierarchyConfig::m3();
        c.dtlb = TlbConfig { entries: 48, ways: 48, sectors: 1, latency: 0 };
        c
    }

    /// M6 (128-page DTLB, 8K-page L2 TLB).
    pub fn m6() -> TlbHierarchyConfig {
        let mut c = TlbHierarchyConfig::m4();
        c.dtlb = TlbConfig { entries: 128, ways: 128, sectors: 1, latency: 0 };
        c.l2tlb = TlbConfig { entries: 2048, ways: 4, sectors: 4, latency: 10 };
        c
    }
}

impl TlbHierarchy {
    /// Build a hierarchy from `cfg`.
    pub fn new(cfg: &TlbHierarchyConfig) -> TlbHierarchy {
        TlbHierarchy {
            itlb: Tlb::new(cfg.itlb),
            dtlb: Tlb::new(cfg.dtlb),
            dtlb15: cfg.dtlb15.map(Tlb::new),
            l2tlb: Tlb::new(cfg.l2tlb),
            walk_latency: cfg.walk_latency,
        }
    }

    /// Translate a data access; returns added latency in cycles (0 on an
    /// L1 DTLB hit).
    pub fn translate_data(&mut self, vaddr: u64) -> u32 {
        if self.dtlb.access(vaddr) {
            return 0;
        }
        if let Some(t15) = &mut self.dtlb15 {
            if t15.access(vaddr) {
                self.dtlb.fill(vaddr);
                return t15.config().latency;
            }
        }
        let lat = if self.l2tlb.access(vaddr) {
            self.l2tlb.config().latency
        } else {
            self.l2tlb.fill(vaddr);
            self.l2tlb.config().latency + self.walk_latency
        };
        if let Some(t15) = &mut self.dtlb15 {
            t15.fill(vaddr);
        }
        self.dtlb.fill(vaddr);
        lat
    }

    /// Translate an instruction fetch; returns added latency.
    pub fn translate_inst(&mut self, vaddr: u64) -> u32 {
        if self.itlb.access(vaddr) {
            return 0;
        }
        let lat = if self.l2tlb.access(vaddr) {
            self.l2tlb.config().latency
        } else {
            self.l2tlb.fill(vaddr);
            self.l2tlb.config().latency + self.walk_latency
        };
        self.itlb.fill(vaddr);
        lat
    }

    /// Prefetch a translation (the virtual-address L1 prefetcher "inherently
    /// acts as a simple TLB prefetcher", §VII.A).
    pub fn prefetch_translation(&mut self, vaddr: u64) {
        if !self.dtlb.access(vaddr) {
            if let Some(t15) = &mut self.dtlb15 {
                t15.fill(vaddr);
            }
            self.dtlb.fill(vaddr);
            self.l2tlb.fill(vaddr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_page_counts() {
        let m1 = TlbHierarchyConfig::m1();
        assert_eq!(m1.itlb.pages(), 256);
        assert_eq!(m1.dtlb.pages(), 32);
        assert_eq!(m1.l2tlb.pages(), 1024);
        let m3 = TlbHierarchyConfig::m3();
        assert_eq!(m3.itlb.pages(), 512);
        assert_eq!(m3.dtlb15.unwrap().pages(), 512);
        assert_eq!(m3.l2tlb.pages(), 4096);
        let m6 = TlbHierarchyConfig::m6();
        assert_eq!(m6.dtlb.pages(), 128);
        assert_eq!(m6.l2tlb.pages(), 8192);
    }

    #[test]
    fn first_access_walks_second_hits() {
        let mut h = TlbHierarchy::new(&TlbHierarchyConfig::m1());
        let lat = h.translate_data(0x1234_5678);
        assert!(lat >= h.walk_latency);
        assert_eq!(h.translate_data(0x1234_5000), 0, "same page hits");
    }

    #[test]
    fn l15_serves_dtlb_evictions_cheaply() {
        let mut h = TlbHierarchy::new(&TlbHierarchyConfig::m3());
        // Touch 64 pages: far more than the 32-page DTLB, within the
        // 512-page L1.5.
        for p in 0..64u64 {
            let _ = h.translate_data(p << 12);
        }
        // Revisit page 0: DTLB has evicted it, but the L1.5 should hold it.
        let lat = h.translate_data(0);
        assert_eq!(lat, 2, "L1.5 latency, not a walk");
    }

    #[test]
    fn m1_without_l15_pays_l2_latency() {
        let mut h = TlbHierarchy::new(&TlbHierarchyConfig::m1());
        for p in 0..64u64 {
            let _ = h.translate_data(p << 12);
        }
        let lat = h.translate_data(0);
        assert_eq!(lat, 8, "L2 TLB latency on M1");
    }

    #[test]
    fn sectored_itlb_covers_adjacent_pages() {
        let mut h = TlbHierarchy::new(&TlbHierarchyConfig::m1());
        let _ = h.translate_inst(0x40_0000);
        // Fill covers only its own page; an adjacent page in the same
        // sector granule still misses until filled, then shares the tag.
        let _ = h.translate_inst(0x40_1000);
        assert_eq!(h.translate_inst(0x40_0000), 0);
        assert_eq!(h.translate_inst(0x40_1000), 0);
    }

    #[test]
    fn prefetch_translation_preloads() {
        let mut h = TlbHierarchy::new(&TlbHierarchyConfig::m3());
        h.prefetch_translation(0x9999_0000);
        assert_eq!(h.translate_data(0x9999_0008), 0, "prefetched page hits");
    }
}

mod snapshot_impl {
    use super::*;
    use exynos_snapshot::{tags, Decoder, Encoder, Snapshot, SnapshotError};

    impl Snapshot for Tlb {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::TLB);
            enc.seq(self.entries.len());
            for (vpn, valid, lru) in &self.entries {
                enc.u64(*vpn);
                enc.u64(*valid);
                enc.u64(*lru);
            }
            enc.u64(self.stamp);
            enc.u64(self.hits);
            enc.u64(self.misses);
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::TLB)?;
            let n = dec.seq(24)?;
            if n != self.entries.len() {
                return Err(SnapshotError::Geometry {
                    what: "tlb entries",
                    expected: self.entries.len() as u64,
                    found: n as u64,
                });
            }
            for e in &mut self.entries {
                *e = (dec.u64()?, dec.u64()?, dec.u64()?);
            }
            self.stamp = dec.u64()?;
            self.hits = dec.u64()?;
            self.misses = dec.u64()?;
            dec.end_section()
        }
    }

    impl Snapshot for TlbHierarchy {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::TLB_HIERARCHY);
            self.itlb.save(enc);
            self.dtlb.save(enc);
            match &self.dtlb15 {
                Some(t) => {
                    enc.u8(1);
                    t.save(enc);
                }
                None => enc.u8(0),
            }
            self.l2tlb.save(enc);
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::TLB_HIERARCHY)?;
            self.itlb.restore(dec)?;
            self.dtlb.restore(dec)?;
            let has_15 = match dec.u8()? {
                0 => false,
                1 => true,
                _ => return Err(SnapshotError::Corrupt { what: "dtlb1.5 presence flag" }),
            };
            match (&mut self.dtlb15, has_15) {
                (Some(t), true) => t.restore(dec)?,
                (None, false) => {}
                (mine, _) => {
                    return Err(SnapshotError::Geometry {
                        what: "dtlb1.5 presence",
                        expected: u64::from(mine.is_some()),
                        found: u64::from(has_15),
                    })
                }
            }
            self.l2tlb.restore(dec)?;
            dec.end_section()
        }
    }
}
