//! Property tests on cache arrays, TLBs and miss buffers.

use exynos_mem::{AccessKind, Cache, CacheConfig, InsertPriority, LineMeta, MissBuffers, Tlb, TlbConfig};
use proptest::prelude::*;

fn small_cache(sectors: u64) -> Cache {
    Cache::new(CacheConfig {
        size_bytes: 8192,
        ways: 4,
        line_bytes: 64,
        sectors_per_tag: sectors,
        latency: 4,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Occupancy never exceeds capacity and a filled line is immediately
    /// probeable, under arbitrary fill/invalidate mixes.
    #[test]
    fn cache_occupancy_and_residency(
        ops in prop::collection::vec((0u64..4096, any::<bool>()), 300),
        sectors in 1u64..3,
    ) {
        let mut c = small_cache(sectors);
        let lines_cap = 8192 / 64;
        for (line, fill) in ops {
            let addr = line * 64;
            if fill {
                c.fill(addr, AccessKind::Demand, LineMeta::default(), InsertPriority::Elevated);
                prop_assert!(c.probe(addr), "fill must leave the line resident");
            } else {
                let _ = c.invalidate(addr);
                prop_assert!(!c.probe(addr), "invalidate must remove the line");
            }
            prop_assert!(c.occupancy() <= lines_cap as usize);
        }
    }

    /// Every eviction is reported: fills(with victims) conserve lines —
    /// occupancy == fills - evictions - invalidations (per 64 B line).
    #[test]
    fn cache_line_conservation(lines in prop::collection::vec(0u64..8192, 400)) {
        let mut c = small_cache(1);
        let mut filled = 0i64;
        let mut evicted = 0i64;
        for line in lines {
            let addr = line * 64;
            if !c.probe(addr) {
                let victims = c.fill(addr, AccessKind::Demand, LineMeta::default(), InsertPriority::Ordinary);
                filled += 1;
                evicted += victims.len() as i64;
            }
        }
        prop_assert_eq!(c.occupancy() as i64, filled - evicted);
    }

    /// Bypass-priority fills never allocate.
    #[test]
    fn bypass_never_allocates(lines in prop::collection::vec(0u64..1024, 50)) {
        let mut c = small_cache(1);
        for line in lines {
            let v = c.fill(line * 64, AccessKind::Prefetch, LineMeta::default(), InsertPriority::Bypass);
            prop_assert!(v.is_empty());
            prop_assert!(!c.probe(line * 64));
        }
        prop_assert_eq!(c.occupancy(), 0);
    }

    /// TLB: a translation hit follows every fill; sectored entries never
    /// leak translations for pages that were not filled.
    #[test]
    fn tlb_fill_then_hit(pages in prop::collection::vec(0u64..100_000, 100)) {
        let mut t = Tlb::new(TlbConfig { entries: 32, ways: 4, sectors: 4, latency: 2 });
        for p in &pages {
            let va = p << 12;
            t.fill(va);
            prop_assert!(t.access(va), "freshly filled page must hit");
        }
    }

    /// Miss buffers: occupancy is bounded by capacity at every instant and
    /// allocation succeeds iff a slot is free.
    #[test]
    fn miss_buffers_bounded(reqs in prop::collection::vec((0u64..1000, 1u64..200), 100), cap in 1usize..16) {
        let mut m = MissBuffers::new(cap);
        for (now, dur) in reqs {
            let occupied_before = m.occupancy(now);
            let ok = m.try_allocate(now, now + dur);
            prop_assert_eq!(ok, occupied_before < cap);
            prop_assert!(m.occupancy(now) <= cap);
            prop_assert!(m.earliest_free(now) >= now);
        }
    }
}
