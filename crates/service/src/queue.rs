//! Bounded MPMC job queue with load shedding.
//!
//! Backpressure is a *typed response*, not an unbounded buffer: when the
//! queue is at capacity, [`BoundedQueue::try_push`] refuses and the
//! engine answers the client with `Overloaded` and the current depth.
//! Retries of already-admitted jobs re-enter through
//! [`BoundedQueue::push_force`] — admission control happens once, at
//! submission, so a retry can never be shed by traffic that arrived
//! after it.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// FIFO queue refusing pushes beyond `capacity`.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    capacity: usize,
    items: Mutex<VecDeque<T>>,
    ready: Condvar,
}

/// The queue was full; carries the depth observed at rejection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// Items queued when the push was refused.
    pub depth: usize,
}

fn lock<'a, T>(m: &'a Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'a, VecDeque<T>> {
    // A poisoned queue mutex means a worker panicked mid-push/pop; the
    // queue itself (a VecDeque of ids) is still structurally sound.
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            capacity: capacity.max(1),
            items: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        }
    }

    /// Admission-controlled push: refuses when full.
    pub fn try_push(&self, item: T) -> Result<(), QueueFull> {
        let mut q = lock(&self.items);
        if q.len() >= self.capacity {
            return Err(QueueFull { depth: q.len() });
        }
        q.push_back(item);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Capacity-exempt push for retries and journal recovery.
    pub fn push_force(&self, item: T) {
        lock(&self.items).push_back(item);
        self.ready.notify_one();
    }

    /// Pop the oldest item, waiting up to `timeout` for one to arrive.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let mut q = lock(&self.items);
        if let Some(item) = q.pop_front() {
            return Some(item);
        }
        let mut q = match self.ready.wait_timeout(q, timeout) {
            Ok((guard, _)) => guard,
            Err(poisoned) => poisoned.into_inner().0,
        };
        q.pop_front()
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        lock(&self.items).len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sheds_at_capacity_but_force_push_bypasses() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(QueueFull { depth: 2 }));
        q.push_force(4);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(1));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(2));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(4));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), None);
    }

    #[test]
    fn pop_wakes_on_cross_thread_push() {
        let q = std::sync::Arc::new(BoundedQueue::new(4));
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.pop_timeout(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        q.push_force(42);
        assert_eq!(t.join().ok().flatten(), Some(42));
    }
}
