//! Per-configuration circuit breaker.
//!
//! A job spec whose runs repeatedly exhaust the watchdog's degradation
//! ladder is burning a worker for the full deadline every time it is
//! submitted. After `trip_threshold` *consecutive* watchdog-class final
//! failures of the same [`config key`](crate::job::JobSpec::config_key),
//! the breaker opens: further submissions of that configuration are
//! refused with a typed `Quarantined` response, costing microseconds
//! instead of a wedged worker.
//!
//! The breaker half-opens on service progress rather than wall time
//! (nothing in this stack consults a clock it doesn't have to): once
//! `cooldown_jobs` jobs of *any* configuration complete after the trip,
//! the next submission of the quarantined key is admitted as a probe.
//! A successful probe closes the breaker; a watchdog failure re-opens
//! it for another cooldown.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    consecutive_watchdog: u32,
    /// `Some(completion count at trip)` while open.
    tripped_at: Option<u64>,
    /// A probe is in flight; further submissions stay refused.
    probing: bool,
}

/// Why a submission was refused by the breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quarantined {
    /// Config key that is quarantined.
    pub key: u64,
    /// Consecutive watchdog failures that opened the breaker.
    pub failures: u32,
}

/// The breaker itself; one per engine.
#[derive(Debug)]
pub struct CircuitBreaker {
    trip_threshold: u32,
    cooldown_jobs: u64,
    completions: AtomicU64,
    entries: Mutex<HashMap<u64, Entry>>,
}

fn lock(m: &Mutex<HashMap<u64, Entry>>) -> std::sync::MutexGuard<'_, HashMap<u64, Entry>> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl CircuitBreaker {
    /// A breaker opening after `trip_threshold` consecutive watchdog
    /// failures and half-opening after `cooldown_jobs` completions.
    pub fn new(trip_threshold: u32, cooldown_jobs: u64) -> CircuitBreaker {
        CircuitBreaker {
            trip_threshold: trip_threshold.max(1),
            cooldown_jobs,
            completions: AtomicU64::new(0),
            entries: Mutex::new(HashMap::new()),
        }
    }

    /// Admission check at submission time.
    pub fn admit(&self, key: u64) -> Result<(), Quarantined> {
        let mut entries = lock(&self.entries);
        let Some(e) = entries.get_mut(&key) else { return Ok(()) };
        let Some(tripped_at) = e.tripped_at else { return Ok(()) };
        if e.probing {
            return Err(Quarantined { key, failures: e.consecutive_watchdog });
        }
        let now = self.completions.load(Ordering::Acquire);
        if now.saturating_sub(tripped_at) >= self.cooldown_jobs {
            // Half-open: admit exactly one probe.
            e.probing = true;
            return Ok(());
        }
        Err(Quarantined { key, failures: e.consecutive_watchdog })
    }

    /// A job of `key` completed successfully: close the breaker for it
    /// and advance the global completion clock.
    pub fn record_success(&self, key: u64) {
        lock(&self.entries).remove(&key);
        self.completions.fetch_add(1, Ordering::AcqRel);
    }

    /// A job of `key` ended with a watchdog-class final failure.
    /// Returns `true` when this failure newly opened the breaker (for
    /// flight-recorder triggers); re-opening after a failed probe is
    /// not "new".
    pub fn record_watchdog_failure(&self, key: u64) -> bool {
        let mut entries = lock(&self.entries);
        let e = entries.entry(key).or_default();
        e.consecutive_watchdog += 1;
        e.probing = false;
        let newly_tripped =
            e.consecutive_watchdog >= self.trip_threshold && e.tripped_at.is_none();
        if e.consecutive_watchdog >= self.trip_threshold {
            e.tripped_at = Some(self.completions.load(Ordering::Acquire));
        }
        drop(entries);
        self.completions.fetch_add(1, Ordering::AcqRel);
        newly_tripped
    }

    /// A job of `key` ended with a non-watchdog final failure: breaks
    /// the consecutive-watchdog streak but never trips the breaker.
    pub fn record_other_failure(&self, key: u64) {
        let mut entries = lock(&self.entries);
        if let Some(e) = entries.get_mut(&key) {
            if e.tripped_at.is_none() {
                entries.remove(&key);
            } else {
                // Still quarantined; a failed probe of a different error
                // class keeps the breaker open.
                e.probing = false;
            }
        }
        drop(entries);
        self.completions.fetch_add(1, Ordering::AcqRel);
    }

    /// Currently quarantined configuration count.
    pub fn open_count(&self) -> usize {
        lock(&self.entries).values().filter(|e| e.tripped_at.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_consecutive_watchdog_failures() {
        let b = CircuitBreaker::new(3, 2);
        assert!(b.admit(9).is_ok());
        b.record_watchdog_failure(9);
        b.record_watchdog_failure(9);
        assert!(b.admit(9).is_ok(), "below threshold");
        b.record_watchdog_failure(9);
        let q = b.admit(9).unwrap_err();
        assert_eq!(q.failures, 3);
        assert_eq!(b.open_count(), 1);
        // Other keys are unaffected.
        assert!(b.admit(10).is_ok());
    }

    #[test]
    fn watchdog_failure_reports_fresh_trips_once() {
        let b = CircuitBreaker::new(2, 100);
        assert!(!b.record_watchdog_failure(3));
        assert!(b.record_watchdog_failure(3), "crossing the threshold is a fresh trip");
        assert!(!b.record_watchdog_failure(3), "already open is not a fresh trip");
    }

    #[test]
    fn success_breaks_the_streak() {
        let b = CircuitBreaker::new(2, 1);
        b.record_watchdog_failure(5);
        b.record_success(5);
        b.record_watchdog_failure(5);
        assert!(b.admit(5).is_ok(), "streak reset by success");
    }

    #[test]
    fn half_open_probe_closes_or_reopens() {
        let b = CircuitBreaker::new(1, 2);
        b.record_watchdog_failure(7);
        assert!(b.admit(7).is_err(), "open immediately");
        // Service-wide progress reaches the cooldown.
        b.record_success(1);
        b.record_success(2);
        assert!(b.admit(7).is_ok(), "half-open admits one probe");
        assert!(b.admit(7).is_err(), "only one probe at a time");
        // Probe fails with a watchdog error: re-opens for a new cooldown.
        b.record_watchdog_failure(7);
        assert!(b.admit(7).is_err());
        b.record_success(1);
        b.record_success(2);
        assert!(b.admit(7).is_ok());
        // This probe succeeds: fully closed.
        b.record_success(7);
        assert!(b.admit(7).is_ok());
        assert!(b.admit(7).is_ok());
        assert_eq!(b.open_count(), 0);
    }
}
