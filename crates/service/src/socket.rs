//! Unix-domain-socket transport: the serve loop and a one-shot client.
//!
//! The listener runs non-blocking so the accept loop can interleave
//! shutdown polling; each accepted connection gets a blocking
//! thread-per-connection handler (connection counts here are ops
//! tooling, not end-user traffic). When a client issues `shutdown`, the
//! accept loop stops accepting, drains the engine (bounded), removes
//! the socket file, and returns.

use crate::engine::Engine;
use crate::protocol;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// How long a graceful drain may take before workers are stopped anyway.
pub const DRAIN_TIMEOUT: Duration = Duration::from_secs(120);

/// Serve `engine` on a unix socket at `path` until a client requests
/// shutdown. Replaces any stale socket file at `path`.
pub fn serve(engine: Engine, path: &Path) -> std::io::Result<bool> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let engine = Arc::new(engine);
    loop {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || {
                    let _ = handle_conn(&engine, stream);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if engine.shutdown_requested() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => {
                let _ = std::fs::remove_file(path);
                return Err(e);
            }
        }
    }
    let drained = engine.drain(DRAIN_TIMEOUT);
    let _ = std::fs::remove_file(path);
    Ok(drained)
}

fn handle_conn(engine: &Engine, stream: UnixStream) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut resp = protocol::handle_line(engine, &line);
        resp.push('\n');
        writer.write_all(resp.as_bytes())?;
        writer.flush()?;
    }
    Ok(())
}

/// One-shot client: connect, send one request line, read one response
/// line. `timeout` bounds both the connect-side I/O waits.
pub fn call(path: &Path, request: &str, timeout: Duration) -> std::io::Result<String> {
    let stream = UnixStream::connect(path)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(request.trim().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    if line.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection without responding",
        ));
    }
    Ok(line.trim_end().to_owned())
}
