//! Hand-rolled JSON: a recursive-descent parser and deterministic
//! emission helpers.
//!
//! The build environment has no registry access (no `serde`), and the
//! wire protocol plus the job journal both need to *read* JSON, which
//! [`exynos_telemetry::json`] (writers only) does not cover. The parser
//! is deliberately small: objects keep insertion order in a `Vec` of
//! pairs, numbers are `f64` (every value the protocol carries fits in
//! the 2^53 exact-integer range), and nesting is capped so a hostile
//! client cannot blow the stack.

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: u32 = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (exact for integers up to 2^53).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs (first match wins on lookup).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse `s` as one JSON document (trailing non-whitespace rejected).
    pub fn parse(s: &str) -> Result<Json, String> {
        let b = s.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(b, &mut pos, 0)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(v)
    }

    /// Object field lookup (`None` on non-objects and absent keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` when it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a `u32`.
    pub fn as_u32(&self) -> Option<u32> {
        self.as_u64().and_then(|v| u32::try_from(v).ok())
    }

    /// The value as a `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The value as an `f64` number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: u32) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".into());
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos, depth + 1)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                let val = parse_value(b, pos, depth + 1)?;
                pairs.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "non-utf8 number".to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {text:?} at offset {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())?;
                        // Surrogate pairs are not reassembled; lone
                        // surrogates map to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input came from a &str,
                // so the byte stream is valid UTF-8).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "non-utf8".to_string())?;
                if let Some(c) = rest.chars().next() {
                    out.push(c);
                    *pos += c.len_utf8();
                } else {
                    return Err("unterminated string".into());
                }
            }
        }
    }
}

// ---------------- emission ----------------

/// Append `s` as a quoted JSON string with required escapes.
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `"key":` (comma-prefixed unless `first`).
pub fn push_key(out: &mut String, first: bool, key: &str) {
    if !first {
        out.push(',');
    }
    push_str(out, key);
    out.push(':');
}

/// Append an unsigned integer.
pub fn push_u64(out: &mut String, v: u64) {
    let _ = write!(out, "{v}");
}

/// Append a float (`null` when not finite).
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v = Json::parse(
            r#"{"cmd":"submit","job":{"kind":"sweep","scale":2,"threads":4},"deadline_ms":1500,"tags":["a","b"],"neg":-3.5,"flag":true,"nothing":null}"#,
        )
        .unwrap();
        assert_eq!(v.get("cmd").and_then(Json::as_str), Some("submit"));
        let job = v.get("job").unwrap();
        assert_eq!(job.get("scale").and_then(Json::as_usize), Some(2));
        assert_eq!(v.get("deadline_ms").and_then(Json::as_u64), Some(1500));
        assert_eq!(v.get("neg").and_then(Json::as_f64), Some(-3.5));
        assert_eq!(v.get("neg").and_then(Json::as_u64), None, "negatives are not u64");
        assert_eq!(v.get("flag").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("nothing"), Some(&Json::Null));
        match v.get("tags") {
            Some(Json::Arr(items)) => assert_eq!(items.len(), 2),
            other => panic!("bad array: {other:?}"),
        }
    }

    #[test]
    fn escapes_round_trip() {
        let original = "line1\nline2\t\"quoted\" back\\slash \u{1} π";
        let mut encoded = String::new();
        push_str(&mut encoded, original);
        let decoded = Json::parse(&encoded).unwrap();
        assert_eq!(decoded.as_str(), Some(original));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "1 2", "\"open"] {
            assert!(Json::parse(bad).is_err(), "must reject {bad:?}");
        }
        // Depth bomb stops at the cap instead of overflowing the stack.
        let bomb = "[".repeat(1000) + &"]".repeat(1000);
        assert!(Json::parse(&bomb).is_err());
    }

    #[test]
    fn integer_precision_holds_to_2_pow_53() {
        let v = Json::parse("9007199254740992").unwrap();
        assert_eq!(v.as_u64(), Some(9_007_199_254_740_992));
    }
}
