//! The job engine: queue, workers, robustness envelope, journal.
//!
//! Every job admitted by [`Engine::submit`] travels one path:
//!
//! 1. **Admission** — refused typed (`ShuttingDown`, `Quarantined`,
//!    `Overloaded`) before any work is spent.
//! 2. **Write-ahead journal** — the spec is durable before the job can
//!    run, so a `kill -9` at any later point is recoverable.
//! 3. **Execution** — a worker runs the spec with a [`CancelToken`]
//!    armed with the job's deadline; the core step loop polls it.
//! 4. **Retry** — a retryable [`SimError`] re-queues the job after
//!    exponential backoff, up to the envelope's `max_retries`.
//! 5. **Terminal record** — completion payload or typed failure is
//!    journaled, making results durable across restarts too.
//!
//! Recovery ([`Engine::start`] with a journal path) replays the clean
//! prefix: jobs with terminal records come back queryable, jobs without
//! re-enqueue in submission order. Because every job is deterministic,
//! the re-run payloads are byte-identical to what the crashed server
//! would have produced.

use crate::breaker::{CircuitBreaker, Quarantined};
use crate::job::{JobCtx, JobId, JobRunner, JobSpec, JobState};
use crate::json::{self, Json};
use crate::queue::BoundedQueue;
use exynos_core::cancel::CancelToken;
use exynos_snapshot::journal::{self, JournalWriter};
use exynos_telemetry::{
    FlightRecorder, MetricsRegistry, SharedSpans, SpanId, Telemetry, DEFAULT_FLIGHT_CAPACITY,
};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Journal record kind: a job submission (write-ahead).
const REC_SUBMIT: u8 = 1;
/// Journal record kind: a terminal outcome.
const REC_TERMINAL: u8 = 2;

/// Canonical latency-stage names; every span name maps onto one of
/// these (or is dropped) when job spans are folded into the per-stage
/// quantile histograms at `service.latency.<stage>`.
const STAGES: [&str; 7] = [
    "job_total",
    "submit",
    "queue_wait",
    "attempt",
    "warm_pool_fetch",
    "slice",
    "result_encode",
];

/// Map a span name to its latency stage: the root `job` span becomes
/// `job_total`, indexed spans (`attempt[2]`, `slice[m3/0]`) fold onto
/// their base name, unknown names are skipped.
fn base_stage(name: &str) -> Option<&'static str> {
    let base = name.split('[').next().unwrap_or(name);
    if base == "job" {
        return Some("job_total");
    }
    STAGES.iter().find(|s| **s == base).copied()
}

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing jobs (0 = accept/journal only, used by
    /// crash-recovery tests to model a server that dies before running).
    pub workers: usize,
    /// Bounded queue capacity; beyond it submissions shed with
    /// `Overloaded`.
    pub queue_capacity: usize,
    /// Default per-job deadline in ms when the envelope omits one
    /// (0 = no deadline).
    pub default_deadline_ms: u64,
    /// Default retry budget for retryable errors.
    pub default_max_retries: u32,
    /// First retry backoff in ms (doubles per attempt).
    pub backoff_base_ms: u64,
    /// Backoff ceiling in ms.
    pub backoff_cap_ms: u64,
    /// Consecutive watchdog failures before a config is quarantined.
    pub breaker_threshold: u32,
    /// Completions after a trip before a half-open probe is admitted.
    pub breaker_cooldown_jobs: u64,
    /// Write-ahead journal path (`None` = volatile engine).
    pub journal_path: Option<PathBuf>,
    /// Directory receiving flight-recorder post-mortem dumps
    /// (`postmortem-N.jsonl`); `None` keeps dumps in memory only.
    pub postmortem_dir: Option<PathBuf>,
    /// Flight-recorder ring capacity in lines.
    pub flight_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            default_deadline_ms: 0,
            default_max_retries: 2,
            backoff_base_ms: 10,
            backoff_cap_ms: 1_000,
            breaker_threshold: 3,
            breaker_cooldown_jobs: 8,
            journal_path: None,
            postmortem_dir: None,
            flight_capacity: DEFAULT_FLIGHT_CAPACITY,
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full; carries its depth.
    Overloaded {
        /// Queue depth at rejection.
        depth: usize,
    },
    /// The configuration is quarantined by the circuit breaker.
    Quarantined {
        /// Consecutive watchdog failures that opened the breaker.
        failures: u32,
    },
    /// The engine is draining for shutdown.
    ShuttingDown,
}

/// A point-in-time view of one job.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Job id.
    pub id: JobId,
    /// Lifecycle state.
    pub state: JobState,
    /// Execution attempts so far.
    pub attempts: u32,
    /// Terminal error kind (stable label), if failed.
    pub error_kind: Option<String>,
    /// Terminal error message, if failed.
    pub error: Option<String>,
    /// Result payload, if completed.
    pub payload: Option<String>,
    /// Whether the job was re-enqueued by journal recovery.
    pub recovered: bool,
}

#[derive(Debug)]
struct JobEntry {
    spec: JobSpec,
    deadline_ms: u64,
    max_retries: u32,
    state: JobState,
    attempts: u32,
    error_kind: Option<String>,
    error: Option<String>,
    payload: Option<String>,
    cancel: CancelToken,
    deadline_armed: bool,
    recovered: bool,
    /// The job's span trace (zero-sized no-op with telemetry off).
    spans: SharedSpans,
    /// Root `job` span covering submit through terminal.
    root_span: SpanId,
    /// The currently open `queue_wait` span, closed at dequeue.
    queue_span: Option<SpanId>,
}

impl JobEntry {
    fn new(spec: JobSpec, deadline_ms: u64, max_retries: u32) -> JobEntry {
        JobEntry {
            spec,
            deadline_ms,
            max_retries,
            state: JobState::Queued,
            attempts: 0,
            error_kind: None,
            error: None,
            payload: None,
            cancel: CancelToken::new(),
            deadline_armed: false,
            recovered: false,
            spans: SharedSpans::new(),
            root_span: SpanId::default(),
            queue_span: None,
        }
    }
}

/// Monotone service counters (plain atomics — live with or without the
/// telemetry feature).
#[derive(Debug, Default)]
pub struct ServiceCounters {
    /// Jobs admitted.
    pub submitted: AtomicU64,
    /// Jobs completed with a payload.
    pub completed: AtomicU64,
    /// Jobs ending in a typed failure.
    pub failed: AtomicU64,
    /// Retry attempts performed.
    pub retries: AtomicU64,
    /// Submissions shed by backpressure.
    pub sheds: AtomicU64,
    /// Submissions refused by the circuit breaker.
    pub quarantined: AtomicU64,
    /// Jobs failed because their deadline expired.
    pub deadline_misses: AtomicU64,
    /// Jobs cancelled explicitly.
    pub cancelled: AtomicU64,
    /// Incomplete jobs re-enqueued by journal recovery.
    pub recovered: AtomicU64,
}

/// The engine's persistent ops registry: queue gauges/counters sampled
/// on every queue transition plus the per-stage latency quantiles. One
/// instance lives for the life of the engine (unlike the point-in-time
/// snapshot [`Engine::metrics_registry`] hands out), which is what lets
/// the quantile histograms accumulate.
struct Ops {
    registry: MetricsRegistry,
    queue_depth: exynos_telemetry::MetricId,
    shed_total: exynos_telemetry::MetricId,
    retry_total: exynos_telemetry::MetricId,
    cache_hit_total: exynos_telemetry::MetricId,
    cache_miss_total: exynos_telemetry::MetricId,
    cache_eviction_total: exynos_telemetry::MetricId,
    cache_bytes: exynos_telemetry::MetricId,
    pipeline_stall: exynos_telemetry::MetricId,
    /// Runner cache stats at the last sample, so each job folds in only
    /// its own delta (the runner counters are cumulative).
    last_cache: exynos_core::batch::ChunkCacheStats,
}

impl Ops {
    fn new() -> Ops {
        let mut registry = MetricsRegistry::new();
        let queue_depth = registry.gauge("service.queue", "depth");
        let shed_total = registry.counter("service.queue", "shed_total");
        let retry_total = registry.counter("service.queue", "retry_total");
        let cache_hit_total = registry.counter("chunk_cache", "hit_total");
        let cache_miss_total = registry.counter("chunk_cache", "miss_total");
        let cache_eviction_total = registry.counter("chunk_cache", "eviction_total");
        let cache_bytes = registry.gauge("chunk_cache", "bytes");
        let pipeline_stall = registry.quantile_histogram("pipeline", "stall");
        for stage in STAGES {
            registry.quantile_histogram("service.latency", stage);
        }
        Ops {
            registry,
            queue_depth,
            shed_total,
            retry_total,
            cache_hit_total,
            cache_miss_total,
            cache_eviction_total,
            cache_bytes,
            pipeline_stall,
            last_cache: exynos_core::batch::ChunkCacheStats::default(),
        }
    }
}

struct Inner {
    runner: Box<dyn JobRunner>,
    cfg: ServiceConfig,
    queue: BoundedQueue<JobId>,
    jobs: Mutex<HashMap<JobId, JobEntry>>,
    next_id: AtomicU64,
    journal: Mutex<Option<JournalWriter>>,
    journal_seq: AtomicU64,
    breaker: CircuitBreaker,
    counters: ServiceCounters,
    draining: AtomicBool,
    stop: AtomicBool,
    shutdown_requested: AtomicBool,
    running: AtomicUsize,
    journal_torn: AtomicBool,
    ops: Mutex<Ops>,
    flight: Mutex<FlightRecorder>,
    last_postmortem: Mutex<Option<String>>,
    postmortems: AtomicU64,
    /// Wall anchor for flight-recorder event timestamps.
    epoch: Instant,
}

fn lock_ops(m: &Mutex<Ops>) -> MutexGuard<'_, Ops> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Refresh the queue-depth gauge; call after every queue transition.
fn ops_queue_depth(inner: &Inner) {
    if !Telemetry::ACTIVE {
        return;
    }
    let depth = inner.queue.len() as f64;
    let mut ops = lock_ops(&inner.ops);
    let id = ops.queue_depth;
    ops.registry.set_gauge(id, depth);
}

/// Count one shed and refresh the depth gauge.
fn ops_count_shed(inner: &Inner) {
    if !Telemetry::ACTIVE {
        return;
    }
    let depth = inner.queue.len() as f64;
    let mut ops = lock_ops(&inner.ops);
    let (shed, dep) = (ops.shed_total, ops.queue_depth);
    ops.registry.add(shed, 1);
    ops.registry.set_gauge(dep, depth);
}

/// Count one retry re-queue and refresh the depth gauge.
fn ops_count_retry(inner: &Inner) {
    if !Telemetry::ACTIVE {
        return;
    }
    let depth = inner.queue.len() as f64;
    let mut ops = lock_ops(&inner.ops);
    let (retry, dep) = (ops.retry_total, ops.queue_depth);
    ops.registry.add(retry, 1);
    ops.registry.set_gauge(dep, depth);
}

/// Fold one closed span duration into its stage's quantile histogram.
fn ops_observe_stage(inner: &Inner, stage: &'static str, dur_us: u64) {
    if !Telemetry::ACTIVE {
        return;
    }
    let mut ops = lock_ops(&inner.ops);
    let id = ops.registry.quantile_histogram("service.latency", stage);
    ops.registry.observe(id, dur_us);
}

/// Sample the runner's cumulative chunk-cache stats and fold the delta
/// since the previous sample into the ops registry, then drain any
/// pipeline stall samples into the `pipeline_stall` histogram. Called
/// once per finished job so the counters track job-attributable work.
fn ops_sample_chunk_cache(inner: &Inner) {
    if !Telemetry::ACTIVE {
        return;
    }
    let now = inner.runner.chunk_cache_stats();
    let stalls = inner.runner.take_pipeline_stalls();
    let mut ops = lock_ops(&inner.ops);
    let prev = ops.last_cache;
    ops.last_cache = now;
    let (hit, miss, evict, bytes, stall) = (
        ops.cache_hit_total,
        ops.cache_miss_total,
        ops.cache_eviction_total,
        ops.cache_bytes,
        ops.pipeline_stall,
    );
    ops.registry.add(hit, now.hits.saturating_sub(prev.hits));
    ops.registry.add(miss, now.misses.saturating_sub(prev.misses));
    ops.registry.add(evict, now.evictions.saturating_sub(prev.evictions));
    ops.registry.set_gauge(bytes, now.bytes as f64);
    for dur_us in stalls {
        ops.registry.observe(stall, dur_us);
    }
}

/// Append one `{"type":"event",...}` line to the flight ring.
fn flight_note(inner: &Inner, event: &str, id: JobId, extra: &[(&str, u64)]) {
    if !Telemetry::ACTIVE {
        return;
    }
    let mut line = String::from("{");
    json::push_key(&mut line, true, "type");
    json::push_str(&mut line, "event");
    json::push_key(&mut line, false, "t_us");
    json::push_u64(&mut line, inner.epoch.elapsed().as_micros() as u64);
    json::push_key(&mut line, false, "event");
    json::push_str(&mut line, event);
    json::push_key(&mut line, false, "id");
    json::push_u64(&mut line, id);
    for (k, v) in extra {
        json::push_key(&mut line, false, k);
        json::push_u64(&mut line, *v);
    }
    line.push('}');
    match inner.flight.lock() {
        Ok(mut fr) => fr.note(line),
        Err(p) => p.into_inner().note(line),
    }
}

/// Feed a terminating job's rendered spans into the flight ring so a
/// post-mortem carries the traces of the jobs leading up to the trigger.
fn flight_note_spans(inner: &Inner, spans: &SharedSpans) {
    if !Telemetry::ACTIVE {
        return;
    }
    let jsonl = spans.to_jsonl();
    let mut fr = match inner.flight.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    for line in jsonl.lines() {
        fr.note(line.to_string());
    }
}

/// Take a post-mortem dump: snapshot the flight ring, stash it as the
/// latest dump, and (when configured) persist it to
/// `postmortem_dir/postmortem-N.jsonl`.
fn flight_dump(inner: &Inner, reason: &str) {
    if !Telemetry::ACTIVE {
        return;
    }
    let dump = match inner.flight.lock() {
        Ok(mut fr) => fr.dump(reason),
        Err(p) => p.into_inner().dump(reason),
    };
    if dump.is_empty() {
        return;
    }
    let n = inner.postmortems.fetch_add(1, Ordering::AcqRel) + 1;
    if let Some(dir) = &inner.cfg.postmortem_dir {
        // A failed dump write is survivable: the in-memory copy below
        // still serves the `postmortem` protocol command.
        let _ = std::fs::create_dir_all(dir);
        let _ = std::fs::write(dir.join(format!("postmortem-{n}.jsonl")), &dump);
    }
    match inner.last_postmortem.lock() {
        Ok(mut g) => *g = Some(dump),
        Err(p) => *p.into_inner() = Some(dump),
    }
}

/// The long-lived job tier; see the [module docs](self).
pub struct Engine {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

fn lock_jobs(m: &Mutex<HashMap<JobId, JobEntry>>) -> MutexGuard<'_, HashMap<JobId, JobEntry>> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl Engine {
    /// Start an engine: open/replay the journal, then spawn workers.
    pub fn start(
        runner: Box<dyn JobRunner>,
        cfg: ServiceConfig,
    ) -> Result<Engine, journal::JournalError> {
        let inner = Arc::new(Inner {
            queue: BoundedQueue::new(cfg.queue_capacity),
            breaker: CircuitBreaker::new(cfg.breaker_threshold, cfg.breaker_cooldown_jobs),
            runner,
            jobs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(0),
            journal: Mutex::new(None),
            journal_seq: AtomicU64::new(0),
            counters: ServiceCounters::default(),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            running: AtomicUsize::new(0),
            journal_torn: AtomicBool::new(false),
            ops: Mutex::new(Ops::new()),
            flight: Mutex::new(FlightRecorder::new(cfg.flight_capacity)),
            last_postmortem: Mutex::new(None),
            postmortems: AtomicU64::new(0),
            epoch: Instant::now(),
            cfg,
        });
        if let Some(path) = inner.cfg.journal_path.clone() {
            recover(&inner, &path)?;
            if let Ok(mut j) = inner.journal.lock() {
                *j = Some(JournalWriter::open(&path)?);
            }
        }
        let mut workers = Vec::new();
        for _ in 0..inner.cfg.workers {
            let w = Arc::clone(&inner);
            workers.push(std::thread::spawn(move || worker_loop(&w)));
        }
        Ok(Engine { inner, workers: Mutex::new(workers) })
    }

    /// Submit a job. `deadline_ms`/`max_retries` of `None` take the
    /// engine defaults.
    pub fn submit(
        &self,
        spec: JobSpec,
        deadline_ms: Option<u64>,
        max_retries: Option<u32>,
    ) -> Result<JobId, SubmitError> {
        let inner = &self.inner;
        if inner.draining.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        if let Err(Quarantined { failures, .. }) = inner.breaker.admit(spec.config_key()) {
            inner.counters.quarantined.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Quarantined { failures });
        }
        let deadline_ms = deadline_ms.unwrap_or(inner.cfg.default_deadline_ms);
        let max_retries = max_retries.unwrap_or(inner.cfg.default_max_retries);
        let id = inner.next_id.fetch_add(1, Ordering::AcqRel) + 1;
        let mut entry = JobEntry::new(spec, deadline_ms, max_retries);
        entry.root_span = entry.spans.start("job", None);
        entry.spans.attr_u64(entry.root_span, "id", id);
        entry.spans.attr_str(entry.root_span, "kind", entry.spec.kind.label());
        entry.spans.attr_u64(entry.root_span, "config_key", entry.spec.config_key());
        let submit_span = entry.spans.start("submit", Some(entry.root_span));
        // Write-ahead: the submission is durable before the job becomes
        // runnable, so no admitted job can be lost to a crash.
        journal_submit(inner, id, &entry.spec, deadline_ms, max_retries);
        entry.spans.end(submit_span);
        entry.queue_span = Some(entry.spans.start("queue_wait", Some(entry.root_span)));
        let key = entry.spec.config_key();
        {
            let mut jobs = lock_jobs(&inner.jobs);
            jobs.insert(id, entry);
        }
        flight_note(inner, "submitted", id, &[("config_key", key)]);
        if let Err(full) = inner.queue.try_push(id) {
            inner.counters.sheds.fetch_add(1, Ordering::Relaxed);
            ops_count_shed(inner);
            flight_note(inner, "shed", id, &[("depth", full.depth as u64)]);
            finish_job(inner, id, Err(("overloaded".into(), "queue full at submission".into())));
            return Err(SubmitError::Overloaded { depth: full.depth });
        }
        ops_queue_depth(inner);
        inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    /// Cooperatively cancel a job. Returns `false` for unknown or
    /// already-terminal jobs.
    pub fn cancel(&self, id: JobId) -> bool {
        let jobs = lock_jobs(&self.inner.jobs);
        match jobs.get(&id) {
            Some(e) if !e.state.is_terminal() => {
                e.cancel.cancel();
                self.inner.counters.cancelled.fetch_add(1, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Point-in-time status of a job.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let jobs = lock_jobs(&self.inner.jobs);
        jobs.get(&id).map(|e| JobStatus {
            id,
            state: e.state,
            attempts: e.attempts,
            error_kind: e.error_kind.clone(),
            error: e.error.clone(),
            payload: e.payload.clone(),
            recovered: e.recovered,
        })
    }

    /// Ops snapshot as a one-line JSON object (always available, even
    /// with the telemetry feature compiled out).
    pub fn stats_json(&self) -> String {
        let inner = &self.inner;
        let c = &inner.counters;
        let mut out = String::from("{");
        let mut field = |first: bool, key: &str, v: u64| {
            json::push_key(&mut out, first, key);
            json::push_u64(&mut out, v);
        };
        field(true, "queue_depth", inner.queue.len() as u64);
        field(false, "running", inner.running.load(Ordering::Acquire) as u64);
        field(false, "submitted", c.submitted.load(Ordering::Relaxed));
        field(false, "completed", c.completed.load(Ordering::Relaxed));
        field(false, "failed", c.failed.load(Ordering::Relaxed));
        field(false, "retries", c.retries.load(Ordering::Relaxed));
        field(false, "sheds", c.sheds.load(Ordering::Relaxed));
        field(false, "quarantined", c.quarantined.load(Ordering::Relaxed));
        field(false, "deadline_misses", c.deadline_misses.load(Ordering::Relaxed));
        field(false, "cancelled", c.cancelled.load(Ordering::Relaxed));
        field(false, "recovered", c.recovered.load(Ordering::Relaxed));
        field(false, "breaker_open", inner.breaker.open_count() as u64);
        json::push_key(&mut out, false, "journal_torn");
        out.push_str(if inner.journal_torn.load(Ordering::Relaxed) { "true" } else { "false" });
        json::push_key(&mut out, false, "draining");
        out.push_str(if inner.draining.load(Ordering::Relaxed) { "true" } else { "false" });
        out.push('}');
        out
    }

    /// A point-in-time snapshot of the engine's persistent ops registry
    /// (queue gauges/counters, per-stage latency quantiles), refreshed
    /// with the atomically-sourced job counters and breaker state.
    /// Empty with the telemetry feature off.
    pub fn metrics_registry(&self) -> MetricsRegistry {
        let inner = &self.inner;
        let c = &inner.counters;
        let mut r = lock_ops(&inner.ops).registry.clone();
        let depth = r.gauge("service.queue", "depth");
        r.set_gauge(depth, inner.queue.len() as f64);
        let running = r.gauge("service.workers", "running");
        r.set_gauge(running, inner.running.load(Ordering::Acquire) as f64);
        let mut counter = |name, v: u64| {
            let id = r.counter("service.jobs", name);
            r.set_counter(id, v);
        };
        counter("submitted", c.submitted.load(Ordering::Relaxed));
        counter("completed", c.completed.load(Ordering::Relaxed));
        counter("failed", c.failed.load(Ordering::Relaxed));
        counter("retries", c.retries.load(Ordering::Relaxed));
        counter("sheds", c.sheds.load(Ordering::Relaxed));
        counter("quarantined", c.quarantined.load(Ordering::Relaxed));
        counter("deadline_misses", c.deadline_misses.load(Ordering::Relaxed));
        counter("cancelled", c.cancelled.load(Ordering::Relaxed));
        counter("recovered", c.recovered.load(Ordering::Relaxed));
        let open = r.gauge("service.breaker", "open");
        r.set_gauge(open, inner.breaker.open_count() as f64);
        let dumps = r.counter("service.flight", "postmortems");
        r.set_counter(dumps, inner.postmortems.load(Ordering::Relaxed));
        r
    }

    /// The ops registry in Prometheus text exposition format (empty
    /// with telemetry off).
    pub fn metrics_prometheus(&self) -> String {
        self.metrics_registry().render_prometheus()
    }

    /// Per-stage latency summaries as one JSON object keyed
    /// `service.latency.<stage>`, each value a
    /// `{"count":..,"p50":..,"p90":..,"p99":..,"max":..}` digest.
    /// `{}` with telemetry off.
    pub fn quantiles_json(&self) -> String {
        let ops = lock_ops(&self.inner.ops);
        let mut out = String::from("{");
        let mut first = true;
        ops.registry.for_each_quantile(&mut |component, name, q| {
            json::push_key(&mut out, first, &format!("{component}.{name}"));
            q.push_summary_json(&mut out);
            first = false;
        });
        out.push('}');
        out
    }

    /// One job's span trace as JSON Lines (`None` for an unknown job;
    /// empty string with telemetry off).
    pub fn job_spans(&self, id: JobId) -> Option<String> {
        let jobs = lock_jobs(&self.inner.jobs);
        jobs.get(&id).map(|e| e.spans.to_jsonl())
    }

    /// Post-mortem dumps taken since start.
    pub fn postmortem_count(&self) -> u64 {
        self.inner.postmortems.load(Ordering::Relaxed)
    }

    /// The most recent post-mortem dump (JSONL), if any.
    pub fn last_postmortem(&self) -> Option<String> {
        match self.inner.last_postmortem.lock() {
            Ok(g) => g.clone(),
            Err(p) => p.into_inner().clone(),
        }
    }

    /// Metrics registry rendered as one JSON object
    /// (`{"component.name":scalar}`); `{}` with telemetry off.
    pub fn metrics_json(&self) -> String {
        let r = self.metrics_registry();
        let mut out = String::from("{");
        let mut first = true;
        r.for_each(&mut |component, name, _kind, scalar| {
            json::push_key(&mut out, first, &format!("{component}.{name}"));
            json::push_f64(&mut out, scalar);
            first = false;
        });
        out.push('}');
        out
    }

    /// Flag a client-requested shutdown (starts draining; the socket
    /// accept loop observes this and exits after the drain).
    pub fn request_shutdown(&self) {
        self.inner.shutdown_requested.store(true, Ordering::Release);
        self.inner.draining.store(true, Ordering::Release);
    }

    /// Whether a client requested shutdown.
    pub fn shutdown_requested(&self) -> bool {
        self.inner.shutdown_requested.load(Ordering::Acquire)
    }

    /// Graceful shutdown: stop admissions, wait up to `timeout` for the
    /// queue and in-flight jobs to drain, then stop and join the
    /// workers. Returns `true` when everything drained in time.
    pub fn drain(&self, timeout: Duration) -> bool {
        let inner = &self.inner;
        inner.draining.store(true, Ordering::Release);
        let deadline = Instant::now() + timeout;
        let mut drained = false;
        while Instant::now() < deadline {
            if inner.queue.is_empty() && inner.running.load(Ordering::Acquire) == 0 {
                drained = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        inner.stop.store(true, Ordering::Release);
        let handles = match self.workers.lock() {
            Ok(mut w) => std::mem::take(&mut *w),
            Err(p) => std::mem::take(&mut *p.into_inner()),
        };
        for h in handles {
            let _ = h.join();
        }
        drained
    }

    /// Hard stop for crash-style tests: workers are told to exit at the
    /// next poll, *without* draining the queue. Queued jobs keep only
    /// their journal submit records — exactly the state a `kill -9`
    /// leaves behind.
    pub fn abort(&self) {
        self.inner.stop.store(true, Ordering::Release);
        let handles = match self.workers.lock() {
            Ok(mut w) => std::mem::take(&mut *w),
            Err(p) => std::mem::take(&mut *p.into_inner()),
        };
        for h in handles {
            let _ = h.join();
        }
    }

    /// Current queue depth (tests and ops).
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.len()
    }
}

// ---------------- journal ----------------

fn journal_append(inner: &Inner, kind: u8, payload: &str) {
    let mut guard = match inner.journal.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    if let Some(writer) = guard.as_mut() {
        let seq = inner.journal_seq.fetch_add(1, Ordering::AcqRel) + 1;
        // A failed journal write is survivable for the live engine (the
        // in-memory state is authoritative); it only narrows what a
        // restart can recover.
        let _ = writer.append(kind, seq, payload.as_bytes());
    }
}

fn journal_submit(inner: &Inner, id: JobId, spec: &JobSpec, deadline_ms: u64, max_retries: u32) {
    let mut p = String::from("{");
    json::push_key(&mut p, true, "id");
    json::push_u64(&mut p, id);
    json::push_key(&mut p, false, "deadline_ms");
    json::push_u64(&mut p, deadline_ms);
    json::push_key(&mut p, false, "max_retries");
    json::push_u64(&mut p, max_retries as u64);
    json::push_key(&mut p, false, "spec");
    p.push_str(&spec.canonical());
    p.push('}');
    journal_append(inner, REC_SUBMIT, &p);
}

fn journal_terminal(inner: &Inner, id: JobId, outcome: &Result<String, (String, String)>) {
    let mut p = String::from("{");
    json::push_key(&mut p, true, "id");
    json::push_u64(&mut p, id);
    match outcome {
        Ok(payload) => {
            json::push_key(&mut p, false, "state");
            json::push_str(&mut p, "completed");
            json::push_key(&mut p, false, "payload");
            json::push_str(&mut p, payload);
        }
        Err((kind, msg)) => {
            json::push_key(&mut p, false, "state");
            json::push_str(&mut p, "failed");
            json::push_key(&mut p, false, "kind");
            json::push_str(&mut p, kind);
            json::push_key(&mut p, false, "error");
            json::push_str(&mut p, msg);
        }
    }
    p.push('}');
    journal_append(inner, REC_TERMINAL, &p);
}

/// Replay the clean journal prefix into the engine's job table.
fn recover(inner: &Arc<Inner>, path: &std::path::Path) -> Result<(), journal::JournalError> {
    let scan = journal::scan(path)?;
    if scan.torn_tail {
        inner.journal_torn.store(true, Ordering::Relaxed);
    }
    let mut max_id = 0u64;
    let mut max_seq = 0u64;
    // id → (spec, deadline, retries), in submission order via sorted replay.
    let mut submits: Vec<(JobId, JobSpec, u64, u32)> = Vec::new();
    let mut terminals: HashMap<JobId, Result<String, (String, String)>> = HashMap::new();
    for rec in &scan.records {
        max_seq = rec.seq;
        let Ok(text) = std::str::from_utf8(&rec.payload) else { continue };
        let Ok(v) = Json::parse(text) else { continue };
        let Some(id) = v.get("id").and_then(Json::as_u64) else { continue };
        max_id = max_id.max(id);
        match rec.kind {
            REC_SUBMIT => {
                let Some(spec_v) = v.get("spec") else { continue };
                let Ok(spec) = JobSpec::from_json(spec_v) else { continue };
                let dl = v.get("deadline_ms").and_then(Json::as_u64).unwrap_or(0);
                let mr = v.get("max_retries").and_then(Json::as_u32).unwrap_or(0);
                submits.push((id, spec, dl, mr));
            }
            REC_TERMINAL => {
                let outcome = match v.get("state").and_then(Json::as_str) {
                    Some("completed") => Ok(v
                        .get("payload")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_owned()),
                    _ => Err((
                        v.get("kind").and_then(Json::as_str).unwrap_or("unknown").to_owned(),
                        v.get("error").and_then(Json::as_str).unwrap_or_default().to_owned(),
                    )),
                };
                terminals.insert(id, outcome);
            }
            _ => {}
        }
    }
    submits.sort_by_key(|(id, ..)| *id);
    let mut jobs = lock_jobs(&inner.jobs);
    for (id, spec, deadline_ms, max_retries) in submits {
        let terminal = terminals.remove(&id);
        let incomplete = terminal.is_none();
        let (state, payload, error_kind, error) = match terminal {
            Some(Ok(payload)) => (JobState::Completed, Some(payload), None, None),
            Some(Err((kind, msg))) => (JobState::Failed, None, Some(kind), Some(msg)),
            None => (JobState::Queued, None, None, None),
        };
        let mut entry = JobEntry::new(spec, deadline_ms, max_retries);
        entry.state = state;
        entry.payload = payload;
        entry.error_kind = error_kind;
        entry.error = error;
        entry.recovered = incomplete;
        // Recovered traces start at replay time: the original timings
        // died with the previous incarnation.
        entry.root_span = entry.spans.start("job", None);
        entry.spans.attr_u64(entry.root_span, "id", id);
        entry.spans.attr_str(entry.root_span, "kind", entry.spec.kind.label());
        entry.spans.attr_u64(entry.root_span, "recovered", 1);
        if incomplete {
            entry.queue_span = Some(entry.spans.start("queue_wait", Some(entry.root_span)));
        } else {
            entry.spans.end(entry.root_span);
        }
        jobs.insert(id, entry);
        if incomplete {
            // Recovery bypasses admission control: these jobs were
            // already admitted by the previous incarnation.
            inner.queue.push_force(id);
            flight_note(inner, "recovered", id, &[]);
            inner.counters.recovered.fetch_add(1, Ordering::Relaxed);
            inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
        }
    }
    drop(jobs);
    ops_queue_depth(inner);
    inner.next_id.store(max_id, Ordering::Release);
    inner.journal_seq.store(max_seq, Ordering::Release);
    if scan.torn_tail {
        // A torn tail means the previous incarnation died mid-write:
        // leave a post-mortem trail for the operator who asks why.
        flight_note(inner, "torn_journal", 0, &[("records", scan.records.len() as u64)]);
        flight_dump(inner, "torn_journal");
    }
    Ok(())
}

// ---------------- workers ----------------

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        if inner.stop.load(Ordering::Acquire) {
            return;
        }
        let Some(id) = inner.queue.pop_timeout(Duration::from_millis(50)) else {
            continue;
        };
        ops_queue_depth(inner);
        inner.running.fetch_add(1, Ordering::AcqRel);
        run_one(inner, id);
        inner.running.fetch_sub(1, Ordering::AcqRel);
    }
}

fn run_one(inner: &Arc<Inner>, id: JobId) {
    let (spec, cancel, attempt, max_retries, spans, attempt_span) = {
        let mut jobs = lock_jobs(&inner.jobs);
        let Some(e) = jobs.get_mut(&id) else { return };
        if e.state.is_terminal() {
            return;
        }
        e.state = JobState::Running;
        e.attempts += 1;
        if e.deadline_ms > 0 && !e.deadline_armed {
            // The deadline covers the whole envelope — every retry and
            // its backoff — measured from first execution.
            e.cancel.set_deadline(Instant::now() + Duration::from_millis(e.deadline_ms));
            e.deadline_armed = true;
        }
        if let Some(q) = e.queue_span.take() {
            e.spans.end(q);
        }
        let attempt_span = if Telemetry::ACTIVE {
            let s = e.spans.start(&format!("attempt[{}]", e.attempts), Some(e.root_span));
            e.spans.attr_u64(s, "attempt", e.attempts as u64);
            s
        } else {
            SpanId::default()
        };
        (e.spec.clone(), e.cancel.clone(), e.attempts, e.max_retries, e.spans.clone(), attempt_span)
    };
    let key = spec.config_key();
    flight_note(inner, "attempt", id, &[("n", attempt as u64)]);
    let ctx = JobCtx { cancel, spans: spans.clone(), attempt: attempt_span };
    match inner.runner.run(&spec, &ctx) {
        Ok(payload) => {
            spans.end(attempt_span);
            inner.breaker.record_success(key);
            finish_job(inner, id, Ok(payload));
        }
        Err(err) => {
            let kind = err.kind();
            spans.attr_str(attempt_span, "error_kind", kind);
            spans.end(attempt_span);
            let retryable =
                err.is_retryable() && attempt <= max_retries && !inner.stop.load(Ordering::Acquire);
            if retryable {
                inner.counters.retries.fetch_add(1, Ordering::Relaxed);
                flight_note(inner, "retry", id, &[("after_attempt", attempt as u64)]);
                backoff_sleep(inner, attempt);
                {
                    let mut jobs = lock_jobs(&inner.jobs);
                    if let Some(e) = jobs.get_mut(&id) {
                        e.state = JobState::Queued;
                        e.queue_span = Some(e.spans.start("queue_wait", Some(e.root_span)));
                    }
                }
                // Retries bypass admission: the job already holds a slot
                // in the envelope's eyes.
                inner.queue.push_force(id);
                ops_count_retry(inner);
                return;
            }
            if kind == "deadline" {
                inner.counters.deadline_misses.fetch_add(1, Ordering::Relaxed);
            }
            if kind == "forward_progress_stall" {
                if inner.breaker.record_watchdog_failure(key) {
                    flight_note(inner, "breaker_open", id, &[("config_key", key)]);
                    flight_dump(inner, "breaker_open");
                }
            } else {
                inner.breaker.record_other_failure(key);
            }
            finish_job(inner, id, Err((kind.to_owned(), err.to_string())));
        }
    }
}

/// Exponential backoff: `base * 2^(attempt-1)`, capped. Sleeps in short
/// slices so an engine stop is honoured promptly.
fn backoff_sleep(inner: &Inner, attempt: u32) {
    let base = inner.cfg.backoff_base_ms;
    let exp = base.saturating_mul(1u64 << (attempt - 1).min(20));
    let mut remaining = exp.min(inner.cfg.backoff_cap_ms);
    while remaining > 0 && !inner.stop.load(Ordering::Acquire) {
        let slice = remaining.min(20);
        std::thread::sleep(Duration::from_millis(slice));
        remaining -= slice;
    }
}

/// Journal the terminal record, then publish it to the job table.
///
/// With telemetry on this is also where the job's span tree is sealed:
/// a `result_encode` span wraps the journal write and publication, the
/// root closes, closed durations feed the per-stage latency quantiles,
/// and failures dump the flight recorder keyed by error kind.
fn finish_job(inner: &Inner, id: JobId, outcome: Result<String, (String, String)>) {
    let tele = {
        let mut jobs = lock_jobs(&inner.jobs);
        jobs.get_mut(&id).map(|e| {
            if let Some(q) = e.queue_span.take() {
                e.spans.end(q);
            }
            (e.spans.clone(), e.root_span)
        })
    };
    let encode_span = tele.as_ref().map(|(spans, root)| spans.start("result_encode", Some(*root)));
    journal_terminal(inner, id, &outcome);
    let failed_kind = outcome.as_ref().err().map(|(k, _)| k.clone());
    {
        let mut jobs = lock_jobs(&inner.jobs);
        if let Some(e) = jobs.get_mut(&id) {
            match outcome {
                Ok(payload) => {
                    e.state = JobState::Completed;
                    e.payload = Some(payload);
                    inner.counters.completed.fetch_add(1, Ordering::Relaxed);
                }
                Err((kind, msg)) => {
                    e.state = JobState::Failed;
                    e.error_kind = Some(kind);
                    e.error = Some(msg);
                    inner.counters.failed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
    let Some((spans, root)) = tele else { return };
    if let Some(s) = encode_span {
        spans.end(s);
    }
    spans.end(root);
    if !Telemetry::ACTIVE {
        return;
    }
    for (name, dur_us) in spans.closed_durations() {
        if let Some(stage) = base_stage(&name) {
            ops_observe_stage(inner, stage, dur_us);
        }
    }
    ops_sample_chunk_cache(inner);
    flight_note_spans(inner, &spans);
    match failed_kind {
        None => flight_note(inner, "completed", id, &[]),
        Some(kind) => {
            flight_note(inner, "failed", id, &[]);
            flight_dump(inner, &kind);
        }
    }
}
