//! # exynos-service — sweep-as-a-service with a robustness envelope
//!
//! The ROADMAP's "millions of users, heavy traffic" north star needs
//! more than a fast simulator: it needs a job tier that *degrades
//! gracefully*. This crate is that tier, std-only (hand-rolled JSON, no
//! new dependencies), built from the repo's own robustness primitives:
//!
//! * [`job`] — deterministic job specs (sweep / metrics / trace /
//!   checkpoint), the [`JobRunner`](job::JobRunner) contract, canonical
//!   encoding shared by protocol, journal, and circuit-breaker key;
//! * [`queue`] — bounded admission with typed `Overloaded` shedding;
//! * [`breaker`] — per-configuration quarantine for specs that
//!   repeatedly exhaust the watchdog ladder;
//! * [`engine`] — workers on top of the queue, per-job deadlines via
//!   [`CancelToken`](exynos_core::cancel::CancelToken) (polled in the
//!   core step loop), retry with exponential backoff for retryable
//!   [`SimError`](exynos_core::error::SimError)s, a write-ahead job
//!   journal ([`exynos_snapshot::journal`]) for crash recovery, and
//!   graceful drain;
//! * [`protocol`] / [`socket`] — the line/JSON wire format over a unix
//!   domain socket, plus the one-shot client used by `harness call`;
//! * [`json`] — the minimal parser/emitter backing all of the above.
//!
//! The engine's ops surface is the telemetry
//! [`MetricsRegistry`](exynos_telemetry::MetricsRegistry) (queue depth,
//! retries, sheds, deadline misses, breaker state); a plain-atomics
//! counter snapshot remains available when telemetry is compiled out.
//!
//! Everything a job does is deterministic — no wall clock reaches a
//! payload — which is what upgrades the journal from audit log to
//! recovery mechanism: replaying an incomplete job after `kill -9`
//! produces a byte-identical result.

#![warn(missing_docs)]

pub mod breaker;
pub mod engine;
pub mod job;
pub mod json;
pub mod protocol;
pub mod queue;
pub mod socket;

pub use engine::{Engine, JobStatus, ServiceConfig, SubmitError};
pub use job::{JobCtx, JobId, JobKind, JobRunner, JobSpec, JobState};
