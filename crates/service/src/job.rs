//! Job specifications, the robustness envelope, and the runner contract.
//!
//! A [`JobSpec`] is everything needed to *deterministically* reproduce a
//! piece of work: the job kind with its windows, plus optional fault /
//! watchdog / decode knobs. Determinism is what makes the write-ahead
//! journal a recovery mechanism rather than a best-effort hint — a
//! journaled spec re-run after a crash produces a byte-identical payload.
//!
//! The spec's canonical JSON encoding (stable field order, defaults
//! omitted) serves three masters: the wire protocol echo, the journal
//! record, and the FNV-1a [`config key`](JobSpec::config_key) the
//! circuit breaker quarantines on.

use crate::json::{self, Json};
use exynos_core::cancel::CancelToken;
use exynos_core::error::SimError;
use exynos_telemetry::{SharedSpans, SpanId};

/// Job identifier, unique per journal lineage.
pub type JobId = u64;

/// What kind of work a job performs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobKind {
    /// A population sweep: the standard suite at `scale` across all six
    /// generations, on `threads` workers.
    Sweep {
        /// Suite scale factor (slices per family).
        scale: usize,
        /// Warm-up instructions per slice.
        warmup: u64,
        /// Measured instructions per slice.
        detail: u64,
        /// Worker threads for the sweep's `run_indexed` fan-out.
        threads: usize,
    },
    /// An instrumented single-generation run returning metrics JSONL.
    Metrics {
        /// Generation name (`"m1"`..`"m6"`).
        generation: String,
        /// Warm-up instructions.
        warmup: u64,
        /// Measured instructions.
        detail: u64,
        /// Epoch length for the time series.
        epoch: u64,
    },
    /// An instrumented run returning pipeline-event JSONL.
    Trace {
        /// Generation name.
        generation: String,
        /// Warm-up instructions.
        warmup: u64,
        /// Measured instructions.
        detail: u64,
        /// Epoch length.
        epoch: u64,
    },
    /// Build a warm checkpoint image and report its size and digest.
    Checkpoint {
        /// Generation name.
        generation: String,
        /// Warm-up instructions before the snapshot.
        warmup: u64,
    },
    /// Run one embedded `exynos-asm` corpus program across all six
    /// generations (batched lockstep over a shared execution stream) and
    /// return per-generation records. The program is referenced by name;
    /// an unknown or malformed program surfaces as a typed
    /// `SimError::Config` from the runner, never a panic.
    Program {
        /// Corpus program name (e.g. `"fib_recursive"`).
        program: String,
        /// Warm-up instructions.
        warmup: u64,
        /// Measured instructions.
        detail: u64,
    },
}

impl JobKind {
    /// Stable wire/span label for the kind.
    pub fn label(&self) -> &'static str {
        match self {
            JobKind::Sweep { .. } => "sweep",
            JobKind::Metrics { .. } => "metrics",
            JobKind::Trace { .. } => "trace",
            JobKind::Checkpoint { .. } => "checkpoint",
            JobKind::Program { .. } => "program",
        }
    }
}

/// A deterministic unit of work plus its robustness knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The work to perform.
    pub kind: JobKind,
    /// Attach `FaultPlan::chaos(seed)` to every simulator in the job.
    pub chaos_seed: Option<u64>,
    /// Completion-stall injection period (0 = off); exercises the
    /// watchdog ladder.
    pub stall_every: u64,
    /// Stall magnitude in cycles.
    pub stall_cycles: u64,
    /// Watchdog override as `(threshold, max_recoveries)`.
    pub watchdog: Option<(u64, u32)>,
    /// Strict trace decode (malformed records become typed errors).
    pub strict_decode: bool,
}

impl JobSpec {
    /// A plain spec for `kind` with no fault or decode overrides.
    pub fn plain(kind: JobKind) -> JobSpec {
        JobSpec {
            kind,
            chaos_seed: None,
            stall_every: 0,
            stall_cycles: 0,
            watchdog: None,
            strict_decode: false,
        }
    }

    /// Whether any fault/robustness knob deviates from the defaults
    /// (such jobs bypass shared warm pools — their sims carry injectors).
    pub fn has_overrides(&self) -> bool {
        self.chaos_seed.is_some()
            || self.stall_every != 0
            || self.stall_cycles != 0
            || self.watchdog.is_some()
            || self.strict_decode
    }

    /// Canonical JSON: stable field order, default-valued knobs omitted.
    pub fn canonical(&self) -> String {
        let mut out = String::from("{");
        match &self.kind {
            JobKind::Sweep { scale, warmup, detail, threads } => {
                json::push_key(&mut out, true, "kind");
                json::push_str(&mut out, "sweep");
                json::push_key(&mut out, false, "scale");
                json::push_u64(&mut out, *scale as u64);
                json::push_key(&mut out, false, "warmup");
                json::push_u64(&mut out, *warmup);
                json::push_key(&mut out, false, "detail");
                json::push_u64(&mut out, *detail);
                json::push_key(&mut out, false, "threads");
                json::push_u64(&mut out, *threads as u64);
            }
            JobKind::Metrics { generation, warmup, detail, epoch }
            | JobKind::Trace { generation, warmup, detail, epoch } => {
                json::push_key(&mut out, true, "kind");
                json::push_str(
                    &mut out,
                    if matches!(self.kind, JobKind::Metrics { .. }) { "metrics" } else { "trace" },
                );
                json::push_key(&mut out, false, "gen");
                json::push_str(&mut out, generation);
                json::push_key(&mut out, false, "warmup");
                json::push_u64(&mut out, *warmup);
                json::push_key(&mut out, false, "detail");
                json::push_u64(&mut out, *detail);
                json::push_key(&mut out, false, "epoch");
                json::push_u64(&mut out, *epoch);
            }
            JobKind::Checkpoint { generation, warmup } => {
                json::push_key(&mut out, true, "kind");
                json::push_str(&mut out, "checkpoint");
                json::push_key(&mut out, false, "gen");
                json::push_str(&mut out, generation);
                json::push_key(&mut out, false, "warmup");
                json::push_u64(&mut out, *warmup);
            }
            JobKind::Program { program, warmup, detail } => {
                json::push_key(&mut out, true, "kind");
                json::push_str(&mut out, "program");
                json::push_key(&mut out, false, "program");
                json::push_str(&mut out, program);
                json::push_key(&mut out, false, "warmup");
                json::push_u64(&mut out, *warmup);
                json::push_key(&mut out, false, "detail");
                json::push_u64(&mut out, *detail);
            }
        }
        if let Some(seed) = self.chaos_seed {
            json::push_key(&mut out, false, "chaos_seed");
            json::push_u64(&mut out, seed);
        }
        if self.stall_every != 0 {
            json::push_key(&mut out, false, "stall_every");
            json::push_u64(&mut out, self.stall_every);
        }
        if self.stall_cycles != 0 {
            json::push_key(&mut out, false, "stall_cycles");
            json::push_u64(&mut out, self.stall_cycles);
        }
        if let Some((threshold, recoveries)) = self.watchdog {
            json::push_key(&mut out, false, "watchdog_threshold");
            json::push_u64(&mut out, threshold);
            json::push_key(&mut out, false, "watchdog_recoveries");
            json::push_u64(&mut out, recoveries as u64);
        }
        if self.strict_decode {
            json::push_key(&mut out, false, "strict_decode");
            out.push_str("true");
        }
        out.push('}');
        out
    }

    /// FNV-1a-64 over the canonical encoding: the circuit breaker's
    /// quarantine key. Two submissions of the same configuration share a
    /// key regardless of their deadline/retry envelope.
    pub fn config_key(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in self.canonical().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Parse a spec from a protocol/journal JSON object.
    pub fn from_json(v: &Json) -> Result<JobSpec, String> {
        let kind_name = v.get("kind").and_then(Json::as_str).ok_or("job missing \"kind\"")?;
        let u = |key: &str, default: u64| -> Result<u64, String> {
            match v.get(key) {
                None => Ok(default),
                Some(j) => j.as_u64().ok_or_else(|| format!("\"{key}\" must be a u64")),
            }
        };
        let gen = || -> Result<String, String> {
            v.get("gen")
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("{kind_name} job missing \"gen\""))
        };
        let kind = match kind_name {
            "sweep" => JobKind::Sweep {
                scale: u("scale", 1)? as usize,
                warmup: u("warmup", 2_000)?,
                detail: u("detail", 3_000)?,
                threads: u("threads", 1)? as usize,
            },
            "metrics" => JobKind::Metrics {
                generation: gen()?,
                warmup: u("warmup", 2_000)?,
                detail: u("detail", 10_000)?,
                epoch: u("epoch", 1_000)?,
            },
            "trace" => JobKind::Trace {
                generation: gen()?,
                warmup: u("warmup", 2_000)?,
                detail: u("detail", 10_000)?,
                epoch: u("epoch", 1_000)?,
            },
            "checkpoint" => JobKind::Checkpoint { generation: gen()?, warmup: u("warmup", 10_000)? },
            "program" => JobKind::Program {
                program: v
                    .get("program")
                    .and_then(Json::as_str)
                    .map(str::to_owned)
                    .ok_or("program job missing \"program\"")?,
                warmup: u("warmup", 2_000)?,
                detail: u("detail", 10_000)?,
            },
            other => return Err(format!("unknown job kind {other:?}")),
        };
        let watchdog = match (v.get("watchdog_threshold"), v.get("watchdog_recoveries")) {
            (None, None) => None,
            (t, r) => Some((
                t.and_then(Json::as_u64).ok_or("\"watchdog_threshold\" must be a u64")?,
                r.and_then(Json::as_u32).ok_or("\"watchdog_recoveries\" must be a u32")?,
            )),
        };
        Ok(JobSpec {
            kind,
            chaos_seed: match v.get("chaos_seed") {
                None => None,
                Some(j) => Some(j.as_u64().ok_or("\"chaos_seed\" must be a u64")?),
            },
            stall_every: u("stall_every", 0)?,
            stall_cycles: u("stall_cycles", 0)?,
            watchdog,
            strict_decode: v.get("strict_decode").and_then(Json::as_bool).unwrap_or(false),
        })
    }
}

/// Lifecycle of a job inside the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// Executing on a worker.
    Running,
    /// Finished with a payload.
    Completed,
    /// Finished with a typed error.
    Failed,
}

impl JobState {
    /// Stable protocol label.
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
        }
    }

    /// Whether the state is final.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Completed | JobState::Failed)
    }
}

/// Per-execution context handed to a [`JobRunner`]: the cancellation
/// token plus the job's span trace, so the runner can hang its own
/// stage spans (`warm_pool_fetch`, `slice[k]`) off the current attempt.
///
/// With the telemetry feature off the span fields are zero-sized no-ops;
/// runners can call them unconditionally.
#[derive(Debug, Clone)]
pub struct JobCtx {
    /// Cooperative cancellation (deadline armed by the engine across
    /// the whole retry envelope).
    pub cancel: CancelToken,
    /// The job's shared span recorder.
    pub spans: SharedSpans,
    /// The span of the attempt this execution runs under — the parent
    /// for runner-side stage spans.
    pub attempt: SpanId,
}

impl JobCtx {
    /// A context outside any engine (tests, direct runner invocation):
    /// a fresh recorder whose root doubles as the attempt span.
    pub fn detached(cancel: CancelToken) -> JobCtx {
        let spans = SharedSpans::new();
        let attempt = spans.start("attempt[1]", None);
        JobCtx { cancel, spans, attempt }
    }
}

/// Executes one job spec to a deterministic payload. Implementations
/// must honour `ctx.cancel` (attach it to every simulator they build)
/// and must be panic-free: every failure is a typed [`SimError`].
/// Payloads must not depend on `ctx.spans` — span state is
/// observability, never data.
pub trait JobRunner: Send + Sync + 'static {
    /// Run `spec` to completion or typed failure.
    fn run(&self, spec: &JobSpec, ctx: &JobCtx) -> Result<String, SimError>;

    /// Cumulative counters of the runner's shared trace-chunk cache, if
    /// it has one. The engine samples this after every job and exports
    /// the *deltas* as `chunk_cache_*` ops metrics. The default (no
    /// cache) reports all-zero stats forever.
    fn chunk_cache_stats(&self) -> exynos_core::batch::ChunkCacheStats {
        exynos_core::batch::ChunkCacheStats::default()
    }

    /// Drain buffered pipeline-stall samples (microseconds a consumer
    /// spent blocked on a chunk producer) for the `pipeline_stall`
    /// histogram. Draining transfers ownership: each sample is exported
    /// once. The default (no pipeline) never yields samples.
    fn take_pipeline_stalls(&self) -> Vec<u64> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep_spec() -> JobSpec {
        JobSpec::plain(JobKind::Sweep { scale: 2, warmup: 1_000, detail: 2_000, threads: 4 })
    }

    #[test]
    fn canonical_round_trips_through_the_parser() {
        let mut spec = sweep_spec();
        spec.chaos_seed = Some(7);
        spec.watchdog = Some((10_000, 2));
        spec.strict_decode = true;
        let parsed = JobSpec::from_json(&Json::parse(&spec.canonical()).unwrap()).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(parsed.canonical(), spec.canonical());
    }

    #[test]
    fn config_key_ignores_nothing_in_the_spec() {
        let a = sweep_spec();
        let mut b = sweep_spec();
        assert_eq!(a.config_key(), b.config_key());
        b.chaos_seed = Some(1);
        assert_ne!(a.config_key(), b.config_key());
    }

    #[test]
    fn program_kind_round_trips() {
        let spec = JobSpec::plain(JobKind::Program {
            program: "fib_recursive".to_owned(),
            warmup: 1_000,
            detail: 5_000,
        });
        assert_eq!(spec.kind.label(), "program");
        let parsed = JobSpec::from_json(&Json::parse(&spec.canonical()).unwrap()).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(parsed.canonical(), spec.canonical());
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            r#"{"scale":1}"#,
            r#"{"kind":"sweeep"}"#,
            r#"{"kind":"metrics"}"#,
            r#"{"kind":"program"}"#,
            r#"{"kind":"sweep","scale":-1}"#,
            r#"{"kind":"sweep","warmup":"many"}"#,
            r#"{"kind":"sweep","watchdog_threshold":5}"#,
        ] {
            let v = Json::parse(bad).unwrap();
            assert!(JobSpec::from_json(&v).is_err(), "must reject {bad}");
        }
    }

    #[test]
    fn override_detection_gates_warm_pool_sharing() {
        assert!(!sweep_spec().has_overrides());
        let mut s = sweep_spec();
        s.stall_every = 10;
        assert!(s.has_overrides());
    }
}
