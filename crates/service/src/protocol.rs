//! The line/JSON wire protocol.
//!
//! One request per line, one JSON object per request, one JSON response
//! line per request. Success responses carry `"ok":true`; refusals and
//! failures carry `"ok":false` and a stable `"error"` label
//! (`bad_request`, `overloaded`, `quarantined`, `shutting_down`,
//! `unknown_job`), so clients can branch without parsing prose.
//!
//! Commands:
//!
//! | cmd        | request fields                                   | response |
//! |------------|--------------------------------------------------|----------|
//! | `ping`     | —                                                | `pong`   |
//! | `submit`   | `job` (spec object), `deadline_ms?`, `max_retries?` | `id` |
//! | `status`   | `id`                                             | `state`, `attempts`, `error_kind?` |
//! | `result`   | `id`                                             | `state`, `payload?` / `error_kind`,`error` |
//! | `cancel`   | `id`                                             | `cancelled` |
//! | `stats`    | —                                                | ops counters object |
//! | `metrics`  | `format?` (`"prom"` for text exposition)         | metrics-registry object, or `metrics` text |
//! | `trace-job`| `id`                                             | `spans` (JSONL span tree for the job) |
//! | `quantiles`| —                                                | `quantiles` (per-stage latency summaries) |
//! | `postmortem` | —                                              | `count`, `dump?` (latest flight-recorder dump) |
//! | `shutdown` | —                                                | `draining` (then the server drains and exits) |
//!
//! `trace-job`, `quantiles`, and `postmortem` are observability
//! commands: with the `telemetry` feature off they still answer, but
//! with empty spans/summaries and a zero dump count.

use crate::engine::{Engine, SubmitError};
use crate::job::JobSpec;
use crate::json::{self, Json};

fn err_response(label: &str, detail: &str) -> String {
    let mut out = String::from("{\"ok\":false");
    json::push_key(&mut out, false, "error");
    json::push_str(&mut out, label);
    if !detail.is_empty() {
        json::push_key(&mut out, false, "detail");
        json::push_str(&mut out, detail);
    }
    out.push('}');
    out
}

/// Handle one request line, producing one response line (no trailing
/// newline). Never panics; malformed input becomes `bad_request`.
pub fn handle_line(engine: &Engine, line: &str) -> String {
    let line = line.trim();
    if line.is_empty() {
        return err_response("bad_request", "empty request");
    }
    let v = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => return err_response("bad_request", &format!("unparseable request: {e}")),
    };
    let Some(cmd) = v.get("cmd").and_then(Json::as_str) else {
        return err_response("bad_request", "missing \"cmd\"");
    };
    match cmd {
        "ping" => "{\"ok\":true,\"pong\":true}".to_owned(),
        "submit" => {
            let Some(job_v) = v.get("job") else {
                return err_response("bad_request", "submit needs a \"job\" object");
            };
            let spec = match JobSpec::from_json(job_v) {
                Ok(s) => s,
                Err(e) => return err_response("bad_request", &e),
            };
            let deadline_ms = v.get("deadline_ms").and_then(Json::as_u64);
            let max_retries = v.get("max_retries").and_then(Json::as_u32);
            match engine.submit(spec, deadline_ms, max_retries) {
                Ok(id) => {
                    let mut out = String::from("{\"ok\":true");
                    json::push_key(&mut out, false, "id");
                    json::push_u64(&mut out, id);
                    out.push('}');
                    out
                }
                Err(SubmitError::Overloaded { depth }) => {
                    let mut out = String::from("{\"ok\":false,\"error\":\"overloaded\"");
                    json::push_key(&mut out, false, "queue_depth");
                    json::push_u64(&mut out, depth as u64);
                    out.push('}');
                    out
                }
                Err(SubmitError::Quarantined { failures }) => {
                    let mut out = String::from("{\"ok\":false,\"error\":\"quarantined\"");
                    json::push_key(&mut out, false, "failures");
                    json::push_u64(&mut out, failures as u64);
                    out.push('}');
                    out
                }
                Err(SubmitError::ShuttingDown) => err_response("shutting_down", ""),
            }
        }
        "status" | "result" => {
            let Some(id) = v.get("id").and_then(Json::as_u64) else {
                return err_response("bad_request", "missing \"id\"");
            };
            let Some(st) = engine.status(id) else {
                return err_response("unknown_job", "");
            };
            let mut out = String::from("{\"ok\":true");
            json::push_key(&mut out, false, "id");
            json::push_u64(&mut out, id);
            json::push_key(&mut out, false, "state");
            json::push_str(&mut out, st.state.label());
            json::push_key(&mut out, false, "attempts");
            json::push_u64(&mut out, st.attempts as u64);
            if st.recovered {
                out.push_str(",\"recovered\":true");
            }
            if let Some(kind) = &st.error_kind {
                json::push_key(&mut out, false, "error_kind");
                json::push_str(&mut out, kind);
            }
            if let Some(msg) = &st.error {
                json::push_key(&mut out, false, "error");
                json::push_str(&mut out, msg);
            }
            if cmd == "result" {
                if let Some(payload) = &st.payload {
                    json::push_key(&mut out, false, "payload");
                    json::push_str(&mut out, payload);
                }
            }
            out.push('}');
            out
        }
        "cancel" => {
            let Some(id) = v.get("id").and_then(Json::as_u64) else {
                return err_response("bad_request", "missing \"id\"");
            };
            let cancelled = engine.cancel(id);
            let mut out = String::from("{\"ok\":true,\"cancelled\":");
            out.push_str(if cancelled { "true}" } else { "false}" });
            out
        }
        "stats" => {
            let mut out = String::from("{\"ok\":true,\"stats\":");
            out.push_str(&engine.stats_json());
            out.push('}');
            out
        }
        "metrics" => {
            if v.get("format").and_then(Json::as_str) == Some("prom") {
                let mut out = String::from("{\"ok\":true,\"format\":\"prom\"");
                json::push_key(&mut out, false, "metrics");
                json::push_str(&mut out, &engine.metrics_prometheus());
                out.push('}');
                return out;
            }
            let mut out = String::from("{\"ok\":true,\"metrics\":");
            out.push_str(&engine.metrics_json());
            out.push('}');
            out
        }
        "trace-job" => {
            let Some(id) = v.get("id").and_then(Json::as_u64) else {
                return err_response("bad_request", "missing \"id\"");
            };
            let Some(spans) = engine.job_spans(id) else {
                return err_response("unknown_job", "");
            };
            let mut out = String::from("{\"ok\":true");
            json::push_key(&mut out, false, "id");
            json::push_u64(&mut out, id);
            json::push_key(&mut out, false, "spans");
            json::push_str(&mut out, &spans);
            out.push('}');
            out
        }
        "quantiles" => {
            let mut out = String::from("{\"ok\":true,\"quantiles\":");
            out.push_str(&engine.quantiles_json());
            out.push('}');
            out
        }
        "postmortem" => {
            let mut out = String::from("{\"ok\":true");
            json::push_key(&mut out, false, "count");
            json::push_u64(&mut out, engine.postmortem_count());
            if let Some(dump) = engine.last_postmortem() {
                json::push_key(&mut out, false, "dump");
                json::push_str(&mut out, &dump);
            }
            out.push('}');
            out
        }
        "shutdown" => {
            engine.request_shutdown();
            "{\"ok\":true,\"draining\":true}".to_owned()
        }
        other => err_response("bad_request", &format!("unknown cmd {other:?}")),
    }
}
