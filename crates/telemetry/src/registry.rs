//! The central [`MetricsRegistry`]: a flat, append-only table of named
//! metric slots keyed by `(component, name)`.
//!
//! Components register lazily on first sample; subsequent samples of the
//! same `(component, name)` pair reuse the slot, so the registry order is
//! stable for the life of a run and the epoch series can index columns by
//! slot position. With the `enabled` feature off the registry has no
//! fields and every method is a no-op.

use crate::metric::{Histogram, MetricKind};
use crate::quantile::QuantileHistogram;
#[cfg(feature = "enabled")]
use crate::json;
#[cfg(feature = "enabled")]
use crate::metric::{Counter, Gauge};

/// Handle to a registered metric slot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricId(pub(crate) u32);

/// One registered metric.
#[cfg(feature = "enabled")]
#[derive(Debug, Clone)]
pub(crate) enum Metric {
    /// Counter slot.
    Counter(Counter),
    /// Gauge slot.
    Gauge(Gauge),
    /// Histogram slot.
    Histogram(Histogram),
    /// Quantile-histogram slot.
    Quantile(QuantileHistogram),
}

#[cfg(feature = "enabled")]
impl Metric {
    /// Scalar view of the slot for time-series columns: counters report
    /// their total, gauges their value, histograms their mean.
    pub(crate) fn scalar(&self) -> f64 {
        match self {
            Metric::Counter(c) => c.get() as f64,
            Metric::Gauge(g) => g.get(),
            Metric::Histogram(h) => h.mean(),
            Metric::Quantile(q) => q.mean(),
        }
    }

    pub(crate) fn kind(&self) -> MetricKind {
        match self {
            Metric::Counter(_) => MetricKind::Counter,
            Metric::Gauge(_) => MetricKind::Gauge,
            Metric::Histogram(_) => MetricKind::Histogram,
            Metric::Quantile(_) => MetricKind::Quantile,
        }
    }
}

#[cfg(feature = "enabled")]
#[derive(Debug, Clone)]
struct Slot {
    component: &'static str,
    name: &'static str,
    metric: Metric,
}

/// The central metric table.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    #[cfg(feature = "enabled")]
    slots: Vec<Slot>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    #[cfg(feature = "enabled")]
    fn find_slot(&self, component: &str, name: &str) -> Option<u32> {
        self.slots
            .iter()
            .position(|s| s.component == component && s.name == name)
            .map(|i| i as u32)
    }

    #[cfg(feature = "enabled")]
    fn register(&mut self, component: &'static str, name: &'static str, metric: Metric) -> MetricId {
        if let Some(i) = self.find_slot(component, name) {
            return MetricId(i);
        }
        self.slots.push(Slot {
            component,
            name,
            metric,
        });
        MetricId(self.slots.len() as u32 - 1)
    }

    /// Find-or-register a counter slot.
    pub fn counter(&mut self, component: &'static str, name: &'static str) -> MetricId {
        #[cfg(feature = "enabled")]
        {
            self.register(component, name, Metric::Counter(Counter::new()))
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (component, name);
            MetricId(0)
        }
    }

    /// Find-or-register a gauge slot.
    pub fn gauge(&mut self, component: &'static str, name: &'static str) -> MetricId {
        #[cfg(feature = "enabled")]
        {
            self.register(component, name, Metric::Gauge(Gauge::new()))
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (component, name);
            MetricId(0)
        }
    }

    /// Find-or-register a histogram slot over `bounds` (see
    /// [`Histogram::new`]).
    pub fn histogram(
        &mut self,
        component: &'static str,
        name: &'static str,
        bounds: &'static [u64],
    ) -> MetricId {
        #[cfg(feature = "enabled")]
        {
            self.register(component, name, Metric::Histogram(Histogram::new(bounds)))
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (component, name, bounds);
            MetricId(0)
        }
    }

    /// Overwrite a counter's total (no-op on other kinds).
    #[inline]
    pub fn set_counter(&mut self, id: MetricId, total: u64) {
        #[cfg(feature = "enabled")]
        if let Some(Slot {
            metric: Metric::Counter(c),
            ..
        }) = self.slots.get_mut(id.0 as usize)
        {
            c.set(total);
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (id, total);
        }
    }

    /// Add to a counter's total (no-op on other kinds).
    #[inline]
    pub fn add(&mut self, id: MetricId, by: u64) {
        #[cfg(feature = "enabled")]
        if let Some(Slot {
            metric: Metric::Counter(c),
            ..
        }) = self.slots.get_mut(id.0 as usize)
        {
            c.add(by);
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (id, by);
        }
    }

    /// Overwrite a gauge's value (no-op on other kinds).
    #[inline]
    pub fn set_gauge(&mut self, id: MetricId, value: f64) {
        #[cfg(feature = "enabled")]
        if let Some(Slot {
            metric: Metric::Gauge(g),
            ..
        }) = self.slots.get_mut(id.0 as usize)
        {
            g.set(value);
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (id, value);
        }
    }

    /// Find-or-register a log-bucketed quantile-histogram slot.
    pub fn quantile_histogram(&mut self, component: &'static str, name: &'static str) -> MetricId {
        #[cfg(feature = "enabled")]
        {
            self.register(
                component,
                name,
                Metric::Quantile(QuantileHistogram::new()),
            )
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (component, name);
            MetricId(0)
        }
    }

    /// Record one distribution sample (no-op on non-distribution kinds).
    #[inline]
    pub fn observe(&mut self, id: MetricId, sample: u64) {
        #[cfg(feature = "enabled")]
        match self.slots.get_mut(id.0 as usize) {
            Some(Slot {
                metric: Metric::Histogram(h),
                ..
            }) => h.observe(sample),
            Some(Slot {
                metric: Metric::Quantile(q),
                ..
            }) => q.observe(sample),
            _ => {}
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (id, sample);
        }
    }

    /// Number of registered slots.
    pub fn len(&self) -> usize {
        #[cfg(feature = "enabled")]
        {
            self.slots.len()
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }

    /// Whether the registry has no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct component paths registered.
    pub fn component_count(&self) -> usize {
        #[cfg(feature = "enabled")]
        {
            let mut seen: Vec<&'static str> = Vec::new();
            for s in &self.slots {
                if !seen.contains(&s.component) {
                    seen.push(s.component);
                }
            }
            seen.len()
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }

    /// Look up a slot by exact `(component, name)`.
    pub fn find(&self, component: &str, name: &str) -> Option<MetricId> {
        #[cfg(feature = "enabled")]
        {
            self.find_slot(component, name).map(MetricId)
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (component, name);
            None
        }
    }

    /// Scalar view of a slot (counter total, gauge value, histogram
    /// mean); 0.0 for an unknown id or in a disabled build.
    pub fn scalar(&self, id: MetricId) -> f64 {
        #[cfg(feature = "enabled")]
        {
            self.slots
                .get(id.0 as usize)
                .map(|s| s.metric.scalar())
                .unwrap_or(0.0)
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = id;
            0.0
        }
    }

    /// The kind of a slot, if known.
    pub fn kind(&self, id: MetricId) -> Option<MetricKind> {
        #[cfg(feature = "enabled")]
        {
            self.slots.get(id.0 as usize).map(|s| s.metric.kind())
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = id;
            None
        }
    }

    /// Read-only access to a histogram slot.
    pub fn histogram_ref(&self, id: MetricId) -> Option<&Histogram> {
        #[cfg(feature = "enabled")]
        {
            match self.slots.get(id.0 as usize) {
                Some(Slot {
                    metric: Metric::Histogram(h),
                    ..
                }) => Some(h),
                _ => None,
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = id;
            None
        }
    }

    /// Visit every slot in registration order as
    /// `(component, name, kind, scalar)`.
    pub fn for_each(&self, f: &mut dyn FnMut(&'static str, &'static str, MetricKind, f64)) {
        #[cfg(feature = "enabled")]
        for s in &self.slots {
            f(s.component, s.name, s.metric.kind(), s.metric.scalar());
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = f;
        }
    }

    /// Visit every histogram slot as `(component, name, histogram)`.
    pub fn for_each_histogram(&self, f: &mut dyn FnMut(&'static str, &'static str, &Histogram)) {
        #[cfg(feature = "enabled")]
        for s in &self.slots {
            if let Metric::Histogram(h) = &s.metric {
                f(s.component, s.name, h);
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = f;
        }
    }

    /// Read-only access to a quantile-histogram slot.
    pub fn quantile_ref(&self, id: MetricId) -> Option<&QuantileHistogram> {
        #[cfg(feature = "enabled")]
        {
            match self.slots.get(id.0 as usize) {
                Some(Slot {
                    metric: Metric::Quantile(q),
                    ..
                }) => Some(q),
                _ => None,
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = id;
            None
        }
    }

    /// Visit every quantile-histogram slot as `(component, name, qh)`.
    pub fn for_each_quantile(
        &self,
        f: &mut dyn FnMut(&'static str, &'static str, &QuantileHistogram),
    ) {
        #[cfg(feature = "enabled")]
        for s in &self.slots {
            if let Metric::Quantile(q) = &s.metric {
                f(s.component, s.name, q);
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = f;
        }
    }

    /// Render the registry in Prometheus text exposition format, in
    /// registration order. Metric names are `component.name` with every
    /// non-alphanumeric byte mapped to `_`; histograms render as
    /// cumulative `_bucket{le=...}` series plus `_sum`/`_count`, and
    /// quantile histograms as summaries with `{quantile="..."}` labels.
    /// Empty string in a disabled build.
    pub fn render_prometheus(&self) -> String {
        #[cfg(feature = "enabled")]
        {
            use std::fmt::Write as _;
            fn sanitize(out: &mut String, component: &str, name: &str) {
                for c in component.chars().chain("_".chars()).chain(name.chars()) {
                    if c.is_ascii_alphanumeric() {
                        out.push(c);
                    } else {
                        out.push('_');
                    }
                }
            }
            let mut out = String::new();
            for s in &self.slots {
                let mut metric = String::new();
                sanitize(&mut metric, s.component, s.name);
                match &s.metric {
                    Metric::Counter(c) => {
                        let _ = writeln!(out, "# TYPE {metric} counter");
                        let _ = writeln!(out, "{metric} {}", c.get());
                    }
                    Metric::Gauge(g) => {
                        let _ = writeln!(out, "# TYPE {metric} gauge");
                        let mut v = String::new();
                        json::push_f64(&mut v, g.get());
                        let _ = writeln!(out, "{metric} {v}");
                    }
                    Metric::Histogram(h) => {
                        let _ = writeln!(out, "# TYPE {metric} histogram");
                        let mut cum = 0u64;
                        for (i, b) in h.bounds().iter().enumerate() {
                            cum += h.bucket(i);
                            let _ = writeln!(out, "{metric}_bucket{{le=\"{b}\"}} {cum}");
                        }
                        let _ = writeln!(
                            out,
                            "{metric}_bucket{{le=\"+Inf\"}} {}",
                            h.count()
                        );
                        let _ = writeln!(out, "{metric}_sum {}", h.sum());
                        let _ = writeln!(out, "{metric}_count {}", h.count());
                    }
                    Metric::Quantile(q) => {
                        let _ = writeln!(out, "# TYPE {metric} summary");
                        for (label, quant) in
                            [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)]
                        {
                            let _ = writeln!(
                                out,
                                "{metric}{{quantile=\"{label}\"}} {}",
                                q.quantile(quant).min(q.max())
                            );
                        }
                        let _ = writeln!(out, "{metric}_sum {}", q.sum());
                        let _ = writeln!(out, "{metric}_count {}", q.count());
                    }
                }
            }
            out
        }
        #[cfg(not(feature = "enabled"))]
        {
            String::new()
        }
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent() {
        let mut r = MetricsRegistry::new();
        let a = r.counter("x.y", "hits");
        let b = r.counter("x.y", "hits");
        assert_eq!(a, b);
        assert_eq!(r.len(), 1);
        let c = r.counter("x.y", "misses");
        assert_ne!(a, c);
        assert_eq!(r.len(), 2);
        assert_eq!(r.component_count(), 1);
    }

    #[test]
    fn scalar_views() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("a", "n");
        let g = r.gauge("a", "rate");
        let h = r.histogram("a", "lat", &[10, 100]);
        r.set_counter(c, 7);
        r.set_gauge(g, 0.5);
        r.observe(h, 4);
        r.observe(h, 6);
        assert_eq!(r.scalar(c), 7.0);
        assert_eq!(r.scalar(g), 0.5);
        assert_eq!(r.scalar(h), 5.0);
        assert_eq!(r.kind(h), Some(MetricKind::Histogram));
    }

    #[test]
    fn quantile_slots_observe_and_render() {
        let mut r = MetricsRegistry::new();
        let q = r.quantile_histogram("svc.latency", "job_total");
        for v in [10u64, 20, 30, 40] {
            r.observe(q, v);
        }
        assert_eq!(r.kind(q), Some(MetricKind::Quantile));
        let qh = r.quantile_ref(q).unwrap();
        assert_eq!(qh.count(), 4);
        assert!(qh.quantile(0.99) >= 40);
        let mut seen = 0;
        r.for_each_quantile(&mut |c, n, qh| {
            assert_eq!((c, n), ("svc.latency", "job_total"));
            assert_eq!(qh.count(), 4);
            seen += 1;
        });
        assert_eq!(seen, 1);
    }

    #[test]
    fn prometheus_rendering_covers_all_kinds() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("svc.queue", "shed_total");
        let g = r.gauge("svc.queue", "depth");
        let h = r.histogram("a.b", "lat", &[1, 10]);
        let q = r.quantile_histogram("svc.latency", "job_total");
        r.set_counter(c, 3);
        r.set_gauge(g, 2.0);
        r.observe(h, 5);
        r.observe(q, 100);
        let prom = r.render_prometheus();
        assert!(prom.contains("# TYPE svc_queue_shed_total counter\nsvc_queue_shed_total 3\n"));
        assert!(prom.contains("# TYPE svc_queue_depth gauge\nsvc_queue_depth 2\n"));
        assert!(prom.contains("a_b_lat_bucket{le=\"1\"} 0"));
        assert!(prom.contains("a_b_lat_bucket{le=\"+Inf\"} 1"));
        assert!(prom.contains("a_b_lat_count 1"));
        assert!(prom.contains("svc_latency_job_total{quantile=\"0.99\"} 100"));
        assert!(prom.contains("svc_latency_job_total_count 1"));
    }
}
