//! Columnar epoch time-series.
//!
//! Every N retired instructions the sampler snapshots the whole
//! [`crate::MetricsRegistry`] into one row. Storage is columnar — one
//! `Vec<f64>` per metric — so a long run with a stable schema costs one
//! push per metric per epoch and serializes straight into CSV columns.
//! Values are cumulative snapshots (counters keep their running totals);
//! consumers diff adjacent rows to get per-epoch rates.
//!
//! Columns align with registry slots by position: the registry is
//! append-only, so slot `i` is column `i` for the life of a run. A metric
//! that first registers after some epochs have elapsed gets leading
//! `NaN` padding (serialized as `null` / an empty CSV cell).

#[cfg(feature = "enabled")]
use crate::json;
use crate::registry::MetricsRegistry;

/// Identifies one epoch row: where in the run it was sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochMark {
    /// Retired-instruction count at the sample point.
    pub instructions: u64,
    /// Cycle at the sample point.
    pub cycle: u64,
}

#[cfg(feature = "enabled")]
#[derive(Debug, Clone)]
struct Column {
    component: &'static str,
    name: &'static str,
    values: Vec<f64>,
}

/// The columnar epoch store.
#[derive(Debug, Clone, Default)]
pub struct EpochSeries {
    #[cfg(feature = "enabled")]
    marks: Vec<EpochMark>,
    #[cfg(feature = "enabled")]
    columns: Vec<Column>,
}

impl EpochSeries {
    /// An empty series.
    pub fn new() -> EpochSeries {
        EpochSeries::default()
    }

    /// Number of epoch rows recorded.
    pub fn len(&self) -> usize {
        #[cfg(feature = "enabled")]
        {
            self.marks.len()
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }

    /// Whether no epochs have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of metric columns.
    pub fn column_count(&self) -> usize {
        #[cfg(feature = "enabled")]
        {
            self.columns.len()
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }

    /// Snapshot every registry slot as one new epoch row.
    pub fn push_row(&mut self, mark: EpochMark, registry: &MetricsRegistry) {
        #[cfg(feature = "enabled")]
        {
            let prior = self.marks.len();
            self.marks.push(mark);
            let mut i = 0usize;
            registry.for_each(&mut |component, name, _kind, scalar| {
                if i == self.columns.len() {
                    // Late-registered metric: pad the epochs it missed.
                    self.columns.push(Column {
                        component,
                        name,
                        values: vec![f64::NAN; prior],
                    });
                }
                self.columns[i].values.push(scalar);
                i += 1;
            });
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (mark, registry);
        }
    }

    /// The mark for epoch `i`.
    pub fn mark(&self, i: usize) -> Option<EpochMark> {
        #[cfg(feature = "enabled")]
        {
            self.marks.get(i).copied()
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = i;
            None
        }
    }

    /// The value of column `(component, name)` at epoch `i`, if present.
    pub fn value_at(&self, component: &str, name: &str, i: usize) -> Option<f64> {
        #[cfg(feature = "enabled")]
        {
            self.columns
                .iter()
                .find(|c| c.component == component && c.name == name)
                .and_then(|c| c.values.get(i))
                .copied()
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (component, name, i);
            None
        }
    }

    /// Serialize as JSON Lines: one object per epoch with a flat
    /// `metrics` map keyed `component.name`.
    pub fn to_jsonl(&self) -> String {
        #[allow(unused_mut)]
        let mut out = String::new();
        #[cfg(feature = "enabled")]
        for (e, mark) in self.marks.iter().enumerate() {
            out.push('{');
            json::push_key(&mut out, true, "type");
            json::push_str(&mut out, "epoch");
            json::push_key(&mut out, false, "epoch");
            json::push_u64(&mut out, e as u64);
            json::push_key(&mut out, false, "instructions");
            json::push_u64(&mut out, mark.instructions);
            json::push_key(&mut out, false, "cycle");
            json::push_u64(&mut out, mark.cycle);
            json::push_key(&mut out, false, "metrics");
            out.push('{');
            let mut first = true;
            for col in &self.columns {
                if let Some(&v) = col.values.get(e) {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    out.push('"');
                    out.push_str(col.component);
                    out.push('.');
                    out.push_str(col.name);
                    out.push_str("\":");
                    json::push_f64(&mut out, v);
                }
            }
            out.push_str("}}\n");
        }
        out
    }

    /// Serialize as CSV: `epoch,instructions,cycle` then one column per
    /// metric (header `component.name`); `NaN` cells are left empty.
    pub fn to_csv(&self) -> String {
        #[allow(unused_mut)]
        let mut out = String::new();
        #[cfg(feature = "enabled")]
        {
            out.push_str("epoch,instructions,cycle");
            for col in &self.columns {
                out.push(',');
                out.push_str(col.component);
                out.push('.');
                out.push_str(col.name);
            }
            out.push('\n');
            for (e, mark) in self.marks.iter().enumerate() {
                out.push_str(&format!("{},{},{}", e, mark.instructions, mark.cycle));
                for col in &self.columns {
                    out.push(',');
                    match col.values.get(e) {
                        Some(v) if v.is_finite() => out.push_str(&format!("{v}")),
                        _ => {}
                    }
                }
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn rows_align_with_registry_order() {
        let mut r = MetricsRegistry::new();
        let a = r.counter("c", "a");
        let b = r.gauge("c", "b");
        let mut s = EpochSeries::new();
        r.set_counter(a, 1);
        r.set_gauge(b, 0.5);
        s.push_row(
            EpochMark {
                instructions: 10,
                cycle: 20,
            },
            &r,
        );
        r.set_counter(a, 3);
        // A metric registered after the first epoch gets NaN padding.
        let late = r.counter("c", "late");
        r.set_counter(late, 9);
        s.push_row(
            EpochMark {
                instructions: 20,
                cycle: 41,
            },
            &r,
        );
        assert_eq!(s.len(), 2);
        assert_eq!(s.column_count(), 3);
        assert_eq!(s.value_at("c", "a", 0), Some(1.0));
        assert_eq!(s.value_at("c", "a", 1), Some(3.0));
        assert!(s.value_at("c", "late", 0).is_some_and(f64::is_nan));
        assert_eq!(s.value_at("c", "late", 1), Some(9.0));
        let jsonl = s.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"c.late\":null"));
        assert!(jsonl.contains("\"instructions\":20"));
        let csv = s.to_csv();
        assert!(csv.starts_with("epoch,instructions,cycle,c.a,c.b,c.late\n"));
        assert!(csv.contains("0,10,20,1,0.5,\n"));
    }
}
