//! Minimal deterministic JSON emission helpers.
//!
//! The build environment has no registry access (no `serde`), and the
//! telemetry outputs must be byte-identical across same-seed runs, so the
//! writers here are deliberately tiny: append-only `String` pushes, no
//! map types, no locale/clock dependence. `f64` values are written with
//! Rust's shortest-roundtrip `Display`, which is deterministic for a
//! given bit pattern; non-finite values become `null` (JSON has no
//! NaN/inf literals).

use std::fmt::Write as _;

/// Append `s` as a quoted JSON string, escaping the characters JSON
/// requires (quotes, backslash, control bytes).
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append an unsigned integer.
pub fn push_u64(out: &mut String, v: u64) {
    let _ = write!(out, "{v}");
}

/// Append a float, or `null` when the value is not finite.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Append `"key":` (with the leading comma when `first` is false).
pub fn push_key(out: &mut String, first: bool, key: &str) {
    if !first {
        out.push(',');
    }
    push_str(out, key);
    out.push(':');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut s = String::new();
        push_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_is_null() {
        let mut s = String::new();
        push_f64(&mut s, f64::NAN);
        s.push(' ');
        push_f64(&mut s, f64::INFINITY);
        s.push(' ');
        push_f64(&mut s, 1.5);
        assert_eq!(s, "null null 1.5");
    }

    #[test]
    fn integral_floats_have_no_exponent() {
        let mut s = String::new();
        push_f64(&mut s, 123.0);
        assert_eq!(s, "123");
    }
}
