//! Span tracing: nested, parent-linked timing spans for the job
//! lifecycle (`submit → queue_wait → attempt[n] → slice[k] →
//! result_encode`).
//!
//! A [`SpanRecorder`] owns a flat vector of [`SpanRecord`]s; nesting is
//! expressed through explicit parent ids rather than a thread-local
//! stack because one job's spans are opened and closed from different
//! threads (the submitting connection thread, a worker, the engine's
//! finisher). [`SharedSpans`] wraps a recorder in `Arc<Mutex<…>>` so the
//! engine, the runner, and protocol handlers can all append to the same
//! per-job trace.
//!
//! The clock is injected: a recorder is either anchored to a wall
//! [`Instant`] at construction (production) or driven manually with
//! [`SpanRecorder::advance`] (tests), so span output in tests is
//! byte-deterministic.
//!
//! With the `enabled` feature off every type here is a zero-sized no-op,
//! matching the rest of the crate.

#[cfg(feature = "enabled")]
use crate::json;
#[cfg(feature = "enabled")]
use std::sync::{Arc, Mutex};
#[cfg(feature = "enabled")]
use std::time::Instant;

/// Handle to a span within one [`SpanRecorder`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanId(pub(crate) u32);

/// A span attribute value.
#[cfg(feature = "enabled")]
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Integer attribute.
    U64(u64),
    /// String attribute.
    Str(String),
}

/// One recorded span: a named interval with an optional parent.
#[cfg(feature = "enabled")]
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Index of this span in its recorder.
    pub id: u32,
    /// Parent span id, if nested.
    pub parent: Option<u32>,
    /// Stage name (e.g. `"queue_wait"`, `"attempt[1]"`).
    pub name: String,
    /// Start time, microseconds since the recorder's clock anchor.
    pub start_us: u64,
    /// End time; `None` while the span is open.
    pub end_us: Option<u64>,
    /// Attributes in insertion order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

#[cfg(feature = "enabled")]
#[derive(Debug, Clone)]
enum Clock {
    Wall(Instant),
    Manual(u64),
}

/// Records a tree of timed spans against an injected clock.
#[derive(Debug, Clone)]
pub struct SpanRecorder {
    #[cfg(feature = "enabled")]
    clock: Clock,
    #[cfg(feature = "enabled")]
    spans: Vec<SpanRecord>,
}

impl Default for SpanRecorder {
    fn default() -> SpanRecorder {
        SpanRecorder::new()
    }
}

impl SpanRecorder {
    /// A recorder anchored to the wall clock at construction time.
    pub fn new() -> SpanRecorder {
        SpanRecorder {
            #[cfg(feature = "enabled")]
            clock: Clock::Wall(Instant::now()),
            #[cfg(feature = "enabled")]
            spans: Vec::new(),
        }
    }

    /// A recorder with a manually driven clock starting at 0 µs, for
    /// deterministic tests.
    pub fn manual() -> SpanRecorder {
        #[cfg(feature = "enabled")]
        {
            SpanRecorder {
                clock: Clock::Manual(0),
                spans: Vec::new(),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            SpanRecorder {}
        }
    }

    /// Advance a manual clock by `us` microseconds (no-op on a wall
    /// clock).
    pub fn advance(&mut self, us: u64) {
        #[cfg(feature = "enabled")]
        if let Clock::Manual(now) = &mut self.clock {
            *now += us;
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = us;
        }
    }

    #[cfg(feature = "enabled")]
    fn now_us(&self) -> u64 {
        match &self.clock {
            Clock::Wall(anchor) => anchor.elapsed().as_micros() as u64,
            Clock::Manual(now) => *now,
        }
    }

    /// Open a span named `name` under `parent` (or as a root).
    pub fn start(&mut self, name: &str, parent: Option<SpanId>) -> SpanId {
        #[cfg(feature = "enabled")]
        {
            let id = self.spans.len() as u32;
            self.spans.push(SpanRecord {
                id,
                parent: parent.map(|p| p.0),
                name: name.to_string(),
                start_us: self.now_us(),
                end_us: None,
                attrs: Vec::new(),
            });
            SpanId(id)
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (name, parent);
            SpanId(0)
        }
    }

    /// Close a span (idempotent: a second end is ignored).
    pub fn end(&mut self, id: SpanId) {
        #[cfg(feature = "enabled")]
        {
            let now = self.now_us();
            if let Some(s) = self.spans.get_mut(id.0 as usize) {
                if s.end_us.is_none() {
                    s.end_us = Some(now.max(s.start_us));
                }
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = id;
        }
    }

    /// Attach an integer attribute to a span.
    pub fn attr_u64(&mut self, id: SpanId, key: &'static str, value: u64) {
        #[cfg(feature = "enabled")]
        if let Some(s) = self.spans.get_mut(id.0 as usize) {
            s.attrs.push((key, AttrValue::U64(value)));
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (id, key, value);
        }
    }

    /// Attach a string attribute to a span.
    pub fn attr_str(&mut self, id: SpanId, key: &'static str, value: &str) {
        #[cfg(feature = "enabled")]
        if let Some(s) = self.spans.get_mut(id.0 as usize) {
            s.attrs.push((key, AttrValue::Str(value.to_string())));
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (id, key, value);
        }
    }

    /// Number of spans recorded (open or closed).
    pub fn len(&self) -> usize {
        #[cfg(feature = "enabled")]
        {
            self.spans.len()
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }

    /// Whether no spans have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Duration of a closed span in microseconds (`None` while open or
    /// for an unknown id).
    pub fn duration_us(&self, id: SpanId) -> Option<u64> {
        #[cfg(feature = "enabled")]
        {
            let s = self.spans.get(id.0 as usize)?;
            Some(s.end_us? - s.start_us)
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = id;
            None
        }
    }

    /// Visit every *closed* span as `(name, duration_us)`, in id order.
    pub fn for_each_closed(&self, f: &mut dyn FnMut(&str, u64)) {
        #[cfg(feature = "enabled")]
        for s in &self.spans {
            if let Some(end) = s.end_us {
                f(&s.name, end - s.start_us);
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = f;
        }
    }

    /// All spans as JSON Lines in id order, one
    /// `{"type":"span","id":..,"parent":..,"name":..,"start_us":..,
    /// "end_us":..,"dur_us":..,"attrs":{..}}` object per line (open
    /// spans have `null` end/duration). Empty in a disabled build.
    pub fn to_jsonl(&self) -> String {
        #[cfg(feature = "enabled")]
        {
            let mut out = String::new();
            for s in &self.spans {
                out.push('{');
                json::push_key(&mut out, true, "type");
                json::push_str(&mut out, "span");
                json::push_key(&mut out, false, "id");
                json::push_u64(&mut out, s.id as u64);
                json::push_key(&mut out, false, "parent");
                match s.parent {
                    Some(p) => json::push_u64(&mut out, p as u64),
                    None => out.push_str("null"),
                }
                json::push_key(&mut out, false, "name");
                json::push_str(&mut out, &s.name);
                json::push_key(&mut out, false, "start_us");
                json::push_u64(&mut out, s.start_us);
                json::push_key(&mut out, false, "end_us");
                match s.end_us {
                    Some(e) => json::push_u64(&mut out, e),
                    None => out.push_str("null"),
                }
                json::push_key(&mut out, false, "dur_us");
                match s.end_us {
                    Some(e) => json::push_u64(&mut out, e - s.start_us),
                    None => out.push_str("null"),
                }
                json::push_key(&mut out, false, "attrs");
                out.push('{');
                for (i, (k, v)) in s.attrs.iter().enumerate() {
                    json::push_key(&mut out, i == 0, k);
                    match v {
                        AttrValue::U64(n) => json::push_u64(&mut out, *n),
                        AttrValue::Str(t) => json::push_str(&mut out, t),
                    }
                }
                out.push_str("}}\n");
            }
            out
        }
        #[cfg(not(feature = "enabled"))]
        {
            String::new()
        }
    }
}

/// A cloneable, thread-safe handle to one job's [`SpanRecorder`].
#[derive(Debug, Clone, Default)]
pub struct SharedSpans {
    #[cfg(feature = "enabled")]
    inner: Arc<Mutex<SpanRecorder>>,
}

impl SharedSpans {
    /// A shared recorder on the wall clock.
    pub fn new() -> SharedSpans {
        SharedSpans::default()
    }

    /// A shared recorder on a manual clock (tests).
    pub fn manual() -> SharedSpans {
        #[cfg(feature = "enabled")]
        {
            SharedSpans {
                inner: Arc::new(Mutex::new(SpanRecorder::manual())),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            SharedSpans {}
        }
    }

    #[cfg(feature = "enabled")]
    fn with<R>(&self, default: R, f: impl FnOnce(&mut SpanRecorder) -> R) -> R {
        match self.inner.lock() {
            Ok(mut rec) => f(&mut rec),
            Err(_) => default,
        }
    }

    /// Open a span (see [`SpanRecorder::start`]).
    pub fn start(&self, name: &str, parent: Option<SpanId>) -> SpanId {
        #[cfg(feature = "enabled")]
        {
            self.with(SpanId(0), |rec| rec.start(name, parent))
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (name, parent);
            SpanId(0)
        }
    }

    /// Close a span.
    pub fn end(&self, id: SpanId) {
        #[cfg(feature = "enabled")]
        self.with((), |rec| rec.end(id));
        #[cfg(not(feature = "enabled"))]
        {
            let _ = id;
        }
    }

    /// Attach an integer attribute.
    pub fn attr_u64(&self, id: SpanId, key: &'static str, value: u64) {
        #[cfg(feature = "enabled")]
        self.with((), |rec| rec.attr_u64(id, key, value));
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (id, key, value);
        }
    }

    /// Attach a string attribute.
    pub fn attr_str(&self, id: SpanId, key: &'static str, value: &str) {
        #[cfg(feature = "enabled")]
        self.with((), |rec| rec.attr_str(id, key, value));
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (id, key, value);
        }
    }

    /// Advance a manual clock (no-op on wall clocks).
    pub fn advance(&self, us: u64) {
        #[cfg(feature = "enabled")]
        self.with((), |rec| rec.advance(us));
        #[cfg(not(feature = "enabled"))]
        {
            let _ = us;
        }
    }

    /// Number of spans recorded.
    pub fn len(&self) -> usize {
        #[cfg(feature = "enabled")]
        {
            self.with(0, |rec| rec.len())
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }

    /// Whether no spans have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every closed span as `(name, duration_us)` in id order.
    pub fn closed_durations(&self) -> Vec<(String, u64)> {
        #[cfg(feature = "enabled")]
        {
            self.with(Vec::new(), |rec| {
                let mut out = Vec::new();
                rec.for_each_closed(&mut |name, dur| out.push((name.to_string(), dur)));
                out
            })
        }
        #[cfg(not(feature = "enabled"))]
        {
            Vec::new()
        }
    }

    /// The trace as JSON Lines (see [`SpanRecorder::to_jsonl`]).
    pub fn to_jsonl(&self) -> String {
        #[cfg(feature = "enabled")]
        {
            self.with(String::new(), |rec| rec.to_jsonl())
        }
        #[cfg(not(feature = "enabled"))]
        {
            String::new()
        }
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_deterministic() {
        let mut rec = SpanRecorder::manual();
        let root = rec.start("job", None);
        rec.advance(5);
        let child = rec.start("queue_wait", Some(root));
        rec.advance(10);
        rec.end(child);
        rec.advance(1);
        rec.end(root);
        assert_eq!(rec.duration_us(child), Some(10));
        assert_eq!(rec.duration_us(root), Some(16));
        let jsonl = rec.to_jsonl();
        assert!(jsonl.contains("\"name\":\"queue_wait\",\"start_us\":5,\"end_us\":15,\"dur_us\":10"));
        assert!(jsonl.contains("\"parent\":0"));
    }

    #[test]
    fn end_is_idempotent_and_attrs_render() {
        let mut rec = SpanRecorder::manual();
        let s = rec.start("attempt[1]", None);
        rec.attr_u64(s, "retries", 2);
        rec.attr_str(s, "kind", "sweep");
        rec.advance(3);
        rec.end(s);
        rec.advance(100);
        rec.end(s);
        assert_eq!(rec.duration_us(s), Some(3));
        assert!(rec.to_jsonl().contains("\"attrs\":{\"retries\":2,\"kind\":\"sweep\"}"));
    }

    #[test]
    fn shared_handle_aggregates_closed_spans() {
        let spans = SharedSpans::manual();
        let root = spans.start("job", None);
        spans.advance(7);
        let open = spans.start("queue_wait", Some(root));
        spans.end(root);
        let durs = spans.closed_durations();
        assert_eq!(durs, vec![("job".to_string(), 7)]);
        let _ = open;
        assert_eq!(spans.len(), 2);
    }
}
