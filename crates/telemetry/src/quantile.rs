//! Log-bucketed [`QuantileHistogram`] for latency summaries.
//!
//! The fixed-bucket [`crate::Histogram`] needs its bounds chosen up
//! front, which works for microarchitectural distributions (retire gaps,
//! load latencies) but not for wall-clock job latencies that span six
//! orders of magnitude. This histogram instead uses log-linear buckets:
//! each power-of-two octave is split into [`QUANTILE_SUB_BUCKETS`]
//! equal-width sub-buckets, bounding the relative quantile error at
//! `1 / QUANTILE_SUB_BUCKETS` (12.5%) at any scale, with values below
//! the sub-bucket count recorded exactly.
//!
//! Every instance shares one fixed bucket layout, so two histograms are
//! always mergeable by element-wise addition — per-stage summaries can
//! be rolled up across workers or scrape intervals without re-bucketing.
//!
//! Like the primitives in [`crate::metric`], this is a plain value type;
//! feature gating happens in the registry that owns it.

use crate::json;

/// Number of sub-buckets per power-of-two octave (`2^QUANTILE_SUB_BITS`).
pub const QUANTILE_SUB_BITS: u32 = 3;

/// Sub-buckets per octave; also the denominator of the relative error
/// bound (a reported quantile is at most `1/8` above the true value).
pub const QUANTILE_SUB_BUCKETS: u64 = 1 << QUANTILE_SUB_BITS;

/// Total bucket count: exact buckets `0..QUANTILE_SUB_BUCKETS`, then 8
/// sub-buckets for each of the 61 remaining octaves of the `u64` range.
pub const QUANTILE_BUCKETS: usize =
    QUANTILE_SUB_BUCKETS as usize * (64 - QUANTILE_SUB_BITS as usize + 1);

/// A mergeable log-bucketed histogram with bounded relative error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for QuantileHistogram {
    fn default() -> QuantileHistogram {
        QuantileHistogram::new()
    }
}

/// Bucket index for value `v`: exact below [`QUANTILE_SUB_BUCKETS`],
/// otherwise octave-major log-linear.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < QUANTILE_SUB_BUCKETS {
        return v as usize;
    }
    let e = 63 - v.leading_zeros();
    let sub = (v >> (e - QUANTILE_SUB_BITS)) - QUANTILE_SUB_BUCKETS;
    ((e - QUANTILE_SUB_BITS) as u64 * QUANTILE_SUB_BUCKETS + QUANTILE_SUB_BUCKETS + sub) as usize
}

/// Inclusive upper bound of bucket `i` (the inverse of [`bucket_index`]).
#[inline]
fn bucket_bound(i: usize) -> u64 {
    let i = i as u64;
    if i < QUANTILE_SUB_BUCKETS {
        return i;
    }
    let octave = (i - QUANTILE_SUB_BUCKETS) >> QUANTILE_SUB_BITS;
    let sub = (i - QUANTILE_SUB_BUCKETS) & (QUANTILE_SUB_BUCKETS - 1);
    ((QUANTILE_SUB_BUCKETS + sub + 1) << octave).wrapping_sub(1)
}

impl QuantileHistogram {
    /// An empty histogram.
    pub fn new() -> QuantileHistogram {
        QuantileHistogram {
            counts: vec![0; QUANTILE_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold `other` into `self` (element-wise; always layout-compatible).
    pub fn merge(&mut self, other: &QuantileHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (wrapping).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample seen (0 before any samples).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample seen.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0.0 before any samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0..=1.0`): at least the true quantile value and at most
    /// `1/QUANTILE_SUB_BUCKETS` above it. 0 before any samples.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let rank = rank.max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bound(i);
            }
        }
        self.max
    }

    /// Inclusive upper bound of the bucket value `v` falls in (exposes
    /// the bucketing for accuracy tests).
    pub fn bound_for(v: u64) -> u64 {
        bucket_bound(bucket_index(v))
    }

    /// Append `{"count":..,"sum":..,"min":..,"max":..,"mean":..,
    /// "p50":..,"p90":..,"p99":..}` — quantiles clamped to the observed
    /// max so a single-sample summary reads exactly.
    pub fn push_summary_json(&self, out: &mut String) {
        out.push('{');
        json::push_key(out, true, "count");
        json::push_u64(out, self.count);
        json::push_key(out, false, "sum");
        json::push_u64(out, self.sum);
        json::push_key(out, false, "min");
        json::push_u64(out, self.min());
        json::push_key(out, false, "max");
        json::push_u64(out, self.max);
        json::push_key(out, false, "mean");
        json::push_f64(out, self.mean());
        json::push_key(out, false, "p50");
        json::push_u64(out, self.quantile(0.5).min(self.max));
        json::push_key(out, false, "p90");
        json::push_u64(out, self.quantile(0.9).min(self.max));
        json::push_key(out, false, "p99");
        json::push_u64(out, self.quantile(0.99).min(self.max));
        out.push('}');
    }

    /// [`Self::push_summary_json`] as an owned string.
    pub fn summary_json(&self) -> String {
        let mut out = String::new();
        self.push_summary_json(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..QUANTILE_SUB_BUCKETS {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bound(v as usize), v);
        }
    }

    #[test]
    fn bounds_invert_indexes() {
        for i in 0..QUANTILE_BUCKETS {
            let b = bucket_bound(i);
            if b > 0 {
                assert_eq!(bucket_index(b), i, "bound {b} of bucket {i}");
            }
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [8u64, 9, 15, 16, 17, 100, 1000, 123_456, u32::MAX as u64] {
            let b = QuantileHistogram::bound_for(v);
            assert!(b >= v);
            assert!(b - v <= v / QUANTILE_SUB_BUCKETS, "bound {b} for {v}");
        }
    }

    #[test]
    fn quantiles_track_distribution() {
        let mut h = QuantileHistogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        let p50 = h.quantile(0.5);
        assert!((500..=563).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!((990..=1114).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn merge_is_elementwise() {
        let mut a = QuantileHistogram::new();
        let mut b = QuantileHistogram::new();
        let mut all = QuantileHistogram::new();
        for v in [1u64, 50, 700] {
            a.observe(v);
            all.observe(v);
        }
        for v in [3u64, 9000] {
            b.observe(v);
            all.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }
}
