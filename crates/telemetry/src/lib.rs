//! Unified telemetry layer for the Exynos simulator: a central
//! [`MetricsRegistry`] of typed [`Counter`]/[`Gauge`]/[`Histogram`]
//! primitives, an [`EpochSeries`] sampler that snapshots every registered
//! component each N instructions, and a bounded [`EventTrace`] ring of
//! structured [`PipelineEvent`]s with cycle timestamps.
//!
//! # Feature gating
//!
//! The `enabled` feature (on by default) carries the entire
//! implementation. With `--no-default-features` every type here compiles
//! to a zero-sized struct whose methods are no-ops, and
//! [`Telemetry::ACTIVE`] is `false` so instrumented call sites in
//! `exynos-core` skip their probe work entirely — bench sweeps with
//! telemetry disabled are bit-identical to, and as fast as, builds that
//! predate this crate.
//!
//! # Wiring
//!
//! Component crates implement [`Observable`] for their `*Stats` structs
//! (a stable dotted component path plus a fixed-order visit of named
//! values). `exynos_core::Simulator::step_with` threads an
//! `&mut Telemetry` through the step loop: events are derived from
//! per-step stat deltas, and every `epoch_len` retired instructions the
//! whole registry is snapshotted into the columnar series.
//!
//! # Determinism
//!
//! All output is byte-deterministic for a same-seed run: iteration is
//! over `Vec`s in registration order, no wall-clock or map-order state is
//! consulted, and floats serialize via Rust's shortest-roundtrip
//! formatter (non-finite values become `null`).

#![warn(missing_docs)]

pub mod event;
pub mod flight;
pub mod json;
pub mod metric;
pub mod quantile;
pub mod registry;
pub mod series;
pub mod span;

pub use event::{
    BranchClass, EventRecord, EventTrace, FaultClass, PipelineEvent, PrefetchKind, UocModeTag,
};
pub use flight::{FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use metric::{Counter, Gauge, Histogram, MetricKind, GAP_BUCKETS, LATENCY_BUCKETS};
pub use quantile::{QuantileHistogram, QUANTILE_SUB_BUCKETS};
pub use registry::{MetricId, MetricsRegistry};
pub use series::{EpochMark, EpochSeries};
pub use span::{SharedSpans, SpanId, SpanRecorder};

use std::fmt::Write as _;

/// A single sampled metric value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integer value (cumulative counters, absolute occupancies).
    U64(u64),
    /// Floating-point value (rates, averages, fractions).
    F64(f64),
}

impl Value {
    /// The value as `f64` (lossy above 2^53 for [`Value::U64`]).
    #[inline]
    pub fn as_f64(self) -> f64 {
        match self {
            Value::U64(v) => v as f64,
            Value::F64(v) => v,
        }
    }
}

/// A component whose statistics can be pulled into the registry.
///
/// Implementations must visit the same names in the same order on every
/// call — the registry and epoch series rely on a stable schema.
pub trait Observable {
    /// Stable dotted component path; the first segment names the crate
    /// (e.g. `"branch.frontend"`, `"mem.tlb.itlb"`, `"core.sim"`).
    fn component(&self) -> &'static str;

    /// Visit each metric as a `(name, value)` pair in a fixed order.
    /// [`Value::U64`] registers as a counter, [`Value::F64`] as a gauge.
    fn visit(&self, f: &mut dyn FnMut(&'static str, Value));
}

/// Construction parameters for [`Telemetry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Sample the registry into the epoch series every this many retired
    /// instructions.
    pub epoch_len: u64,
    /// Event-trace ring capacity (records retained).
    pub event_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            epoch_len: 10_000,
            event_capacity: 65_536,
        }
    }
}

/// The per-run telemetry sink: registry + epoch series + event trace.
///
/// Owned by the caller (not the `Simulator`), so the simulator's own
/// state and hot loop are untouched when telemetry is absent or the
/// feature is disabled.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    #[cfg(feature = "enabled")]
    epoch_len: u64,
    registry: MetricsRegistry,
    series: EpochSeries,
    events: EventTrace,
    #[cfg(feature = "enabled")]
    hist_retire_gap: MetricId,
    #[cfg(feature = "enabled")]
    hist_load_latency: MetricId,
}

impl Telemetry {
    /// `true` when the `enabled` feature is compiled in. Instrumented
    /// call sites gate their probe work on this so a disabled build pays
    /// nothing.
    pub const ACTIVE: bool = cfg!(feature = "enabled");

    /// A telemetry sink with the given configuration.
    pub fn new(config: TelemetryConfig) -> Telemetry {
        #[cfg(feature = "enabled")]
        {
            let mut registry = MetricsRegistry::new();
            let hist_retire_gap = registry.histogram("core.sim", "retire_gap", GAP_BUCKETS);
            let hist_load_latency = registry.histogram("core.mem", "load_latency", LATENCY_BUCKETS);
            Telemetry {
                epoch_len: config.epoch_len.max(1),
                registry,
                series: EpochSeries::new(),
                events: EventTrace::new(config.event_capacity),
                hist_retire_gap,
                hist_load_latency,
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = config;
            Telemetry::default()
        }
    }

    /// The configured epoch length (0 in a disabled build).
    pub fn epoch_len(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.epoch_len
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }

    /// Whether an epoch boundary falls at `instructions` retired.
    #[inline]
    pub fn epoch_due(&self, instructions: u64) -> bool {
        #[cfg(feature = "enabled")]
        {
            instructions > 0 && instructions.is_multiple_of(self.epoch_len)
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = instructions;
            false
        }
    }

    /// Record one pipeline event at `(cycle, instr)`.
    #[inline]
    pub fn record(&mut self, cycle: u64, instr: u64, event: PipelineEvent) {
        self.events.record(cycle, instr, event);
    }

    /// Pull one component's stats into the registry under its own
    /// [`Observable::component`] path.
    pub fn sample(&mut self, obs: &dyn Observable) {
        self.sample_named(obs.component(), obs);
    }

    /// Pull one component's stats into the registry under an explicit
    /// `component` path (for multi-instance components such as the
    /// per-level caches and TLBs).
    pub fn sample_named(&mut self, component: &'static str, obs: &dyn Observable) {
        #[cfg(feature = "enabled")]
        obs.visit(&mut |name, value| match value {
            Value::U64(v) => {
                let id = self.registry.counter(component, name);
                self.registry.set_counter(id, v);
            }
            Value::F64(v) => {
                let id = self.registry.gauge(component, name);
                self.registry.set_gauge(id, v);
            }
        });
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (component, obs);
        }
    }

    /// Set a free-standing derived gauge (e.g. IPC, MPKI).
    pub fn gauge(&mut self, component: &'static str, name: &'static str, value: f64) {
        #[cfg(feature = "enabled")]
        {
            let id = self.registry.gauge(component, name);
            self.registry.set_gauge(id, value);
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (component, name, value);
        }
    }

    /// Close the current epoch: snapshot every registry slot into the
    /// columnar series, stamped with the run position.
    pub fn end_epoch(&mut self, instructions: u64, cycle: u64) {
        #[cfg(feature = "enabled")]
        self.series.push_row(
            EpochMark {
                instructions,
                cycle,
            },
            &self.registry,
        );
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (instructions, cycle);
        }
    }

    /// Sample the retirement-gap histogram (cycles between retires).
    #[inline]
    pub fn observe_retire_gap(&mut self, gap: u64) {
        #[cfg(feature = "enabled")]
        self.registry.observe(self.hist_retire_gap, gap);
        #[cfg(not(feature = "enabled"))]
        {
            let _ = gap;
        }
    }

    /// Sample the load-latency histogram (cycles).
    #[inline]
    pub fn observe_load_latency(&mut self, latency: u64) {
        #[cfg(feature = "enabled")]
        self.registry.observe(self.hist_load_latency, latency);
        #[cfg(not(feature = "enabled"))]
        {
            let _ = latency;
        }
    }

    /// The metric registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The epoch time-series.
    pub fn series(&self) -> &EpochSeries {
        &self.series
    }

    /// The event trace.
    pub fn events(&self) -> &EventTrace {
        &self.events
    }

    /// Epoch time-series as JSON Lines, followed by one
    /// `{"type":"histogram",...}` line per histogram slot.
    pub fn metrics_jsonl(&self) -> String {
        let mut out = self.series.to_jsonl();
        self.registry.for_each_histogram(&mut |component, name, h| {
            out.push('{');
            json::push_key(&mut out, true, "type");
            json::push_str(&mut out, "histogram");
            json::push_key(&mut out, false, "metric");
            let full = format!("{component}.{name}");
            json::push_str(&mut out, &full);
            json::push_key(&mut out, false, "count");
            json::push_u64(&mut out, h.count());
            json::push_key(&mut out, false, "sum");
            json::push_u64(&mut out, h.sum());
            json::push_key(&mut out, false, "max");
            json::push_u64(&mut out, h.max());
            json::push_key(&mut out, false, "mean");
            json::push_f64(&mut out, h.mean());
            json::push_key(&mut out, false, "p50");
            json::push_u64(&mut out, h.quantile(0.5).min(h.max()));
            json::push_key(&mut out, false, "p99");
            json::push_u64(&mut out, h.quantile(0.99).min(h.max()));
            json::push_key(&mut out, false, "buckets");
            out.push('[');
            for i in 0..=h.bounds().len() {
                if i > 0 {
                    out.push(',');
                }
                json::push_u64(&mut out, h.bucket(i));
            }
            out.push(']');
            json::push_key(&mut out, false, "bounds");
            out.push('[');
            for (i, b) in h.bounds().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::push_u64(&mut out, *b);
            }
            out.push_str("]}\n");
        });
        out
    }

    /// Epoch time-series as CSV (see [`EpochSeries::to_csv`]).
    pub fn metrics_csv(&self) -> String {
        self.series.to_csv()
    }

    /// Event trace as JSON Lines, oldest first.
    pub fn events_jsonl(&self) -> String {
        self.events.to_jsonl()
    }

    /// Human-readable per-run summary: final value of every metric,
    /// histogram digests, and event counts.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "telemetry summary: {} metrics / {} components, {} epochs, {} events ({} dropped)",
            self.registry.len(),
            self.registry.component_count(),
            self.series.len(),
            self.events.recorded(),
            self.events.dropped(),
        );
        self.registry.for_each(&mut |component, name, kind, scalar| {
            if kind == MetricKind::Histogram || kind == MetricKind::Quantile {
                return;
            }
            let _ = writeln!(out, "  {component}.{name} = {scalar}");
        });
        self.registry.for_each_quantile(&mut |component, name, q| {
            let _ = writeln!(
                out,
                "  {component}.{name}: count={} mean={:.2} p50={} p99={} max={}",
                q.count(),
                q.mean(),
                q.quantile(0.5).min(q.max()),
                q.quantile(0.99).min(q.max()),
                q.max(),
            );
        });
        self.registry.for_each_histogram(&mut |component, name, h| {
            let _ = writeln!(
                out,
                "  {component}.{name}: count={} mean={:.2} p50={} p99={} max={}",
                h.count(),
                h.mean(),
                h.quantile(0.5).min(h.max()),
                h.quantile(0.99).min(h.max()),
                h.max(),
            );
        });
        let counts = self.events.counts_by_name();
        if !counts.is_empty() {
            out.push_str("  events:");
            for (name, n) in counts {
                let _ = write!(out, " {name}={n}");
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    struct Fake;

    impl Observable for Fake {
        fn component(&self) -> &'static str {
            "test.fake"
        }
        fn visit(&self, f: &mut dyn FnMut(&'static str, Value)) {
            f("hits", Value::U64(3));
            f("rate", Value::F64(0.75));
        }
    }

    #[test]
    fn sample_and_epoch_roundtrip() {
        let mut t = Telemetry::new(TelemetryConfig {
            epoch_len: 100,
            event_capacity: 16,
        });
        assert!(!t.epoch_due(50));
        assert!(t.epoch_due(100));
        assert!(!t.epoch_due(0));
        t.sample(&Fake);
        t.gauge("test.fake", "ipc", 1.25);
        t.observe_retire_gap(3);
        t.end_epoch(100, 222);
        assert_eq!(t.series().len(), 1);
        assert_eq!(t.series().value_at("test.fake", "hits", 0), Some(3.0));
        assert_eq!(t.series().value_at("test.fake", "ipc", 0), Some(1.25));
        let jsonl = t.metrics_jsonl();
        assert!(jsonl.contains("\"test.fake.rate\":0.75"));
        assert!(jsonl.contains("\"type\":\"histogram\""));
        assert!(jsonl.contains("\"metric\":\"core.sim.retire_gap\""));
        let summary = t.summary();
        assert!(summary.contains("test.fake.hits = 3"));
    }
}

#[cfg(all(test, not(feature = "enabled")))]
mod noop_tests {
    use super::*;

    #[test]
    fn disabled_types_are_zero_sized() {
        assert_eq!(std::mem::size_of::<Telemetry>(), 0);
        assert_eq!(std::mem::size_of::<MetricsRegistry>(), 0);
        assert_eq!(std::mem::size_of::<EpochSeries>(), 0);
        assert_eq!(std::mem::size_of::<EventTrace>(), 0);
        assert_eq!(std::mem::size_of::<SpanRecorder>(), 0);
        assert_eq!(std::mem::size_of::<SharedSpans>(), 0);
        assert_eq!(std::mem::size_of::<FlightRecorder>(), 0);
        assert!(!Telemetry::ACTIVE);
    }

    #[test]
    fn disabled_span_and_flight_are_inert() {
        let spans = SharedSpans::new();
        let root = spans.start("job", None);
        spans.attr_u64(root, "id", 1);
        spans.end(root);
        assert_eq!(spans.len(), 0);
        assert_eq!(spans.to_jsonl(), "");
        assert!(spans.closed_durations().is_empty());
        let mut fr = FlightRecorder::new(8);
        fr.note("{}".to_string());
        assert_eq!(fr.len(), 0);
        assert_eq!(fr.dump("x"), "");
        let mut r = MetricsRegistry::new();
        let q = r.quantile_histogram("a", "b");
        r.observe(q, 5);
        assert!(r.quantile_ref(q).is_none());
        assert_eq!(r.render_prometheus(), "");
    }

    #[test]
    fn disabled_api_is_inert() {
        let mut t = Telemetry::new(TelemetryConfig::default());
        t.record(1, 1, PipelineEvent::UbtbLock);
        t.gauge("a", "b", 1.0);
        t.observe_retire_gap(5);
        t.end_epoch(10, 20);
        assert!(!t.epoch_due(10_000));
        assert_eq!(t.events().recorded(), 0);
        assert_eq!(t.series().len(), 0);
        assert_eq!(t.registry().len(), 0);
        assert_eq!(t.events_jsonl(), "");
        assert_eq!(t.metrics_csv(), "");
    }
}
