//! Bounded-ring flight recorder for post-mortem dumps.
//!
//! The service feeds the recorder one pre-rendered JSONL line per
//! noteworthy moment (job submitted, attempt started, retry scheduled,
//! breaker opened, …) plus the span lines of terminating jobs. The ring
//! keeps the most recent `capacity` lines; on a trigger — watchdog trip,
//! circuit-breaker open, job failure, deadline cancel, torn-journal
//! recovery — [`FlightRecorder::dump`] snapshots the buffer into a
//! self-describing post-mortem artifact: a `{"type":"postmortem",...}`
//! header line followed by the buffered lines oldest-first.
//!
//! With the `enabled` feature off the recorder is a zero-sized no-op and
//! [`FlightRecorder::dump`] returns an empty string.

#[cfg(feature = "enabled")]
use crate::json;
#[cfg(feature = "enabled")]
use std::collections::VecDeque;

/// Default ring capacity (lines retained).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// A bounded ring of JSONL lines with drop accounting.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    #[cfg(feature = "enabled")]
    ring: VecDeque<String>,
    #[cfg(feature = "enabled")]
    capacity: usize,
    #[cfg(feature = "enabled")]
    recorded: u64,
    #[cfg(feature = "enabled")]
    dumps: u64,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` lines (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        #[cfg(feature = "enabled")]
        {
            let capacity = capacity.max(1);
            FlightRecorder {
                ring: VecDeque::with_capacity(capacity.min(1024)),
                capacity,
                recorded: 0,
                dumps: 0,
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = capacity;
            FlightRecorder::default()
        }
    }

    /// Append one JSONL line (no trailing newline), evicting the oldest
    /// line when full.
    pub fn note(&mut self, line: String) {
        #[cfg(feature = "enabled")]
        {
            if self.ring.len() == self.capacity {
                self.ring.pop_front();
            }
            self.ring.push_back(line);
            self.recorded += 1;
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = line;
        }
    }

    /// Lines currently buffered.
    pub fn len(&self) -> usize {
        #[cfg(feature = "enabled")]
        {
            self.ring.len()
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total lines ever noted.
    pub fn recorded(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.recorded
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }

    /// Lines evicted to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.recorded() - self.len() as u64
    }

    /// Dumps taken so far.
    pub fn dumps(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.dumps
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }

    /// Snapshot the ring into a post-mortem artifact: a header line
    /// `{"type":"postmortem","reason":..,"seq":..,"lines":..,
    /// "dropped":..}` followed by the buffered lines oldest-first. The
    /// ring is left intact (overlapping dumps share context). Empty
    /// string in a disabled build.
    pub fn dump(&mut self, reason: &str) -> String {
        #[cfg(feature = "enabled")]
        {
            self.dumps += 1;
            let mut out = String::new();
            out.push('{');
            json::push_key(&mut out, true, "type");
            json::push_str(&mut out, "postmortem");
            json::push_key(&mut out, false, "reason");
            json::push_str(&mut out, reason);
            json::push_key(&mut out, false, "seq");
            json::push_u64(&mut out, self.dumps);
            json::push_key(&mut out, false, "lines");
            json::push_u64(&mut out, self.ring.len() as u64);
            json::push_key(&mut out, false, "dropped");
            json::push_u64(&mut out, self.dropped());
            out.push_str("}\n");
            for line in &self.ring {
                out.push_str(line);
                out.push('\n');
            }
            out
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = reason;
            String::new()
        }
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let mut fr = FlightRecorder::new(2);
        fr.note("{\"a\":1}".to_string());
        fr.note("{\"a\":2}".to_string());
        fr.note("{\"a\":3}".to_string());
        assert_eq!(fr.len(), 2);
        assert_eq!(fr.recorded(), 3);
        assert_eq!(fr.dropped(), 1);
        let dump = fr.dump("test");
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"type\":\"postmortem\""));
        assert!(lines[0].contains("\"reason\":\"test\""));
        assert!(lines[0].contains("\"dropped\":1"));
        assert_eq!(lines[1], "{\"a\":2}");
        assert_eq!(lines[2], "{\"a\":3}");
        assert_eq!(fr.dumps(), 1);
        // The ring survives the dump.
        assert_eq!(fr.len(), 2);
    }
}
