//! Structured pipeline events and the bounded [`EventTrace`] ring.
//!
//! Events are small `Copy` records stamped with the cycle and retired
//! instruction count at which they were observed. The trace is a fixed
//! capacity ring buffer: once full, the oldest record is overwritten and
//! counted as dropped, so tracing a long run costs bounded memory.
//!
//! The event taxonomy mirrors the paper's per-generation mechanisms:
//! branch mispredicts and discoveries (§IV), µBTB lock transitions
//! (§IV.C), SHP confidence flips feeding the MRB (§IV.E), UOC
//! FilterMode/BuildMode/FetchMode transitions (§V), prefetch
//! launch/fill/drop (§VII), plus the simulator's own watchdog trips and
//! injected faults.

use crate::json;

/// Branch classification for mispredict events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchClass {
    /// Conditional direct branch.
    Cond,
    /// Unconditional direct branch.
    Direct,
    /// Indirect branch (non-return).
    Indirect,
    /// Function return.
    Return,
}

impl BranchClass {
    /// Stable lowercase tag used in serialized output.
    pub fn tag(self) -> &'static str {
        match self {
            BranchClass::Cond => "cond",
            BranchClass::Direct => "direct",
            BranchClass::Indirect => "indirect",
            BranchClass::Return => "return",
        }
    }
}

/// UOC operating mode tag (mirrors `exynos_uoc::UocMode` without a
/// dependency edge — telemetry is a base crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UocModeTag {
    /// FilterMode: observing, not caching.
    Filter,
    /// BuildMode: installing decoded µops.
    Build,
    /// FetchMode: supplying µops, decoder dark.
    Fetch,
}

impl UocModeTag {
    /// Stable lowercase tag used in serialized output.
    pub fn tag(self) -> &'static str {
        match self {
            UocModeTag::Filter => "filter",
            UocModeTag::Build => "build",
            UocModeTag::Fetch => "fetch",
        }
    }
}

/// Which prefetch engine an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchKind {
    /// L1 stride/SMS prefetch via the one-pass/two-pass delivery scheme.
    L1,
    /// L2 buddy-line prefetcher.
    Buddy,
    /// Standalone (phantom-stride) L2/L3 prefetcher.
    Standalone,
}

impl PrefetchKind {
    /// Stable lowercase tag used in serialized output.
    pub fn tag(self) -> &'static str {
        match self {
            PrefetchKind::L1 => "l1",
            PrefetchKind::Buddy => "buddy",
            PrefetchKind::Standalone => "standalone",
        }
    }
}

/// Fault-injection class (mirrors `exynos_core::fault` counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// BTB target corruption.
    BtbTarget,
    /// BTB tag corruption.
    BtbTag,
    /// SHP weight flip.
    ShpWeight,
    /// RAS truncation.
    RasTruncate,
    /// Prefetch state drop.
    PrefetchDrop,
    /// Malformed instruction injected into the trace.
    Malformed,
    /// Trace gap injected.
    TraceGap,
    /// Memory-system stall injected.
    Stall,
}

impl FaultClass {
    /// Stable lowercase tag used in serialized output.
    pub fn tag(self) -> &'static str {
        match self {
            FaultClass::BtbTarget => "btb_target",
            FaultClass::BtbTag => "btb_tag",
            FaultClass::ShpWeight => "shp_weight",
            FaultClass::RasTruncate => "ras_truncate",
            FaultClass::PrefetchDrop => "prefetch_drop",
            FaultClass::Malformed => "malformed",
            FaultClass::TraceGap => "trace_gap",
            FaultClass::Stall => "stall",
        }
    }
}

/// One structured pipeline event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PipelineEvent {
    /// A branch resolved against its prediction and missed.
    Mispredict {
        /// Branch PC.
        pc: u64,
        /// Branch classification.
        class: BranchClass,
        /// Cycle at which the redirect resolved.
        resolve_cycle: u64,
    },
    /// A taken branch was discovered (first decode-time sighting).
    BranchDiscovery {
        /// Branch PC.
        pc: u64,
    },
    /// The input trace jumped without a recorded branch.
    TraceGap {
        /// PC at the gap.
        pc: u64,
    },
    /// A predictor-corruption error was absorbed by a frontend flush.
    CorruptionRecovered {
        /// Consecutive corruption count at recovery time.
        consecutive: u64,
    },
    /// The µBTB acquired its fetch lock (zero-bubble loop mode).
    UbtbLock,
    /// The µBTB lost its fetch lock.
    UbtbUnlock,
    /// The UOC moved between Filter/Build/Fetch modes.
    UocTransition {
        /// Mode before the step.
        from: UocModeTag,
        /// Mode after the step.
        to: UocModeTag,
    },
    /// The UOC lost cached state to a watchdog/fault recovery.
    UocStateLoss,
    /// An SHP confidence counter crossed the low-confidence threshold.
    ShpConfFlip {
        /// `true` when the branch became low-confidence.
        to_low: bool,
    },
    /// A prefetch engine launched requests.
    PrefetchLaunch {
        /// Originating engine.
        kind: PrefetchKind,
        /// Lines launched this step.
        count: u64,
    },
    /// Prefetched lines were confirmed into a cache.
    PrefetchFill {
        /// Originating engine.
        kind: PrefetchKind,
        /// Lines filled this step.
        count: u64,
    },
    /// Prefetches were dropped (queue overflow or injected fault).
    PrefetchDrop {
        /// Originating engine.
        kind: PrefetchKind,
        /// Lines dropped this step.
        count: u64,
    },
    /// The forward-progress watchdog tripped.
    WatchdogTrip {
        /// Observed retirement gap in cycles.
        gap: u64,
        /// Degradation-ladder rung applied (1-based).
        rung: u64,
    },
    /// The fault injector fired.
    FaultInjected {
        /// Fault class.
        class: FaultClass,
    },
    /// A malformed instruction was observed (lenient decode).
    MalformedInst {
        /// PC of the malformed record.
        pc: u64,
    },
}

impl PipelineEvent {
    /// Stable snake_case event name used in serialized output.
    pub fn name(&self) -> &'static str {
        match self {
            PipelineEvent::Mispredict { .. } => "mispredict",
            PipelineEvent::BranchDiscovery { .. } => "branch_discovery",
            PipelineEvent::TraceGap { .. } => "trace_gap",
            PipelineEvent::CorruptionRecovered { .. } => "corruption_recovered",
            PipelineEvent::UbtbLock => "ubtb_lock",
            PipelineEvent::UbtbUnlock => "ubtb_unlock",
            PipelineEvent::UocTransition { .. } => "uoc_transition",
            PipelineEvent::UocStateLoss => "uoc_state_loss",
            PipelineEvent::ShpConfFlip { .. } => "shp_conf_flip",
            PipelineEvent::PrefetchLaunch { .. } => "prefetch_launch",
            PipelineEvent::PrefetchFill { .. } => "prefetch_fill",
            PipelineEvent::PrefetchDrop { .. } => "prefetch_drop",
            PipelineEvent::WatchdogTrip { .. } => "watchdog_trip",
            PipelineEvent::FaultInjected { .. } => "fault_injected",
            PipelineEvent::MalformedInst { .. } => "malformed_inst",
        }
    }

    /// Append this event's payload fields (if any) to a JSON object under
    /// construction; every pushed field is preceded by a comma.
    fn push_fields(&self, out: &mut String) {
        match *self {
            PipelineEvent::Mispredict {
                pc,
                class,
                resolve_cycle,
            } => {
                json::push_key(out, false, "pc");
                json::push_u64(out, pc);
                json::push_key(out, false, "class");
                json::push_str(out, class.tag());
                json::push_key(out, false, "resolve_cycle");
                json::push_u64(out, resolve_cycle);
            }
            PipelineEvent::BranchDiscovery { pc }
            | PipelineEvent::TraceGap { pc }
            | PipelineEvent::MalformedInst { pc } => {
                json::push_key(out, false, "pc");
                json::push_u64(out, pc);
            }
            PipelineEvent::CorruptionRecovered { consecutive } => {
                json::push_key(out, false, "consecutive");
                json::push_u64(out, consecutive);
            }
            PipelineEvent::UbtbLock | PipelineEvent::UbtbUnlock | PipelineEvent::UocStateLoss => {}
            PipelineEvent::UocTransition { from, to } => {
                json::push_key(out, false, "from");
                json::push_str(out, from.tag());
                json::push_key(out, false, "to");
                json::push_str(out, to.tag());
            }
            PipelineEvent::ShpConfFlip { to_low } => {
                json::push_key(out, false, "to_low");
                out.push_str(if to_low { "true" } else { "false" });
            }
            PipelineEvent::PrefetchLaunch { kind, count }
            | PipelineEvent::PrefetchFill { kind, count }
            | PipelineEvent::PrefetchDrop { kind, count } => {
                json::push_key(out, false, "kind");
                json::push_str(out, kind.tag());
                json::push_key(out, false, "count");
                json::push_u64(out, count);
            }
            PipelineEvent::WatchdogTrip { gap, rung } => {
                json::push_key(out, false, "gap");
                json::push_u64(out, gap);
                json::push_key(out, false, "rung");
                json::push_u64(out, rung);
            }
            PipelineEvent::FaultInjected { class } => {
                json::push_key(out, false, "class");
                json::push_str(out, class.tag());
            }
        }
    }
}

/// One trace entry: an event plus its position in the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventRecord {
    /// Global sequence number (0-based, counts every recorded event
    /// including ones later overwritten in the ring).
    pub seq: u64,
    /// Cycle timestamp (the step's retirement cycle; non-decreasing).
    pub cycle: u64,
    /// Retired-instruction count when the event was recorded.
    pub instr: u64,
    /// The event payload.
    pub event: PipelineEvent,
}

impl EventRecord {
    /// Serialize this record as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        out.push('{');
        json::push_key(out, true, "type");
        json::push_str(out, "event");
        json::push_key(out, false, "seq");
        json::push_u64(out, self.seq);
        json::push_key(out, false, "cycle");
        json::push_u64(out, self.cycle);
        json::push_key(out, false, "instr");
        json::push_u64(out, self.instr);
        json::push_key(out, false, "event");
        json::push_str(out, self.event.name());
        self.event.push_fields(out);
        out.push('}');
    }
}

/// Bounded ring buffer of [`EventRecord`]s.
#[derive(Debug, Clone, Default)]
pub struct EventTrace {
    #[cfg(feature = "enabled")]
    ring: Vec<EventRecord>,
    #[cfg(feature = "enabled")]
    capacity: usize,
    #[cfg(feature = "enabled")]
    head: usize,
    #[cfg(feature = "enabled")]
    recorded: u64,
}

impl EventTrace {
    /// A trace retaining at most `capacity` records (clamped to ≥ 1).
    pub fn new(capacity: usize) -> EventTrace {
        #[cfg(feature = "enabled")]
        {
            EventTrace {
                ring: Vec::new(),
                capacity: capacity.max(1),
                head: 0,
                recorded: 0,
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = capacity;
            EventTrace::default()
        }
    }

    /// Record one event; overwrites the oldest record when full.
    #[inline]
    pub fn record(&mut self, cycle: u64, instr: u64, event: PipelineEvent) {
        #[cfg(feature = "enabled")]
        {
            let rec = EventRecord {
                seq: self.recorded,
                cycle,
                instr,
                event,
            };
            if self.ring.len() < self.capacity {
                self.ring.push(rec);
            } else {
                self.ring[self.head] = rec;
                self.head += 1;
                if self.head == self.capacity {
                    self.head = 0;
                }
            }
            self.recorded += 1;
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (cycle, instr, event);
        }
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        #[cfg(feature = "enabled")]
        {
            self.ring.len()
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.recorded
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }

    /// Events lost to ring overwrite.
    pub fn dropped(&self) -> u64 {
        self.recorded() - self.len() as u64
    }

    /// Visit retained records oldest → newest.
    pub fn for_each(&self, f: &mut dyn FnMut(&EventRecord)) {
        #[cfg(feature = "enabled")]
        {
            for r in &self.ring[self.head..] {
                f(r);
            }
            for r in &self.ring[..self.head] {
                f(r);
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = f;
        }
    }

    /// Serialize retained records as JSON Lines (oldest first).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        self.for_each(&mut |r| {
            r.write_json(&mut out);
            out.push('\n');
        });
        out
    }

    /// Count retained records per event name, in first-seen order.
    pub fn counts_by_name(&self) -> Vec<(&'static str, u64)> {
        let mut counts: Vec<(&'static str, u64)> = Vec::new();
        self.for_each(&mut |r| {
            let name = r.event.name();
            match counts.iter_mut().find(|(n, _)| *n == name) {
                Some((_, c)) => *c += 1,
                None => counts.push((name, 1)),
            }
        });
        counts
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest() {
        let mut t = EventTrace::new(3);
        for i in 0..5u64 {
            t.record(i * 10, i, PipelineEvent::BranchDiscovery { pc: i });
        }
        assert_eq!(t.recorded(), 5);
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let mut seqs = Vec::new();
        t.for_each(&mut |r| seqs.push(r.seq));
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn jsonl_shape() {
        let mut t = EventTrace::new(8);
        t.record(
            5,
            1,
            PipelineEvent::Mispredict {
                pc: 0x40,
                class: BranchClass::Cond,
                resolve_cycle: 9,
            },
        );
        t.record(
            9,
            2,
            PipelineEvent::UocTransition {
                from: UocModeTag::Filter,
                to: UocModeTag::Build,
            },
        );
        let s = t.to_jsonl();
        let mut lines = s.lines();
        assert_eq!(
            lines.next(),
            Some(
                "{\"type\":\"event\",\"seq\":0,\"cycle\":5,\"instr\":1,\"event\":\"mispredict\",\
                 \"pc\":64,\"class\":\"cond\",\"resolve_cycle\":9}"
            )
        );
        assert_eq!(
            lines.next(),
            Some(
                "{\"type\":\"event\",\"seq\":1,\"cycle\":9,\"instr\":2,\
                 \"event\":\"uoc_transition\",\"from\":\"filter\",\"to\":\"build\"}"
            )
        );
        assert_eq!(t.counts_by_name(), vec![("mispredict", 1), ("uoc_transition", 1)]);
    }
}
