//! Typed metric primitives: [`Counter`], [`Gauge`], and fixed-bucket
//! [`Histogram`].
//!
//! These are plain value types; feature gating happens one level up (the
//! [`crate::MetricsRegistry`] that owns them compiles to a zero-sized
//! no-op when the `enabled` feature is off, so none of these are ever
//! constructed in a disabled build). The histogram uses a fixed inline
//! bucket array so the observe path never allocates.

/// Discriminator for registry slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing integer (registered from `*Stats` fields).
    Counter,
    /// Point-in-time floating value (rates, occupancies, averages).
    Gauge,
    /// Fixed-bucket distribution of integer samples.
    Histogram,
    /// Log-bucketed distribution with bounded-error quantiles
    /// ([`crate::QuantileHistogram`]).
    Quantile,
}

/// A monotonically increasing integer metric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    total: u64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add `by` to the running total.
    #[inline]
    pub fn add(&mut self, by: u64) {
        self.total = self.total.wrapping_add(by);
    }

    /// Overwrite the total (used when mirroring a cumulative `*Stats`
    /// field into the registry).
    #[inline]
    pub fn set(&mut self, total: u64) {
        self.total = total;
    }

    /// Current total.
    #[inline]
    pub fn get(&self) -> u64 {
        self.total
    }
}

/// A point-in-time floating-point metric.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Gauge {
    value: f64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&mut self, value: f64) {
        self.value = value;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        self.value
    }
}

/// Maximum number of finite bucket bounds a [`Histogram`] supports.
pub const MAX_BUCKETS: usize = 16;

/// Inclusive upper bounds for load-latency distributions (cycles).
pub const LATENCY_BUCKETS: &[u64] = &[
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 16384, 65536,
];

/// Inclusive upper bounds for retirement-gap distributions (cycles
/// between consecutive retires; large gaps flag stalls / watchdog risk).
pub const GAP_BUCKETS: &[u64] = &[0, 1, 2, 4, 8, 16, 32, 64, 256, 1024, 8192, 65536];

/// A fixed-bucket histogram of `u64` samples.
///
/// Bounds are inclusive upper edges in ascending order; one extra
/// overflow bucket catches samples above the last bound. The sample path
/// is a short linear scan over at most [`MAX_BUCKETS`] bounds and never
/// allocates.
#[derive(Debug, Clone, Copy)]
pub struct Histogram {
    bounds: &'static [u64],
    counts: [u64; MAX_BUCKETS + 1],
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// A histogram over `bounds` (ascending inclusive upper edges, at
    /// most [`MAX_BUCKETS`] entries; excess bounds are ignored).
    pub fn new(bounds: &'static [u64]) -> Histogram {
        let bounds = if bounds.len() > MAX_BUCKETS {
            &bounds[..MAX_BUCKETS]
        } else {
            bounds
        };
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds,
            counts: [0; MAX_BUCKETS + 1],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        let mut i = 0;
        while i < self.bounds.len() && v > self.bounds[i] {
            i += 1;
        }
        self.counts[i] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (wrapping).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0.0 before any samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The configured bucket bounds.
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Count in bucket `i` (`i == bounds().len()` is the overflow
    /// bucket); zero out of range.
    pub fn bucket(&self, i: usize) -> u64 {
        self.counts.get(i).copied().unwrap_or(0)
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0..=1.0`); `u64::MAX` when it lands in the overflow bucket,
    /// 0 before any samples.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let rank = rank.max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate().take(self.bounds.len() + 1) {
            seen += c;
            if seen >= rank {
                return if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    u64::MAX
                };
            }
        }
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.add(3);
        c.add(4);
        assert_eq!(c.get(), 7);
        c.set(100);
        assert_eq!(c.get(), 100);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(&[1, 2, 4, 8]);
        for v in [0, 1, 1, 2, 3, 5, 9, 100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.max(), 100);
        assert_eq!(h.bucket(0), 3); // 0, 1, 1
        assert_eq!(h.bucket(1), 1); // 2
        assert_eq!(h.bucket(2), 1); // 3
        assert_eq!(h.bucket(3), 1); // 5
        assert_eq!(h.bucket(4), 2); // 9, 100 overflow
        assert_eq!(h.quantile(0.5), 2);
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert!((h.mean() - 121.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_of_empty_is_zero() {
        let h = Histogram::new(LATENCY_BUCKETS);
        assert_eq!(h.quantile(0.99), 0);
    }
}
