//! Deterministic micro-architectural fault injection.
//!
//! A [`FaultInjector`] attached to a [`crate::sim::Simulator`] corrupts
//! machine state mid-slice on a fixed schedule: BTB targets and tags, SHP
//! perceptron weights, RAS depth, pending prefetch confirmations, and the
//! trace stream itself (malformed records, discontinuity gaps). Everything
//! is seeded and step-counted — no wall clock anywhere — so a faulting run
//! replays bit-identically, which is what makes robustness regressions
//! debuggable.
//!
//! The injector never *reports* faults through a side channel: its only
//! output is the mutated machine state, so a run that survives injection
//! proves the recovery paths (detection in the predictors, the watchdog
//! ladder in the retire stage) rather than the test harness.

use crate::error::SimError;

/// Probability-based injection surface: per-instruction firing rates in
/// `[0, 1]` per fault class, converted to the period schedule of a
/// [`FaultPlan`] by [`FaultPlan::from_rates`] (with validation — an
/// out-of-range rate is a typed [`SimError::Config`], never a clamp).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Seed for the per-fault salt stream.
    pub seed: u64,
    /// P(corrupt a resident mBTB target) per instruction.
    pub corrupt_btb_target: f64,
    /// P(corrupt a resident mBTB entry tag) per instruction.
    pub corrupt_btb_tag: f64,
    /// P(flip one SHP perceptron weight) per instruction.
    pub flip_shp_weight: f64,
    /// P(truncate the return-address stack) per instruction.
    pub truncate_ras: f64,
    /// P(drop pending prefetch confirmations) per instruction.
    pub drop_prefetch: f64,
    /// P(malform the trace record) per instruction.
    pub malform_inst: f64,
    /// P(warp the PC into a discontinuity gap) per instruction.
    pub gap_inst: f64,
    /// P(stall this instruction's completion) per instruction.
    pub stall: f64,
    /// Stall magnitude in cycles when the stall class fires.
    pub stall_cycles: u64,
}

impl FaultRates {
    /// All-zero rates (fires nothing) under `seed`.
    pub fn none(seed: u64) -> FaultRates {
        FaultRates {
            seed,
            corrupt_btb_target: 0.0,
            corrupt_btb_tag: 0.0,
            flip_shp_weight: 0.0,
            truncate_ras: 0.0,
            drop_prefetch: 0.0,
            malform_inst: 0.0,
            gap_inst: 0.0,
            stall: 0.0,
            stall_cycles: 0,
        }
    }
}

/// Injection schedule: each `*_every` field fires that fault class once
/// per that many simulated instructions (0 disables the class).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the per-fault salt stream.
    pub seed: u64,
    /// Silently corrupt a resident mBTB target (recoverable by
    /// retraining; mispredict-visible only).
    pub corrupt_btb_target_every: u64,
    /// Corrupt a resident mBTB entry tag (detectable: the lookup's
    /// tag/line invariant trips and reports a `PredictorError`).
    pub corrupt_btb_tag_every: u64,
    /// Flip one SHP perceptron weight to its negation.
    pub flip_shp_weight_every: u64,
    /// Truncate the return-address stack to at most one entry.
    pub truncate_ras_every: u64,
    /// Drop all pending prefetch confirmations and stream training.
    pub drop_prefetch_every: u64,
    /// Strip the memory operand from (or retype to) a load, producing a
    /// malformed trace record.
    pub malform_inst_every: u64,
    /// Warp one instruction's PC, producing a trace-discontinuity gap.
    pub gap_inst_every: u64,
    /// Add `stall_cycles` to an instruction's completion time (wedges the
    /// retire stage; exercises the forward-progress watchdog).
    pub stall_every: u64,
    /// Stall magnitude in cycles for `stall_every` firings.
    pub stall_cycles: u64,
}

impl FaultPlan {
    /// A plan that never fires (attachable placeholder).
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            corrupt_btb_target_every: 0,
            corrupt_btb_tag_every: 0,
            flip_shp_weight_every: 0,
            truncate_ras_every: 0,
            drop_prefetch_every: 0,
            malform_inst_every: 0,
            gap_inst_every: 0,
            stall_every: 0,
            stall_cycles: 0,
        }
    }

    /// Derive a period schedule from per-instruction probabilities. Each
    /// rate must be a finite value in `[0, 1]`; anything else is a typed
    /// [`SimError::Config`] — never a silent clamp — because a clamped
    /// fault rate silently changes what a robustness experiment measures.
    /// A rate `p > 0` becomes the period `max(1, round(1/p))`; `p == 0`
    /// disables the class.
    pub fn from_rates(rates: &FaultRates) -> Result<FaultPlan, SimError> {
        let period = |param: &'static str, p: f64| -> Result<u64, SimError> {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(SimError::Config {
                    param,
                    detail: format!("fault rate {p} not a probability in [0, 1]"),
                });
            }
            if p == 0.0 {
                Ok(0)
            } else {
                Ok(((1.0 / p).round() as u64).max(1))
            }
        };
        let stall_every = period("fault.stall", rates.stall)?;
        if stall_every != 0 && rates.stall_cycles == 0 {
            return Err(SimError::Config {
                param: "fault.stall_cycles",
                detail: format!(
                    "stall rate {} needs a non-zero stall magnitude",
                    rates.stall
                ),
            });
        }
        Ok(FaultPlan {
            seed: rates.seed,
            corrupt_btb_target_every: period("fault.corrupt_btb_target", rates.corrupt_btb_target)?,
            corrupt_btb_tag_every: period("fault.corrupt_btb_tag", rates.corrupt_btb_tag)?,
            flip_shp_weight_every: period("fault.flip_shp_weight", rates.flip_shp_weight)?,
            truncate_ras_every: period("fault.truncate_ras", rates.truncate_ras)?,
            drop_prefetch_every: period("fault.drop_prefetch", rates.drop_prefetch)?,
            malform_inst_every: period("fault.malform_inst", rates.malform_inst)?,
            gap_inst_every: period("fault.gap_inst", rates.gap_inst)?,
            stall_every,
            stall_cycles: rates.stall_cycles,
        })
    }

    /// Construction-time consistency check for an explicit plan: the two
    /// stall knobs must agree (a period with no magnitude fires nothing;
    /// a magnitude with no period never fires — both are almost always a
    /// mis-specified experiment).
    pub fn validate(&self) -> Result<(), SimError> {
        if self.stall_every != 0 && self.stall_cycles == 0 {
            return Err(SimError::Config {
                param: "fault.stall_cycles",
                detail: format!(
                    "stall_every = {} with stall_cycles = 0 injects nothing",
                    self.stall_every
                ),
            });
        }
        if self.stall_cycles != 0 && self.stall_every == 0 {
            return Err(SimError::Config {
                param: "fault.stall_every",
                detail: format!(
                    "stall_cycles = {} with stall_every = 0 never fires",
                    self.stall_cycles
                ),
            });
        }
        Ok(())
    }

    /// Every non-stall fault class firing on co-prime prime periods, so a
    /// few-hundred-kiloinstruction slice sees every class many times and
    /// most pairwise combinations at least once.
    pub fn chaos(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            corrupt_btb_target_every: 1_031,
            corrupt_btb_tag_every: 4_099,
            flip_shp_weight_every: 509,
            truncate_ras_every: 2_053,
            drop_prefetch_every: 1_543,
            malform_inst_every: 769,
            gap_inst_every: 3_071,
            stall_every: 0,
            stall_cycles: 0,
        }
    }
}

/// Count of injections performed, per fault class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// BTB target corruptions attempted.
    pub btb_targets: u64,
    /// BTB tag corruptions attempted.
    pub btb_tags: u64,
    /// SHP weight flips.
    pub shp_flips: u64,
    /// RAS truncations.
    pub ras_truncations: u64,
    /// Prefetch confirmation drops.
    pub prefetch_drops: u64,
    /// Malformed trace records emitted.
    pub malformed: u64,
    /// Trace gaps emitted.
    pub gaps: u64,
    /// Completion stalls injected.
    pub stalls: u64,
}

impl FaultStats {
    /// Total injections across all classes.
    pub fn total(&self) -> u64 {
        self.btb_targets
            + self.btb_tags
            + self.shp_flips
            + self.ras_truncations
            + self.prefetch_drops
            + self.malformed
            + self.gaps
            + self.stalls
    }
}

/// What fired on one `tick`: the simulator applies each component to the
/// matching subsystem. Salts carry the per-firing random payload.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultFiring {
    /// Corrupt a BTB target using this salt.
    pub corrupt_btb_target: Option<u64>,
    /// Corrupt a BTB tag using this salt.
    pub corrupt_btb_tag: Option<u64>,
    /// Flip the SHP weight indexed by this salt.
    pub flip_shp_weight: Option<u64>,
    /// Truncate the RAS to this depth.
    pub truncate_ras: Option<usize>,
    /// Drop pending prefetch state.
    pub drop_prefetch: bool,
    /// Malform this instruction's record.
    pub malform_inst: bool,
    /// Warp this instruction's PC into a trace gap.
    pub gap_inst: bool,
    /// Extra cycles to add to this instruction's completion.
    pub stall_cycles: u64,
}

/// The stateful injector: a [`FaultPlan`] plus a SplitMix64 salt stream
/// and an instruction counter.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: u64,
    step: u64,
    stats: FaultStats,
}

impl FaultInjector {
    /// An injector executing `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            rng: plan.seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            plan,
            step: 0,
            stats: FaultStats::default(),
        }
    }

    /// Injections performed so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The plan in force.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    fn next_salt(&mut self) -> u64 {
        // SplitMix64: full-period, seedable, and cheap.
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Advance one instruction and report which fault classes fire on it.
    pub fn tick(&mut self) -> FaultFiring {
        self.step += 1;
        let step = self.step;
        let fires = |every: u64| every != 0 && step.is_multiple_of(every);
        let mut f = FaultFiring::default();
        if fires(self.plan.corrupt_btb_target_every) {
            f.corrupt_btb_target = Some(self.next_salt());
            self.stats.btb_targets += 1;
        }
        if fires(self.plan.corrupt_btb_tag_every) {
            f.corrupt_btb_tag = Some(self.next_salt());
            self.stats.btb_tags += 1;
        }
        if fires(self.plan.flip_shp_weight_every) {
            f.flip_shp_weight = Some(self.next_salt());
            self.stats.shp_flips += 1;
        }
        if fires(self.plan.truncate_ras_every) {
            f.truncate_ras = Some((self.next_salt() % 2) as usize);
            self.stats.ras_truncations += 1;
        }
        if fires(self.plan.drop_prefetch_every) {
            f.drop_prefetch = true;
            self.stats.prefetch_drops += 1;
        }
        if fires(self.plan.malform_inst_every) {
            f.malform_inst = true;
            self.stats.malformed += 1;
        }
        if fires(self.plan.gap_inst_every) {
            f.gap_inst = true;
            self.stats.gaps += 1;
        }
        if fires(self.plan.stall_every) {
            f.stall_cycles = self.plan.stall_cycles;
            self.stats.stalls += 1;
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fires() {
        let mut inj = FaultInjector::new(FaultPlan::none());
        for _ in 0..10_000 {
            let f = inj.tick();
            assert!(f.corrupt_btb_target.is_none());
            assert!(!f.malform_inst && !f.gap_inst && !f.drop_prefetch);
            assert_eq!(f.stall_cycles, 0);
        }
        assert_eq!(inj.stats().total(), 0);
    }

    #[test]
    fn chaos_fires_every_class_and_is_deterministic() {
        let run = |seed| {
            let mut inj = FaultInjector::new(FaultPlan::chaos(seed));
            let mut salts = Vec::new();
            for _ in 0..100_000 {
                let f = inj.tick();
                if let Some(s) = f.corrupt_btb_target {
                    salts.push(s);
                }
            }
            (inj.stats(), salts)
        };
        let (s1, salts1) = run(7);
        let (s2, salts2) = run(7);
        assert_eq!(s1, s2);
        assert_eq!(salts1, salts2);
        assert!(s1.btb_targets > 0 && s1.btb_tags > 0 && s1.shp_flips > 0);
        assert!(s1.ras_truncations > 0 && s1.prefetch_drops > 0);
        assert!(s1.malformed > 0 && s1.gaps > 0);
        assert_eq!(s1.stalls, 0, "chaos leaves the stall knob off");
        // A different seed produces a different salt stream.
        let (_, salts3) = run(8);
        assert_ne!(salts1, salts3);
    }

    #[test]
    fn rates_convert_to_rounded_periods() {
        let mut r = FaultRates::none(9);
        r.malform_inst = 0.01;
        r.gap_inst = 1.0;
        let plan = FaultPlan::from_rates(&r).unwrap();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.malform_inst_every, 100);
        assert_eq!(plan.gap_inst_every, 1);
        assert_eq!(plan.corrupt_btb_target_every, 0, "zero rate disables the class");
        assert_eq!(plan.stall_every, 0);
    }

    #[test]
    fn out_of_range_rates_are_typed_errors_not_clamps() {
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let mut r = FaultRates::none(0);
            r.flip_shp_weight = bad;
            match FaultPlan::from_rates(&r) {
                Err(SimError::Config { param, .. }) => {
                    assert_eq!(param, "fault.flip_shp_weight")
                }
                other => panic!("rate {bad} must be rejected, got {other:?}"),
            }
        }
    }

    #[test]
    fn stall_rate_without_magnitude_is_rejected() {
        let mut r = FaultRates::none(0);
        r.stall = 0.5;
        assert!(matches!(
            FaultPlan::from_rates(&r),
            Err(SimError::Config { param: "fault.stall_cycles", .. })
        ));
        r.stall_cycles = 10;
        assert!(FaultPlan::from_rates(&r).is_ok());
    }

    #[test]
    fn plan_validate_catches_inconsistent_stall_knobs() {
        assert!(FaultPlan::none().validate().is_ok());
        assert!(FaultPlan::chaos(1).validate().is_ok());
        let mut p = FaultPlan::none();
        p.stall_every = 100;
        assert!(matches!(
            p.validate(),
            Err(SimError::Config { param: "fault.stall_cycles", .. })
        ));
        let mut p = FaultPlan::none();
        p.stall_cycles = 100;
        assert!(matches!(
            p.validate(),
            Err(SimError::Config { param: "fault.stall_every", .. })
        ));
    }

    #[test]
    fn stall_knob_fires_on_schedule() {
        let mut plan = FaultPlan::none();
        plan.stall_every = 100;
        plan.stall_cycles = 99_999;
        let mut inj = FaultInjector::new(plan);
        let mut fired = 0;
        for _ in 0..1_000 {
            if inj.tick().stall_cycles > 0 {
                fired += 1;
            }
        }
        assert_eq!(fired, 10);
        assert_eq!(inj.stats().stalls, 10);
    }
}

mod snapshot_impl {
    use super::*;
    use exynos_snapshot::{tags, Decoder, Encoder, Snapshot, SnapshotError};

    impl Snapshot for FaultInjector {
        fn save(&self, enc: &mut Encoder) {
            enc.begin_section(tags::FAULT_INJECTOR);
            enc.u64(self.plan.seed);
            enc.u64(self.plan.corrupt_btb_target_every);
            enc.u64(self.plan.corrupt_btb_tag_every);
            enc.u64(self.plan.flip_shp_weight_every);
            enc.u64(self.plan.truncate_ras_every);
            enc.u64(self.plan.drop_prefetch_every);
            enc.u64(self.plan.malform_inst_every);
            enc.u64(self.plan.gap_inst_every);
            enc.u64(self.plan.stall_every);
            enc.u64(self.plan.stall_cycles);
            enc.u64(self.rng);
            enc.u64(self.step);
            enc.u64(self.stats.btb_targets);
            enc.u64(self.stats.btb_tags);
            enc.u64(self.stats.shp_flips);
            enc.u64(self.stats.ras_truncations);
            enc.u64(self.stats.prefetch_drops);
            enc.u64(self.stats.malformed);
            enc.u64(self.stats.gaps);
            enc.u64(self.stats.stalls);
            enc.end_section();
        }

        fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), SnapshotError> {
            dec.begin_section(tags::FAULT_INJECTOR)?;
            self.plan.seed = dec.u64()?;
            self.plan.corrupt_btb_target_every = dec.u64()?;
            self.plan.corrupt_btb_tag_every = dec.u64()?;
            self.plan.flip_shp_weight_every = dec.u64()?;
            self.plan.truncate_ras_every = dec.u64()?;
            self.plan.drop_prefetch_every = dec.u64()?;
            self.plan.malform_inst_every = dec.u64()?;
            self.plan.gap_inst_every = dec.u64()?;
            self.plan.stall_every = dec.u64()?;
            self.plan.stall_cycles = dec.u64()?;
            self.rng = dec.u64()?;
            self.step = dec.u64()?;
            self.stats.btb_targets = dec.u64()?;
            self.stats.btb_tags = dec.u64()?;
            self.stats.shp_flips = dec.u64()?;
            self.stats.ras_truncations = dec.u64()?;
            self.stats.prefetch_drops = dec.u64()?;
            self.stats.malformed = dec.u64()?;
            self.stats.gaps = dec.u64()?;
            self.stats.stalls = dec.u64()?;
            dec.end_section()
        }
    }
}
