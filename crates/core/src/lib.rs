//! # exynos-core — the six-generation Exynos core timing model
//!
//! Composes every subsystem of the reproduction into a runnable,
//! trace-driven simulator:
//!
//! * [`config`] — Table I per-generation configurations (M1–M6);
//! * [`memsys`] — L1/L2/exclusive-L3/DRAM with all prefetchers (§VII–IX);
//! * [`ports`] — execution-port scheduling;
//! * [`sim`] — the out-of-order timing model and slice runner;
//! * [`batch`] — shared decoded-trace chunks for batched lockstep
//!   sweeps ([`InstChunk`]);
//! * [`builder`] — [`SimBuilder`], the validated construction path, plus
//!   checkpoint/resume via [`Simulator::checkpoint`] /
//!   [`Simulator::resume`];
//! * [`error`] — the typed failure model ([`SimError`], occupancy
//!   snapshots) shared by every layer;
//! * [`fault`] — the deterministic fault-injection harness;
//! * [`cancel`] — cooperative cancellation tokens (deadlines) polled by
//!   the step loop.
//!
//! ## Example
//!
//! ```
//! use exynos_core::builder::SimBuilder;
//! use exynos_core::config::Generation;
//! use exynos_trace::gen::loops::{LoopNest, LoopNestParams};
//! use exynos_trace::SlicePlan;
//!
//! let mut sim = SimBuilder::generation(Generation::M5).build().unwrap();
//! let mut gen = LoopNest::new(&LoopNestParams::default(), 0, 1);
//! let result = sim
//!     .run_slice(&mut gen, SlicePlan::new(2_000, 10_000))
//!     .expect("clean trace, no injected faults");
//! assert!(result.ipc > 0.5);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod builder;
pub mod cancel;
pub mod config;
pub mod error;
pub mod fault;
pub mod memsys;
pub mod observe;
pub mod ports;
pub mod sim;

pub use builder::SimBuilder;
pub use cancel::CancelToken;
pub use config::{CoreConfig, Generation};
pub use error::{OccupancySnapshot, SimError};
pub use fault::{FaultInjector, FaultPlan, FaultRates, FaultStats};
pub use memsys::{MemStats, MemSystem};
pub use batch::{InstChunk, CHUNK_LEN};
pub use sim::{run_slice_on, SimStats, Simulator, SliceMeasure, SliceResult, WatchdogTrip};
