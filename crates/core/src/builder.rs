//! The one construction path for simulators.
//!
//! [`SimBuilder`] replaces the scattered "make a `CoreConfig`, call
//! `Simulator::new`, then remember to call `attach_fault_injector` /
//! `set_watchdog` / `set_strict_decode` in the right order" plumbing
//! with a single fluent chain:
//!
//! ```
//! use exynos_core::builder::SimBuilder;
//! use exynos_core::config::Generation;
//! use exynos_core::fault::FaultPlan;
//!
//! let sim = SimBuilder::generation(Generation::M6)
//!     .threads(8)
//!     .fault_profile(FaultPlan::chaos(7))
//!     .build()
//!     .unwrap();
//! assert_eq!(sim.config().gen, Generation::M6);
//! ```
//!
//! The builder validates the configuration before constructing anything,
//! so an impossible machine (zero-width decode, empty ROB) is a typed
//! [`SimError`] instead of a downstream panic or a silent hang.

use crate::config::{CoreConfig, Generation};
use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::sim::Simulator;
use exynos_telemetry::{Telemetry, TelemetryConfig};

/// Fluent simulator construction; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct SimBuilder {
    cfg: CoreConfig,
    fault: Option<FaultPlan>,
    watchdog: Option<(u64, u32)>,
    strict_decode: bool,
    threads: Option<usize>,
    telemetry: Option<TelemetryConfig>,
}

impl SimBuilder {
    /// Start from the stock configuration of `gen` (Table I).
    pub fn generation(gen: Generation) -> SimBuilder {
        SimBuilder::config(CoreConfig::for_generation(gen))
    }

    /// Start from an explicit (possibly customized) configuration.
    pub fn config(cfg: CoreConfig) -> SimBuilder {
        SimBuilder {
            cfg,
            fault: None,
            watchdog: None,
            strict_decode: false,
            threads: None,
            telemetry: None,
        }
    }

    /// Attach a deterministic fault-injection plan to the built simulator.
    #[must_use]
    pub fn fault_profile(mut self, plan: FaultPlan) -> SimBuilder {
        self.fault = Some(plan);
        self
    }

    /// Reconfigure the forward-progress watchdog (retirement-gap trigger
    /// in cycles, degradation rungs before erroring out).
    #[must_use]
    pub fn watchdog(mut self, threshold: u64, max_recoveries: u32) -> SimBuilder {
        self.watchdog = Some((threshold, max_recoveries));
        self
    }

    /// Strict trace decode: malformed records end the run with a typed
    /// error instead of being counted and skipped.
    #[must_use]
    pub fn strict_decode(mut self, strict: bool) -> SimBuilder {
        self.strict_decode = strict;
        self
    }

    /// Worker-thread budget carried to sweep helpers (the simulator
    /// itself is single-threaded; population sweeps read this).
    #[must_use]
    pub fn threads(mut self, n: usize) -> SimBuilder {
        self.threads = Some(n.max(1));
        self
    }

    /// Telemetry sink configuration for [`SimBuilder::build_instrumented`].
    #[must_use]
    pub fn telemetry(mut self, cfg: TelemetryConfig) -> SimBuilder {
        self.telemetry = Some(cfg);
        self
    }

    /// The thread budget, defaulting to 1 when unset.
    pub fn thread_count(&self) -> usize {
        self.threads.unwrap_or(1)
    }

    /// The configuration the built simulator will use.
    pub fn config_ref(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Validate the configuration and construct the simulator.
    pub fn build(self) -> Result<Simulator, SimError> {
        self.validate()?;
        let SimBuilder { cfg, fault, watchdog, strict_decode, .. } = self;
        let mut sim = Simulator::construct(cfg);
        if let Some(plan) = fault {
            sim.attach_fault_injector(plan);
        }
        if let Some((threshold, rungs)) = watchdog {
            sim.set_watchdog(threshold, rungs);
        }
        sim.set_strict_decode(strict_decode);
        Ok(sim)
    }

    /// [`build`](SimBuilder::build) plus a [`Telemetry`] sink configured
    /// by [`SimBuilder::telemetry`] (default configuration when unset).
    pub fn build_instrumented(self) -> Result<(Simulator, Telemetry), SimError> {
        let tel = Telemetry::new(self.telemetry.clone().unwrap_or_default());
        Ok((self.build()?, tel))
    }

    fn validate(&self) -> Result<(), SimError> {
        let cfg = &self.cfg;
        if cfg.width == 0 {
            return Err(SimError::ResourceInvariant {
                resource: "decode",
                detail: "zero-wide machine".into(),
            });
        }
        if cfg.rob == 0 {
            return Err(SimError::ResourceInvariant {
                resource: "rob",
                detail: "zero-entry reorder buffer".into(),
            });
        }
        // The decode-depth derivation subtracts 5 from the mispredict
        // latency; anything at or below that is not a pipeline.
        if cfg.lat.mispredict <= 5 {
            return Err(SimError::ResourceInvariant {
                resource: "pipeline",
                detail: format!("mispredict latency {} too short", cfg.lat.mispredict),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_applies_every_option() {
        let sim = SimBuilder::generation(Generation::M5)
            .fault_profile(FaultPlan::chaos(3))
            .watchdog(10_000, 2)
            .strict_decode(true)
            .threads(4)
            .build()
            .unwrap();
        assert_eq!(sim.config().gen, Generation::M5);
        assert!(sim.fault_stats().is_some());
    }

    #[test]
    fn builder_rejects_impossible_machines() {
        let mut cfg = CoreConfig::m1();
        cfg.width = 0;
        assert!(matches!(
            SimBuilder::config(cfg).build(),
            Err(SimError::ResourceInvariant { resource: "decode", .. })
        ));

        let mut cfg = CoreConfig::m1();
        cfg.rob = 0;
        assert!(matches!(
            SimBuilder::config(cfg).build(),
            Err(SimError::ResourceInvariant { resource: "rob", .. })
        ));
    }

    #[test]
    fn thread_count_defaults_to_one() {
        assert_eq!(SimBuilder::generation(Generation::M1).thread_count(), 1);
        assert_eq!(
            SimBuilder::generation(Generation::M1).threads(0).thread_count(),
            1
        );
    }
}
