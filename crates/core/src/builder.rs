//! The one construction path for simulators.
//!
//! [`SimBuilder`] replaces the scattered "make a `CoreConfig`, call
//! `Simulator::new`, then remember to call `attach_fault_injector` /
//! `set_watchdog` / `set_strict_decode` in the right order" plumbing
//! with a single fluent chain:
//!
//! ```
//! use exynos_core::builder::SimBuilder;
//! use exynos_core::config::Generation;
//! use exynos_core::fault::FaultPlan;
//!
//! let sim = SimBuilder::generation(Generation::M6)
//!     .threads(8)
//!     .fault_profile(FaultPlan::chaos(7))
//!     .build()
//!     .unwrap();
//! assert_eq!(sim.config().gen, Generation::M6);
//! ```
//!
//! The builder validates the configuration before constructing anything,
//! so an impossible machine (zero-width decode, empty ROB) is a typed
//! [`SimError`] instead of a downstream panic or a silent hang.

use crate::cancel::CancelToken;
use crate::config::{CoreConfig, Generation};
use crate::error::SimError;
use crate::fault::{FaultPlan, FaultRates};
use crate::sim::Simulator;
use exynos_telemetry::{Telemetry, TelemetryConfig};

/// Fluent simulator construction; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct SimBuilder {
    cfg: CoreConfig,
    fault: Option<FaultPlan>,
    fault_rates: Option<FaultRates>,
    watchdog: Option<(u64, u32)>,
    strict_decode: bool,
    threads: Option<usize>,
    telemetry: Option<TelemetryConfig>,
    cancel: Option<CancelToken>,
}

impl SimBuilder {
    /// Start from the stock configuration of `gen` (Table I).
    pub fn generation(gen: Generation) -> SimBuilder {
        SimBuilder::config(CoreConfig::for_generation(gen))
    }

    /// Start from an explicit (possibly customized) configuration.
    pub fn config(cfg: CoreConfig) -> SimBuilder {
        SimBuilder {
            cfg,
            fault: None,
            fault_rates: None,
            watchdog: None,
            strict_decode: false,
            threads: None,
            telemetry: None,
            cancel: None,
        }
    }

    /// Attach a deterministic fault-injection plan to the built simulator.
    /// The plan's stall knobs are validated at [`build`](SimBuilder::build).
    #[must_use]
    pub fn fault_profile(mut self, plan: FaultPlan) -> SimBuilder {
        self.fault = Some(plan);
        self.fault_rates = None;
        self
    }

    /// Attach fault injection specified as per-instruction probabilities.
    /// Rates are validated at [`build`](SimBuilder::build): anything
    /// outside `[0, 1]` (or non-finite) is a typed [`SimError::Config`],
    /// never a silent clamp. Replaces any earlier
    /// [`fault_profile`](SimBuilder::fault_profile).
    #[must_use]
    pub fn fault_rates(mut self, rates: FaultRates) -> SimBuilder {
        self.fault_rates = Some(rates);
        self.fault = None;
        self
    }

    /// Attach a cooperative cancellation token polled by the step loop.
    #[must_use]
    pub fn cancel_token(mut self, token: CancelToken) -> SimBuilder {
        self.cancel = Some(token);
        self
    }

    /// Reconfigure the forward-progress watchdog (retirement-gap trigger
    /// in cycles, degradation rungs before erroring out).
    #[must_use]
    pub fn watchdog(mut self, threshold: u64, max_recoveries: u32) -> SimBuilder {
        self.watchdog = Some((threshold, max_recoveries));
        self
    }

    /// Strict trace decode: malformed records end the run with a typed
    /// error instead of being counted and skipped.
    #[must_use]
    pub fn strict_decode(mut self, strict: bool) -> SimBuilder {
        self.strict_decode = strict;
        self
    }

    /// Worker-thread budget carried to sweep helpers (the simulator
    /// itself is single-threaded; population sweeps read this).
    #[must_use]
    pub fn threads(mut self, n: usize) -> SimBuilder {
        self.threads = Some(n.max(1));
        self
    }

    /// Telemetry sink configuration for [`SimBuilder::build_instrumented`].
    #[must_use]
    pub fn telemetry(mut self, cfg: TelemetryConfig) -> SimBuilder {
        self.telemetry = Some(cfg);
        self
    }

    /// The thread budget, defaulting to 1 when unset.
    pub fn thread_count(&self) -> usize {
        self.threads.unwrap_or(1)
    }

    /// The configuration the built simulator will use.
    pub fn config_ref(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Validate the configuration and construct the simulator.
    pub fn build(self) -> Result<Simulator, SimError> {
        self.validate()?;
        let SimBuilder { cfg, fault, fault_rates, watchdog, strict_decode, cancel, .. } = self;
        let plan = match (fault, fault_rates) {
            (Some(plan), _) => Some(plan),
            (None, Some(rates)) => Some(FaultPlan::from_rates(&rates)?),
            (None, None) => None,
        };
        let mut sim = Simulator::construct(cfg);
        if let Some(plan) = plan {
            sim.attach_fault_injector(plan);
        }
        if let Some((threshold, rungs)) = watchdog {
            sim.set_watchdog(threshold, rungs);
        }
        sim.set_strict_decode(strict_decode);
        if let Some(token) = cancel {
            sim.set_cancel_token(token);
        }
        Ok(sim)
    }

    /// [`build`](SimBuilder::build) plus a [`Telemetry`] sink configured
    /// by [`SimBuilder::telemetry`] (default configuration when unset).
    pub fn build_instrumented(self) -> Result<(Simulator, Telemetry), SimError> {
        let tel = Telemetry::new(self.telemetry.clone().unwrap_or_default());
        Ok((self.build()?, tel))
    }

    fn validate(&self) -> Result<(), SimError> {
        let cfg = &self.cfg;
        if cfg.width == 0 {
            return Err(SimError::ResourceInvariant {
                resource: "decode",
                detail: "zero-wide machine".into(),
            });
        }
        if cfg.rob == 0 {
            return Err(SimError::ResourceInvariant {
                resource: "rob",
                detail: "zero-entry reorder buffer".into(),
            });
        }
        // The decode-depth derivation subtracts 5 from the mispredict
        // latency; anything at or below that is not a pipeline.
        if cfg.lat.mispredict <= 5 {
            return Err(SimError::ResourceInvariant {
                resource: "pipeline",
                detail: format!("mispredict latency {} too short", cfg.lat.mispredict),
            });
        }
        if let Some(plan) = &self.fault {
            plan.validate()?;
        }
        if let Some((threshold, _)) = self.watchdog {
            // `Simulator::set_watchdog` clamps 0 to 1 for direct callers;
            // through the validated path a zero-cycle threshold is a
            // typed error — it would trip on every single retirement.
            if threshold == 0 {
                return Err(SimError::Config {
                    param: "watchdog.threshold",
                    detail: "zero-cycle retirement-gap threshold trips on every step".into(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_applies_every_option() {
        let sim = SimBuilder::generation(Generation::M5)
            .fault_profile(FaultPlan::chaos(3))
            .watchdog(10_000, 2)
            .strict_decode(true)
            .threads(4)
            .build()
            .unwrap();
        assert_eq!(sim.config().gen, Generation::M5);
        assert!(sim.fault_stats().is_some());
    }

    #[test]
    fn builder_rejects_impossible_machines() {
        let mut cfg = CoreConfig::m1();
        cfg.width = 0;
        assert!(matches!(
            SimBuilder::config(cfg).build(),
            Err(SimError::ResourceInvariant { resource: "decode", .. })
        ));

        let mut cfg = CoreConfig::m1();
        cfg.rob = 0;
        assert!(matches!(
            SimBuilder::config(cfg).build(),
            Err(SimError::ResourceInvariant { resource: "rob", .. })
        ));
    }

    #[test]
    fn out_of_range_fault_rates_are_rejected_at_build() {
        let mut rates = FaultRates::none(1);
        rates.malform_inst = 2.0;
        match SimBuilder::generation(Generation::M3).fault_rates(rates).build() {
            Err(SimError::Config { param, .. }) => assert_eq!(param, "fault.malform_inst"),
            other => panic!("rate 2.0 must be a typed Config error, got {other:?}"),
        }
        let mut rates = FaultRates::none(1);
        rates.malform_inst = 0.01;
        let sim = SimBuilder::generation(Generation::M3).fault_rates(rates).build().unwrap();
        assert!(sim.fault_stats().is_some(), "valid rates attach an injector");
    }

    #[test]
    fn inconsistent_stall_plan_is_rejected_at_build() {
        let mut plan = FaultPlan::none();
        plan.stall_every = 50;
        assert!(matches!(
            SimBuilder::generation(Generation::M1).fault_profile(plan).build(),
            Err(SimError::Config { param: "fault.stall_cycles", .. })
        ));
    }

    #[test]
    fn zero_watchdog_threshold_is_rejected_at_build() {
        assert!(matches!(
            SimBuilder::generation(Generation::M1).watchdog(0, 3).build(),
            Err(SimError::Config { param: "watchdog.threshold", .. })
        ));
    }

    #[test]
    fn cancel_token_stops_the_built_simulator() {
        use crate::cancel::CancelToken;
        use exynos_trace::gen::loops::{LoopNest, LoopNestParams};
        use exynos_trace::SlicePlan;
        let token = CancelToken::new();
        token.cancel();
        let mut sim = SimBuilder::generation(Generation::M2)
            .cancel_token(token)
            .build()
            .unwrap();
        let mut gen = LoopNest::new(&LoopNestParams::default(), 0, 1);
        match sim.run_slice(&mut gen, SlicePlan::new(0, 10_000)) {
            Err(SimError::Cancelled { deadline, .. }) => assert!(!deadline),
            other => panic!("pre-cancelled token must stop the run: {other:?}"),
        }
    }

    #[test]
    fn thread_count_defaults_to_one() {
        assert_eq!(SimBuilder::generation(Generation::M1).thread_count(), 1);
        assert_eq!(
            SimBuilder::generation(Generation::M1).threads(0).thread_count(),
            1
        );
    }
}
