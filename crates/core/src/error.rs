//! Typed simulator errors.
//!
//! Every failure the stack can detect is reported as a [`SimError`]
//! instead of a panic, so a corrupted trace record or an injected
//! micro-architectural fault degrades a run gracefully (or ends it with a
//! diagnosable error) rather than aborting the process. Lower layers
//! surface their own typed errors — [`exynos_branch::PredictorError`],
//! [`exynos_uoc::UocError`] — and convert into [`SimError`] at the core
//! boundary via `From`.

use exynos_branch::PredictorError;
use exynos_trace::InstKind;
use exynos_uoc::{UocError, UocMode};
use std::fmt;

/// Occupancy snapshot captured when the forward-progress watchdog gives
/// up, so a wedged run reports *where* the machine was stuck.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancySnapshot {
    /// ROB entries in flight.
    pub rob: usize,
    /// Configured ROB capacity.
    pub rob_capacity: usize,
    /// Integer PRF in-flight writers.
    pub int_inflight: usize,
    /// FP PRF in-flight writers.
    pub fp_inflight: usize,
    /// Miss-address buffers in use at the stall point.
    pub mshr_occupancy: usize,
    /// Configured miss-address buffer count.
    pub mshr_capacity: usize,
    /// UOC operating mode (`None` on generations without a UOC).
    pub uoc_mode: Option<UocMode>,
    /// µops resident in the UOC.
    pub uoc_occupancy: u32,
    /// Front-end fetch cycle at the stall point.
    pub fetch_cycle: u64,
    /// Cycle of the last successful retirement.
    pub last_retire: u64,
}

impl fmt::Display for OccupancySnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rob {}/{}, int {} fp {} in flight, mshr {}/{}, uoc {}({} uops), \
             fetch@{} last-retire@{}",
            self.rob,
            self.rob_capacity,
            self.int_inflight,
            self.fp_inflight,
            self.mshr_occupancy,
            self.mshr_capacity,
            match self.uoc_mode {
                Some(m) => format!("{m:?}"),
                None => "absent".into(),
            },
            self.uoc_occupancy,
            self.fetch_cycle,
            self.last_retire,
        )
    }
}

/// Everything that can go wrong inside the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A trace record was structurally invalid (e.g. a load or store with
    /// no memory operand). Only raised in strict-decode mode; the default
    /// policy counts and skips the record.
    MalformedInst {
        /// PC of the offending record.
        pc: u64,
        /// Its functional class.
        kind: InstKind,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// A structural resource broke its occupancy invariant.
    ResourceInvariant {
        /// Which resource ("mab", "rob", ...).
        resource: &'static str,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A predictor array was found in a state it could not legally reach
    /// (tag mismatch, depth overflow, lost block state).
    PredictorCorruption {
        /// Which unit detected it ("branch", "uoc").
        unit: &'static str,
        /// PC associated with the detection, when one exists.
        pc: u64,
        /// Underlying error rendered as text.
        detail: String,
    },
    /// The retire stage made no progress for longer than the watchdog
    /// threshold and the graceful-degradation ladder was exhausted.
    ForwardProgressStall {
        /// Retirement cycle at which the stall was detected.
        cycle: u64,
        /// Length of the retirement gap in cycles.
        stalled_cycles: u64,
        /// Recovery attempts spent before giving up.
        recoveries: u32,
        /// Machine occupancy at the stall point.
        snapshot: OccupancySnapshot,
    },
    /// A checkpoint image failed to decode (bad magic, unsupported format
    /// version, truncation, geometry mismatch against the target
    /// configuration, or corrupt field encoding).
    SnapshotDecode {
        /// Underlying decode error rendered as text.
        detail: String,
    },
    /// A construction-time parameter was out of range. Raised by
    /// [`SimBuilder`](crate::builder::SimBuilder) validation (fault
    /// probabilities outside `[0, 1]`, inconsistent stall knobs, a
    /// zero-cycle watchdog threshold) and by service-layer job specs.
    Config {
        /// Which parameter was rejected.
        param: &'static str,
        /// Why it was rejected, including the offending value.
        detail: String,
    },
    /// The run was stopped by a [`CancelToken`](crate::cancel::CancelToken)
    /// before completing — either an explicit cancel or an expired
    /// deadline. The simulator remains consistent and checkpointable.
    Cancelled {
        /// Instructions retired before the cancellation was observed.
        instructions: u64,
        /// `true` when the stop came from an expired deadline rather
        /// than an explicit cancel call.
        deadline: bool,
    },
}

impl SimError {
    /// Whether a fresh attempt of the same run could plausibly succeed.
    ///
    /// Transient-by-nature failures — predictor-state corruption (the
    /// soft-error model), watchdog-exhausted stalls, and resource
    /// invariant trips — are worth retrying; a malformed trace record,
    /// a rejected checkpoint image, a bad configuration, or an explicit
    /// cancellation will fail identically every time.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            SimError::PredictorCorruption { .. }
                | SimError::ForwardProgressStall { .. }
                | SimError::ResourceInvariant { .. }
        )
    }

    /// Stable machine-readable label for the variant, used by the
    /// service protocol and journal.
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::MalformedInst { .. } => "malformed_inst",
            SimError::ResourceInvariant { .. } => "resource_invariant",
            SimError::PredictorCorruption { .. } => "predictor_corruption",
            SimError::ForwardProgressStall { .. } => "forward_progress_stall",
            SimError::SnapshotDecode { .. } => "snapshot_decode",
            SimError::Config { .. } => "config",
            SimError::Cancelled { deadline: true, .. } => "deadline",
            SimError::Cancelled { deadline: false, .. } => "cancelled",
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MalformedInst { pc, kind, reason } => {
                write!(f, "malformed {kind:?} record at {pc:#x}: {reason}")
            }
            SimError::ResourceInvariant { resource, detail } => {
                write!(f, "{resource} invariant violated: {detail}")
            }
            SimError::PredictorCorruption { unit, pc, detail } => {
                write!(f, "{unit} predictor state corrupt near {pc:#x}: {detail}")
            }
            SimError::ForwardProgressStall { cycle, stalled_cycles, recoveries, snapshot } => {
                write!(
                    f,
                    "no retirement for {stalled_cycles} cycles at cycle {cycle} \
                     after {recoveries} recoveries ({snapshot})"
                )
            }
            SimError::SnapshotDecode { detail } => {
                write!(f, "checkpoint image rejected: {detail}")
            }
            SimError::Config { param, detail } => {
                write!(f, "invalid configuration for {param}: {detail}")
            }
            SimError::Cancelled { instructions, deadline } => {
                let why = if *deadline { "deadline expired" } else { "cancelled" };
                write!(f, "run {why} after {instructions} instructions")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<PredictorError> for SimError {
    fn from(e: PredictorError) -> SimError {
        let pc = match e {
            PredictorError::BtbTagMismatch { slot_pc, .. } => slot_pc,
            PredictorError::RasDepthInvariant { .. } => 0,
        };
        SimError::PredictorCorruption { unit: "branch", pc, detail: e.to_string() }
    }
}

impl From<exynos_snapshot::SnapshotError> for SimError {
    fn from(e: exynos_snapshot::SnapshotError) -> SimError {
        SimError::SnapshotDecode { detail: e.to_string() }
    }
}

impl From<UocError> for SimError {
    fn from(e: UocError) -> SimError {
        let UocError::BlockStateLost { pc } = e;
        SimError::PredictorCorruption { unit: "uoc", pc, detail: e.to_string() }
    }
}

impl From<exynos_trace::TraceError> for SimError {
    fn from(e: exynos_trace::TraceError) -> SimError {
        // A workload that fails to build is a configuration problem of the
        // run that asked for it: deterministic, not retryable.
        SimError::Config { param: "workload", detail: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_every_variant() {
        let snap = OccupancySnapshot {
            rob: 224,
            rob_capacity: 228,
            int_inflight: 60,
            fp_inflight: 12,
            mshr_occupancy: 8,
            mshr_capacity: 8,
            uoc_mode: Some(UocMode::Fetch),
            uoc_occupancy: 96,
            fetch_cycle: 1000,
            last_retire: 900,
        };
        let errs = [
            SimError::MalformedInst { pc: 0x40, kind: InstKind::Load, reason: "no operand" },
            SimError::ResourceInvariant { resource: "mab", detail: "9 > 8".into() },
            SimError::PredictorCorruption { unit: "branch", pc: 0x80, detail: "tag".into() },
            SimError::ForwardProgressStall {
                cycle: 1,
                stalled_cycles: 2,
                recoveries: 3,
                snapshot: snap,
            },
            SimError::SnapshotDecode { detail: "bad magic".into() },
            SimError::Config { param: "fault.rate", detail: "1.5 not in [0,1]".into() },
            SimError::Cancelled { instructions: 512, deadline: true },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn retryability_partitions_the_variants() {
        let snap = OccupancySnapshot {
            rob: 0,
            rob_capacity: 1,
            int_inflight: 0,
            fp_inflight: 0,
            mshr_occupancy: 0,
            mshr_capacity: 1,
            uoc_mode: None,
            uoc_occupancy: 0,
            fetch_cycle: 0,
            last_retire: 0,
        };
        let retryable = [
            SimError::PredictorCorruption { unit: "branch", pc: 0, detail: String::new() },
            SimError::ResourceInvariant { resource: "mab", detail: String::new() },
            SimError::ForwardProgressStall {
                cycle: 0,
                stalled_cycles: 0,
                recoveries: 0,
                snapshot: snap,
            },
        ];
        let terminal = [
            SimError::MalformedInst { pc: 0, kind: InstKind::Load, reason: "" },
            SimError::SnapshotDecode { detail: String::new() },
            SimError::Config { param: "x", detail: String::new() },
            SimError::Cancelled { instructions: 0, deadline: false },
        ];
        for e in retryable {
            assert!(e.is_retryable(), "{e}");
        }
        for e in terminal {
            assert!(!e.is_retryable(), "{e}");
        }
    }

    #[test]
    fn kind_labels_distinguish_deadline_from_cancel() {
        assert_eq!(SimError::Cancelled { instructions: 0, deadline: true }.kind(), "deadline");
        assert_eq!(SimError::Cancelled { instructions: 0, deadline: false }.kind(), "cancelled");
        assert_eq!(
            SimError::Config { param: "x", detail: String::new() }.kind(),
            "config"
        );
    }

    #[test]
    fn predictor_error_converts_with_pc() {
        let e = PredictorError::BtbTagMismatch { slot_pc: 0x4000, line_addr: 1 };
        match SimError::from(e) {
            SimError::PredictorCorruption { unit, pc, .. } => {
                assert_eq!(unit, "branch");
                assert_eq!(pc, 0x4000);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn uoc_error_converts() {
        let e = UocError::BlockStateLost { pc: 0x9000 };
        match SimError::from(e) {
            SimError::PredictorCorruption { unit, pc, .. } => {
                assert_eq!(unit, "uoc");
                assert_eq!(pc, 0x9000);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
