//! Typed simulator errors.
//!
//! Every failure the stack can detect is reported as a [`SimError`]
//! instead of a panic, so a corrupted trace record or an injected
//! micro-architectural fault degrades a run gracefully (or ends it with a
//! diagnosable error) rather than aborting the process. Lower layers
//! surface their own typed errors — [`exynos_branch::PredictorError`],
//! [`exynos_uoc::UocError`] — and convert into [`SimError`] at the core
//! boundary via `From`.

use exynos_branch::PredictorError;
use exynos_trace::InstKind;
use exynos_uoc::{UocError, UocMode};
use std::fmt;

/// Occupancy snapshot captured when the forward-progress watchdog gives
/// up, so a wedged run reports *where* the machine was stuck.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancySnapshot {
    /// ROB entries in flight.
    pub rob: usize,
    /// Configured ROB capacity.
    pub rob_capacity: usize,
    /// Integer PRF in-flight writers.
    pub int_inflight: usize,
    /// FP PRF in-flight writers.
    pub fp_inflight: usize,
    /// Miss-address buffers in use at the stall point.
    pub mshr_occupancy: usize,
    /// Configured miss-address buffer count.
    pub mshr_capacity: usize,
    /// UOC operating mode (`None` on generations without a UOC).
    pub uoc_mode: Option<UocMode>,
    /// µops resident in the UOC.
    pub uoc_occupancy: u32,
    /// Front-end fetch cycle at the stall point.
    pub fetch_cycle: u64,
    /// Cycle of the last successful retirement.
    pub last_retire: u64,
}

impl fmt::Display for OccupancySnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rob {}/{}, int {} fp {} in flight, mshr {}/{}, uoc {}({} uops), \
             fetch@{} last-retire@{}",
            self.rob,
            self.rob_capacity,
            self.int_inflight,
            self.fp_inflight,
            self.mshr_occupancy,
            self.mshr_capacity,
            match self.uoc_mode {
                Some(m) => format!("{m:?}"),
                None => "absent".into(),
            },
            self.uoc_occupancy,
            self.fetch_cycle,
            self.last_retire,
        )
    }
}

/// Everything that can go wrong inside the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A trace record was structurally invalid (e.g. a load or store with
    /// no memory operand). Only raised in strict-decode mode; the default
    /// policy counts and skips the record.
    MalformedInst {
        /// PC of the offending record.
        pc: u64,
        /// Its functional class.
        kind: InstKind,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// A structural resource broke its occupancy invariant.
    ResourceInvariant {
        /// Which resource ("mab", "rob", ...).
        resource: &'static str,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A predictor array was found in a state it could not legally reach
    /// (tag mismatch, depth overflow, lost block state).
    PredictorCorruption {
        /// Which unit detected it ("branch", "uoc").
        unit: &'static str,
        /// PC associated with the detection, when one exists.
        pc: u64,
        /// Underlying error rendered as text.
        detail: String,
    },
    /// The retire stage made no progress for longer than the watchdog
    /// threshold and the graceful-degradation ladder was exhausted.
    ForwardProgressStall {
        /// Retirement cycle at which the stall was detected.
        cycle: u64,
        /// Length of the retirement gap in cycles.
        stalled_cycles: u64,
        /// Recovery attempts spent before giving up.
        recoveries: u32,
        /// Machine occupancy at the stall point.
        snapshot: OccupancySnapshot,
    },
    /// A checkpoint image failed to decode (bad magic, unsupported format
    /// version, truncation, geometry mismatch against the target
    /// configuration, or corrupt field encoding).
    SnapshotDecode {
        /// Underlying decode error rendered as text.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MalformedInst { pc, kind, reason } => {
                write!(f, "malformed {kind:?} record at {pc:#x}: {reason}")
            }
            SimError::ResourceInvariant { resource, detail } => {
                write!(f, "{resource} invariant violated: {detail}")
            }
            SimError::PredictorCorruption { unit, pc, detail } => {
                write!(f, "{unit} predictor state corrupt near {pc:#x}: {detail}")
            }
            SimError::ForwardProgressStall { cycle, stalled_cycles, recoveries, snapshot } => {
                write!(
                    f,
                    "no retirement for {stalled_cycles} cycles at cycle {cycle} \
                     after {recoveries} recoveries ({snapshot})"
                )
            }
            SimError::SnapshotDecode { detail } => {
                write!(f, "checkpoint image rejected: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<PredictorError> for SimError {
    fn from(e: PredictorError) -> SimError {
        let pc = match e {
            PredictorError::BtbTagMismatch { slot_pc, .. } => slot_pc,
            PredictorError::RasDepthInvariant { .. } => 0,
        };
        SimError::PredictorCorruption { unit: "branch", pc, detail: e.to_string() }
    }
}

impl From<exynos_snapshot::SnapshotError> for SimError {
    fn from(e: exynos_snapshot::SnapshotError) -> SimError {
        SimError::SnapshotDecode { detail: e.to_string() }
    }
}

impl From<UocError> for SimError {
    fn from(e: UocError) -> SimError {
        let UocError::BlockStateLost { pc } = e;
        SimError::PredictorCorruption { unit: "uoc", pc, detail: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_every_variant() {
        let snap = OccupancySnapshot {
            rob: 224,
            rob_capacity: 228,
            int_inflight: 60,
            fp_inflight: 12,
            mshr_occupancy: 8,
            mshr_capacity: 8,
            uoc_mode: Some(UocMode::Fetch),
            uoc_occupancy: 96,
            fetch_cycle: 1000,
            last_retire: 900,
        };
        let errs = [
            SimError::MalformedInst { pc: 0x40, kind: InstKind::Load, reason: "no operand" },
            SimError::ResourceInvariant { resource: "mab", detail: "9 > 8".into() },
            SimError::PredictorCorruption { unit: "branch", pc: 0x80, detail: "tag".into() },
            SimError::ForwardProgressStall {
                cycle: 1,
                stalled_cycles: 2,
                recoveries: 3,
                snapshot: snap,
            },
            SimError::SnapshotDecode { detail: "bad magic".into() },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn predictor_error_converts_with_pc() {
        let e = PredictorError::BtbTagMismatch { slot_pc: 0x4000, line_addr: 1 };
        match SimError::from(e) {
            SimError::PredictorCorruption { unit, pc, .. } => {
                assert_eq!(unit, "branch");
                assert_eq!(pc, 0x4000);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn uoc_error_converts() {
        let e = UocError::BlockStateLost { pc: 0x9000 };
        match SimError::from(e) {
            SimError::PredictorCorruption { unit, pc, .. } => {
                assert_eq!(unit, "uoc");
                assert_eq!(pc, 0x9000);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
